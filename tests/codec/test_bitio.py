"""Tests for bit- and byte-level buffer primitives."""

import pytest

from repro.codec import BitReader, BitWriter, ByteReader, ByteWriter, CodecError


class TestBitWriter:
    def test_single_bits_msb_first(self):
        w = BitWriter()
        for bit in (1, 0, 1):
            w.write_bit(bit)
        assert w.getvalue() == bytes([0b10100000])

    def test_write_bits_value(self):
        w = BitWriter()
        w.write_bits(0b1011, 4)
        w.write_bits(0b0001, 4)
        assert w.getvalue() == bytes([0b10110001])

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(CodecError):
            w.write_bits(4, 2)

    def test_negative_rejected(self):
        w = BitWriter()
        with pytest.raises(CodecError):
            w.write_bits(-1, 4)
        with pytest.raises(CodecError):
            w.write_bits(0, -1)

    def test_zero_bits_writes_nothing(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.getvalue() == b""
        assert len(w) == 0

    def test_aligned_bytes_fast_path(self):
        w = BitWriter()
        w.write_bytes(b"\xab\xcd")
        assert w.getvalue() == b"\xab\xcd"

    def test_unaligned_bytes(self):
        w = BitWriter()
        w.write_bit(1)
        w.write_bytes(b"\xff")
        # 1 then 11111111 -> 11111111 1xxxxxxx
        assert w.getvalue() == bytes([0xFF, 0x80])

    def test_len_in_bits(self):
        w = BitWriter()
        w.write_bits(0, 13)
        assert len(w) == 13

    def test_align_pads_with_zeros(self):
        w = BitWriter()
        w.write_bit(1)
        w.align()
        w.write_bytes(b"\x01")
        assert w.getvalue() == bytes([0x80, 0x01])


class TestBitReader:
    def test_roundtrip_bits(self):
        w = BitWriter()
        w.write_bits(0b101101, 6)
        r = BitReader(w.getvalue())
        assert r.read_bits(6) == 0b101101

    def test_exhaustion_raises(self):
        r = BitReader(b"\x00")
        r.read_bits(8)
        with pytest.raises(CodecError):
            r.read_bit()

    def test_aligned_byte_read(self):
        r = BitReader(b"\x12\x34")
        assert r.read_bytes(2) == b"\x12\x34"

    def test_unaligned_byte_read(self):
        w = BitWriter()
        w.write_bit(0)
        w.write_bytes(b"\xff\x00")
        r = BitReader(w.getvalue())
        r.read_bit()
        assert r.read_bytes(2) == b"\xff\x00"

    def test_align_skips_to_boundary(self):
        r = BitReader(b"\x80\x42")
        r.read_bit()
        r.align()
        assert r.read_bytes(1) == b"\x42"

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00")
        r.read_bits(3)
        assert r.bits_remaining == 13


class TestByteWriterReader:
    def test_little_endian_uint(self):
        w = ByteWriter("little")
        w.write_uint(0x0102, 2)
        assert w.getvalue() == b"\x02\x01"

    def test_big_endian_uint(self):
        w = ByteWriter("big")
        w.write_uint(0x0102, 2)
        assert w.getvalue() == b"\x01\x02"

    def test_signed_roundtrip(self):
        w = ByteWriter("little")
        w.write_int(-5, 4)
        r = ByteReader(w.getvalue(), "little")
        assert r.read_int(4) == -5

    def test_invalid_endian_rejected(self):
        with pytest.raises(CodecError):
            ByteWriter("middle")
        with pytest.raises(CodecError):
            ByteReader(b"", "middle")

    def test_pad_to_alignment(self):
        w = ByteWriter()
        w.write(b"\x01")
        w.pad_to(4)
        assert len(w) == 4
        w.pad_to(4)  # already aligned: no-op
        assert len(w) == 4

    def test_patch_uint(self):
        w = ByteWriter()
        w.write(b"\x00\x00\x00\x00")
        w.patch_uint(1, 0xAB, 2)
        assert w.getvalue() == b"\x00\xab\x00\x00"

    def test_reader_exhaustion(self):
        r = ByteReader(b"\x01")
        with pytest.raises(CodecError):
            r.read(2)

    def test_reader_align(self):
        r = ByteReader(b"\x01\x00\x00\x00\x05")
        r.read(1)
        r.align(4)
        assert r.read_uint(1) == 5

    def test_random_access_uint(self):
        r = ByteReader(b"\x00\x10\x00")
        assert r.uint_at(1, 1) == 0x10
        assert r.pos == 0  # random access does not move the cursor

    def test_random_access_out_of_range(self):
        r = ByteReader(b"\x00")
        with pytest.raises(CodecError):
            r.uint_at(0, 4)
        with pytest.raises(CodecError):
            r.int_at(-1, 1)
