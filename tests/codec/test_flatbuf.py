"""Tests for the FlatBuffers codec: wire layout, lazy access, svtable."""

import pytest

from repro.codec import (
    BOOL,
    U8,
    U16,
    U32,
    ArrayType,
    BytesType,
    EnumType,
    Field,
    IntType,
    StringType,
    TableType,
    UnionType,
    get_codec,
)

fb = get_codec("flatbuffers")
fb_opt = get_codec("flatbuffers_opt")

SIMPLE = TableType(
    "Simple",
    [
        Field("a", U32),
        Field("b", U16),
        Field("s", StringType(), optional=True),
        Field("flag", BOOL, optional=True),
    ],
)


class TestWireLayout:
    def test_root_uoffset_points_to_table(self):
        data = fb.encode(SIMPLE, {"a": 1, "b": 2})
        root = int.from_bytes(data[0:4], "little")
        assert 4 <= root < len(data)

    def test_strings_nul_terminated(self):
        data = fb.encode(SIMPLE, {"a": 1, "b": 2, "s": "hey"})
        assert b"hey\x00" in data

    def test_absent_optional_has_zero_vtable_slot(self):
        with_s = fb.encode(SIMPLE, {"a": 1, "b": 2, "s": "x"})
        without = fb.encode(SIMPLE, {"a": 1, "b": 2})
        assert len(without) < len(with_s)
        assert fb.decode(SIMPLE, without) == {"a": 1, "b": 2}

    def test_vtable_dedup_shrinks_repeated_tables(self):
        inner = TableType("I", [Field("x", U32)])
        t1 = TableType("T1", [Field("list", ArrayType(inner))])
        one = fb.encode(t1, {"list": [{"x": 1}]})
        many = fb.encode(t1, {"list": [{"x": i} for i in range(8)]})
        # Each extra identical table costs table bytes but shares one
        # vtable (6 B): 8 tables must cost < 8x the 1-table overhead.
        assert len(many) - len(one) < 7 * (len(one) - 4)

    def test_signed_scalars_roundtrip(self):
        t = TableType("S", [Field("x", IntType(32, signed=True))])
        for v in (-1, -(1 << 31), (1 << 31) - 1):
            assert fb.decode(t, fb.encode(t, {"x": v})) == {"x": v}

    def test_scalar_widths_inline(self):
        t8 = TableType("T8", [Field("x", U8)])
        t32 = TableType("T32", [Field("x", U32)])
        assert len(fb.encode(t8, {"x": 1})) < len(fb.encode(t32, {"x": 1})) + 4


class TestLazyAccess:
    def test_view_reads_single_field(self):
        data = fb.encode(SIMPLE, {"a": 7, "b": 9, "s": "lazy"})
        view = fb.view(SIMPLE, data)
        assert view.get("a") == 7
        assert view.get("s") == "lazy"

    def test_view_has_detects_absence(self):
        data = fb.encode(SIMPLE, {"a": 7, "b": 9})
        view = fb.view(SIMPLE, data)
        assert view.has("a")
        assert not view.has("s")

    def test_view_union_field(self):
        u = UnionType("U", [("n", U32), ("s", StringType())])
        t = TableType("T", [Field("u", u)])
        data = fb.encode(t, {"u": ("n", 123)})
        assert fb.view(t, data).get("u") == ("n", 123)

    def test_view_matches_full_decode(self):
        from repro.messages import CATALOG

        schema = CATALOG.schema("InitialUEMessage")
        sample = CATALOG.sample("InitialUEMessage")
        data = fb.encode(schema, sample)
        view = fb.view(schema, data)
        for field in schema.fields:
            if field.name in sample:
                assert view.get(field.name) == sample[field.name]


UNION_SCALAR = UnionType("US", [("num", U32), ("txt", StringType())])
UNION_TABLE = UnionType(
    "UT",
    [
        ("single", TableType("Single", [Field("v", U32)])),
        ("pair", TableType("Pair", [Field("a", U32), Field("b", U32)])),
    ],
)


class TestSvtableOptimization:
    def test_scalar_union_saves_ten_bytes(self):
        t = TableType("T", [Field("u", UNION_SCALAR)])
        value = {"u": ("num", 5)}
        standard = fb.encode(t, value)
        optimized = fb_opt.encode(t, value)
        assert len(standard) - len(optimized) == 10  # vtable(6) + soffset(4)
        assert fb_opt.decode(t, optimized) == value

    def test_varlen_union_saves_metadata(self):
        t = TableType("T", [Field("u", UNION_SCALAR)])
        value = {"u": ("txt", "hello-world")}
        standard = fb.encode(t, value)
        optimized = fb_opt.encode(t, value)
        saved = len(standard) - len(optimized)
        assert 10 <= saved <= 16  # ~14 B: vtable + soffset + slot
        assert fb_opt.decode(t, optimized) == value

    def test_single_field_table_alt_optimized(self):
        t = TableType("T", [Field("u", UNION_TABLE)])
        value = {"u": ("single", {"v": 9})}
        standard = fb.encode(t, value)
        optimized = fb_opt.encode(t, value)
        assert len(optimized) < len(standard)
        assert fb_opt.decode(t, optimized) == value

    def test_multi_field_table_alt_not_optimized(self):
        t = TableType("T", [Field("u", UNION_TABLE)])
        value = {"u": ("pair", {"a": 1, "b": 2})}
        assert len(fb.encode(t, value)) == len(fb_opt.encode(t, value))
        assert fb_opt.decode(t, fb_opt.encode(t, value)) == value

    def test_optimized_never_larger(self):
        from repro.messages import CATALOG

        for name in CATALOG.names():
            assert CATALOG.wire_size(name, "flatbuffers_opt") <= CATALOG.wire_size(
                name, "flatbuffers"
            ), name

    def test_wire_formats_incompatible_when_optimized(self):
        # The optimization changes the union wire layout, so the codecs
        # are distinct and not interchangeable on union-bearing messages.
        t = TableType("T", [Field("u", UNION_SCALAR)])
        value = {"u": ("num", 5)}
        standard = fb.encode(t, value)
        optimized = fb_opt.encode(t, value)
        assert standard != optimized


class TestNonTableRoots:
    def test_bare_scalar_root_wrapped(self):
        assert fb.decode(U32, fb.encode(U32, 77)) == 77

    def test_bare_array_root(self):
        t = ArrayType(U8)
        assert fb.decode(t, fb.encode(t, [1, 2, 3])) == [1, 2, 3]
