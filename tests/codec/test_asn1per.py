"""Tests for the ASN.1 unaligned-PER codec, including bit-exact checks."""

import pytest

from repro.codec import (
    BOOL,
    ArrayType,
    BitStringType,
    BytesType,
    EnumType,
    Field,
    IntType,
    StringType,
    TableType,
    UnionType,
    get_codec,
)
from repro.codec.bitio import CodecError

codec = get_codec("asn1per")


class TestConstrainedIntegers:
    def test_zero_range_needs_zero_bits(self):
        t = TableType("t", [Field("x", IntType(8, lo=7, hi=7))])
        # nothing to encode: fixed value
        assert codec.encode(t, {"x": 7}) == b""
        assert codec.decode(t, b"") == {"x": 7}

    def test_small_range_bit_width(self):
        # range 0..3 -> 2 bits; two fields pack into one byte
        t = TableType("t", [Field("a", IntType(8, lo=0, hi=3)), Field("b", IntType(8, lo=0, hi=3))])
        encoded = codec.encode(t, {"a": 2, "b": 1})
        assert encoded == bytes([0b10010000])

    def test_offset_encoding_from_lower_bound(self):
        t = IntType(16, lo=1000, hi=1003)
        table = TableType("t", [Field("x", t)])
        assert codec.encode(table, {"x": 1002}) == bytes([0b10000000])

    def test_full_u32_roundtrip(self):
        table = TableType("t", [Field("x", IntType(32))])
        for v in (0, 1, 0xFFFFFFFF):
            assert codec.decode(table, codec.encode(table, {"x": v})) == {"x": v}

    def test_unconstrained_int64_roundtrip(self):
        table = TableType("t", [Field("x", IntType(64, signed=True))])
        for v in (-(1 << 62), -1, 0, (1 << 62)):
            assert codec.decode(table, codec.encode(table, {"x": v})) == {"x": v}


class TestPreamble:
    def test_optional_present_bit(self):
        t = TableType("t", [Field("o", BOOL, optional=True)])
        # present: preamble 1, value 1 -> 0b11
        assert codec.encode(t, {"o": True}) == bytes([0b11000000])
        # absent: preamble 0
        assert codec.encode(t, {}) == bytes([0b00000000])

    def test_decode_respects_preamble(self):
        t = TableType("t", [Field("o", IntType(8), optional=True), Field("m", BOOL)])
        assert codec.decode(t, codec.encode(t, {"m": True})) == {"m": True}
        assert codec.decode(t, codec.encode(t, {"o": 5, "m": False})) == {
            "o": 5,
            "m": False,
        }


class TestLengthDeterminant:
    def test_short_form_byte_string(self):
        t = TableType("t", [Field("b", BytesType())])
        encoded = codec.encode(t, {"b": b"\xaa"})
        # length 1 (0x01) then 0xAA
        assert encoded == b"\x01\xaa"

    def test_long_form_over_127(self):
        t = TableType("t", [Field("b", BytesType())])
        payload = bytes(200)
        encoded = codec.encode(t, {"b": payload})
        # 10xxxxxx xxxxxxxx prefix: 0x80 | (200 >> 8), 200 & 0xFF
        assert encoded[:2] == bytes([0x80, 200])
        assert codec.decode(t, encoded) == {"b": payload}

    def test_oversize_rejected(self):
        t = TableType("t", [Field("b", BytesType())])
        with pytest.raises(CodecError):
            codec.encode(t, {"b": bytes(20000)})


class TestCompositeKinds:
    def test_enum_index_bits(self):
        t = TableType("t", [Field("e", EnumType("e", ["a", "b", "c"]))])
        # 3 values -> 2 bits; "c" = index 2
        assert codec.encode(t, {"e": "c"}) == bytes([0b10000000])

    def test_union_choice_index_prefix(self):
        u = UnionType("u", [("a", BOOL), ("b", BOOL)])
        t = TableType("t", [Field("u", u)])
        # index 1 (1 bit) then value 1 -> 0b11
        assert codec.encode(t, {"u": ("b", True)}) == bytes([0b11000000])

    def test_bitstring_packs_exactly(self):
        t = TableType("t", [Field("bits", BitStringType(12))])
        encoded = codec.encode(t, {"bits": (0xABC, 12)})
        assert encoded == bytes([0xAB, 0xC0])

    def test_array_length_prefix(self):
        t = TableType("t", [Field("xs", ArrayType(IntType(8)))])
        encoded = codec.encode(t, {"xs": [1, 2]})
        assert encoded[0] == 2  # count
        assert codec.decode(t, encoded) == {"xs": [1, 2]}

    def test_string_utf8(self):
        t = TableType("t", [Field("s", StringType())])
        assert codec.decode(t, codec.encode(t, {"s": "héllo"})) == {"s": "héllo"}

    def test_float_roundtrip(self):
        from repro.codec import F64

        t = TableType("t", [Field("f", F64)])
        assert codec.decode(t, codec.encode(t, {"f": 3.25})) == {"f": 3.25}

    def test_corrupt_enum_index_rejected(self):
        t = TableType("t", [Field("e", EnumType("e", ["a", "b", "c"]))])
        with pytest.raises(CodecError):
            codec.decode(t, bytes([0b11000000]))  # index 3 of 3


class TestCompactness:
    def test_per_is_smallest_codec_on_real_messages(self):
        from repro.messages import CATALOG

        for name in ("InitialUEMessage", "HandoverRequest", "Paging"):
            per = CATALOG.wire_size(name, "asn1per")
            for other in ("flatbuffers", "protobuf", "cdr", "flexbuffers"):
                assert per < CATALOG.wire_size(name, other), (name, other)

    def test_sequential_decode_has_no_random_access(self):
        # Structural property: the PER codec exposes no partial access
        # API; decode is all-or-nothing (vs FlatTable for FlatBuffers).
        assert not hasattr(codec, "view")
