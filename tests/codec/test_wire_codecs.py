"""Tests for protobuf, CDR, LCM, and FlexBuffers codecs."""

import pytest

from repro.codec import (
    BOOL,
    U8,
    U32,
    ArrayType,
    BitStringType,
    BytesType,
    EnumType,
    Field,
    IntType,
    StringType,
    TableType,
    UnionType,
    UnsupportedSchema,
    get_codec,
)
from repro.codec.protobuf import _read_varint, _unzigzag, _write_varint, _zigzag
from repro.codec.bitio import ByteReader, ByteWriter, CodecError

pb = get_codec("protobuf")
cdr = get_codec("cdr")
lcm = get_codec("lcm")
flex = get_codec("flexbuffers")


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**63 - 1])
    def test_roundtrip(self, value):
        w = ByteWriter("little")
        _write_varint(w, value)
        assert _read_varint(ByteReader(w.getvalue(), "little")) == value

    def test_single_byte_below_128(self):
        w = ByteWriter("little")
        _write_varint(w, 127)
        assert w.getvalue() == b"\x7f"

    def test_continuation_bit(self):
        w = ByteWriter("little")
        _write_varint(w, 300)
        assert w.getvalue() == b"\xac\x02"  # protobuf doc example

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            _write_varint(ByteWriter("little"), -1)

    @pytest.mark.parametrize("value", [0, -1, 1, -64, 63, -(2**31)])
    def test_zigzag_roundtrip(self, value):
        assert _unzigzag(_zigzag(value)) == value

    def test_zigzag_small_negatives_small(self):
        assert _zigzag(-1) == 1
        assert _zigzag(1) == 2


class TestProtobuf:
    def test_field_numbers_are_schema_positions(self):
        t = TableType(
            "t",
            [Field("a", IntType(32), optional=True), Field("b", IntType(32))],
        )
        data = pb.encode(t, {"b": 5})  # only field 2
        # tag = (2 << 3) | 0 = 0x10
        assert data[0] == 0x10

    def test_optional_fields_simply_absent(self):
        t = TableType("t", [Field("a", U32, optional=True), Field("b", U32)])
        assert pb.decode(t, pb.encode(t, {"b": 9})) == {"b": 9}

    def test_nested_length_delimited(self):
        inner = TableType("i", [Field("x", U32)])
        outer = TableType("o", [Field("i", inner)])
        value = {"i": {"x": 300}}
        assert pb.decode(outer, pb.encode(outer, value)) == value

    def test_unknown_field_number_rejected(self):
        t = TableType("t", [Field("a", U32)])
        bad = bytes([0x58, 0x01])  # field 11
        with pytest.raises(CodecError):
            pb.decode(t, bad)

    def test_union_encodes_single_member(self):
        u = UnionType("u", [("a", U32), ("b", StringType())])
        t = TableType("t", [Field("u", u)])
        for value in ({"u": ("a", 7)}, {"u": ("b", "x")}):
            assert pb.decode(t, pb.encode(t, value)) == value


class TestCdr:
    def test_alignment_padding(self):
        t = TableType("t", [Field("a", U8), Field("b", U32)])
        data = cdr.encode(t, {"a": 1, "b": 2})
        # u8 then 3 pad bytes then u32
        assert len(data) == 8
        assert data[1:4] == b"\x00\x00\x00"

    def test_string_counts_nul(self):
        t = TableType("t", [Field("s", StringType())])
        data = cdr.encode(t, {"s": "ab"})
        assert int.from_bytes(data[0:4], "little") == 3  # 'a','b',NUL

    def test_union_discriminator_u32(self):
        u = UnionType("u", [("a", U8), ("b", U8)])
        t = TableType("t", [Field("u", u)])
        data = cdr.encode(t, {"u": ("b", 9)})
        assert int.from_bytes(data[0:4], "little") == 1

    def test_optional_presence_octet(self):
        t = TableType("t", [Field("o", U32, optional=True)])
        assert cdr.encode(t, {})[0] == 0
        assert cdr.encode(t, {"o": 1})[0] == 1

    def test_out_of_range_discriminator_rejected(self):
        u = UnionType("u", [("a", U8)])
        t = TableType("t", [Field("u", u)])
        bad = b"\x09\x00\x00\x00\x01"
        with pytest.raises(CodecError):
            cdr.decode(t, bad)


class TestLcm:
    def test_rejects_unsigned(self):
        t = TableType("t", [Field("x", IntType(32, signed=False))])
        with pytest.raises(UnsupportedSchema):
            lcm.encode(t, {"x": 1})

    def test_rejects_unions(self):
        u = UnionType("u", [("a", IntType(8, signed=True))])
        t = TableType("t", [Field("u", u)])
        with pytest.raises(UnsupportedSchema):
            lcm.check_schema(t)

    def test_rejects_nested_violations(self):
        inner = TableType("i", [Field("x", IntType(16, signed=False))])
        outer = TableType("o", [Field("xs", ArrayType(inner))])
        with pytest.raises(UnsupportedSchema):
            lcm.check_schema(outer)

    def test_signed_schema_roundtrips(self):
        t = TableType(
            "t",
            [
                Field("x", IntType(32, signed=True)),
                Field("s", StringType()),
                Field("flag", BOOL),
                Field("blob", BytesType()),
            ],
        )
        value = {"x": -42, "s": "ok", "flag": True, "blob": b"\x01\x02"}
        assert lcm.decode(t, lcm.encode(t, value)) == value

    def test_fingerprint_guards_schema_identity(self):
        t1 = TableType("t1", [Field("x", IntType(32, signed=True))])
        t2 = TableType("t2", [Field("x", IntType(32, signed=True)), Field("y", IntType(8, signed=True), optional=True)])
        data = lcm.encode(t1, {"x": 1})
        with pytest.raises(CodecError):
            lcm.decode(t2, data)

    def test_rejects_most_real_control_messages(self):
        from repro.messages import CATALOG

        supported = CATALOG.supported_by("lcm")
        # Unsigned ids are pervasive: almost nothing is expressible.
        assert len(supported) < len(CATALOG.names()) / 4


class TestFlexBuffers:
    def test_self_describing_type_tags(self):
        t = TableType("t", [Field("x", U32)])
        data = flex.encode(t, {"x": 1})
        # starts with a MAP tag
        assert data[0] == 8

    def test_roundtrip_full_kinds(self):
        t = TableType(
            "t",
            [
                Field("i", IntType(32, signed=True)),
                Field("u", U32),
                Field("s", StringType()),
                Field("b", BytesType()),
                Field("bits", BitStringType(9)),
                Field("e", EnumType("e", ["p", "q"])),
                Field("xs", ArrayType(U8)),
                Field("flag", BOOL),
            ],
        )
        value = {
            "i": -3,
            "u": 9,
            "s": "str",
            "b": b"\x00\x01",
            "bits": (0x1FF, 9),
            "e": "q",
            "xs": [4, 5],
            "flag": False,
        }
        assert flex.decode(t, flex.encode(t, value)) == value

    def test_larger_than_schema_driven(self):
        from repro.messages import CATALOG

        # Self-description costs bytes: FlexBuffers beats none of the
        # schema-driven compact codecs on real messages.
        for name in ("InitialUEMessage", "HandoverRequest"):
            assert CATALOG.wire_size(name, "flexbuffers") > CATALOG.wire_size(
                name, "protobuf"
            )
