"""Differential fuzzing across codecs on the *real* message catalog.

The paper's Fig. 18-20 comparisons only mean something if every codec
implements the same semantics: for any value admissible under a real
control-message schema (CATALOG), encoding with codec A and decoding
with codec A must reproduce the value exactly — and all codecs must
agree with each other on what that value is.  Hypothesis drives values
through every schema; disagreement between any two codecs is a bug in
one of them.
"""

import string

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.messages.registry import CATALOG

#: the four codecs the paper's figures compare head-to-head.
DIFF_CODECS = ("asn1per", "flatbuffers", "flatbuffers_opt", "protobuf")

_SETTINGS = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _value_for(type_, draw):
    """A random value admissible under a catalog schema node."""
    kind = type_.kind
    if kind == "int":
        return draw(st.integers(type_.lo, type_.hi))
    if kind == "bool":
        return draw(st.booleans())
    if kind == "string":
        return draw(st.text(string.printable, max_size=type_.max_len or 8))
    if kind == "bytes":
        return draw(st.binary(max_size=type_.max_len or 8))
    if kind == "bitstring":
        return (draw(st.integers(0, (1 << type_.nbits) - 1)), type_.nbits)
    if kind == "enum":
        return draw(st.sampled_from(type_.names))
    if kind == "array":
        n = draw(st.integers(0, min(type_.max_len or 3, 3)))
        return [_value_for(type_.element, draw) for _ in range(n)]
    if kind == "table":
        out = {}
        for field in type_.fields:
            if not field.optional or draw(st.booleans()):
                out[field.name] = _value_for(field.type, draw)
        return out
    if kind == "union":
        alt_name, alt_type = draw(st.sampled_from(type_.alts))
        return (alt_name, _value_for(alt_type, draw))
    raise AssertionError(kind)


@st.composite
def catalog_message(draw):
    name = draw(st.sampled_from(CATALOG.names()))
    return name, _value_for(CATALOG.schema(name), draw)


@given(pair=catalog_message())
@settings(max_examples=120, **_SETTINGS)
def test_codecs_agree_on_catalog_messages(pair):
    """Every codec round-trips the value; all decodes are identical."""
    name, value = pair
    decoded = {}
    for codec in DIFF_CODECS:
        wire = CATALOG.encode(name, codec, value)
        decoded[codec] = CATALOG.decode(name, codec, wire)
        assert decoded[codec] == value, codec
    reference = decoded[DIFF_CODECS[0]]
    for codec in DIFF_CODECS[1:]:
        assert decoded[codec] == reference, (name, codec)


@given(pair=catalog_message())
@settings(max_examples=40, **_SETTINGS)
def test_encodes_are_deterministic_per_codec(pair):
    name, value = pair
    for codec in DIFF_CODECS:
        assert CATALOG.encode(name, codec, value) == CATALOG.encode(
            name, codec, value
        ), codec


@pytest.mark.parametrize("codec", DIFF_CODECS)
def test_every_catalog_sample_round_trips(codec):
    """The samples the simulator prices must survive every codec."""
    for name in CATALOG.names():
        wire = CATALOG.encode(name, codec)
        assert CATALOG.decode(name, codec, wire) == CATALOG.sample(name), name
