"""Tests for the shared schema model and value validation."""

import pytest

from repro.codec import (
    BOOL,
    U8,
    U16,
    U32,
    ArrayType,
    BitStringType,
    BytesType,
    EnumType,
    Field,
    FloatType,
    IntType,
    SchemaError,
    StringType,
    TableType,
    UnionType,
    count_elements,
    validate,
)


class TestTypeConstruction:
    def test_int_default_range_unsigned(self):
        t = IntType(16)
        assert (t.lo, t.hi) == (0, 65535)

    def test_int_default_range_signed(self):
        t = IntType(8, signed=True)
        assert (t.lo, t.hi) == (-128, 127)

    def test_int_bad_width_rejected(self):
        with pytest.raises(SchemaError):
            IntType(12)

    def test_int_empty_range_rejected(self):
        with pytest.raises(SchemaError):
            IntType(8, lo=5, hi=4)

    def test_int24_storage_is_4_bytes(self):
        assert IntType(24).storage_bytes == 4

    def test_enum_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            EnumType("e", ["a", "a"])

    def test_enum_empty_rejected(self):
        with pytest.raises(SchemaError):
            EnumType("e", [])

    def test_table_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            TableType("t", [Field("x", U8), Field("x", U8)])

    def test_table_field_lookup(self):
        t = TableType("t", [Field("x", U8)])
        assert t.field("x").type is U8
        with pytest.raises(SchemaError):
            t.field("y")

    def test_union_duplicate_alts_rejected(self):
        with pytest.raises(SchemaError):
            UnionType("u", [("a", U8), ("a", U16)])

    def test_union_alt_lookup(self):
        u = UnionType("u", [("a", U8)])
        assert u.alt_type("a") is U8
        with pytest.raises(SchemaError):
            u.alt_type("b")

    def test_bitstring_needs_positive_width(self):
        with pytest.raises(SchemaError):
            BitStringType(0)

    def test_float_width_checked(self):
        with pytest.raises(SchemaError):
            FloatType(16)


class TestValidation:
    def test_int_range_enforced(self):
        t = IntType(8, lo=0, hi=10)
        validate(5, t)
        with pytest.raises(SchemaError):
            validate(11, t)
        with pytest.raises(SchemaError):
            validate(-1, t)

    def test_bool_is_not_int(self):
        with pytest.raises(SchemaError):
            validate(True, U8)
        with pytest.raises(SchemaError):
            validate(1, BOOL)

    def test_enum_membership(self):
        t = EnumType("e", ["x", "y"])
        validate("x", t)
        with pytest.raises(SchemaError):
            validate("z", t)

    def test_bytes_max_len(self):
        t = BytesType(max_len=2)
        validate(b"ab", t)
        with pytest.raises(SchemaError):
            validate(b"abc", t)

    def test_string_type(self):
        validate("hi", StringType())
        with pytest.raises(SchemaError):
            validate(b"hi", StringType())

    def test_bitstring_shape(self):
        t = BitStringType(4)
        validate((0xF, 4), t)
        with pytest.raises(SchemaError):
            validate((0x1F, 4), t)  # value wider than 4 bits
        with pytest.raises(SchemaError):
            validate((1, 5), t)  # wrong declared width
        with pytest.raises(SchemaError):
            validate(3, t)

    def test_array_bounds_and_elements(self):
        t = ArrayType(U8, max_len=2)
        validate([1, 2], t)
        with pytest.raises(SchemaError):
            validate([1, 2, 3], t)
        with pytest.raises(SchemaError):
            validate([300], t)

    def test_table_missing_required_field(self):
        t = TableType("t", [Field("a", U8), Field("b", U8, optional=True)])
        validate({"a": 1}, t)
        with pytest.raises(SchemaError):
            validate({"b": 1}, t)

    def test_table_unknown_field_rejected(self):
        t = TableType("t", [Field("a", U8)])
        with pytest.raises(SchemaError):
            validate({"a": 1, "zz": 2}, t)

    def test_union_value_shape(self):
        u = UnionType("u", [("n", U8)])
        validate(("n", 3), u)
        with pytest.raises(SchemaError):
            validate(("missing", 3), u)
        with pytest.raises(SchemaError):
            validate("n", u)

    def test_nested_error_path_mentions_field(self):
        t = TableType("outer", [Field("inner", TableType("i", [Field("x", U8)]))])
        with pytest.raises(SchemaError) as err:
            validate({"inner": {"x": 999}}, t)
        assert "inner.x" in str(err.value)


class TestCountElements:
    def test_scalar_is_one(self):
        assert count_elements(5, U8) == 1

    def test_table_counts_present_leaves(self):
        t = TableType(
            "t",
            [Field("a", U8), Field("b", U8, optional=True), Field("c", U8, optional=True)],
        )
        assert count_elements({"a": 1, "b": 2}, t) == 2

    def test_nested_tables_flatten(self):
        inner = TableType("i", [Field("x", U8), Field("y", U8)])
        outer = TableType("o", [Field("i", inner), Field("z", U8)])
        assert count_elements({"i": {"x": 1, "y": 2}, "z": 3}, outer) == 3

    def test_array_sums_elements(self):
        t = ArrayType(U8)
        assert count_elements([1, 2, 3], t) == 3

    def test_empty_array_counts_one(self):
        assert count_elements([], ArrayType(U8)) == 1

    def test_union_counts_inner(self):
        inner = TableType("i", [Field("x", U8), Field("y", U8)])
        u = UnionType("u", [("t", inner), ("s", U8)])
        assert count_elements(("t", {"x": 1, "y": 2}), u) == 2
        assert count_elements(("s", 1), u) == 1
