"""Tests for the calibrated serialization cost model."""

import pytest

from repro.codec import DEFAULT_COSTS, CostModel, LinearCost, fit_linear, measure
from repro.experiments.figures import custom_message


class TestLinearCost:
    def test_total_is_affine(self):
        cost = LinearCost(2e-6, 0.5e-6)
        assert cost.total(0) == pytest.approx(2e-6)
        assert cost.total(10) == pytest.approx(7e-6)

    def test_encode_decode_split_sums_to_total(self):
        cost = LinearCost(1e-6, 0.1e-6)
        assert cost.encode(8) + cost.decode(8) == pytest.approx(cost.total(8))

    def test_decode_heavier_than_encode(self):
        cost = LinearCost(1e-6, 0.1e-6)
        assert cost.decode(8) > cost.encode(8)


class TestCalibration:
    """The paper's Fig. 18 shape properties, from the calibrated table."""

    def test_all_registered_codecs_priced(self):
        from repro.codec import codec_names

        assert set(DEFAULT_COSTS) == set(codec_names())

    def test_asn1_is_slowest_beyond_trivial_sizes(self):
        model = CostModel()
        asn1 = model.codec_cost("asn1per")
        for name, cost in DEFAULT_COSTS.items():
            if name == "asn1per":
                continue
            assert cost.total(8) < asn1.total(8), name

    def test_cdr_and_lcm_win_below_seven_elements(self):
        model = CostModel()
        for n in (1, 3, 5, 6):
            fb = model.codec_cost("flatbuffers").total(n)
            assert model.codec_cost("cdr").total(n) < fb, n
            assert model.codec_cost("lcm").total(n) < fb, n

    def test_flatbuffers_wins_beyond_crossover(self):
        model = CostModel()
        for n in (10, 15, 25, 35):
            fb = model.codec_cost("flatbuffers").total(n)
            for other in ("cdr", "lcm", "protobuf", "flexbuffers", "asn1per"):
                assert fb < model.codec_cost(other).total(n), (n, other)

    def test_max_speedup_near_paper_range(self):
        # Paper: 1.6x-19.2x vs ASN.1; calibration lands ~1.5x-23x.
        model = CostModel()
        speedup_35 = model.speedup_vs("flatbuffers", "asn1per", 35)
        assert 15 <= speedup_35 <= 30
        floor = min(
            model.speedup_vs(c, "asn1per", 2)
            for c in ("flexbuffers", "protobuf", "cdr", "lcm", "flatbuffers")
        )
        assert 1.0 <= floor <= 3.0

    def test_optimized_fb_slightly_faster(self):
        model = CostModel()
        for n in (5, 20):
            assert model.codec_cost("flatbuffers_opt").total(n) < model.codec_cost(
                "flatbuffers"
            ).total(n)

    def test_unknown_codec_rejected(self):
        with pytest.raises(KeyError):
            CostModel().codec_cost("bson")

    def test_message_service_time_includes_base(self):
        model = CostModel()
        service = model.message_service_time("flatbuffers", 8)
        assert service > model.base_process_s
        assert service == pytest.approx(
            model.base_process_s + model.codec_cost("flatbuffers").total(8)
        )


class TestMeasurement:
    def test_measure_returns_positive_times(self):
        schema, value = custom_message(5)
        enc, dec = measure("protobuf", schema, value, repeats=5)
        assert enc > 0 and dec > 0

    def test_measure_rejects_zero_repeats(self):
        schema, value = custom_message(3)
        with pytest.raises(ValueError):
            measure("cdr", schema, value, repeats=0)

    def test_fit_linear_recovers_slope(self):
        # Fit against a synthetic timer to avoid flaky wall-clock checks.
        ticks = [0.0]

        def timer():
            return ticks[0]

        # monkeypatch measure by fitting directly on two sizes using the
        # real codec but a controlled "cost": use actual fit on real
        # measurements and only assert non-negativity + monotonicity.
        samples = {n: custom_message(n) for n in (2, 10, 20)}
        fitted = fit_linear("cdr", samples, repeats=5)
        assert fitted.fixed_s >= 0
        assert fitted.per_element_s >= 0

    def test_fit_linear_needs_two_samples(self):
        with pytest.raises(ValueError):
            fit_linear("cdr", {3: custom_message(3)})
