"""Property-based roundtrip tests: random schemas, random values.

For every codec: ``decode(encode(value)) == value`` over generated
(schema, value) pairs covering nesting, optionals, unions, arrays,
bit strings, and all scalar kinds.  LCM runs on a restricted generator
honoring its type-system limits.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.codec import (
    ArrayType,
    BitStringType,
    BoolType,
    BytesType,
    EnumType,
    Field,
    IntType,
    StringType,
    TableType,
    UnionType,
    codec_names,
    get_codec,
)

_NAMES = st.text(string.ascii_lowercase, min_size=1, max_size=8)


def _scalar_types(signed_only: bool):
    widths = st.sampled_from([8, 16, 32, 64])
    ints = widths.map(lambda w: IntType(w, signed=True))
    if not signed_only:
        ints = st.one_of(ints, widths.map(lambda w: IntType(w, signed=False)))
    options = [
        ints,
        st.just(BoolType()),
        st.just(StringType(max_len=16)),
        st.just(BytesType(max_len=16)),
        st.integers(1, 24).map(BitStringType),
        st.lists(_NAMES, min_size=1, max_size=4, unique=True).map(
            lambda names: EnumType("e", names)
        ),
    ]
    return st.one_of(*options)


def _type_strategy(signed_only: bool, depth: int = 2):
    scalar = _scalar_types(signed_only)

    def extend(children):
        table = st.lists(
            st.tuples(_NAMES, children, st.booleans()), min_size=1, max_size=4
        ).map(
            lambda fields: TableType(
                "t",
                [
                    Field("f%d_%s" % (i, n), t, optional=opt)
                    for i, (n, t, opt) in enumerate(fields)
                ],
            )
        )
        array = children.map(lambda t: ArrayType(t, max_len=4))
        options = [table, array]
        if not signed_only:
            options.append(
                st.lists(st.tuples(_NAMES, children), min_size=1, max_size=3).map(
                    lambda alts: UnionType(
                        "u", [("a%d_%s" % (i, n), t) for i, (n, t) in enumerate(alts)]
                    )
                )
            )
        return st.one_of(*options)

    return st.recursive(scalar, extend, max_leaves=8)


def _value_for(type_, draw):
    kind = type_.kind
    if kind == "int":
        return draw(st.integers(type_.lo, type_.hi))
    if kind == "bool":
        return draw(st.booleans())
    if kind == "string":
        return draw(st.text(string.printable, max_size=type_.max_len or 8))
    if kind == "bytes":
        return draw(st.binary(max_size=type_.max_len or 8))
    if kind == "bitstring":
        return (draw(st.integers(0, (1 << type_.nbits) - 1)), type_.nbits)
    if kind == "enum":
        return draw(st.sampled_from(type_.names))
    if kind == "array":
        n = draw(st.integers(0, type_.max_len or 3))
        return [_value_for(type_.element, draw) for _ in range(n)]
    if kind == "table":
        out = {}
        for field in type_.fields:
            if not field.optional or draw(st.booleans()):
                out[field.name] = _value_for(field.type, draw)
        return out
    if kind == "union":
        alt_name, alt_type = draw(st.sampled_from(type_.alts))
        return (alt_name, _value_for(alt_type, draw))
    raise AssertionError(kind)


@st.composite
def schema_and_value(draw, signed_only=False):
    type_ = draw(_type_strategy(signed_only))
    return type_, _value_for(type_, draw)


GENERAL_CODECS = [n for n in codec_names() if n != "lcm"]


@pytest.mark.parametrize("codec_name", GENERAL_CODECS)
@given(pair=schema_and_value())
@settings(max_examples=60, deadline=None)
def test_roundtrip_random_schema(codec_name, pair):
    type_, value = pair
    codec = get_codec(codec_name)
    if type_.kind not in ("table",):  # codecs take any root; normalize
        type_ = TableType("root", [Field("v", type_)])
        value = {"v": value}
    assert codec.decode(type_, codec.encode(type_, value)) == value


@given(pair=schema_and_value(signed_only=True))
@settings(max_examples=60, deadline=None)
def test_lcm_roundtrip_on_supported_schemas(pair):
    type_, value = pair
    if type_.kind != "table":
        type_ = TableType("root", [Field("v", type_)])
        value = {"v": value}
    codec = get_codec("lcm")
    codec.check_schema(type_)  # generator must only produce supported
    assert codec.decode(type_, codec.encode(type_, value)) == value


@pytest.mark.parametrize("codec_name", GENERAL_CODECS)
@given(pair=schema_and_value())
@settings(max_examples=30, deadline=None)
def test_encode_deterministic(codec_name, pair):
    type_, value = pair
    if type_.kind != "table":
        type_ = TableType("root", [Field("v", type_)])
        value = {"v": value}
    codec = get_codec(codec_name)
    assert codec.encode(type_, value) == codec.encode(type_, value)
