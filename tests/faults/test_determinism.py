"""Seed-determinism regressions: the replay promise of the chaos layer.

The same (workload, FaultPlan, seed) must produce byte-identical event
traces and identical PCT percentiles, run after run — this is what makes
``python -m repro chaos replay`` and the regression corpus meaningful.
"""

from repro.core import ControlPlaneConfig
from repro.experiments.harness import RunSpec, run_pct_point
from repro.faults import EventTrace, FaultPlan, replay, run_plan


def chaos_plan(seed=11):
    plan = FaultPlan(seed=seed, note="determinism probe")
    plan.workload = {"ues": [{"id": "ue-det", "bs": "bs-20-0"}]}
    plan.perturb("cta_cpf", drop_p=0.2, dup_p=0.1, reorder_p=0.2)
    plan.perturb("cpf_cpf_inter", drop_p=0.25, extra_delay_s=1e-4)
    plan.step("proc", proc="service_request")
    plan.step("fail_cpf", "cpf-20-0")
    plan.step("proc", proc="handover")
    plan.step("wait", dt=0.004)
    plan.step("recover_cpf", "cpf-20-0")
    plan.step("fail_cta", "cta-20")
    plan.step("proc", proc="service_request")
    plan.step("recover_cta", "cta-20")
    plan.step("proc", proc="tau")
    return plan


def test_same_plan_yields_byte_identical_traces():
    plan = chaos_plan()
    a = run_plan(plan, verbose_trace=True)
    b = run_plan(plan, verbose_trace=True)
    assert a.trace.lines() == b.trace.lines()  # byte-for-byte, every message
    assert a.digest == b.digest
    assert a.pct_ms == b.pct_ms
    assert a.fault_counters == b.fault_counters
    assert a.end_time_s == b.end_time_s


def test_json_round_trip_preserves_the_run():
    plan = chaos_plan()
    direct = run_plan(plan, verbose_trace=True)
    reloaded = run_plan(FaultPlan.from_json(plan.to_json()), verbose_trace=True)
    assert reloaded.digest == direct.digest
    assert reloaded.trace.lines() == direct.trace.lines()


def test_replay_helper_reports_deterministic():
    report = replay(chaos_plan(), runs=3)
    assert report.deterministic
    assert len(set(report.digests)) == 1


def test_different_seeds_draw_different_faults():
    # same schedule, different seed -> different message-fault draws
    a = run_plan(chaos_plan(seed=11), verbose_trace=True)
    b = run_plan(chaos_plan(seed=12), verbose_trace=True)
    assert a.digest != b.digest


def test_trace_digest_ignores_nothing():
    trace = EventTrace()
    trace.record(0.5, "op", op="fail_cpf", target="cpf-20-0")
    other = EventTrace()
    other.record(0.5, "op", op="fail_cpf", target="cpf-20-1")
    assert trace.digest() != other.digest()


def test_harness_point_is_reproducible_under_chaos():
    plan = FaultPlan(seed=5)
    plan.perturb("cta_cpf", drop_p=0.15, reorder_p=0.15)
    spec = RunSpec(
        procedure="service_request",
        procedures_target=150,
        min_duration_s=0.02,
        max_duration_s=0.05,
        failure_cpf_index=0,
        fault_plan=plan,
    )
    config = ControlPlaneConfig.neutrino()
    first = run_pct_point(config, 40e3, spec)
    second = run_pct_point(config, 40e3, spec)
    assert first == second  # identical PCTPoint, percentile for percentile
    assert first.violations == 0
    # the harness merged its kill into a *copy*: the shared plan is intact
    assert plan.events == []
