"""FaultPlan DSL: validation, builders, and the JSON round-trip."""

import pytest

from repro.faults import FaultEvent, FaultOp, FaultPlan, LinkPerturbation


def full_plan():
    plan = FaultPlan(seed=9, note="everything at once", config="neutrino")
    plan.workload = {"ues": [{"id": "ue-1", "bs": "bs-20-0"}]}
    plan.perturb("cta_cpf", drop_p=0.1, dup_p=0.05, reorder_p=0.2, extra_delay_s=1e-4)
    plan.perturb("cpf_cpf_inter", drop_p=0.3, rto_s=2e-4, max_retx=3)
    plan.at(0.001, "fail_cpf", "cpf-20-0")
    plan.at(0.002, "partition", "20|21")
    plan.at(0.003, "heal")
    plan.step("proc", proc="service_request")
    plan.step("wait", dt=0.005)
    plan.step("proc", proc="handover", target_bs="bs-21-0")
    plan.step("recover_cpf", "cpf-20-0")
    plan.step(
        "perturb",
        perturbation=LinkPerturbation("bs_cta", drop_p=0.2),
    )
    plan.step("clear_faults")
    return plan


class TestValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            FaultOp(op="explode")

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError):
            FaultOp(op="wait", dt=-1.0)

    def test_perturb_without_profile_rejected(self):
        with pytest.raises(ValueError):
            FaultOp(op="perturb")

    @pytest.mark.parametrize("op", ["proc", "wait"])
    def test_timed_event_rejects_step_only_ops(self, op):
        with pytest.raises(ValueError):
            FaultEvent(op=op, at=0.1)

    def test_negative_event_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(op="fail_cpf", target="cpf-20-0", at=-0.1)

    def test_bad_perturbation_probability_rejected_at_link(self):
        # the plan accepts it (pure data); the Link rejects on install
        from repro.sim import Link, Simulator

        link = Link(Simulator(), 1e-4)
        with pytest.raises(ValueError):
            link.set_faults(drop_p=1.5)

    def test_probabilistic_faults_require_rng(self):
        from repro.sim import Link, Simulator

        link = Link(Simulator(), 1e-4)
        with pytest.raises(ValueError):
            link.set_faults(drop_p=0.5)  # no rng supplied


class TestBuilders:
    def test_builders_chain(self):
        plan = FaultPlan(seed=1).perturb("cta_cpf", drop_p=0.1).step(
            "proc", proc="tau"
        ).at(0.5, "fail_cta", "cta-20")
        assert len(plan.perturbations) == 1
        assert len(plan.steps) == 1
        assert len(plan.events) == 1

    def test_with_events_leaves_original_untouched(self):
        plan = full_plan()
        before = plan.to_dict()
        extra = FaultEvent(op="fail_cta", target="cta-21", at=0.9)
        copy = plan.with_events(extra)
        assert plan.to_dict() == before
        assert len(copy.events) == len(plan.events) + 1
        assert copy.events[-1] == extra
        # containers are copies, not aliases
        copy.steps.append(FaultOp(op="heal"))
        copy.topology["regions"] = 5
        assert plan.to_dict() == before


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        plan = full_plan()
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.to_dict() == plan.to_dict()
        assert clone.steps == plan.steps
        assert clone.events == plan.events
        assert clone.perturbations == plan.perturbations

    def test_json_is_canonical(self):
        plan = full_plan()
        assert plan.to_json() == FaultPlan.from_json(plan.to_json()).to_json()

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "plan.json")
        plan = full_plan()
        plan.save(path)
        assert FaultPlan.load(path).to_dict() == plan.to_dict()

    def test_perturbation_dict_omits_defaults(self):
        d = LinkPerturbation("cta_cpf", drop_p=0.25).to_dict()
        assert d == {"hop": "cta_cpf", "drop_p": 0.25}
        assert LinkPerturbation.from_dict(d) == LinkPerturbation("cta_cpf", drop_p=0.25)

    def test_op_dict_omits_empty_fields(self):
        d = FaultOp(op="heal").to_dict()
        assert d == {"op": "heal"}

    def test_defaults_survive_empty_dict(self):
        plan = FaultPlan.from_dict({})
        assert plan.seed == 0
        assert plan.config == "neutrino"
        assert plan.guard_last_alive is True
        assert plan.topology == {"regions": 2, "cpfs_per_region": 2, "bss_per_region": 2}
