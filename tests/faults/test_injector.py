"""FaultInjector + Link fault mechanics: drops, duplicates, reorders,
retransmission exhaustion, blackholes, partitions, and the op guards."""

import pytest

from repro.core import ControlPlaneConfig, Deployment
from repro.faults import FaultEvent, FaultInjector, FaultOp, FaultPlan, region_of
from repro.sim import Link, LinkDown, Simulator
from repro.sim.node import NodeFailed
from repro.sim.rng import RngRegistry


class FixedRng:
    """random.Random stand-in returning a scripted sequence (then 1.0)."""

    def __init__(self, *values):
        self._values = list(values)

    def random(self):
        return self._values.pop(0) if self._values else 1.0


def make_dep(sim=None, **kwargs):
    sim = sim or Simulator()
    dep = Deployment.build_grid(
        sim,
        ControlPlaneConfig.neutrino(),
        cpfs_per_region=kwargs.pop("cpfs_per_region", 2),
        bss_per_region=kwargs.pop("bss_per_region", 2),
        regions=kwargs.pop("regions", 2),
        rng=RngRegistry(0),
    )
    return sim, dep


class TestRegionOf:
    def test_node_names(self):
        assert region_of("cpf-20-0") == "20"
        assert region_of("cta-21") == "21"
        assert region_of("bs-20-1") == "20"

    def test_degenerate(self):
        assert region_of(None) is None
        assert region_of("") is None
        assert region_of("upf") is None


class TestLinkTransit:
    def test_clean_path_matches_plain_delay(self):
        link = Link(Simulator(), 1e-4)
        transit = link.transit(128)
        assert transit.delay == link.delay(128)
        assert not transit.perturbed

    def test_blackholed_link_loses_messages(self):
        link = Link(Simulator(), 1e-4)
        link.up = False
        transit = link.transit(10)
        assert transit.lost
        assert link.dropped == 1

    def test_drop_retransmits_until_delivery(self):
        link = Link(Simulator(), 1e-4)
        # two drops, then delivery (0.0 < drop_p twice, then 1.0)
        link.set_faults(drop_p=0.5, rng=FixedRng(0.0, 0.0))
        transit = link.transit(0)
        assert not transit.lost
        assert transit.retransmits == 2
        assert transit.delay == pytest.approx(link.latency_s + 2 * link.effective_rto())
        assert link.retransmits == 2

    def test_drop_budget_exhaustion_is_lost(self):
        link = Link(Simulator(), 1e-4)
        link.set_faults(drop_p=0.5, rng=FixedRng(*([0.0] * 20)), max_retx=3)
        transit = link.transit(0)
        assert transit.lost
        assert transit.retransmits == 3
        assert link.dropped == 1

    def test_duplicate_and_reorder_counters(self):
        link = Link(Simulator(), 1e-4)
        # dup draw 0.0 < 0.9, reorder draw 0.0 < 0.9, spread draw 0.5
        link.set_faults(dup_p=0.9, reorder_p=0.9, rng=FixedRng(0.0, 0.0, 0.5))
        transit = link.transit(100)
        assert transit.duplicated and transit.reordered
        assert link.duplicated == 1 and link.reordered == 1
        assert link.messages_sent == 2  # the copy consumes link resources
        assert transit.delay > link.latency_s

    def test_extra_delay_applied(self):
        link = Link(Simulator(), 1e-4)
        link.set_faults(extra_delay_s=5e-4)
        assert link.transit(0).delay == pytest.approx(link.latency_s + 5e-4)

    def test_clear_faults_restores_clean_path(self):
        link = Link(Simulator(), 1e-4)
        link.set_faults(drop_p=0.5, rng=FixedRng())
        link.clear_faults()
        assert not link.faulty
        assert not link.transit(0).perturbed

    def test_effective_rto_floor_and_override(self):
        link = Link(Simulator(), 1e-6)
        assert link.effective_rto() == 1e-4  # floor
        link.rto_s = 3e-3
        assert link.effective_rto() == 3e-3


class TestTransitEvent:
    def test_lost_message_fails_event_with_linkdown(self):
        sim, dep = make_dep()
        plan = FaultPlan(seed=3)
        plan.perturb("cta_cpf", drop_p=0.9, rto_s=1e-5, max_retx=0)
        injector = FaultInjector(dep, plan).install()
        link = dep.links["cta_cpf"]
        # drive until a loss occurs (seeded, so bounded and deterministic)
        for _ in range(50):
            ev = injector.transit_event(link, 64)
            if ev.fired and not ev.ok:
                break
        else:
            pytest.fail("0.9 drop never exhausted a zero-retx budget in 50 tries")
        with pytest.raises(LinkDown):  # LinkDown IS-A NodeFailed: recovery applies
            _ = ev.value
        assert issubclass(LinkDown, NodeFailed)
        assert injector.messages_lost >= 1
        assert "msg_lost" in injector.trace.kinds()

    def test_partition_drops_only_cross_group_messages(self):
        sim, dep = make_dep()
        injector = FaultInjector(dep, FaultPlan(seed=0)).install()
        injector.fire(FaultOp(op="partition", target="20|21"))
        link = dep.links["cpf_cpf_inter"]
        ev = injector.transit_event(link, 64, src="cpf-20-0", dst="cpf-21-0")
        assert ev.fired and not ev.ok
        with pytest.raises(LinkDown):
            _ = ev.value
        assert injector.partition_drops == 1
        # same-group and unknown endpoints pass
        ok = injector.transit_event(link, 64, src="cpf-20-0", dst="cpf-20-1")
        assert not ok.fired
        anon = injector.transit_event(link, 64)
        assert not anon.fired
        injector.fire(FaultOp(op="heal"))
        healed = injector.transit_event(link, 64, src="cpf-20-0", dst="cpf-21-0")
        assert not healed.fired

    def test_bad_partition_target_rejected(self):
        _, dep = make_dep()
        injector = FaultInjector(dep, FaultPlan()).install()
        with pytest.raises(ValueError):
            injector.fire(FaultOp(op="partition", target="20"))


class TestOpGuards:
    def test_fail_unknown_or_down_target_is_skipped(self):
        _, dep = make_dep()
        injector = FaultInjector(dep, FaultPlan()).install()
        injector.fire(FaultOp(op="fail_cpf", target="cpf-99-9"))
        assert injector.ops_skipped == 1 and injector.ops_applied == 0
        injector.fire(FaultOp(op="fail_cpf", target="cpf-20-0"))
        injector.fire(FaultOp(op="fail_cpf", target="cpf-20-0"))  # already down
        assert injector.ops_applied == 1 and injector.ops_skipped == 2

    def test_last_alive_guard_spares_final_cpf(self):
        _, dep = make_dep()
        injector = FaultInjector(dep, FaultPlan(guard_last_alive=True)).install()
        names = sorted(dep.cpfs)
        for name in names:
            injector.fire(FaultOp(op="fail_cpf", target=name))
        alive = [n for n, c in dep.cpfs.items() if c.up]
        assert len(alive) == 1
        assert injector.ops_skipped == 1

    def test_guard_off_allows_total_outage(self):
        _, dep = make_dep()
        injector = FaultInjector(dep, FaultPlan(guard_last_alive=False)).install()
        for name in sorted(dep.cpfs):
            injector.fire(FaultOp(op="fail_cpf", target=name))
        assert not any(c.up for c in dep.cpfs.values())

    def test_cta_guard_and_recover(self):
        _, dep = make_dep()
        injector = FaultInjector(dep, FaultPlan(guard_last_alive=True)).install()
        for name in sorted(dep.ctas):
            injector.fire(FaultOp(op="fail_cta", target=name))
        assert sum(1 for c in dep.ctas.values() if c.up) == 1
        down = [n for n, c in dep.ctas.items() if not c.up][0]
        injector.fire(FaultOp(op="recover_cta", target=down))
        assert dep.ctas[down].up
        injector.fire(FaultOp(op="recover_cta", target=down))  # idempotent skip
        assert injector.trace.kinds().get("op_skipped", 0) >= 1

    def test_blackhole_restore_idempotence(self):
        _, dep = make_dep()
        injector = FaultInjector(dep, FaultPlan()).install()
        injector.fire(FaultOp(op="blackhole", target="bs_cta"))
        assert not dep.links["bs_cta"].up
        injector.fire(FaultOp(op="blackhole", target="bs_cta"))  # skip
        injector.fire(FaultOp(op="restore", target="bs_cta"))
        assert dep.links["bs_cta"].up
        injector.fire(FaultOp(op="restore", target="bs_cta"))  # skip
        assert injector.ops_applied == 2 and injector.ops_skipped == 2

    def test_clear_faults_resets_links_and_partition(self):
        _, dep = make_dep()
        plan = FaultPlan(seed=1)
        plan.perturb("cta_cpf", drop_p=0.2)
        injector = FaultInjector(dep, plan).install()
        injector.fire(FaultOp(op="partition", target="20|21"))
        assert dep.links["cta_cpf"].faulty
        injector.fire(FaultOp(op="clear_faults"))
        assert not dep.links["cta_cpf"].faulty
        assert injector._partition is None


class TestLifecycle:
    def test_double_install_rejected(self):
        _, dep = make_dep()
        FaultInjector(dep, FaultPlan()).install()
        with pytest.raises(RuntimeError):
            FaultInjector(dep, FaultPlan()).install()

    def test_install_schedules_timed_events(self):
        sim, dep = make_dep()
        plan = FaultPlan(guard_last_alive=False)
        plan.at(0.002, "fail_cpf", "cpf-20-0")
        plan.at(0.004, "recover_cpf", "cpf-20-0")
        injector = FaultInjector(dep, plan).install()
        sim.run(until=0.003)
        assert not dep.cpfs["cpf-20-0"].up
        sim.run(until=0.005)
        assert dep.cpfs["cpf-20-0"].up
        assert injector.ops_applied == 2

    def test_uninstall_releases_hop_path_and_heals(self):
        _, dep = make_dep()
        plan = FaultPlan(seed=1)
        plan.perturb("cta_cpf", drop_p=0.2)
        injector = FaultInjector(dep, plan).install()
        injector.fire(FaultOp(op="blackhole", target="bs_cta"))
        injector.uninstall()
        assert dep.faults is None
        assert dep.links["bs_cta"].up
        assert not dep.links["cta_cpf"].faulty

    def test_unknown_hop_in_perturbation_raises_on_install(self):
        _, dep = make_dep()
        plan = FaultPlan(seed=1)
        plan.perturb("warp_drive", drop_p=0.1)
        with pytest.raises(KeyError):
            FaultInjector(dep, plan).install()

    def test_fault_counters_include_per_link_detail(self):
        _, dep = make_dep()
        plan = FaultPlan(seed=5)
        plan.perturb("cta_cpf", drop_p=0.5, rto_s=1e-5)
        injector = FaultInjector(dep, plan).install()
        link = dep.links["cta_cpf"]
        for _ in range(30):
            injector.transit_event(link, 8)
        counters = injector.fault_counters()
        assert counters["link.cta_cpf.retransmits"] > 0
