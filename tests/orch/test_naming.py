"""The mid-run-joiner naming contract.

Orchestrator-added CPFs are named ``cpf-<tile>-<k>`` with ``k`` one
past the region's all-time high-water index.  That convention is what
makes a joiner indistinguishable from a seed CPF to every subsystem
that parses node names: ``region_of`` (fault partitions), the region
map's ``region_of_cpf`` home lookup (repair-fetch sources, including
CPFs currently ringed out by a drain), and the FaultInjector's
``fail_cpf``/``recover_cpf`` ops (chaos can target a CPF the
controller created seconds ago).  The tests here pin each layer plus
the no-reuse property that keeps remove + re-add collision-free.
"""

import dataclasses

import pytest

from repro.faults.injector import region_of
from repro.faults.plan import FaultOp
from repro.orch import OrchPolicy, Orchestrator, cpf_index
from repro.scale.engine import _Engine
from repro.scale.scenarios import get_scenario


def _engine():
    spec = get_scenario("steady-city").with_overrides(
        n_ue=50, duration_s=0.5, seed=3
    )
    spec = dataclasses.replace(
        spec,
        name="naming-test",
        l2_regions=2,
        l1_per_l2=2,
        orch_policy={"tick_s": 0.05, "scale_out_queue": 4.0},
    )
    return _Engine(spec, mode="cohort")


class TestNameParsing:
    @pytest.mark.parametrize(
        "name,tile",
        [
            ("cpf-121110-0", "121110"),  # seed CPF
            ("cpf-121110-17", "121110"),  # orchestrator joiner
            ("cta-121132", "121132"),
            ("bs-121110-1", "121110"),
        ],
    )
    def test_region_of_parses_tile(self, name, tile):
        assert region_of(name) == tile

    def test_region_of_rejects_non_node_names(self):
        assert region_of(None) is None
        assert region_of("") is None
        assert region_of("ue42") is None

    def test_cpf_index_reads_numeric_suffix(self):
        assert cpf_index("cpf-121110-0") == 0
        assert cpf_index("cpf-121110-17") == 17
        assert cpf_index("weird") == -1


class TestJoinerRecognition:
    def test_scaled_out_cpf_is_a_first_class_node(self):
        engine = _engine()
        tile = sorted(engine.dep.region_map.regions)[0]
        name = "cpf-%s-9" % tile
        engine.apply_action(
            {"kind": "scale_out", "region": tile, "cpf": name}
        )
        assert engine.counters.get("orch_scale_out") == 1
        # geo: both the name parse and the home lookup resolve it
        assert region_of(name) == tile
        assert engine.dep.region_map.region_of_cpf(name).geohash == tile
        assert name in engine.dep.region_map.regions[tile].cpfs
        # node registry: a live CPF object exists and is up
        assert engine.dep.cpfs[name].up

    def test_fault_injector_can_target_a_joiner(self):
        engine = _engine()
        engine.injector.add_listener(engine._on_fault_op)
        tile = sorted(engine.dep.region_map.regions)[0]
        name = "cpf-%s-9" % tile
        engine.apply_action(
            {"kind": "scale_out", "region": tile, "cpf": name}
        )
        engine.injector.fire(FaultOp("fail_cpf", target=name))
        assert engine.injector.ops_applied == 1
        assert not engine.dep.cpfs[name].up
        # the controller's crash-detection listener saw the kill
        assert engine.counters.get("orch_crash_detected") == 1
        engine.injector.fire(FaultOp("recover_cpf", target=name))
        assert engine.dep.cpfs[name].up

    def test_drained_victim_still_resolves_as_repair_source(self):
        engine = _engine()
        region_map = engine.dep.region_map
        tile = sorted(region_map.regions)[0]
        victim = region_map.regions[tile].cpfs[-1]
        engine.dep.remove_cpf(tile, victim)
        assert victim not in region_map.regions[tile].cpfs
        # ringed out, but its home is remembered: in-flight repair
        # fetches can still name it as a source
        assert region_map.region_of_cpf(victim).geohash == tile
        # and the same name may rejoin later (the upgrade re-ring)
        engine.dep.add_cpf(tile, victim)
        assert victim in region_map.regions[tile].cpfs


class TestHighWaterMarkNaming:
    def _tick(self, orch, members, q):
        load = {"121110": {"members": members, "up": len(members), "q": q,
                           "down": []}}
        return orch.observe(orch.ticks + 1, 0.05 * (orch.ticks + 1),
                            [{"shard": 0, "load": load}])

    def _orch(self):
        return Orchestrator(
            OrchPolicy(scale_out_queue=4.0, scale_out_ticks=1,
                       cooldown_ticks=0, max_cpfs=8),
            duration=10.0,
        )

    def test_scale_out_names_one_past_high_water(self):
        orch = self._orch()
        (action,) = self._tick(orch, ["cpf-121110-0", "cpf-121110-1"], 100)
        assert action == {
            "kind": "scale_out", "region": "121110", "cpf": "cpf-121110-2",
        }

    def test_indexes_never_reused_after_remove(self):
        orch = self._orch()
        (first,) = self._tick(orch, ["cpf-121110-0", "cpf-121110-1"], 100)
        assert first["cpf"] == "cpf-121110-2"
        # the joiner was scaled back in meanwhile: the pool looks like
        # the original, but the high-water mark remembers index 2
        (second,) = self._tick(orch, ["cpf-121110-0", "cpf-121110-1"], 100)
        assert second["cpf"] == "cpf-121110-3"


class TestUpgradePrefixPin:
    def test_downtown_parent_matches_shipped_policy(self):
        """The upgrade scenario's ``upgrade_prefix`` must be the commute
        model's downtown level-2 parent — the same derivation the engine
        uses (first parent in sorted tile order at the spec topology)."""
        from repro.scale.topology import build_city

        spec = get_scenario("upgrade-under-commute-wave")
        assert spec.mobility_model == "commute"
        topo = build_city(
            l2_regions=spec.l2_regions,
            l1_per_l2=spec.l1_per_l2,
            cpfs_per_region=spec.cpfs_per_region,
            bss_per_region=spec.bss_per_region,
            precision=spec.precision,
        )
        downtown_parent = sorted({t[:-1] for t in topo.tiles})[0]
        assert spec.orch_policy["upgrade_prefix"] == downtown_parent == "12111"
