"""Determinism witnesses for orchestrated runs.

Three pinned facts, all on the small ``upgrade-under-commute-wave``
configuration (n_ue=300, duration=1.0, seed=11):

* the orchestrated run's merged-trace digest and its append-only
  action log are bit-stable — any change to controller decisions, to
  action application order, or to the epoch/tick alignment shows up
  here first;
* the inline and process shard backends produce the identical
  orchestrated run (the controller lives at the coordinator; actions
  ship inside step messages on both vehicles);
* a run with ``orch_policy=None`` and a run under the non-mutating
  no-op policy produce the *same* digest: the controller's presence
  (tick timeouts, heartbeat reads) must not perturb the simulation —
  observation is free, only actions change the run.

The short duration deliberately truncates the rolling upgrade (the
last drained CPF never gets its replace): the auditor must stay clean
even when the run ends mid-drain.
"""

import dataclasses

import pytest

from repro.scale.engine import run_scenario
from repro.scale.scenarios import get_scenario

_SMALL = dict(n_ue=300, duration_s=1.0, seed=11)

#: merged-trace digests for the orchestrated small run, per topology.
PINNED = {
    1: "0487a7a002187f517fac42a591a1567a",
    2: "3e90d94908986451ba581628c457f458",
    4: "d98bb32d16dfd003db6fcace2c1c73d5",
}

#: the same spec with the controller off (or observing-only).
PINNED_OFF = {
    1: "cae66941d9efbd404e4d88758ea67670",
    2: "ebd9e809a676753384f4c2c74065eb20",
}

#: the full action log of the single-process run — the golden witness
#: for controller decisions (epoch/t pin the tick alignment too).
GOLDEN_LOG = [
    {"kind": "upgrade_begin", "region": "121110", "cpf": "cpf-121110-0",
     "epoch": 4, "t": 0.2},
    {"kind": "upgrade_replace", "region": "121110", "cpf": "cpf-121110-0",
     "epoch": 7, "t": 0.35},
    {"kind": "upgrade_begin", "region": "121110", "cpf": "cpf-121110-1",
     "epoch": 7, "t": 0.35},
    {"kind": "upgrade_replace", "region": "121110", "cpf": "cpf-121110-1",
     "epoch": 9, "t": 0.44999999999999996},
    {"kind": "upgrade_begin", "region": "121111", "cpf": "cpf-121111-0",
     "epoch": 11, "t": 0.5499999999999999},
    {"kind": "upgrade_replace", "region": "121111", "cpf": "cpf-121111-0",
     "epoch": 12, "t": 0.6},
    {"kind": "upgrade_begin", "region": "121111", "cpf": "cpf-121111-1",
     "epoch": 13, "t": 0.65},
    {"kind": "upgrade_replace", "region": "121111", "cpf": "cpf-121111-1",
     "epoch": 15, "t": 0.7500000000000001},
    {"kind": "upgrade_begin", "region": "121112", "cpf": "cpf-121112-0",
     "epoch": 16, "t": 0.8000000000000002},
    {"kind": "upgrade_replace", "region": "121112", "cpf": "cpf-121112-0",
     "epoch": 18, "t": 0.9000000000000002},
    {"kind": "upgrade_begin", "region": "121112", "cpf": "cpf-121112-1",
     "epoch": 19, "t": 0.9500000000000003},
]


def _spec(**overrides):
    spec = get_scenario("upgrade-under-commute-wave").with_overrides(**_SMALL)
    return dataclasses.replace(spec, **overrides) if overrides else spec


def test_pinned_digest_and_action_log():
    res = run_scenario(_spec())
    assert res.violations == 0
    assert res.digest == PINNED[1]
    assert res.orch_log == GOLDEN_LOG
    assert res.orch_summary["by_kind"] == {
        "upgrade_begin": 6, "upgrade_replace": 5,
    }


@pytest.mark.parametrize("shards", [2, 4])
def test_pinned_sharded_digests(shards):
    res = run_scenario(_spec(), shards=shards, shard_backend="inline")
    assert res.violations == 0
    assert res.digest == PINNED[shards]


def test_process_backend_matches_inline_bit_for_bit():
    inline = run_scenario(_spec(), shards=2, shard_backend="inline")
    procs = run_scenario(_spec(), shards=2, shard_backend="process")
    assert procs.digest == inline.digest
    assert procs.orch_log == inline.orch_log
    assert procs.orch_summary == inline.orch_summary


@pytest.mark.parametrize("shards", [1, 2])
def test_noop_policy_matches_orch_off(shards):
    kwargs = (
        dict(shards=shards, shard_backend="inline") if shards > 1 else {}
    )
    off = run_scenario(_spec(orch_policy=None), **kwargs)
    noop = run_scenario(_spec(orch_policy={"tick_s": 0.05}), **kwargs)
    assert off.digest == PINNED_OFF[shards]
    assert noop.digest == off.digest
    # the observing controller really ran
    assert noop.orch_summary["ticks"] > 0
    assert noop.orch_log == []
    # and the controller-off run carries no orch result at all
    assert not hasattr(off, "orch_log")


def test_upgrade_order_is_shard_count_invariant():
    """Tick *times* quantize to epoch boundaries, but the upgrade
    sequence — which CPF drains/replaces in which order — is a pure
    function of the policy, identical at every shard count."""
    logs = {
        1: run_scenario(_spec()).orch_log,
        2: run_scenario(_spec(), shards=2, shard_backend="inline").orch_log,
        4: run_scenario(_spec(), shards=4, shard_backend="inline").orch_log,
    }
    for kind in ("upgrade_begin", "upgrade_replace"):
        sequences = {
            shards: [a["cpf"] for a in log if a["kind"] == kind]
            for shards, log in logs.items()
        }
        assert sequences[1] == sequences[2] == sequences[4], kind
