"""The orchestration safety campaign: random policies x faults x storms.

The closed-loop controller's safety claim is absolute: whatever the
policy decides — scale-out into a storm, scale-in of a region that is
about to crash, a rolling upgrade racing the paper's two-level
recovery, auto-heal firing while the FaultPlan's own recovery is in
flight — the RYW auditor stays clean and no UE is stranded.
Hypothesis composes the three policy behaviours with the fault
dimensions of ``test_storm_consistency.py`` on the measured IoT
re-attach storm, then checks:

* ``violations == 0`` with per-UE causal history enabled;
* no cohort slot is left busy (a drain that strands an in-flight
  procedure would wedge its slot's busy flag forever);
* every region keeps a non-empty CPF ring and every level-2 parent
  keeps at least one CPF (the scale-in guards actually held);
* the run is bit-reproducible: same spec, same digest, same action log.

A pinned corpus replays the nastiest configurations on fixed seeds so
a regression is a named failure, never a flaky property.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.scale.engine import _Engine, run_scenario
from repro.scale.scenarios import get_scenario

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=8,
    print_blob=True,
)

#: the campaign city: 2 level-2 parents x 2 tiles, 2 CPFs per tile —
#: small enough to run in seconds, structured enough that scale-in /
#: upgrade guards (last replica of a level-2 parent) are reachable.
_CITY = dict(l2_regions=2, l1_per_l2=2, cpfs_per_region=2, bss_per_region=2)

#: a level-2 parent of the campaign city (tiles 121110/121112).
_PARENT = "12111"


def _orch_spec(seed, policy, n_ue=140, fault_events=(), link_faults=()):
    base = get_scenario("iot-reattach-storm")
    return dataclasses.replace(
        base,
        name="orch-property",
        n_ue=n_ue,
        duration_s=1.2,
        seed=seed,
        traffic_rate_scale=8.0,
        fault_events=list(fault_events),
        link_faults=list(link_faults),
        churn_events=[],
        audit_history=True,
        orch_policy=dict(policy),
        **_CITY
    )


@st.composite
def policies(draw):
    """A random mutating policy: any non-empty behaviour subset."""
    policy = {"tick_s": draw(st.sampled_from((0.04, 0.05, 0.1)))}
    if draw(st.booleans()):
        policy["scale_out_queue"] = draw(st.sampled_from((1.0, 4.0)))
        policy["scale_in_queue"] = draw(st.sampled_from((0.0, 0.5)))
        policy["scale_out_ticks"] = draw(st.integers(1, 2))
        policy["scale_in_ticks"] = draw(st.integers(2, 4))
        policy["cooldown_ticks"] = draw(st.integers(0, 3))
        policy["max_cpfs"] = draw(st.integers(2, 4))
    if draw(st.booleans()):
        policy["upgrade_start_frac"] = draw(st.sampled_from((0.2, 0.35, 0.5)))
        policy["upgrade_drain_s"] = draw(st.sampled_from((0.05, 0.1)))
        policy["upgrade_stagger_s"] = draw(st.sampled_from((0.05, 0.15)))
        if draw(st.booleans()):
            policy["upgrade_prefix"] = _PARENT
    if draw(st.booleans()) or len(policy) == 1:
        policy["heal_after_ticks"] = draw(st.integers(1, 3))
        policy["heal_recover"] = draw(st.booleans())
    return policy


@st.composite
def orch_specs(draw):
    seed = draw(st.integers(0, 2**20))
    policy = draw(policies())

    fault_events = []
    if draw(st.booleans()):
        # a whole region blacks out and recovers: the controller's
        # auto-heal races the plan's own recovery, upgrades may have
        # drained the victim already, autoscale sees the load shift
        fail_at = draw(st.floats(0.25, 0.45))
        recover_at = draw(st.floats(0.55, 0.75))
        victim = draw(st.integers(0, 3))
        fault_events = [
            (fail_at, "fail", "region:index:%d" % victim),
            (recover_at, "recover", "region:index:%d" % victim),
        ]
    elif draw(st.booleans()):
        # a single CPF crashes and never comes back by itself — only
        # heal_recover (when drawn) restarts it
        fail_at = draw(st.floats(0.25, 0.55))
        target = draw(st.sampled_from(("cpf-121110-0", "cpf-121130-0")))
        fault_events = [(fail_at, "fail_cpf", target)]

    link_faults = []
    if draw(st.booleans()):
        hop = draw(st.sampled_from(("cpf_cpf_intra", "cpf_cpf_inter", "cpf_cpf_far")))
        link_faults = [(hop, draw(st.floats(0.05, 0.25)))]

    return _orch_spec(
        seed,
        policy,
        n_ue=draw(st.integers(100, 180)),
        fault_events=fault_events,
        link_faults=link_faults,
    )


def _check_safety(spec):
    engine = _Engine(spec, mode="cohort")
    res = engine.run()
    label = "seed=%d policy=%r faults=%r" % (
        spec.seed, spec.orch_policy, spec.fault_events,
    )
    assert res.violations == 0, "RYW violated (%s)" % label
    assert res.serves > 0 and res.writes > 0
    assert res.counters.get("storm_arrivals", 0) > 0
    # no UE stranded: a drain that lost an in-flight procedure would
    # leave its cohort slot busy forever
    assert sum(engine.driver.busy) == 0, "stuck busy slots (%s)" % label
    # scale-in / drain guards held: nobody emptied a region's ring or
    # a level-2 parent's CPF pool
    parents = {}
    for tile, region in engine.dep.region_map.regions.items():
        assert region.cpfs, "region %s ringed empty (%s)" % (tile, label)
        parents.setdefault(tile[:-1], 0)
        parents[tile[:-1]] += len(region.cpfs)
    for parent, count in parents.items():
        assert count >= 1, "parent %s emptied (%s)" % (parent, label)
    return engine, res


@given(spec=orch_specs())
@settings(**_SETTINGS)
def test_orchestration_is_safe_under_faults_and_storms(spec):
    _check_safety(spec)


@given(spec=orch_specs())
@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_orchestrated_runs_are_reproducible(spec):
    a = run_scenario(spec)
    b = run_scenario(spec)
    assert a.digest == b.digest
    assert a.orch_log == b.orch_log
    assert a.orch_summary == b.orch_summary


# -------------------------------------------------------- pinned corpus

_FULL_POLICY = {
    "tick_s": 0.05,
    "scale_out_queue": 1.0,
    "scale_in_queue": 0.5,
    "scale_out_ticks": 1,
    "scale_in_ticks": 2,
    "cooldown_ticks": 1,
    "max_cpfs": 4,
    "upgrade_start_frac": 0.30,
    "upgrade_drain_s": 0.05,
    "upgrade_stagger_s": 0.05,
    "heal_after_ticks": 1,
    "heal_recover": True,
}

_REGRESSION_CORPUS = [
    # everything at once: eager autoscale + whole-city rolling upgrade
    # + instant heal, while a region blacks out across the storm window
    dict(
        seed=9001,
        policy=_FULL_POLICY,
        fault_events=[
            (0.35, "fail", "region:index:0"),
            (0.60, "recover", "region:index:0"),
        ],
    ),
    # heal races the upgrade of the same pool: the victim CPF crashes
    # right as its level-2 parent's upgrade wave begins, lossy links
    dict(
        seed=4242,
        policy=dict(_FULL_POLICY, upgrade_prefix=_PARENT,
                    heal_recover=False),
        fault_events=[(0.30, "fail_cpf", "cpf-121110-0")],
        link_faults=[("cpf_cpf_inter", 0.20)],
    ),
    # aggressive scale-in (threshold 0 never holds, but in_ticks=2 at a
    # quiet tail shrinks pools) against the region blackout's recovery
    dict(
        seed=777,
        policy={
            "tick_s": 0.04,
            "scale_out_queue": 1.0,
            "scale_in_queue": 0.5,
            "scale_out_ticks": 1,
            "scale_in_ticks": 2,
            "cooldown_ticks": 0,
            "max_cpfs": 3,
        },
        fault_events=[
            (0.40, "fail", "region:index:2"),
            (0.70, "recover", "region:index:2"),
        ],
        link_faults=[("cpf_cpf_far", 0.25)],
    ),
]


@pytest.mark.parametrize(
    "case", _REGRESSION_CORPUS, ids=lambda c: "seed%d" % c["seed"]
)
def test_regression_corpus(case):
    spec = _orch_spec(
        case["seed"],
        case["policy"],
        fault_events=case.get("fault_events", ()),
        link_faults=case.get("link_faults", ()),
    )
    engine, res = _check_safety(spec)
    # the corpus policies really act — an empty action log would mean
    # the campaign quietly stopped exercising the choke points
    assert res.orch_log, "corpus case did nothing"
