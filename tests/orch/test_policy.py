"""The --policy JSON DSL: round trips, validation, behaviour flags —
plus the ledger's orchestrated-vs-baseline comparison record."""

import pytest

from repro.orch import OrchPolicy, orch_compare, worst_attach_p99


class TestRoundTrip:
    def test_defaults_round_trip(self):
        policy = OrchPolicy()
        assert OrchPolicy.from_dict(policy.to_dict()) == policy

    def test_scenario_policies_round_trip(self):
        from repro.scale.scenarios import SCENARIOS

        seen = 0
        for spec in SCENARIOS.values():
            if spec.orch_policy is None:
                continue
            policy = OrchPolicy.from_dict(spec.orch_policy)
            assert OrchPolicy.from_dict(policy.to_dict()) == policy
            assert policy.mutating  # shipped scenarios actually act
            seen += 1
        assert seen >= 2  # upgrade + autoscale scenarios

    def test_unknown_keys_rejected_by_name(self):
        with pytest.raises(ValueError, match="scale_out_queus"):
            OrchPolicy.from_dict({"scale_out_queus": 3.0})

    def test_to_dict_is_plain_json(self):
        import json

        json.dumps(OrchPolicy(scale_out_queue=2.0).to_dict())


class TestValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(tick_s=0.0),
            dict(tick_s=-1.0),
            dict(scale_out_ticks=0),
            dict(scale_in_ticks=0),
            dict(heal_after_ticks=0),
            dict(cooldown_ticks=-1),
            dict(min_cpfs=0),
            dict(min_cpfs=3, max_cpfs=2),
            dict(scale_out_queue=-0.5),
            dict(upgrade_start_frac=1.5),
            dict(upgrade_start_frac=-0.1),
            dict(upgrade_drain_s=-0.1),
            dict(upgrade_stagger_s=-0.1),
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            OrchPolicy(**bad)


class TestBehaviourFlags:
    def test_noop_policy_is_not_mutating(self):
        policy = OrchPolicy(tick_s=0.05)
        assert not policy.autoscale
        assert not policy.upgrading
        assert not policy.healing
        assert not policy.mutating

    def test_each_behaviour_flips_mutating(self):
        assert OrchPolicy(scale_out_queue=4.0).autoscale
        assert OrchPolicy(scale_in_queue=0.5).autoscale
        assert OrchPolicy(upgrade_start_frac=0.5).upgrading
        assert OrchPolicy(heal_after_ticks=2).healing
        for policy in (
            OrchPolicy(scale_out_queue=4.0),
            OrchPolicy(upgrade_start_frac=0.5),
            OrchPolicy(heal_after_ticks=2),
        ):
            assert policy.mutating


class _FakeResult:
    def __init__(self, region_pct_ms, violations=0, digest="d"):
        self.region_pct_ms = region_pct_ms
        self.violations = violations
        self.digest = digest


class TestCompare:
    def _result(self, p99s, **kw):
        return _FakeResult(
            {
                region: {"attach": {"count": 5, "p99": p99}}
                for region, p99 in p99s.items()
            },
            **kw
        )

    def test_worst_region_wins(self):
        res = self._result({"20": 3.0, "21": 9.5, "22": 1.0})
        assert worst_attach_p99(res) == 9.5

    def test_no_attaches_is_none(self):
        assert worst_attach_p99(self._result({})) is None
        assert worst_attach_p99(
            _FakeResult({"20": {"service_request": {"p99": 4.0}}})
        ) is None

    def test_compare_improved(self):
        record = orch_compare(
            self._result({"20": 5.0}),
            self._result({"20": 8.0}, digest="base"),
        )
        assert record["improved"]
        assert record["orch_attach_p99_ms"] == 5.0
        assert record["baseline_attach_p99_ms"] == 8.0
        assert record["baseline_digest"] == "base"
        assert record["baseline_violations"] == 0

    def test_compare_not_improved_or_unmeasurable(self):
        assert not orch_compare(
            self._result({"20": 8.0}), self._result({"20": 8.0})
        )["improved"]
        assert not orch_compare(
            self._result({}), self._result({"20": 8.0})
        )["improved"]
