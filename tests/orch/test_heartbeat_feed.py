"""Heartbeat-subscriber plumbing: the feed the controller consumes.

Three layers, bottom up:

* unit: ``HeartbeatStream(fp=None)`` is a pure programmatic feed —
  subscribers see the identical dict the NDJSON sink writes, in
  emission order, and per-shard echo rows never carry the bulky
  ``metrics``/``load`` payloads;
* plumbing: attaching the stream to a run changes *nothing* about the
  simulation (heartbeat-on digest == heartbeat-off digest, drain
  cadence included), while the cadence itself is a deterministic
  golden — epoch sequences pinned per shard count, one beat at the
  drain-horizon crossing, ``drain_every`` pulses through long tails;
* wiring: the controller subscribes to the same feed and its
  ``heartbeats_seen`` matches what the stream emitted — every tick in
  single-process runs (the in-process loop emits one beat per tick),
  the progress marks in sharded runs.
"""

import io
import json

import pytest

from repro.obs.stream import HeartbeatStream
from repro.scale.engine import run_scenario
from repro.scale.scenarios import get_scenario

_SMALL = dict(n_ue=300, duration_s=1.0, seed=11)

#: pinned heartbeat cadence (epoch numbers) for the small orchestrated
#: upgrade run — the last beat is the drain-horizon crossing.
GOLDEN_EPOCHS = {
    2: [7, 9, 10, 12, 20, 25, 26, 34, 40, 42, 45, 52, 59, 61, 64, 67],
    4: [4, 9, 10, 13, 16, 18, 24, 26, 37, 42, 46, 49, 55, 62, 64, 67],
}


def _spec():
    return get_scenario("upgrade-under-commute-wave").with_overrides(**_SMALL)


def _collect(stream):
    rows = []
    stream.subscribe(rows.append)
    return rows


# ----------------------------------------------------------------- unit layer


class TestSubscriberOnlyStream:
    def _healths(self):
        return [
            {"shard": 0, "completed": 3, "wall_s": 0.5,
             "load": {"121110": {"q": 7}}, "metrics": None},
            {"shard": 1, "completed": 4, "wall_s": 0.6},
        ]

    def test_subscribers_see_every_row_in_order(self):
        stream = HeartbeatStream(fp=None)
        rows = _collect(stream)
        stream.heartbeat(3, 0.5, 2.0, self._healths())
        stream.emit({"type": "summary", "ok": True})
        assert [r["type"] for r in rows] == ["heartbeat", "summary"]
        assert stream.rows == 2

    def test_subscriber_row_is_the_ndjson_row(self):
        fp = io.StringIO()
        stream = HeartbeatStream(fp=fp)
        rows = _collect(stream)
        stream.heartbeat(3, 0.5, 2.0, self._healths())
        (line,) = fp.getvalue().splitlines()
        assert json.loads(line) == rows[0]

    def test_heartbeat_folds_and_strips_shard_payloads(self):
        stream = HeartbeatStream(fp=None)
        rows = _collect(stream)
        stream.heartbeat(3, 0.5, 2.0, self._healths())
        (row,) = rows
        assert row["epoch"] == 3
        assert row["completed"] == 7  # folded across shards
        assert row["progress"] == 0.25
        assert not row["draining"]
        # the per-shard echo stays scalar: the controller reads the raw
        # health rows at its tick, never this wire row
        assert len(row["shards"]) == 2
        for shard_row in row["shards"]:
            assert "load" not in shard_row
            assert "metrics" not in shard_row

    def test_draining_flag_past_horizon(self):
        stream = HeartbeatStream(fp=None)
        rows = _collect(stream)
        stream.heartbeat(9, 2.4, 2.0, self._healths())
        assert rows[0]["draining"]
        assert rows[0]["t"] == 2.0  # sim time clamps to the horizon
        assert rows[0]["progress"] == 1.0


# ------------------------------------------------------------- plumbing layer


class TestFeedDeterminism:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_golden_epoch_cadence(self, shards):
        stream = HeartbeatStream(fp=None)
        rows = _collect(stream)
        res = run_scenario(_spec(), shards=shards, shard_backend="inline",
                           stream=stream)
        beats = [r for r in rows if r["type"] == "heartbeat"]
        assert [r["epoch"] for r in beats] == GOLDEN_EPOCHS[shards]
        # exactly one beat past the traffic horizon: the drain crossing
        assert [r["draining"] for r in beats].count(True) == 1
        assert beats[-1]["draining"] and beats[-1]["t"] == _SMALL["duration_s"]
        times = [r["t"] for r in beats]
        assert times == sorted(times)
        # the final summary row is the merged verdict
        assert rows[-1]["type"] == "summary"
        assert rows[-1]["digest"] == res.digest
        assert rows[-1]["ok"] and rows[-1]["violations"] == 0

    def test_feed_never_perturbs_the_run(self):
        off = run_scenario(_spec(), shards=2, shard_backend="inline")
        stream = HeartbeatStream(fp=None)
        on = run_scenario(_spec(), shards=2, shard_backend="inline",
                          stream=stream)
        assert on.digest == off.digest
        assert on.orch_log == off.orch_log
        assert stream.rows > 0

    def test_drain_cadence_pulses_long_tails(self):
        """``stream.drain_every`` governs the post-horizon pulse: with a
        tight setting the tail emits many draining beats — and the extra
        observation still changes nothing about the run."""
        stream = HeartbeatStream(fp=None)
        stream.drain_every = 2
        rows = _collect(stream)
        res = run_scenario(_spec(), shards=2, shard_backend="inline",
                           stream=stream)
        draining = [r for r in rows
                    if r["type"] == "heartbeat" and r["draining"]]
        assert len(draining) > 1  # horizon crossing + pulsed tail
        epochs = [r["epoch"] for r in draining]
        assert epochs == sorted(epochs)
        assert res.digest == run_scenario(
            _spec(), shards=2, shard_backend="inline"
        ).digest


# --------------------------------------------------------------- wiring layer


class TestControllerSubscription:
    def test_single_process_one_beat_per_tick(self):
        stream = HeartbeatStream(fp=None)
        rows = _collect(stream)
        res = run_scenario(_spec(), stream=stream)
        beats = [r for r in rows if r["type"] == "heartbeat"]
        assert res.orch_summary["ticks"] == len(beats)
        assert res.orch_summary["heartbeats_seen"] == len(beats)

    def test_sharded_controller_sees_the_progress_marks(self):
        stream = HeartbeatStream(fp=None)
        rows = _collect(stream)
        res = run_scenario(_spec(), shards=2, shard_backend="inline",
                           stream=stream)
        beats = [r for r in rows if r["type"] == "heartbeat"]
        assert res.orch_summary["heartbeats_seen"] == len(beats)
        # ticks outnumber marks: the controller decides every tick_s,
        # the wire row only goes out at progress marks
        assert res.orch_summary["ticks"] >= len(beats)

    def test_without_stream_controller_still_ticks(self):
        res = run_scenario(_spec())
        assert res.orch_summary["ticks"] > 0
        assert res.orch_summary["heartbeats_seen"] == 0
