"""Tests for synthetic ng4T-substitute traces."""

import io

import pytest

from repro.traffic import TraceConfig, TraceRecord, generate_trace, load_trace, save_trace


class TestTraceRecord:
    def test_json_roundtrip(self):
        record = TraceRecord(1.5, "ue-3", "handover", target_bs="bs-2")
        assert TraceRecord.from_json(record.to_json()) == record

    def test_json_omits_absent_target(self):
        record = TraceRecord(1.5, "ue-3", "attach")
        assert "target_bs" not in record.to_json()


class TestGenerator:
    def test_every_device_attaches_once(self):
        cfg = TraceConfig(n_devices=20, duration_s=30, seed=1)
        records = generate_trace(cfg)
        attaches = [r for r in records if r.procedure == "attach"]
        assert len(attaches) == 20
        assert len({r.ue for r in attaches}) == 20

    def test_sorted_by_time(self):
        records = generate_trace(TraceConfig(n_devices=30, duration_s=60, seed=2))
        times = [r.time for r in records]
        assert times == sorted(times)

    def test_deterministic(self):
        cfg = TraceConfig(n_devices=10, duration_s=60, seed=5)
        assert generate_trace(cfg) == generate_trace(cfg)

    def test_session_interarrival_statistic(self):
        # §2.2: a device issues a session request every ~106.9 s on
        # average; over many device-hours the empirical rate converges.
        cfg = TraceConfig(n_devices=300, duration_s=400, seed=3,
                          handover_interarrival_s=None, power_cycle_fraction=0.0)
        records = generate_trace(cfg)
        srs = [r for r in records if r.procedure == "service_request"]
        device_seconds = cfg.n_devices * cfg.duration_s
        empirical_gap = device_seconds / len(srs)
        assert 85 < empirical_gap < 135

    def test_handovers_target_known_bss(self):
        cfg = TraceConfig(n_devices=50, duration_s=600, seed=4,
                          handover_interarrival_s=100.0)
        bss = ["bs-a", "bs-b", "bs-c"]
        records = generate_trace(cfg, bs_names=bss)
        hos = [r for r in records if r.procedure == "handover"]
        assert hos, "expected at least one handover"
        assert all(r.target_bs in bss for r in hos)

    def test_no_handovers_with_single_bs(self):
        cfg = TraceConfig(n_devices=50, duration_s=600, seed=4)
        records = generate_trace(cfg, bs_names=["only-bs"])
        assert not [r for r in records if r.procedure == "handover"]

    def test_tau_period(self):
        cfg = TraceConfig(n_devices=5, duration_s=100, seed=1, tau_period_s=30,
                          handover_interarrival_s=None)
        records = generate_trace(cfg)
        taus = [r for r in records if r.procedure == "tau"]
        assert len(taus) >= 5  # each device: at least a few TAUs

    def test_power_cycle_fraction(self):
        cfg = TraceConfig(n_devices=200, duration_s=60, seed=9,
                          power_cycle_fraction=0.5, handover_interarrival_s=None)
        records = generate_trace(cfg)
        detaches = [r for r in records if r.procedure == "detach"]
        assert 50 < len(detaches) < 150

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace(TraceConfig(n_devices=0))
        with pytest.raises(ValueError):
            generate_trace(TraceConfig(duration_s=0))
        with pytest.raises(ValueError):
            generate_trace(TraceConfig(power_cycle_fraction=1.5))


class TestPersistence:
    def test_save_load_roundtrip(self):
        records = generate_trace(TraceConfig(n_devices=10, duration_s=30, seed=1))
        buf = io.StringIO()
        count = save_trace(records, buf)
        assert count == len(records)
        buf.seek(0)
        assert load_trace(buf) == records

    def test_load_skips_blank_lines(self):
        buf = io.StringIO('{"t": 1.0, "ue": "u", "proc": "attach"}\n\n')
        assert len(load_trace(buf)) == 1
