"""Tests for the tile-graph mobility models feeding the scale engine."""

import random

import pytest

from repro.traffic.mobility import (
    CommuteWaveMobility,
    FlashCrowdMobility,
    MobilityModel,
    RandomWalkMobility,
    bfs_distances,
)

#: a 2x3 grid of tiles:  a-b-c
#:                       |   |   (d only connects to a, f only to c)
#:                       d   f
GRID = {
    "a": ["b", "d"],
    "b": ["a", "c"],
    "c": ["b", "f"],
    "d": ["a"],
    "f": ["c"],
}


class TestBfsDistances:
    def test_single_target(self):
        dist = bfs_distances(GRID, ["a"])
        assert dist == {"a": 0, "b": 1, "d": 1, "c": 2, "f": 3}

    def test_multiple_targets_take_nearest(self):
        dist = bfs_distances(GRID, ["a", "f"])
        assert dist["c"] == 1 and dist["b"] == 1

    def test_disconnected_tiles_absent(self):
        graph = dict(GRID, z=[])
        dist = bfs_distances(graph, ["a"])
        assert "z" not in dist

    def test_unknown_target_ignored(self):
        assert bfs_distances(GRID, ["nope"]) == {}


class TestRandomWalk:
    def test_steps_stay_on_edges(self):
        model = RandomWalkMobility(GRID)
        rng = random.Random(1)
        tile = "a"
        for _ in range(200):
            nxt = model.next_tile(rng, tile, 0.0)
            assert nxt in GRID[tile]
            tile = nxt

    def test_isolated_tile_stays(self):
        model = RandomWalkMobility({"lone": []})
        assert model.next_tile(random.Random(1), "lone", 0.0) is None

    def test_initial_tile_uniformish(self):
        model = RandomWalkMobility(GRID)
        rng = random.Random(5)
        seen = {model.initial_tile(rng) for _ in range(200)}
        assert seen == set(GRID)

    def test_deterministic_given_seed(self):
        walk = lambda: [
            RandomWalkMobility(GRID).next_tile(random.Random(9), "b", 0.0)
            for _ in range(5)
        ]
        assert walk() == walk()


class TestCommuteWave:
    def test_moves_toward_downtown_inside_window(self):
        model = CommuteWaveMobility(GRID, ["f"], wave_start=1.0, wave_end=2.0)
        rng = random.Random(2)
        dist = bfs_distances(GRID, ["f"])
        for tile in ("a", "b", "d"):
            nxt = model.next_tile(rng, tile, 1.5)
            assert dist[nxt] < dist[tile], (tile, nxt)

    def test_random_walk_outside_window(self):
        model = CommuteWaveMobility(GRID, ["f"], wave_start=1.0, wave_end=2.0)
        rng = random.Random(3)
        for now in (0.5, 2.5):
            assert model.next_tile(rng, "a", now) in GRID["a"]

    def test_initial_placement_avoids_downtown(self):
        model = CommuteWaveMobility(GRID, ["f"], 0.0, 1.0)
        rng = random.Random(4)
        for _ in range(100):
            assert model.initial_tile(rng) != "f"

    def test_at_downtown_wanders(self):
        model = CommuteWaveMobility(GRID, ["f"], 0.0, 10.0)
        assert model.next_tile(random.Random(1), "f", 5.0) in GRID["f"]

    def test_set_adjacency_rebuilds_distance_field(self):
        model = CommuteWaveMobility(GRID, ["f"], 0.0, 10.0)
        # retire "f": the downtown disappears from the graph, so the wave
        # degrades to a random walk instead of chasing a ghost tile
        pruned = {t: [n for n in ns if n != "f"] for t, ns in GRID.items() if t != "f"}
        model.set_adjacency(pruned)
        rng = random.Random(6)
        for _ in range(50):
            nxt = model.next_tile(rng, "c", 5.0)
            assert nxt in pruned["c"]


class TestFlashCrowd:
    def test_converges_during_event(self):
        model = FlashCrowdMobility(GRID, "b", flash_start=1.0, flash_end=2.0)
        rng = random.Random(7)
        dist = bfs_distances(GRID, ["b"])
        for tile in ("d", "f", "a", "c"):
            nxt = model.next_tile(rng, tile, 1.5)
            assert dist[nxt] < dist[tile]

    def test_disperses_after_event(self):
        model = FlashCrowdMobility(GRID, "b", flash_start=0.0, flash_end=1.0)
        rng = random.Random(8)
        dist = bfs_distances(GRID, ["b"])
        for _ in range(50):
            nxt = model.next_tile(rng, "b", 2.0)
            assert dist[nxt] > dist["b"]

    def test_random_walk_before_event(self):
        model = FlashCrowdMobility(GRID, "b", flash_start=5.0, flash_end=6.0)
        rng = random.Random(9)
        assert model.next_tile(rng, "a", 1.0) in GRID["a"]

    def test_edge_of_map_after_event_wanders(self):
        # d is already maximally far on its branch; no strictly-farther
        # neighbour exists, so the model falls back to a random step
        model = FlashCrowdMobility(GRID, "b", flash_start=0.0, flash_end=1.0)
        rng = random.Random(10)
        assert model.next_tile(rng, "d", 2.0) in GRID["d"]


class TestBaseModel:
    def test_static_base_never_moves(self):
        model = MobilityModel(GRID)
        assert model.next_tile(random.Random(1), "a", 0.0) is None

    def test_tiles_and_neighbors(self):
        model = MobilityModel(GRID)
        assert model.tiles == sorted(GRID)
        assert model.neighbors("a") == ["b", "d"]
        assert model.neighbors("unknown") == []
