"""Statistical calibration of the measured traffic models.

The headline contract of ``repro.traffic.models``: every generator's
emitted stream must pass goodness-of-fit against the statistics the
model claims — KS on aggregate inter-arrivals per (device class,
procedure), de-modulated KS plus per-segment rate checks for diurnal
envelopes, and size/peak-intensity/shape checks for storms.  Seeds and
tolerances are pinned, so the suite is deterministic in CI.

The mutation half proves the suite has teeth: emitting traffic from a
deliberately mis-parameterized model (wrong sigma, wrong mean, wrong
distribution family, flattened envelope, wrong storm shape or
participation) against the correct model's claims must FAIL the
corresponding check, decisively (KS p-values below ``REJECT_P``).
"""

import dataclasses

import pytest

from repro.traffic.calibration import (
    DEFAULT_ALPHA,
    MIN_BURST_INTENSITY,
    MIN_KS_SAMPLES,
    REJECT_P,
    calibrate_model,
)
from repro.traffic.models import (
    MODELS,
    StormSpec,
    get_model,
    model_names,
)

# pinned calibration point: big enough for every process to clear
# MIN_KS_SAMPLES, small enough to stay fast. Seed 1 is the contract —
# a different seed is a different (still deterministic) experiment.
N_UE = 20000
DURATION_S = 600.0
SEED = 1


def _calibrate(model_name, emit_model=None, **kw):
    return calibrate_model(
        get_model(model_name),
        n_ue=N_UE,
        duration_s=DURATION_S,
        seed=SEED,
        emit_model=emit_model,
        **kw
    )


def _mutate_process(model, class_name, proc_index, **changes):
    """Model with one ProcessSpec field changed (frozen dataclasses)."""
    classes = []
    for cls in model.classes:
        if cls.name == class_name:
            procs = list(cls.processes)
            procs[proc_index] = dataclasses.replace(procs[proc_index], **changes)
            cls = dataclasses.replace(cls, processes=tuple(procs))
        classes.append(cls)
    return dataclasses.replace(model, classes=tuple(classes))


def _mutate_storm(model, storm_name, **changes):
    storms = tuple(
        dataclasses.replace(s, **changes) if s.name == storm_name else s
        for s in model.storms
    )
    return dataclasses.replace(model, storms=storms)


def _check(report, name):
    matches = [c for c in report.checks if c.name == name]
    assert matches, "no check named %r in:\n%s" % (name, report.format_report())
    return matches[0]


# ------------------------------------------------------------ correctness


class TestModelsCalibrate:
    """Every catalog model passes its own calibration, deterministically."""

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_model_passes(self, name):
        report = _calibrate(name)
        assert report.ok, report.format_report()

    def test_catalog_names(self):
        assert model_names() == sorted(MODELS)
        assert set(MODELS) == {
            "metro-mixed",
            "metro-iot-reattach",
            "metro-paging",
            "metro-midnight-tau",
        }

    def test_every_class_procedure_gets_a_ks_verdict(self):
        """ISSUE headline: KS per procedure and device class — enveloped
        processes via the de-modulated gaps, constant-rate ones direct."""
        report = _calibrate("metro-mixed")
        ks_names = {c.name for c in report.checks if c.kind == "ks"}
        assert ks_names == {
            "smartphone/service_request/demodulated",
            "smartphone/tau",
            "iot-sensor/service_request",
            "iot-sensor/tau",
            "iot-tracker/service_request",
        }
        for c in report.checks:
            if c.kind == "ks":
                assert c.p_value is not None and c.p_value > DEFAULT_ALPHA, c.row()

    def test_envelope_rate_check_present_and_tight(self):
        report = _calibrate("metro-mixed")
        rate = _check(report, "smartphone/service_request/envelope-rate")
        assert rate.kind == "rate" and rate.passed
        assert rate.statistic < 0.10  # pinned seed sits well inside rtol

    def test_storm_checks_cover_size_intensity_shape(self):
        report = _calibrate("metro-iot-reattach")
        for storm in ("sensor-reattach", "tracker-reattach"):
            size = _check(report, "storm/%s/size" % storm)
            assert size.passed and size.kind == "count"
            intensity = _check(report, "storm/%s/intensity" % storm)
            assert intensity.passed
            assert intensity.statistic >= MIN_BURST_INTENSITY
            shape = _check(report, "storm/%s/shape" % storm)
            assert shape.passed and shape.kind == "ks"
            chi2 = _check(report, "storm/%s/shape-chi2" % storm)
            assert chi2.passed and chi2.kind == "chi2"

    def test_deterministic_across_runs(self):
        a, b = _calibrate("metro-iot-reattach"), _calibrate("metro-iot-reattach")
        assert [(c.name, c.statistic, c.p_value) for c in a.checks] == [
            (c.name, c.statistic, c.p_value) for c in b.checks
        ]

    def test_report_formatting(self):
        report = _calibrate("metro-mixed")
        text = report.format_report()
        assert "metro-mixed" in text and "-> ok" in text
        assert report.failed() == []

    def test_min_samples_guard(self):
        """Too little data is a failed check, not a silent pass."""
        report = calibrate_model(
            get_model("metro-mixed"), n_ue=50, duration_s=1.0, seed=SEED
        )
        starved = [
            c for c in report.checks if c.kind == "ks" and c.p_value is None
        ]
        assert starved and not any(c.passed for c in starved)
        assert all("%d" % MIN_KS_SAMPLES in c.detail for c in starved)


# --------------------------------------------------------------- mutation


class TestMutationsFail:
    """A mis-parameterized emitter must fail the correct model's claims."""

    def _failing(self, report, name):
        check = _check(report, name)
        assert not check.passed, "mutation survived: %s" % check.row()
        return check

    def test_wrong_lognormal_sigma(self):
        mutant = _mutate_process(
            get_model("metro-mixed"), "smartphone", 0, sigma=0.5
        )
        report = _calibrate("metro-mixed", emit_model=mutant)
        check = self._failing(report, "smartphone/service_request/demodulated")
        assert check.p_value < REJECT_P

    def test_wrong_mean(self):
        mutant = _mutate_process(
            get_model("metro-mixed"), "iot-sensor", 0,
            mean_interarrival_s=120.0,
        )
        report = _calibrate("metro-mixed", emit_model=mutant)
        check = self._failing(report, "iot-sensor/service_request")
        assert check.p_value < REJECT_P

    def test_wrong_distribution_family(self):
        mutant = _mutate_process(
            get_model("metro-mixed"), "smartphone", 0, dist="exponential"
        )
        report = _calibrate("metro-mixed", emit_model=mutant)
        check = self._failing(report, "smartphone/service_request/demodulated")
        assert check.p_value < REJECT_P

    def test_flattened_envelope(self):
        """Emitting without the diurnal envelope misses the segment rates."""
        mutant = _mutate_process(
            get_model("metro-mixed"), "smartphone", 0, envelope=""
        )
        report = _calibrate("metro-mixed", emit_model=mutant)
        self._failing(report, "smartphone/service_request/envelope-rate")

    def test_wrong_storm_participation(self):
        mutant = _mutate_storm(
            get_model("metro-iot-reattach"), "sensor-reattach",
            participation=0.30,
        )
        report = _calibrate("metro-iot-reattach", emit_model=mutant)
        self._failing(report, "storm/sensor-reattach/size")

    def test_wrong_storm_shape(self):
        mutant = _mutate_storm(
            get_model("metro-midnight-tau"), "midnight-tau", shape="expdecay"
        )
        report = _calibrate("metro-midnight-tau", emit_model=mutant)
        check = self._failing(report, "storm/midnight-tau/shape")
        assert check.p_value < REJECT_P
        chi2 = self._failing(report, "storm/midnight-tau/shape-chi2")
        assert chi2.p_value < REJECT_P

    def test_missing_storm(self):
        """An emitter that never fires the storm fails the size claim."""
        base = get_model("metro-paging")
        mutant = dataclasses.replace(base, storms=())
        report = _calibrate("metro-paging", emit_model=mutant)
        check = self._failing(report, "storm/paging-wave/size")
        assert check.statistic == 0.0

    def test_mutant_report_not_ok(self):
        mutant = _mutate_process(
            get_model("metro-mixed"), "smartphone", 0, sigma=0.5
        )
        report = _calibrate("metro-mixed", emit_model=mutant)
        assert not report.ok


class TestClassRanges:
    def test_partition_is_contiguous_and_total(self):
        from repro.traffic.models import class_ranges

        model = get_model("metro-mixed")
        for n in (1, 7, 300, 997, 20000):
            ranges = class_ranges(model, n)
            lo = 0
            for cls in model.classes:  # declaration order, last absorbs
                a, b = ranges[cls.name]
                assert a == lo and b >= a
                lo = b
            assert lo == n

    def test_empty_population_rejected(self):
        from repro.traffic.models import class_ranges

        with pytest.raises(ValueError):
            class_ranges(get_model("metro-mixed"), 0)


class TestStormSpecValidation:
    def test_window_must_fit(self):
        with pytest.raises(ValueError):
            StormSpec(
                name="x", procedure="tau", device_class="c",
                trigger_frac=0.9, window_frac=0.2, participation=0.5,
            )

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            StormSpec(
                name="x", procedure="tau", device_class="c",
                trigger_frac=0.1, window_frac=0.2, participation=0.5,
                shape="gaussian",
            )
