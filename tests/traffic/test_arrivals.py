"""Tests for arrival processes."""

import random

import pytest

from repro.traffic import bursty_arrivals, poisson_arrivals, uniform_arrivals


class TestUniform:
    def test_count_matches_rate_times_duration(self):
        times = list(uniform_arrivals(100.0, 1.0))
        assert len(times) == 100

    def test_evenly_spaced(self):
        times = list(uniform_arrivals(10.0, 1.0))
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.1) for g in gaps)

    def test_start_offset(self):
        times = list(uniform_arrivals(10.0, 0.5, start_s=2.0))
        assert times[0] == pytest.approx(2.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            list(uniform_arrivals(0, 1.0))
        with pytest.raises(ValueError):
            list(uniform_arrivals(10, -1.0))

    def test_zero_duration_empty(self):
        assert list(uniform_arrivals(10.0, 0.0)) == []


class TestPoisson:
    def test_mean_rate_approximately_right(self):
        rng = random.Random(1)
        times = list(poisson_arrivals(1000.0, 2.0, rng))
        assert 1700 < len(times) < 2300

    def test_all_within_window(self):
        rng = random.Random(2)
        times = list(poisson_arrivals(100.0, 1.0, rng, start_s=5.0))
        assert all(5.0 <= t < 6.0 for t in times)

    def test_strictly_increasing(self):
        rng = random.Random(3)
        times = list(poisson_arrivals(500.0, 1.0, rng))
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_deterministic_given_seed(self):
        a = list(poisson_arrivals(100.0, 1.0, random.Random(7)))
        b = list(poisson_arrivals(100.0, 1.0, random.Random(7)))
        assert a == b

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            list(poisson_arrivals(0, 1.0, random.Random(1)))


class TestBursty:
    def test_all_devices_inside_window(self):
        rng = random.Random(1)
        times = list(bursty_arrivals(500, 0.02, rng))
        assert len(times) == 500
        assert all(0 <= t <= 0.02 for t in times)

    def test_sorted_within_wave(self):
        rng = random.Random(2)
        times = list(bursty_arrivals(100, 0.02, rng))
        assert times == sorted(times)

    def test_multiple_waves_spaced(self):
        rng = random.Random(3)
        times = list(bursty_arrivals(100, 0.01, rng, waves=2, wave_gap_s=1.0))
        assert len(times) == 100
        first_wave = [t for t in times if t <= 0.01]
        second_wave = [t for t in times if t >= 1.01]
        assert len(first_wave) + len(second_wave) == 100
        assert len(first_wave) == 50

    def test_remainder_devices_distributed(self):
        rng = random.Random(4)
        times = list(bursty_arrivals(101, 0.01, rng, waves=2, wave_gap_s=1.0))
        assert len(times) == 101

    def test_invalid_args(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            list(bursty_arrivals(0, 0.01, rng))
        with pytest.raises(ValueError):
            list(bursty_arrivals(10, 0, rng))
        with pytest.raises(ValueError):
            list(bursty_arrivals(10, 0.01, rng, waves=0))


# ---------------------------------------------------------- modulation


class TestRateEnvelope:
    def _diurnal(self, duration=100.0):
        from repro.traffic import RateEnvelope

        return RateEnvelope(
            duration, ((0.0, 0.6), (0.25, 1.5), (0.5, 1.2), (0.75, 0.7))
        )

    def test_validation(self):
        from repro.traffic import RateEnvelope

        with pytest.raises(ValueError):
            RateEnvelope(0.0, ((0.0, 1.0),))
        with pytest.raises(ValueError):
            RateEnvelope(1.0, ())
        with pytest.raises(ValueError):
            RateEnvelope(1.0, ((0.1, 1.0),))  # must start at 0
        with pytest.raises(ValueError):
            RateEnvelope(1.0, ((0.0, 1.0), (0.5, 2.0), (0.5, 3.0)))
        with pytest.raises(ValueError):
            RateEnvelope(1.0, ((0.0, 1.0), (1.0, 2.0)))  # frac >= 1
        with pytest.raises(ValueError):
            RateEnvelope(1.0, ((0.0, -0.1),))

    def test_segments_and_multiplier_at(self):
        env = self._diurnal(100.0)
        assert env.segments() == [
            (0.0, 25.0, 0.6),
            (25.0, 50.0, 1.5),
            (50.0, 75.0, 1.2),
            (75.0, 100.0, 0.7),
        ]
        assert env.multiplier_at(0.0) == 0.6
        assert env.multiplier_at(25.0) == 1.5
        assert env.multiplier_at(99.9) == 0.7

    def test_mean_multiplier_rate_preserving(self):
        assert self._diurnal().mean_multiplier() == pytest.approx(1.0)

    def test_advance_inverts_op_time(self):
        env = self._diurnal(100.0)
        for t in (0.0, 10.0, 25.0, 40.0, 74.9, 99.0):
            assert env.advance(0.0, env.op_time(t)) == pytest.approx(t)

    def test_advance_exhausts_to_inf(self):
        env = self._diurnal(100.0)
        assert env.advance(0.0, env.op_time(100.0) + 1e-9) == float("inf")

    def test_zero_multiplier_segment_is_skipped_exactly(self):
        from repro.traffic import RateEnvelope

        env = RateEnvelope(10.0, ((0.0, 1.0), (0.4, 0.0), (0.6, 2.0)))
        # 4 op-seconds fill [0, 4); the next instant jumps the dead zone
        assert env.advance(0.0, 4.0) == pytest.approx(4.0)
        assert env.advance(0.0, 4.0 + 1e-6) == pytest.approx(6.0 + 5e-7)
        assert env.op_time(6.0) == pytest.approx(4.0)


class TestModulated:
    def _stream(self, envelope=None, duration=200.0, seed=7, rate=2.0):
        from repro.traffic import modulated_arrivals

        rng = random.Random(seed)
        return list(
            modulated_arrivals(
                lambda r: r.expovariate(rate), duration, rng, envelope
            )
        )

    def test_without_envelope_is_plain_renewal(self):
        from repro.traffic import poisson_arrivals

        times = self._stream()
        want = list(poisson_arrivals(2.0, 200.0, random.Random(7)))
        assert times == pytest.approx(want)

    def test_zero_rate_stream_yields_no_events(self):
        from repro.traffic import modulated_arrivals

        out = list(
            modulated_arrivals(
                lambda r: float("inf"), 100.0, random.Random(1)
            )
        )
        assert out == []

    def test_breakpoints_no_duplicates_no_disorder(self):
        from repro.traffic import RateEnvelope

        env = RateEnvelope(
            50.0, ((0.0, 0.5), (0.2, 3.0), (0.4, 0.0), (0.6, 2.0), (0.8, 1.0))
        )
        times = self._stream(env, duration=50.0, rate=20.0)
        assert len(times) > 500
        assert all(b > a for a, b in zip(times, times[1:])), (
            "duplicate or out-of-order timestamps across breakpoints"
        )
        assert all(0.0 <= t < 50.0 for t in times)

    def test_dead_segment_emits_nothing(self):
        from repro.traffic import RateEnvelope

        env = RateEnvelope(50.0, ((0.0, 1.0), (0.4, 0.0), (0.6, 1.0)))
        times = self._stream(env, duration=50.0, rate=20.0)
        assert times, "live segments must still emit"
        assert not [t for t in times if 20.0 <= t < 30.0], (
            "zero-multiplier segment emitted arrivals"
        )

    def test_negative_gap_rejected(self):
        from repro.traffic import modulated_arrivals

        with pytest.raises(ValueError, match="negative"):
            list(
                modulated_arrivals(lambda r: -1.0, 10.0, random.Random(1))
            )


class TestCompound:
    def test_burst_size_one_degenerates_to_poisson(self):
        from repro.traffic import compound_arrivals, poisson_arrivals

        got = list(compound_arrivals(5.0, 30.0, random.Random(3)))
        want = list(poisson_arrivals(5.0, 30.0, random.Random(3)))
        assert got == pytest.approx(want)

    def test_burst_size_multiplies_arrivals(self):
        from repro.traffic import compound_arrivals

        triggers = list(compound_arrivals(5.0, 30.0, random.Random(3)))
        bursts = list(
            compound_arrivals(5.0, 30.0, random.Random(3), burst_size=4)
        )
        assert len(bursts) == 4 * len(triggers)

    def test_jittered_bursts_sorted_and_clipped(self):
        from repro.traffic import compound_arrivals

        times = list(
            compound_arrivals(
                2.0, 10.0, random.Random(9), burst_size=8, jitter_s=1.5
            )
        )
        assert times, "bursts must fire"
        assert all(0.0 <= t < 10.0 for t in times)

    def test_invalid_args(self):
        from repro.traffic import compound_arrivals

        with pytest.raises(ValueError):
            list(compound_arrivals(1.0, 1.0, random.Random(1), burst_size=0))
        with pytest.raises(ValueError):
            list(compound_arrivals(1.0, 1.0, random.Random(1), jitter_s=-1))
