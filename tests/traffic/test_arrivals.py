"""Tests for arrival processes."""

import random

import pytest

from repro.traffic import bursty_arrivals, poisson_arrivals, uniform_arrivals


class TestUniform:
    def test_count_matches_rate_times_duration(self):
        times = list(uniform_arrivals(100.0, 1.0))
        assert len(times) == 100

    def test_evenly_spaced(self):
        times = list(uniform_arrivals(10.0, 1.0))
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.1) for g in gaps)

    def test_start_offset(self):
        times = list(uniform_arrivals(10.0, 0.5, start_s=2.0))
        assert times[0] == pytest.approx(2.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            list(uniform_arrivals(0, 1.0))
        with pytest.raises(ValueError):
            list(uniform_arrivals(10, -1.0))

    def test_zero_duration_empty(self):
        assert list(uniform_arrivals(10.0, 0.0)) == []


class TestPoisson:
    def test_mean_rate_approximately_right(self):
        rng = random.Random(1)
        times = list(poisson_arrivals(1000.0, 2.0, rng))
        assert 1700 < len(times) < 2300

    def test_all_within_window(self):
        rng = random.Random(2)
        times = list(poisson_arrivals(100.0, 1.0, rng, start_s=5.0))
        assert all(5.0 <= t < 6.0 for t in times)

    def test_strictly_increasing(self):
        rng = random.Random(3)
        times = list(poisson_arrivals(500.0, 1.0, rng))
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_deterministic_given_seed(self):
        a = list(poisson_arrivals(100.0, 1.0, random.Random(7)))
        b = list(poisson_arrivals(100.0, 1.0, random.Random(7)))
        assert a == b

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            list(poisson_arrivals(0, 1.0, random.Random(1)))


class TestBursty:
    def test_all_devices_inside_window(self):
        rng = random.Random(1)
        times = list(bursty_arrivals(500, 0.02, rng))
        assert len(times) == 500
        assert all(0 <= t <= 0.02 for t in times)

    def test_sorted_within_wave(self):
        rng = random.Random(2)
        times = list(bursty_arrivals(100, 0.02, rng))
        assert times == sorted(times)

    def test_multiple_waves_spaced(self):
        rng = random.Random(3)
        times = list(bursty_arrivals(100, 0.01, rng, waves=2, wave_gap_s=1.0))
        assert len(times) == 100
        first_wave = [t for t in times if t <= 0.01]
        second_wave = [t for t in times if t >= 1.01]
        assert len(first_wave) + len(second_wave) == 100
        assert len(first_wave) == 50

    def test_remainder_devices_distributed(self):
        rng = random.Random(4)
        times = list(bursty_arrivals(101, 0.01, rng, waves=2, wave_gap_s=1.0))
        assert len(times) == 101

    def test_invalid_args(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            list(bursty_arrivals(0, 0.01, rng))
        with pytest.raises(ValueError):
            list(bursty_arrivals(10, 0, rng))
        with pytest.raises(ValueError):
            list(bursty_arrivals(10, 0.01, rng, waves=0))
