"""Unit tests for the stdlib statistics layer behind calibration.

The KS and chi-square implementations are validated against published
critical values and scipy-computed references (hard-coded — the
container ships no scipy), plus the numerical branches: the gamma
series below ``a + 1``, the Lentz continued fraction above it, and the
Kolmogorov-series tail.
"""

import math
import random

import pytest

from repro.traffic.stats import (
    bin_counts,
    chi_square_pvalue,
    chi_square_statistic,
    chi_square_test,
    ks_pvalue,
    ks_statistic,
    ks_test,
    normal_cdf,
)


def _uniform_cdf(x):
    return min(1.0, max(0.0, x))


class TestKS:
    def test_statistic_exact_small_case(self):
        # F_n steps by 0.25 per sample; vs the uniform CDF the largest
        # gap is 0.3, just left of x=0.2 (F=0.5 empirical vs 0.2)
        samples = [0.1, 0.2, 0.7, 0.9]
        assert ks_statistic(samples, _uniform_cdf) == pytest.approx(0.3)

    def test_statistic_perfect_fit_small(self):
        samples = [(i + 0.5) / 100 for i in range(100)]
        assert ks_statistic(samples, _uniform_cdf) == pytest.approx(0.005)

    def test_pvalue_matches_published_critical_value(self):
        # the 5% asymptotic critical value is D = 1.358 / sqrt(n)
        n = 1000
        d = 1.358 / (math.sqrt(n) + 0.12 + 0.11 / math.sqrt(n))
        assert ks_pvalue(d, n) == pytest.approx(0.05, rel=0.01)

    def test_pvalue_limits(self):
        assert ks_pvalue(0.0, 100) == 1.0
        assert ks_pvalue(0.9, 100) < 1e-12

    def test_uniform_samples_pass_exponential_fail(self):
        rng = random.Random(5)
        samples = [rng.random() for _ in range(2000)]
        _d, p_good = ks_test(samples, _uniform_cdf)
        assert p_good > 0.01
        exp_cdf = lambda x: 1.0 - math.exp(-x)  # noqa: E731
        _d, p_bad = ks_test(samples, exp_cdf)
        assert p_bad < 1e-10

    def test_rejects_empty_and_bad_cdf(self):
        with pytest.raises(ValueError):
            ks_statistic([], _uniform_cdf)
        with pytest.raises(ValueError):
            ks_statistic([1.0], lambda x: 2.0)
        with pytest.raises(ValueError):
            ks_pvalue(0.1, 0)


class TestChiSquare:
    def test_statistic_by_hand(self):
        assert chi_square_statistic([8, 12], [10, 10]) == pytest.approx(0.8)

    def test_pvalue_published_quantiles(self):
        # chi-square upper-tail quantiles: P(X^2 >= q) = 0.05
        for dof, q in ((1, 3.841), (5, 11.070), (10, 18.307)):
            assert chi_square_pvalue(q, dof) == pytest.approx(0.05, rel=1e-3)

    def test_pvalue_covers_both_gamma_branches(self):
        # x < a+1 -> series; x >= a+1 -> continued fraction
        assert chi_square_pvalue(1.0, 10) == pytest.approx(0.9998, rel=1e-3)
        assert chi_square_pvalue(40.0, 10) == pytest.approx(1.695e-5, rel=1e-2)

    def test_zero_statistic_is_certain(self):
        assert chi_square_pvalue(0.0, 3) == 1.0

    def test_test_wrapper_dof(self):
        stat, p = chi_square_test([10, 10, 10], [10.0, 10.0, 10.0])
        assert stat == 0.0 and p == 1.0
        with pytest.raises(ValueError):
            chi_square_test([1, 2], [1.5, 1.5], ddof=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_square_statistic([1], [1, 2])
        with pytest.raises(ValueError):
            chi_square_statistic([], [])
        with pytest.raises(ValueError):
            chi_square_statistic([1.0], [0.0])
        with pytest.raises(ValueError):
            chi_square_pvalue(-1.0, 3)
        with pytest.raises(ValueError):
            chi_square_pvalue(1.0, 0)


class TestHelpers:
    def test_normal_cdf_known_points(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)
        assert normal_cdf(1.96) == pytest.approx(0.975, abs=1e-4)
        assert normal_cdf(-1.96) == pytest.approx(0.025, abs=1e-4)

    def test_bin_counts_half_open(self):
        edges = [0.0, 1.0, 2.0, 3.0]
        # 1.0 lands in [1,2); 3.0 falls off the right edge; -1 off the left
        counts = bin_counts([0.5, 1.0, 1.5, 2.999, 3.0, -1.0], edges)
        assert counts == [1, 2, 1]

    def test_bin_counts_needs_two_edges(self):
        with pytest.raises(ValueError):
            bin_counts([1.0], [0.0])
