"""Tests for the workload driver."""

import pytest

from repro.core import ControlPlaneConfig, Deployment
from repro.sim import Simulator
from repro.traffic import TraceConfig, TraceRecord, WorkloadDriver, generate_trace


@pytest.fixture
def dep():
    sim = Simulator()
    return Deployment.build_grid(sim, ControlPlaneConfig.neutrino())


class TestPool:
    def test_build_pool_bootstraps(self, dep):
        driver = WorkloadDriver(dep)
        pool = driver.build_pool(8)
        assert len(pool) == 8
        assert all(ue.attached for ue in pool)

    def test_pool_spreads_over_bss(self, dep):
        driver = WorkloadDriver(dep)
        pool = driver.build_pool(8)
        assert len({ue.bs_name for ue in pool}) > 1

    def test_pool_size_validated(self, dep):
        with pytest.raises(ValueError):
            WorkloadDriver(dep).build_pool(0)

    def test_pool_grows_when_all_busy(self, dep):
        driver = WorkloadDriver(dep)
        driver.build_pool(2)
        for ue in driver._pool:
            ue.busy = True
        grown = driver._take_free_ue(sorted(dep.bss))
        assert grown not in (None,)
        assert len(driver._pool) == 3


class TestScheduling:
    def test_attach_arrivals_create_fresh_ues(self, dep):
        driver = WorkloadDriver(dep)
        n = driver.schedule_attaches([0.0, 0.001, 0.002])
        assert n == 3
        dep.sim.run(until=0.5)
        assert driver.completed() == 3
        assert dep.pct["attach"].count == 3

    def test_procedure_arrivals_use_pool(self, dep):
        driver = WorkloadDriver(dep)
        driver.build_pool(4)
        driver.schedule_procedures("service_request", [0.0, 0.001])
        dep.sim.run(until=0.5)
        assert driver.completed() == 2
        assert dep.pct["service_request"].count == 2

    def test_handover_arrivals_pick_sibling_targets(self, dep):
        driver = WorkloadDriver(dep)
        driver.build_pool(4, ["bs-20-0"])
        driver.schedule_procedures(
            "handover", [0.0], ["bs-20-0"], driver.sibling_region_target()
        )
        dep.sim.run(until=0.5)
        assert dep.pct["handover"].count == 1

    def test_same_region_target(self, dep):
        driver = WorkloadDriver(dep)
        ue = dep.bootstrap_ue("x", "bs-20-0")
        assert driver.same_region_target()(ue) == "bs-20-1"

    def test_failed_counts(self, dep):
        driver = WorkloadDriver(dep)
        driver.build_pool(1)
        for name in dep.cpfs:
            dep.fail_cpf(name)
        driver.schedule_procedures("service_request", [0.0])
        dep.sim.run(until=1.0)
        assert driver.failed() == 1


class TestTraceReplay:
    def test_trace_replay_executes_records(self, dep):
        trace = generate_trace(
            TraceConfig(n_devices=5, duration_s=0.5, session_interarrival_s=0.2,
                        handover_interarrival_s=None, power_cycle_fraction=0.0, seed=1)
        )
        driver = WorkloadDriver(dep)
        driver.schedule_trace(trace)
        dep.sim.run(until=2.0)
        assert dep.pct["attach"].count == 5

    def test_unattached_ue_record_becomes_attach(self, dep):
        driver = WorkloadDriver(dep)
        driver.schedule_trace([TraceRecord(0.0, "ue-z", "service_request")])
        dep.sim.run(until=1.0)
        assert dep.pct["attach"].count == 1

    def test_busy_ue_arrival_dropped(self, dep):
        driver = WorkloadDriver(dep)
        dep.bootstrap_ue("ue-z", "bs-20-0").busy = True
        driver.schedule_trace([TraceRecord(0.0, "ue-z", "service_request")])
        dep.sim.run(until=1.0)
        assert driver.arrivals_dropped == 1

    def test_handover_without_target_dropped(self, dep):
        driver = WorkloadDriver(dep)
        dep.bootstrap_ue("ue-z", "bs-20-0")
        driver.schedule_trace([TraceRecord(0.0, "ue-z", "handover")])
        dep.sim.run(until=1.0)
        assert driver.arrivals_dropped == 1
