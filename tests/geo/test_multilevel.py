"""Tests for multi-level rings (the paper's footnote-14 extension)."""

import pytest

from repro.core import ControlPlaneConfig, Deployment
from repro.geo import Region, RegionMap
from repro.sim import Simulator


def tree_map(depth=3, cpfs=1):
    suffixes = [""]
    for _ in range(depth - 1):
        suffixes = [s + c for s in suffixes for c in "0123"]
    return RegionMap(
        [
            Region(
                geohash="2" + s,
                cta="cta-2" + s,
                cpfs=["cpf-2%s-%d" % (s, k) for k in range(cpfs)],
                bss=["bs-2%s-0" % s],
            )
            for s in suffixes
        ]
    )


class TestLevelRing:
    def test_level1_is_home_ring(self):
        m = tree_map()
        assert m.level_ring("200", 1).members == m.level1_ring("200").members

    def test_level2_matches_existing_api(self):
        m = tree_map()
        assert m.level_ring("200", 2).members == m.level2_ring("200").members

    def test_level3_spans_everything(self):
        m = tree_map(depth=3)
        ring = m.level_ring("200", 3)
        assert len(ring.members) == 16

    def test_ring_cached(self):
        m = tree_map()
        assert m.level_ring("200", 3) is m.level_ring("201", 3)

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            tree_map().level_ring("200", 0)


class TestSharesLevel:
    def test_level1_is_identity(self):
        m = tree_map()
        assert m.shares_level("200", "200", 1)
        assert not m.shares_level("200", "201", 1)

    def test_level2_groups_quads(self):
        m = tree_map()
        assert m.shares_level("200", "203", 2)
        assert not m.shares_level("200", "210", 2)

    def test_level3_groups_all(self):
        m = tree_map()
        assert m.shares_level("200", "233", 3)

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            tree_map().shares_level("200", "201", 0)


class TestLevel3Placement:
    def test_level3_replicas_still_outside_home(self):
        m = tree_map()
        home = set(m.region("200").cpfs)
        for i in range(30):
            for replica in m.replicas_for("ue-%d" % i, "200", 1, level=3):
                assert replica not in home

    def test_level3_can_cross_level2(self):
        m = tree_map()
        crossed = False
        for i in range(100):
            for replica in m.replicas_for("ue-%d" % i, "200", 1, level=3):
                region = m.region_of_cpf(replica).geohash
                if not m.shares_level("200", region, 2):
                    crossed = True
        assert crossed

    def test_level2_never_crosses_level2(self):
        m = tree_map()
        for i in range(100):
            for replica in m.replicas_for("ue-%d" % i, "200", 1, level=2):
                region = m.region_of_cpf(replica).geohash
                assert m.shares_level("200", region, 2)


class TestDeploymentIntegration:
    def test_build_tree_shapes(self):
        sim = Simulator()
        dep = Deployment.build_tree(sim, ControlPlaneConfig.neutrino(), depth=3)
        assert len(dep.region_map.regions) == 16
        assert len(dep.cpfs) == 16

    def test_build_tree_depth_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Deployment.build_tree(sim, ControlPlaneConfig.neutrino(), depth=1)

    def test_georep_level_config_validated(self):
        with pytest.raises(ValueError):
            ControlPlaneConfig.neutrino(georep_level=1)

    def test_far_hop_selected_across_level2(self):
        sim = Simulator()
        dep = Deployment.build_tree(sim, ControlPlaneConfig.neutrino(), depth=3)
        assert dep.cpf_hop("cpf-200-0", "cpf-200-0") == "cpf_cpf_intra"
        assert dep.cpf_hop("cpf-200-0", "cpf-203-0") == "cpf_cpf_inter"
        assert dep.cpf_hop("cpf-200-0", "cpf-230-0") == "cpf_cpf_far"

    def test_level3_deployment_consistent_under_use(self):
        sim = Simulator()
        dep = Deployment.build_tree(
            sim, ControlPlaneConfig.neutrino(georep_level=3), depth=3
        )
        ue = dep.new_ue("u", "bs-200-0")

        def session():
            yield from ue.execute("attach")
            yield from ue.execute("fast_handover", target_bs="bs-210-0")
            yield from ue.execute("service_request")

        proc = sim.process(session())
        sim.run(until=5.0)
        assert proc.ok
        assert dep.auditor.read_your_writes_held
