"""Tests for the level-1/level-2 region model (paper §4.3)."""

import pytest

from repro.geo import Region, RegionMap


def grid(cpfs_per_region=2):
    return RegionMap(
        [
            Region(
                geohash="2" + c,
                cta="cta-2" + c,
                cpfs=["cpf-2%s-%d" % (c, k) for k in range(cpfs_per_region)],
                bss=["bs-2%s-0" % c, "bs-2%s-1" % c],
            )
            for c in "0123"
        ]
    )


class TestConstruction:
    def test_region_needs_cpfs(self):
        with pytest.raises(ValueError):
            Region(geohash="20", cta="cta", cpfs=[])

    def test_duplicate_regions_rejected(self):
        r = Region(geohash="20", cta="c", cpfs=["x"])
        with pytest.raises(ValueError):
            RegionMap([r, Region(geohash="20", cta="c2", cpfs=["y"])])

    def test_short_geohash_rejected(self):
        with pytest.raises(ValueError):
            RegionMap([Region(geohash="2", cta="c", cpfs=["x"])])

    def test_empty_map_rejected(self):
        with pytest.raises(ValueError):
            RegionMap([])

    def test_bs_in_two_regions_rejected(self):
        with pytest.raises(ValueError):
            RegionMap(
                [
                    Region(geohash="20", cta="a", cpfs=["x"], bss=["bs-1"]),
                    Region(geohash="21", cta="b", cpfs=["y"], bss=["bs-1"]),
                ]
            )


class TestLookups:
    def test_region_of_bs(self):
        m = grid()
        assert m.region_of_bs("bs-21-0").geohash == "21"
        with pytest.raises(KeyError):
            m.region_of_bs("bs-nowhere")

    def test_region_of_cpf(self):
        m = grid()
        assert m.region_of_cpf("cpf-22-1").geohash == "22"
        with pytest.raises(KeyError):
            m.region_of_cpf("cpf-zz")

    def test_level2_groups_siblings(self):
        m = grid()
        assert m.region("20").level2 == "2"
        assert m.shares_level2("20", "23")

    def test_all_cpfs_and_ctas(self):
        m = grid(cpfs_per_region=2)
        assert len(m.all_cpfs()) == 8
        assert len(m.all_ctas()) == 4


class TestRings:
    def test_level1_ring_contains_only_region_cpfs(self):
        m = grid()
        ring = m.level1_ring("20")
        assert set(ring.members) == {"cpf-20-0", "cpf-20-1"}

    def test_level2_ring_contains_all_sibling_cpfs(self):
        m = grid()
        ring = m.level2_ring("20")
        assert len(ring.members) == 8

    def test_primary_is_in_home_region(self):
        m = grid()
        for i in range(50):
            primary = m.primary_for("ue-%d" % i, "21")
            assert primary in m.region("21").cpfs


class TestReplicaPlacement:
    def test_replicas_outside_level1_region(self):
        # §4.3: "N consecutive replicas on a level-2 ring (not included
        # in the level-1 ring)".
        m = grid()
        home = set(m.region("20").cpfs)
        for i in range(50):
            for replica in m.replicas_for("ue-%d" % i, "20", 2):
                assert replica not in home

    def test_replicas_distinct(self):
        m = grid()
        replicas = m.replicas_for("ue-7", "20", 3)
        assert len(set(replicas)) == 3

    def test_replicas_never_include_primary(self):
        m = grid()
        for i in range(50):
            key = "ue-%d" % i
            primary = m.primary_for(key, "22")
            assert primary not in m.replicas_for(key, "22", 2)

    def test_single_region_falls_back_to_level1(self):
        m = RegionMap(
            [Region(geohash="20", cta="c", cpfs=["a", "b", "c3"], bss=["bs"])]
        )
        replicas = m.replicas_for("ue-1", "20", 2)
        assert len(replicas) == 2
        assert m.primary_for("ue-1", "20") not in replicas

    def test_replica_choice_deterministic(self):
        assert grid().replicas_for("ue-9", "21", 2) == grid().replicas_for(
            "ue-9", "21", 2
        )

    def test_lone_region_under_fresh_parent_still_gets_backups(self):
        """Reproducer for the latent edge case PR 5 fixed.

        Region "30" is the only child of level-2 parent "3", so its
        level-2 ring holds nothing but its own CPFs and the §4.3 rule
        ("successors excluding the level-1 members") used to yield [] —
        silently no geo-replication, every handover into the region a
        slow-path recovery.  The fix escalates through wider rings, so
        the backups must land on the "2" parent's CPFs.
        """
        m = RegionMap(
            [
                Region(
                    geohash="2" + c,
                    cta="cta-2" + c,
                    cpfs=["cpf-2%s-0" % c],
                    bss=["bs-2%s-0" % c],
                )
                for c in "01"
            ]
            + [
                Region(
                    geohash="30",
                    cta="cta-30",
                    cpfs=["cpf-30-0", "cpf-30-1"],
                    bss=["bs-30-0"],
                )
            ]
        )
        replicas = m.replicas_for("ue-1", "30", 2)
        assert replicas, "lone region under a fresh parent lost geo-replication"
        assert set(replicas) == {"cpf-20-0", "cpf-21-0"}
        assert not set(replicas) & set(m.region("30").cpfs)


class TestMembershipChurn:
    def test_add_region_leaves_other_level1_lookups_alone(self):
        m = grid()
        keys = ["ue-%d" % i for i in range(64)]
        before = {
            (k, rh): m.primary_for(k, rh) for k in keys for rh in ("20", "21")
        }
        m.add_region(Region(geohash="30", cta="cta-30", cpfs=["cpf-30-0"], bss=[]))
        after = {
            (k, rh): m.primary_for(k, rh) for k in keys for rh in ("20", "21")
        }
        assert before == after

    def test_sibling_join_moves_replicas_only_onto_joiner(self):
        # The minimal-movement property the ring-churn scenario leans on:
        # a sibling region joining parent "2" may steal level-2 replica
        # slots, but keys never shuffle between pre-existing CPFs.
        m = RegionMap(
            [
                Region(
                    geohash="2" + c,
                    cta="cta-2" + c,
                    cpfs=["cpf-2%s-%d" % (c, k) for k in range(2)],
                    bss=["bs-2%s-0" % c],
                )
                for c in "012"
            ]
        )
        keys = ["ue-%d" % i for i in range(128)]
        before = {k: m.replicas_for(k, "20", 2) for k in keys}
        joiner = Region(
            geohash="23",
            cta="cta-23",
            cpfs=["cpf-23-0", "cpf-23-1"],
            bss=["bs-23-0"],
        )
        m.add_region(joiner)
        moved = 0
        for k in keys:
            after = m.replicas_for(k, "20", 2)
            gained = set(after) - set(before[k])
            assert gained <= set(joiner.cpfs), (
                "key %s re-placed onto pre-existing CPFs %s" % (k, gained)
            )
            if gained:
                moved += 1
        assert 0 < moved < len(keys)

    def test_remove_region_restores_prior_placement(self):
        m = grid()
        keys = ["ue-%d" % i for i in range(64)]
        before = {k: m.replicas_for(k, "20", 2) for k in keys}
        removed = m.remove_region("23")
        m.add_region(removed)
        assert {k: m.replicas_for(k, "20", 2) for k in keys} == before

    def test_cannot_remove_last_region(self):
        m = RegionMap([Region(geohash="20", cta="c", cpfs=["a"], bss=[])])
        with pytest.raises(ValueError):
            m.remove_region("20")

    def test_remove_unknown_region_raises(self):
        with pytest.raises(KeyError):
            grid().remove_region("99")

    def test_removed_region_bs_lookup_fails(self):
        m = grid()
        m.remove_region("23")
        with pytest.raises(KeyError):
            m.region_of_bs("bs-23-0")
