"""Tests for the 2-bits-per-character geo-hash (paper §5)."""

import pytest
from hypothesis import given, strategies as st

from repro.geo import geohash


class TestEncode:
    def test_known_quadrants_single_char(self):
        # char = lon bit (2) | lat bit (1)
        assert geohash.encode(45, 90, 1) == "3"    # NE
        assert geohash.encode(45, -90, 1) == "1"   # NW
        assert geohash.encode(-45, 90, 1) == "2"   # SE
        assert geohash.encode(-45, -90, 1) == "0"  # SW

    def test_precision_grows_string(self):
        assert len(geohash.encode(10, 20, 6)) == 6

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            geohash.encode(91, 0, 3)
        with pytest.raises(ValueError):
            geohash.encode(0, 181, 3)
        with pytest.raises(ValueError):
            geohash.encode(0, 0, 0)

    def test_prefix_property(self):
        # Higher precision refines, never relocates.
        full = geohash.encode(31.47, 74.41, 8)  # Lahore
        assert geohash.encode(31.47, 74.41, 4) == full[:4]


class TestDecode:
    def test_bounds_contain_original_point(self):
        gh = geohash.encode(31.47, 74.41, 6)
        (lat_lo, lat_hi), (lon_lo, lon_hi) = geohash.decode_bounds(gh)
        assert lat_lo <= 31.47 <= lat_hi
        assert lon_lo <= 74.41 <= lon_hi

    def test_invalid_characters_rejected(self):
        with pytest.raises(ValueError):
            geohash.decode_bounds("0z")
        with pytest.raises(ValueError):
            geohash.decode_bounds("")

    def test_center_inside_bounds(self):
        gh = geohash.encode(-10, 100, 5)
        lat, lon = geohash.center(gh)
        (lat_lo, lat_hi), (lon_lo, lon_hi) = geohash.decode_bounds(gh)
        assert lat_lo < lat < lat_hi
        assert lon_lo < lon < lon_hi


class TestRegionAlgebra:
    def test_parent_is_prefix(self):
        assert geohash.parent("2103") == "210"

    def test_parent_of_single_char_rejected(self):
        with pytest.raises(ValueError):
            geohash.parent("2")

    def test_parent_region_is_four_times_larger(self):
        # §5: "four-fold increase/decrease in the region size with each
        # character".
        gh = geohash.encode(10, 10, 5)
        (clat, clon) = (
            geohash.decode_bounds(gh)[0],
            geohash.decode_bounds(gh)[1],
        )
        (plat, plon) = (
            geohash.decode_bounds(geohash.parent(gh))[0],
            geohash.decode_bounds(geohash.parent(gh))[1],
        )
        child_area = (clat[1] - clat[0]) * (clon[1] - clon[0])
        parent_area = (plat[1] - plat[0]) * (plon[1] - plon[0])
        assert parent_area == pytest.approx(4 * child_area)

    def test_covers(self):
        assert geohash.covers("21", "2103")
        assert not geohash.covers("22", "2103")

    def test_siblings_share_parent(self):
        sibs = geohash.neighbors_at_level("2103")
        assert len(sibs) == 4
        assert "2103" in sibs
        assert all(s.startswith("210") for s in sibs)

    def test_siblings_need_two_chars(self):
        with pytest.raises(ValueError):
            geohash.neighbors_at_level("2")


@given(
    lat=st.floats(-90, 90, allow_nan=False),
    lon=st.floats(-180, 180, allow_nan=False),
    precision=st.integers(1, 12),
)
def test_encode_decode_containment_property(lat, lon, precision):
    gh = geohash.encode(lat, lon, precision)
    assert len(gh) == precision
    (lat_lo, lat_hi), (lon_lo, lon_hi) = geohash.decode_bounds(gh)
    assert lat_lo <= lat <= lat_hi
    assert lon_lo <= lon <= lon_hi


@given(
    lat=st.floats(-90, 90, allow_nan=False),
    lon=st.floats(-180, 180, allow_nan=False),
)
def test_parent_always_covers_child_property(lat, lon):
    child = geohash.encode(lat, lon, 6)
    assert geohash.covers(geohash.parent(child), child)
