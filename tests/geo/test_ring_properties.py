"""Property-test campaign over the consistent-hash ring and the
level-1/level-2 placement derived from it (paper §4.3).

Three invariant families, each over randomized member sets and keys:

* **Monotonicity** — adding a member moves keys only *onto* it;
  removing one moves only the keys it owned.  This is what bounds
  replica re-placement work during ring churn, so a deliberately broken
  ring (rehash-everything) must *fail* the property — the mutation
  check below proves the test has teeth.
* **Balance** — with the default 64 vnodes no member owns a grossly
  disproportionate key share.
* **Level-1 / level-2 agreement** — for any UE and region, the level-1
  primary is a CPF of that region, the level-2 backups never overlap
  the level-1 members, and both answers are stable across RegionMap
  instances.

``regression_rings/`` pins previously-computed ownership maps the way
``tests/core/regression_schedules/`` pins chaos schedules: any change
to the hash, vnode expansion, or ring walk shows up as a diff against
the pinned owners, never as a silent re-placement storm in production
topologies.
"""

import json
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import HashRing, Region, RegionMap
from repro.geo.ring import _hash64

_SETTINGS = dict(deadline=None)


def members_strategy(min_size=2, max_size=8):
    return st.lists(
        st.sampled_from(["cpf-%d" % i for i in range(12)]),
        min_size=min_size,
        max_size=max_size,
        unique=True,
    )


keys_strategy = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
    ),
    min_size=1,
    max_size=40,
    unique=True,
)


# ---------------------------------------------------------------------------
# Monotonicity
# ---------------------------------------------------------------------------


@given(members=members_strategy(), keys=keys_strategy, joiner=st.integers(0, 3))
@settings(max_examples=80, **_SETTINGS)
def test_add_moves_keys_only_onto_the_new_member(members, keys, joiner):
    new = "cpf-new-%d" % joiner
    ring = HashRing(members)
    before = {k: ring.lookup(k) for k in keys}
    ring.add(new)
    for key in keys:
        after = ring.lookup(key)
        assert after == before[key] or after == new, (
            "key %r moved %r -> %r, not onto the joining member %r"
            % (key, before[key], after, new)
        )


@given(members=members_strategy(min_size=3), keys=keys_strategy, victim=st.integers(0, 11))
@settings(max_examples=80, **_SETTINGS)
def test_remove_moves_only_the_removed_members_keys(members, keys, victim):
    ring = HashRing(members)
    gone = members[victim % len(members)]
    before = {k: ring.lookup(k) for k in keys}
    ring.remove(gone)
    for key in keys:
        after = ring.lookup(key)
        if before[key] == gone:
            assert after != gone
        else:
            assert after == before[key], (
                "key %r owned by surviving %r re-placed to %r when %r left"
                % (key, before[key], after, gone)
            )


@given(members=members_strategy(min_size=3), keys=keys_strategy)
@settings(max_examples=40, **_SETTINGS)
def test_add_then_remove_is_identity(members, keys):
    ring = HashRing(members)
    before = {k: ring.lookup(k) for k in keys}
    ring.add("cpf-transient")
    ring.remove("cpf-transient")
    assert {k: ring.lookup(k) for k in keys} == before


class _BrokenRing(HashRing):
    """Deliberately non-consistent 'ring': owner = hash(key) % len.

    Every membership change re-shuffles nearly the whole key space —
    exactly the behaviour consistent hashing exists to avoid.  The
    mutation check asserts the monotonicity property *rejects* this
    implementation, proving the tests above can actually fail.
    """

    def lookup(self, key):
        ordered = sorted(self._members)
        if not ordered:
            raise LookupError("empty ring")
        return ordered[_hash64(key) % len(ordered)]


def test_monotonicity_rejects_broken_ring():
    members = ["cpf-%d" % i for i in range(5)]
    keys = ["ue-%04d" % i for i in range(300)]
    ring = _BrokenRing(members)
    before = {k: ring.lookup(k) for k in keys}
    ring.add("cpf-new")
    illegally_moved = [
        k
        for k in keys
        if ring.lookup(k) != before[k] and ring.lookup(k) != "cpf-new"
    ]
    assert illegally_moved, (
        "the mutation check lost its teeth: a rehash-everything ring "
        "passed the monotonicity property"
    )


# ---------------------------------------------------------------------------
# Balance
# ---------------------------------------------------------------------------


@given(n_members=st.integers(2, 8), seed=st.integers(0, 2**16))
@settings(max_examples=25, **_SETTINGS)
def test_no_member_owns_a_grossly_disproportionate_share(n_members, seed):
    ring = HashRing(["cpf-%d-%d" % (seed, i) for i in range(n_members)])
    counts = ring.spread("ue-%d-%d" % (seed, i) for i in range(2000))
    assert all(count > 0 for count in counts.values())
    fair = 2000 / n_members
    assert max(counts.values()) <= 3.5 * fair


# ---------------------------------------------------------------------------
# Level-1 / level-2 agreement
# ---------------------------------------------------------------------------


def _random_map(parents, l1_per_l2, cpfs_per_region):
    regions = []
    for parent in parents:
        for child in "0123"[:l1_per_l2]:
            gh = parent + child
            regions.append(
                Region(
                    geohash=gh,
                    cta="cta-" + gh,
                    cpfs=["cpf-%s-%d" % (gh, k) for k in range(cpfs_per_region)],
                    bss=["bs-%s-0" % gh],
                )
            )
    return RegionMap(regions)


region_maps = st.builds(
    _random_map,
    parents=st.lists(
        st.sampled_from(["20", "21", "22", "23", "30", "31"]),
        min_size=1,
        max_size=4,
        unique=True,
    ),
    l1_per_l2=st.integers(1, 4),
    cpfs_per_region=st.integers(1, 3),
)


@given(rmap=region_maps, ue=st.text(min_size=1, max_size=10))
@settings(max_examples=60, **_SETTINGS)
def test_primary_is_always_a_level1_member(rmap, ue):
    for region_hash, region in rmap.regions.items():
        assert rmap.primary_for(ue, region_hash) in region.cpfs


@given(rmap=region_maps, ue=st.text(min_size=1, max_size=10), n=st.integers(1, 3))
@settings(max_examples=60, **_SETTINGS)
def test_replicas_never_overlap_level1_members(rmap, ue, n):
    for region_hash, region in rmap.regions.items():
        replicas = rmap.replicas_for(ue, region_hash, n, level=2)
        overlap = set(replicas) & set(region.cpfs)
        # when enough foreign CPFs exist to cover n, backups must all be
        # outside the level-1 ring; with less foreign capacity the
        # documented fallback backfills from level-1 (minus the primary)
        foreign = sum(
            len(r.cpfs) for h, r in rmap.regions.items() if h != region_hash
        )
        if foreign >= n:
            assert not overlap, (region_hash, replicas)
        assert len(replicas) == len(set(replicas))
        assert rmap.primary_for(ue, region_hash) not in replicas


@given(rmap=region_maps, ue=st.text(min_size=1, max_size=10))
@settings(max_examples=40, **_SETTINGS)
def test_placement_stable_across_instances(rmap, ue):
    clone = RegionMap(
        [
            Region(r.geohash, r.cta, list(r.cpfs), list(r.bss))
            for r in rmap.regions.values()
        ]
    )
    for region_hash in rmap.regions:
        assert rmap.primary_for(ue, region_hash) == clone.primary_for(
            ue, region_hash
        )
        assert rmap.replicas_for(ue, region_hash, 2, level=2) == clone.replicas_for(
            ue, region_hash, 2, level=2
        )


@given(
    rmap=region_maps,
    ue=st.text(min_size=1, max_size=10),
    n=st.integers(1, 8),
)
@settings(max_examples=40, **_SETTINGS)
def test_replica_escalation_finds_capacity_when_it_exists(rmap, ue, n):
    """If the deployment holds enough non-level-1 CPFs anywhere, asking
    for n backups returns min(n, capacity) — a lone region under a fresh
    level-2 parent must escalate rather than return [] (the latent bug
    PR 5 fixed; see test_regions.py for the minimal reproducer)."""
    for region_hash, region in rmap.regions.items():
        foreign = sum(
            len(r.cpfs) for h, r in rmap.regions.items() if h != region_hash
        )
        replicas = rmap.replicas_for(ue, region_hash, n, level=2)
        assert len(replicas) >= min(n, foreign) if foreign else True


# ---------------------------------------------------------------------------
# Pinned regression corpus (the ring analogue of regression_schedules/)
# ---------------------------------------------------------------------------

CORPUS_DIR = pathlib.Path(__file__).parent / "regression_rings"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def test_ring_corpus_present():
    assert len(CORPUS) >= 3, "regression_rings corpus went missing"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_pinned_ownership_map(path):
    entry = json.loads(path.read_text())
    if entry["kind"] == "ring":
        ring = HashRing(entry["members"], vnodes=entry["vnodes"])
        for key, owner in entry["owners"].items():
            assert ring.lookup(key) == owner, (
                "pinned owner of %r changed: ring hashing is no longer "
                "stable (every deployed placement would move)" % key
            )
    elif entry["kind"] == "regionmap":
        regions = [
            Region(
                geohash=tile,
                cta="cta-" + tile,
                cpfs=["cpf-%s-%d" % (tile, k) for k in range(entry["cpfs_per_region"])],
                bss=["bs-%s-0" % tile],
            )
            for tile in entry["tiles"]
        ]
        rmap = RegionMap(regions, vnodes=entry["vnodes"])
        for ue, pinned in entry["placements"].items():
            assert rmap.primary_for(ue, pinned["region"]) == pinned["primary"]
            assert (
                rmap.replicas_for(
                    ue, pinned["region"], entry["n_backups"], level=2
                )
                == pinned["backups"]
            )
    else:  # pragma: no cover - corpus files are hand-managed
        raise AssertionError("unknown corpus kind %r" % entry["kind"])
