"""Tests for the consistent hash ring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import HashRing


def make_ring(n=4, vnodes=64):
    return HashRing(["cpf-%d" % i for i in range(n)], vnodes=vnodes)


class TestBasics:
    def test_membership(self):
        ring = make_ring(3)
        assert len(ring) == 3
        assert "cpf-0" in ring
        assert "cpf-9" not in ring

    def test_duplicate_add_rejected(self):
        ring = make_ring(2)
        with pytest.raises(ValueError):
            ring.add("cpf-0")

    def test_remove_unknown_rejected(self):
        ring = make_ring(2)
        with pytest.raises(KeyError):
            ring.remove("cpf-9")

    def test_empty_ring_lookup_rejected(self):
        with pytest.raises(LookupError):
            HashRing().lookup("key")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_lookup_deterministic(self):
        ring = make_ring()
        assert ring.lookup("ue-1") == ring.lookup("ue-1")

    def test_lookup_stable_across_instances(self):
        assert make_ring().lookup("ue-1") == make_ring().lookup("ue-1")


class TestDistribution:
    def test_keys_spread_over_members(self):
        ring = make_ring(4, vnodes=128)
        counts = ring.spread("ue-%d" % i for i in range(4000))
        assert all(count > 0 for count in counts.values())
        # no member owns more than half with 128 vnodes
        assert max(counts.values()) < 2000

    def test_removal_only_moves_removed_keys(self):
        # The defining consistent-hashing property: removing one member
        # relocates only the keys it owned.
        ring = make_ring(4)
        keys = ["ue-%d" % i for i in range(500)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove("cpf-2")
        for key in keys:
            after = ring.lookup(key)
            if before[key] != "cpf-2":
                assert after == before[key]
            else:
                assert after != "cpf-2"

    def test_addition_only_steals_keys(self):
        ring = make_ring(3)
        keys = ["ue-%d" % i for i in range(500)]
        before = {k: ring.lookup(k) for k in keys}
        ring.add("cpf-new")
        moved = sum(1 for k in keys if ring.lookup(k) != before[k])
        for key in keys:
            after = ring.lookup(key)
            assert after == before[key] or after == "cpf-new"
        assert 0 < moved < len(keys)


class TestSuccessors:
    def test_first_successor_is_lookup(self):
        ring = make_ring(4)
        assert ring.successors("ue-1", 1)[0] == ring.lookup("ue-1")

    def test_distinct_members(self):
        ring = make_ring(4)
        succ = ring.successors("ue-1", 4)
        assert len(succ) == 4
        assert len(set(succ)) == 4

    def test_n_larger_than_ring_truncates(self):
        ring = make_ring(2)
        assert len(ring.successors("ue-1", 5)) == 2

    def test_exclusion_filters_before_counting(self):
        ring = make_ring(4)
        succ = ring.successors("ue-1", 2, exclude=["cpf-0", "cpf-1"])
        assert set(succ) <= {"cpf-2", "cpf-3"}
        assert len(succ) == 2

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            make_ring().successors("k", -1)

    def test_zero_n_empty(self):
        assert make_ring().successors("k", 0) == []


@given(key=st.text(min_size=1, max_size=16))
@settings(max_examples=50, deadline=None)
def test_lookup_in_members_property(key):
    ring = make_ring(5)
    assert ring.lookup(key) in ring.members


@given(key=st.text(min_size=1, max_size=16), n=st.integers(1, 5))
@settings(max_examples=50, deadline=None)
def test_successors_prefix_property(key, n):
    # successors(k, n) is always a prefix of successors(k, n+1).
    ring = make_ring(6)
    shorter = ring.successors(key, n)
    longer = ring.successors(key, n + 1)
    assert longer[: len(shorter)] == shorter
