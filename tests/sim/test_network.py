"""Tests for links and the latency model."""

import random

import pytest

from repro.sim import LatencyModel, Link, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestLink:
    def test_delivery_after_latency(self, sim):
        link = Link(sim, latency_s=0.01)
        seen = []
        link.send(100, seen.append, "msg")
        sim.run()
        assert seen == ["msg"]
        assert sim.now == pytest.approx(0.01)

    def test_bandwidth_adds_transmission_delay(self, sim):
        link = Link(sim, latency_s=0.0, bandwidth_bps=8000.0)  # 1 kB/s
        assert link.delay(500) == pytest.approx(0.5)

    def test_zero_bytes_is_pure_propagation(self, sim):
        link = Link(sim, latency_s=0.002, bandwidth_bps=1e6)
        assert link.delay(0) == pytest.approx(0.002)

    def test_negative_latency_rejected(self, sim):
        with pytest.raises(ValueError):
            Link(sim, latency_s=-1.0)

    def test_jitter_requires_rng(self, sim):
        with pytest.raises(ValueError):
            Link(sim, latency_s=0.01, jitter_frac=0.1)

    def test_jitter_bounded(self, sim):
        link = Link(sim, 0.01, jitter_frac=0.5, rng=random.Random(1))
        for _ in range(100):
            d = link.delay(0)
            assert 0.01 <= d <= 0.015

    def test_fifo_preserved_under_jitter(self, sim):
        link = Link(sim, 0.01, jitter_frac=1.0, rng=random.Random(2))
        seen = []
        for i in range(20):
            link.send(0, seen.append, i)
        sim.run()
        assert seen == list(range(20))

    def test_down_link_drops_messages(self, sim):
        link = Link(sim, 0.01)
        link.up = False
        seen = []
        assert link.send(0, seen.append, "lost") is False
        sim.run()
        assert seen == []

    def test_byte_and_message_counters(self, sim):
        link = Link(sim, 0.01)
        link.send(100, lambda: None)
        link.send(200, lambda: None)
        assert link.messages_sent == 2
        assert link.bytes_sent == 300


class TestLatencyModel:
    def test_defaults_validate(self):
        model = LatencyModel()
        model.validate()

    def test_negative_hop_rejected(self):
        model = LatencyModel(ue_bs=-1.0)
        with pytest.raises(ValueError):
            model.validate()

    def test_link_factory_uses_hop_latency(self, sim):
        model = LatencyModel(ue_bs=0.123)
        link = model.link(sim, "ue_bs")
        assert link.latency_s == pytest.approx(0.123)

    def test_unknown_hop_rejected(self, sim):
        with pytest.raises(KeyError):
            LatencyModel().link(sim, "nonexistent_hop")

    def test_edge_wan_is_slower_than_testbed(self):
        testbed = LatencyModel()
        wan = LatencyModel.edge_wan()
        assert wan.ue_bs > testbed.ue_bs
        assert wan.cpf_cpf_inter > testbed.cpf_cpf_inter

    def test_inter_region_is_most_expensive_edge_hop(self):
        model = LatencyModel()
        assert model.cpf_cpf_inter > model.cpf_cpf_intra
        assert model.cpf_cpf_inter > model.cta_cpf
