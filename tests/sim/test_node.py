"""Tests for the queued-server node model and failure injection."""

import pytest

from repro.sim import Interrupt, NodeFailed, Server, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("a")
        ev = store.get()
        sim.run()
        assert ev.value == "a"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        ev = store.get()
        assert not ev.fired
        store.put("x")
        sim.run()
        assert ev.value == "x"

    def test_fifo_order(self, sim):
        store = Store(sim)
        for item in (1, 2, 3):
            store.put(item)
        values = [store.get(), store.get(), store.get()]
        sim.run()
        assert [v.value for v in values] == [1, 2, 3]

    def test_waiting_getters_fifo(self, sim):
        store = Store(sim)
        g1, g2 = store.get(), store.get()
        store.put("first")
        store.put("second")
        sim.run()
        assert g1.value == "first"
        assert g2.value == "second"

    def test_drain_empties_and_returns(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.drain() == [1, 2]
        assert len(store) == 0


class TestServer:
    def test_single_job_service_time(self, sim):
        server = Server(sim, cores=1)
        done = server.submit(0.5, value="job")
        sim.run()
        assert done.value == "job"
        assert sim.now == 0.5

    def test_fifo_queueing_single_core(self, sim):
        server = Server(sim, cores=1)
        first = server.submit(1.0, value="first")
        second = server.submit(1.0, value="second")
        completion = {}
        first.add_callback(lambda ev: completion.__setitem__("first", sim.now))
        second.add_callback(lambda ev: completion.__setitem__("second", sim.now))
        sim.run()
        assert completion["first"] == pytest.approx(1.0)
        assert completion["second"] == pytest.approx(2.0)

    def test_two_cores_run_in_parallel(self, sim):
        server = Server(sim, cores=2)
        server.submit(1.0)
        server.submit(1.0)
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_invalid_cores_rejected(self, sim):
        with pytest.raises(ValueError):
            Server(sim, cores=0)

    def test_negative_service_rejected(self, sim):
        server = Server(sim)
        with pytest.raises(ValueError):
            server.submit(-1.0)

    def test_callback_invoked_with_value(self, sim):
        server = Server(sim)
        got = []
        server.submit(0.1, value=99, callback=got.append)
        sim.run()
        assert got == [99]

    def test_utilization_counts_busy_time(self, sim):
        server = Server(sim, cores=1)
        server.submit(1.0)
        sim.run(until=2.0)
        assert server.utilization() == pytest.approx(0.5)

    def test_jobs_done_counter(self, sim):
        server = Server(sim)
        for _ in range(5):
            server.submit(0.1)
        sim.run()
        assert server.jobs_done == 5

    def test_queue_depth_probe_sees_peak(self, sim):
        server = Server(sim, cores=1)
        for _ in range(4):
            server.submit(1.0)
        sim.run()
        assert server.queue_depth.max_value == 4


class TestServerFailure:
    def test_submit_to_failed_server_fails_event(self, sim):
        server = Server(sim, name="cpf-x")
        server.fail()
        done = server.submit(0.1)
        assert done.fired and not done.ok
        with pytest.raises(NodeFailed):
            _ = done.value

    def test_failure_drops_queued_jobs(self, sim):
        server = Server(sim, cores=1)
        in_service = server.submit(1.0)
        queued = server.submit(1.0)
        sim.schedule(0.5, server.fail)
        sim.run()
        assert not in_service.ok
        assert not queued.ok
        assert server.jobs_dropped == 2

    def test_failure_is_idempotent(self, sim):
        server = Server(sim)
        server.fail()
        server.fail()  # must not raise
        assert not server.up

    def test_recover_restores_service(self, sim):
        server = Server(sim)
        server.fail()
        server.recover()
        done = server.submit(0.2, value="back")
        sim.run()
        assert done.value == "back"

    def test_recover_when_up_is_noop(self, sim):
        server = Server(sim)
        server.recover()
        assert server.up

    def test_jobs_completed_before_failure_stay_ok(self, sim):
        server = Server(sim, cores=1)
        early = server.submit(0.1, value="early")
        sim.schedule(0.5, server.fail)
        sim.run()
        assert early.value == "early"

    def test_exception_carries_node_name(self, sim):
        server = Server(sim, name="cpf-7")
        server.fail()
        done = server.submit(0.1)
        try:
            _ = done.value
        except NodeFailed as exc:
            assert exc.node_name == "cpf-7"
        else:
            pytest.fail("expected NodeFailed")


class TestServerReserve:
    """Express-reservation path used by the batched cohort lane."""

    def test_reserve_idle_returns_completion_time(self, sim):
        server = Server(sim)
        end = server.reserve(0.25)
        assert end == 0.25
        assert server._reserved_until == 0.25
        assert server.jobs_done == 1
        assert server.busy_time == 0.25

    def test_reserve_chains_behind_reservation(self, sim):
        server = Server(sim)
        first = server.reserve(0.25)
        second = server.reserve(0.1)
        assert second == first + 0.1

    def test_stale_reservation_expires(self, sim):
        server = Server(sim)
        server.reserve(0.25)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert server.reserve(0.1) == sim.now + 0.1

    def test_reserve_at_future_instant(self, sim):
        # Booking "as of" a future quiet instant must equal the booking a
        # caller would make after the clock actually reached it.
        server = Server(sim)
        end = server.reserve(0.2, at=1.5)
        assert end == 1.5 + 0.2
        assert server._reserved_until == end
        # a later at= booking chains behind it, not behind `at`
        assert server.reserve(0.1, at=1.6) == end + 0.1

    def test_submit_behind_reservation_routes_analytically(self, sim):
        # A queued job arriving while an express chain holds the server
        # completes exactly when a worker would have started it: at the
        # end of the chain.
        server = Server(sim, cores=1)
        chain_end = server.reserve(0.5)
        done = server.submit(0.25, value="queued")
        sim.run()
        assert done.value == "queued"
        assert sim.now == chain_end + 0.25
        assert server.jobs_done == 2

    def test_submit_behind_reservation_is_fifo(self, sim):
        server = Server(sim, cores=1)
        server.reserve(0.5)
        order = []
        server.submit(0.25, value="a", callback=lambda v: order.append((sim.now, v)))
        server.submit(0.125, value="b", callback=lambda v: order.append((sim.now, v)))
        sim.run()
        assert order == [(0.75, "a"), (0.875, "b")]

    def test_fail_drops_analytic_jobs_and_reservation(self, sim):
        server = Server(sim, cores=1)
        server.reserve(0.5)
        done = server.submit(0.25)
        sim.schedule(0.1, server.fail)
        sim.run()
        assert not done.ok
        assert server.jobs_dropped == 1
        assert server._reserved_until == 0.0
        assert server._analytic == []
