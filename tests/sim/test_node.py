"""Tests for the queued-server node model and failure injection."""

import pytest

from repro.sim import Interrupt, NodeFailed, Server, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("a")
        ev = store.get()
        sim.run()
        assert ev.value == "a"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        ev = store.get()
        assert not ev.fired
        store.put("x")
        sim.run()
        assert ev.value == "x"

    def test_fifo_order(self, sim):
        store = Store(sim)
        for item in (1, 2, 3):
            store.put(item)
        values = [store.get(), store.get(), store.get()]
        sim.run()
        assert [v.value for v in values] == [1, 2, 3]

    def test_waiting_getters_fifo(self, sim):
        store = Store(sim)
        g1, g2 = store.get(), store.get()
        store.put("first")
        store.put("second")
        sim.run()
        assert g1.value == "first"
        assert g2.value == "second"

    def test_drain_empties_and_returns(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.drain() == [1, 2]
        assert len(store) == 0


class TestServer:
    def test_single_job_service_time(self, sim):
        server = Server(sim, cores=1)
        done = server.submit(0.5, value="job")
        sim.run()
        assert done.value == "job"
        assert sim.now == 0.5

    def test_fifo_queueing_single_core(self, sim):
        server = Server(sim, cores=1)
        first = server.submit(1.0, value="first")
        second = server.submit(1.0, value="second")
        completion = {}
        first.add_callback(lambda ev: completion.__setitem__("first", sim.now))
        second.add_callback(lambda ev: completion.__setitem__("second", sim.now))
        sim.run()
        assert completion["first"] == pytest.approx(1.0)
        assert completion["second"] == pytest.approx(2.0)

    def test_two_cores_run_in_parallel(self, sim):
        server = Server(sim, cores=2)
        server.submit(1.0)
        server.submit(1.0)
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_invalid_cores_rejected(self, sim):
        with pytest.raises(ValueError):
            Server(sim, cores=0)

    def test_negative_service_rejected(self, sim):
        server = Server(sim)
        with pytest.raises(ValueError):
            server.submit(-1.0)

    def test_callback_invoked_with_value(self, sim):
        server = Server(sim)
        got = []
        server.submit(0.1, value=99, callback=got.append)
        sim.run()
        assert got == [99]

    def test_utilization_counts_busy_time(self, sim):
        server = Server(sim, cores=1)
        server.submit(1.0)
        sim.run(until=2.0)
        assert server.utilization() == pytest.approx(0.5)

    def test_jobs_done_counter(self, sim):
        server = Server(sim)
        for _ in range(5):
            server.submit(0.1)
        sim.run()
        assert server.jobs_done == 5

    def test_queue_depth_probe_sees_peak(self, sim):
        server = Server(sim, cores=1)
        for _ in range(4):
            server.submit(1.0)
        sim.run()
        assert server.queue_depth.max_value == 4


class TestServerFailure:
    def test_submit_to_failed_server_fails_event(self, sim):
        server = Server(sim, name="cpf-x")
        server.fail()
        done = server.submit(0.1)
        assert done.fired and not done.ok
        with pytest.raises(NodeFailed):
            _ = done.value

    def test_failure_drops_queued_jobs(self, sim):
        server = Server(sim, cores=1)
        in_service = server.submit(1.0)
        queued = server.submit(1.0)
        sim.schedule(0.5, server.fail)
        sim.run()
        assert not in_service.ok
        assert not queued.ok
        assert server.jobs_dropped == 2

    def test_failure_is_idempotent(self, sim):
        server = Server(sim)
        server.fail()
        server.fail()  # must not raise
        assert not server.up

    def test_recover_restores_service(self, sim):
        server = Server(sim)
        server.fail()
        server.recover()
        done = server.submit(0.2, value="back")
        sim.run()
        assert done.value == "back"

    def test_recover_when_up_is_noop(self, sim):
        server = Server(sim)
        server.recover()
        assert server.up

    def test_jobs_completed_before_failure_stay_ok(self, sim):
        server = Server(sim, cores=1)
        early = server.submit(0.1, value="early")
        sim.schedule(0.5, server.fail)
        sim.run()
        assert early.value == "early"

    def test_exception_carries_node_name(self, sim):
        server = Server(sim, name="cpf-7")
        server.fail()
        done = server.submit(0.1)
        try:
            _ = done.value
        except NodeFailed as exc:
            assert exc.node_name == "cpf-7"
        else:
            pytest.fail("expected NodeFailed")
