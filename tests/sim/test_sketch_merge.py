"""Deterministic QuantileSketch merge: the sharded-run combine rules.

The sharded engine (``repro.scale.shard``) measures per-(region,
procedure) latency in each worker and combines the sketches in the
coordinator, so the merged ``region_pct_ms`` table must be a
deterministic function of the per-shard sketches:

* while every input still holds its raw spill buffer the merge is
  **exact** — bit-equal to observing the concatenated stream — and
  stays exact under hierarchical (merge-of-merges) combining;
* once any input crossed its spill bound the merge is a weighted
  **mixture** of P² marker atoms: count/sum/min/max stay exact, the
  quantile estimates stay within P²-class error of the single-stream
  estimator, and the result is read-only.
"""

import random

import pytest

from repro.sim.monitor import (
    P2Quantile,
    QuantileSketch,
    _weighted_percentile,
)

QS = (0.5, 0.95, 0.99)


def sketch_of(values, spill=0, name="s"):
    s = QuantileSketch(name, qs=QS, spill=spill)
    for v in values:
        s.observe(v)
    return s


def exact_pcts(values):
    single = sketch_of(values, spill=len(values))
    return {q: single.quantile(q) for q in QS}


# ------------------------------------------------------------- exact regime


def test_merge_in_spill_regime_equals_single_stream_exactly():
    rng = random.Random(7)
    parts = [[rng.expovariate(1.0) for _ in range(40)] for _ in range(4)]
    merged = QuantileSketch.merge(
        [sketch_of(p, spill=64) for p in parts], name="m"
    )
    combined = [v for p in parts for v in p]
    want = exact_pcts(combined)
    assert merged.count == len(combined)
    for q in QS:
        assert merged.quantile(q) == want[q], "spill-regime merge not exact"
    # still a live raw-buffer sketch: observing and re-merging stay legal
    merged.observe(0.123)
    assert merged.count == len(combined) + 1


def test_merge_is_input_order_independent():
    rng = random.Random(13)
    parts = [[rng.random() for _ in range(30)] for _ in range(3)]
    sketches = [sketch_of(p, spill=64) for p in parts]
    forward = QuantileSketch.merge(sketches, name="m")
    backward = QuantileSketch.merge(list(reversed(sketches)), name="m")
    for q in QS:
        assert forward.quantile(q) == backward.quantile(q)
    assert forward.summary() == backward.summary()


def test_hierarchical_merge_stays_exact_in_spill_regime():
    rng = random.Random(23)
    parts = [[rng.expovariate(2.0) for _ in range(25)] for _ in range(4)]
    pairwise = [
        QuantileSketch.merge([sketch_of(parts[0], 64), sketch_of(parts[1], 64)]),
        QuantileSketch.merge([sketch_of(parts[2], 64), sketch_of(parts[3], 64)]),
    ]
    tree = QuantileSketch.merge(pairwise, name="root")
    flat = exact_pcts([v for p in parts for v in p])
    for q in QS:
        assert tree.quantile(q) == flat[q], "merge-of-merges lost exactness"


def test_merge_skips_none_inputs():
    s = sketch_of([1.0, 2.0, 3.0], spill=8)
    merged = QuantileSketch.merge([None, s, None])
    assert merged.count == 3
    assert merged.quantile(0.5) == 2.0


def test_merge_of_nothing_is_empty():
    merged = QuantileSketch.merge([None, None])
    assert merged.count == 0
    assert merged.quantile(0.5) is None


# ----------------------------------------------------------- mixture regime


def test_mixture_merge_scalars_exact_estimates_close():
    rng = random.Random(42)
    parts = [[rng.expovariate(1.0) for _ in range(400)] for _ in range(4)]
    combined = [v for p in parts for v in p]
    # spill=0: every input is pure-P2, forcing the mixture path
    merged = QuantileSketch.merge([sketch_of(p, spill=0) for p in parts])
    assert merged.count == len(combined)
    assert merged.summary()["mean"] == pytest.approx(
        sum(combined) / len(combined)
    )
    lo, hi = min(combined), max(combined)
    truth = exact_pcts(combined)
    for q in QS:
        got = merged.quantile(q)
        assert lo <= got <= hi
        # P²-class accuracy: within 10% of the spread of the true value
        assert abs(got - truth[q]) <= 0.10 * (hi - lo) + 1e-9, (
            "q=%s: mixture %.4f vs exact %.4f" % (q, got, truth[q])
        )


def test_mixture_merge_is_read_only():
    parts = [[float(i) for i in range(50)], [float(i) for i in range(50, 90)]]
    merged = QuantileSketch.merge([sketch_of(p, spill=0) for p in parts])
    with pytest.raises(TypeError):
        merged.observe(1.0)
    # but it can itself be merged again (atoms survive freezing)
    again = QuantileSketch.merge([merged, sketch_of([7.0], spill=4)])
    assert again.count == 91


def test_mixed_raw_and_p2_inputs_use_mixture_path():
    raw = sketch_of([5.0] * 10, spill=32)          # still raw
    dense = sketch_of([1.0] * 990, spill=0)        # pure P2
    merged = QuantileSketch.merge([raw, dense])
    assert merged.count == 1000
    # the tiny raw tail cannot drag the median off the dominant mass
    assert merged.quantile(0.5) == pytest.approx(1.0, abs=0.05)
    with pytest.raises(TypeError):
        merged.observe(0.0)


def test_merge_rejects_mismatched_quantile_sets():
    a = QuantileSketch("a", qs=(0.5, 0.95))
    b = QuantileSketch("b", qs=(0.5, 0.99))
    a.observe(1.0)
    b.observe(2.0)
    with pytest.raises(ValueError):
        QuantileSketch.merge([a, b])


# ------------------------------------------------------------------- atoms


def test_p2_atoms_weights_telescope_to_count():
    est = P2Quantile(0.95)
    rng = random.Random(3)
    for _ in range(500):
        est.observe(rng.random())
    atoms = est.atoms()
    assert len(atoms) == 5
    assert sum(w for _v, w in atoms) == pytest.approx(500.0)


def test_p2_atoms_small_buffer_is_exact_samples():
    est = P2Quantile(0.5)
    for v in (3.0, 1.0, 2.0):
        est.observe(v)
    # the P2 startup buffer is kept sorted; weights are all 1
    assert est.atoms() == [(1.0, 1.0), (2.0, 1.0), (3.0, 1.0)]


def test_weighted_percentile_interpolates_and_clamps():
    atoms = [(10.0, 1.0), (20.0, 1.0)]
    assert _weighted_percentile(atoms, 0.5) == pytest.approx(15.0)
    assert _weighted_percentile(atoms, 0.0001) == 10.0  # clamp low
    assert _weighted_percentile(atoms, 0.9999) == 20.0  # clamp high
    assert _weighted_percentile([], 0.5) is None
    # zero-weight atoms are ignored
    assert _weighted_percentile([(99.0, 0.0), (4.0, 2.0)], 0.5) == 4.0
