"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Interrupt, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_in_time_order(self, sim):
        seen = []
        sim.schedule(2.0, seen.append, "b")
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(3.0, seen.append, "c")
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_preserves_insertion_order(self, sim):
        seen = []
        for tag in "abc":
            sim.schedule(1.0, seen.append, tag)
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_run_until_stops_clock_exactly(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run(until=2.5)
        assert sim.now == 2.5

    def test_run_until_executes_events_at_boundary(self, sim):
        seen = []
        sim.schedule(2.5, seen.append, "x")
        sim.run(until=2.5)
        assert seen == ["x"]

    def test_run_until_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_run_until_now_is_noop(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run(until=2.0)
        assert sim.run(until=2.0) == 2.0  # boundary run: no error, no advance
        assert sim.now == 2.0
        assert len(sim._heap) == 1  # the t=5 event is untouched

    def test_run_until_now_executes_events_due_now(self, sim):
        seen = []
        sim.run(until=3.0)
        sim.schedule(0.0, seen.append, "due-now")
        sim.run(until=3.0)
        assert seen == ["due-now"]
        assert sim.now == 3.0

    def test_run_drains_everything_without_until(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert sim.now == 10.0

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_events_scheduled_during_run_execute(self, sim):
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, seen.append, "nested"))
        sim.run()
        assert seen == ["nested"]
        assert sim.now == 2.0


class TestEvent:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.fired and ev.ok
        assert ev.value == 42

    def test_double_fire_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)
        with pytest.raises(RuntimeError):
            ev.fail(RuntimeError("boom"))

    def test_value_before_fire_rejected(self, sim):
        ev = sim.event()
        with pytest.raises(RuntimeError):
            _ = ev.value

    def test_fail_raises_on_value_access(self, sim):
        ev = sim.event()
        ev.fail(KeyError("k"))
        assert ev.fired and not ev.ok
        with pytest.raises(KeyError):
            _ = ev.value

    def test_callback_on_already_fired_event_runs_async(self, sim):
        ev = sim.event()
        ev.succeed("v")
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == []  # not synchronous
        sim.run()
        assert seen == ["v"]

    def test_callback_on_already_failed_event_receives_exception(self, sim):
        # Audit: a late callback on a fired-*failed* event must still be
        # delivered with the event (and its stored exception) as the
        # argument, exactly like a waiter registered before the fail —
        # otherwise the exception is silently dropped.
        ev = sim.event("doomed")
        boom = KeyError("boom")
        ev.fail(boom)
        seen = []
        ev.add_callback(lambda e: seen.append((e.ok, e._exc)))
        assert seen == []  # not synchronous, same as the success path
        sim.run()
        assert seen == [(False, boom)]

    def test_late_callbacks_on_failed_event_interleave_in_seq_order(self, sim):
        # Fired-failed + late-callback interleaving: callbacks added
        # before the fail, after the fail, and from *inside* a delivered
        # callback all run, in registration (seq) order.
        ev = sim.event()
        order = []
        ev.add_callback(lambda e: order.append("early"))
        ev.fail(RuntimeError("boom"))
        ev.add_callback(lambda e: order.append("late"))

        def nested(e):
            order.append("outer")
            e.add_callback(lambda e2: order.append("inner"))

        ev.add_callback(nested)
        sim.run()
        assert order == ["early", "late", "outer", "inner"]

    def test_process_joining_already_failed_event_gets_exception(self, sim):
        ev = sim.event()
        ev.fail(KeyError("gone"))
        sim.run()  # the fail's dispatch (no waiters) fully drains
        caught = []

        def proc():
            try:
                yield ev
            except KeyError as err:
                caught.append(err)
            return "handled"

        result = sim.run_process(proc())
        assert result == "handled"
        assert len(caught) == 1

    def test_timeout_fires_at_right_time(self, sim):
        ev = sim.timeout(3.5, value="done")
        sim.run()
        assert sim.now == 3.5
        assert ev.value == "done"

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_cancelled_timeout_does_not_fire(self, sim):
        ev = sim.timeout(1.0, value="late")
        ev.cancel()
        sim.run()
        assert not ev.fired
        assert ev.cancelled

    def test_cancelled_timeout_leaves_event_deliverable(self, sim):
        # Regression: _fire used to succeed() a cancelled timeout, so a
        # producer reusing the abandoned event handle afterwards blew up
        # with "event already fired".
        ev = sim.timeout(0.5)
        ev.cancel()
        sim.run()
        ev.succeed("producer-delivery")  # must not raise
        assert ev.value == "producer-delivery"

    def test_timeout_fired_then_cancelled_keeps_value(self, sim):
        ev = sim.timeout(0.5, value="v")
        sim.run()
        ev.cancel()  # cancel after firing is a no-op
        assert ev.ok and ev.value == "v"


class TestCombinators:
    def test_all_of_collects_values_in_order(self, sim):
        events = [sim.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]
        combined = sim.all_of(events)
        sim.run()
        assert combined.value == [3.0, 1.0, 2.0]

    def test_all_of_empty_fires_immediately(self, sim):
        combined = sim.all_of([])
        sim.run()
        assert combined.value == []

    def test_all_of_fails_if_child_fails(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        combined = sim.all_of([good, bad])
        bad.fail(RuntimeError("child"))
        sim.run()
        assert combined.fired and not combined.ok

    def test_any_of_returns_first(self, sim):
        events = [sim.timeout(3.0, value="slow"), sim.timeout(1.0, value="fast")]
        combined = sim.any_of(events)
        sim.run()
        assert combined.value == (1, "fast")

    def test_any_of_requires_children(self, sim):
        with pytest.raises(ValueError):
            sim.any_of([])

    def test_all_of_failure_cancels_pending_children(self, sim):
        # Regression: a failed AllOf abandoned its still-pending
        # children without cancelling them, so producers (queues,
        # stores) kept delivering into events nobody would consume.
        slow = sim.timeout(10.0)
        pending = sim.event("pending-child")
        bad = sim.event("bad-child")
        combined = sim.all_of([slow, pending, bad])
        bad.fail(RuntimeError("boom"))
        sim.run(until=1.0)
        assert combined.fired and not combined.ok
        assert pending.cancelled and not pending.fired
        assert slow.cancelled and not slow.fired
        sim.run()  # the slow timeout's timer pops: must stay unfired
        assert not slow.fired

    def test_all_of_failure_does_not_cancel_fired_children(self, sim):
        done = sim.event()
        done.succeed(1)
        bad = sim.event()
        combined = sim.all_of([done, bad])
        bad.fail(RuntimeError("boom"))
        sim.run()
        assert combined.fired and not combined.ok
        assert done.ok and not done.cancelled

    def test_any_of_failing_child_fails_composite(self, sim):
        slow = sim.timeout(5.0, value="slow")
        bad = sim.event()
        combined = sim.any_of([slow, bad])
        bad.fail(KeyError("first"))
        sim.run(until=1.0)
        assert combined.fired and not combined.ok
        with pytest.raises(KeyError):
            _ = combined.value

    def test_any_of_cancels_losing_children(self, sim):
        # Regression: AnyOf left its losing children pending after the
        # race was decided (unlike AllOf on failure), so producers
        # (queues, stores) could deliver into abandoned events and die
        # with "event already fired".
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(10.0, value="slow")
        pending = sim.event("producer-held")
        combined = sim.any_of([fast, slow, pending])
        sim.run(until=2.0)
        assert combined.value == (0, "fast")
        assert slow.cancelled and not slow.fired
        assert pending.cancelled and not pending.fired
        # A producer following the cancellation protocol now skips the
        # abandoned event instead of delivering into it.
        if not pending.cancelled:
            pending.succeed("too late")
        sim.run()  # the slow timer pops: must stay unfired
        assert not slow.fired

    def test_any_of_failure_cancels_losing_children(self, sim):
        slow = sim.timeout(10.0)
        pending = sim.event()
        bad = sim.event()
        combined = sim.any_of([slow, pending, bad])
        bad.fail(RuntimeError("boom"))
        sim.run(until=1.0)
        assert combined.fired and not combined.ok
        assert slow.cancelled and pending.cancelled
        sim.run()
        assert not slow.fired

    def test_any_of_does_not_cancel_already_fired_children(self, sim):
        # Two children fire in the same instant: the second is already
        # fired when the first's callback wins the race, and a fired
        # event must keep its value for any other waiter holding it.
        first = sim.event()
        second = sim.event()
        combined = sim.any_of([first, second])
        first.succeed("a")
        second.succeed("b")
        sim.run()
        assert combined.value == (0, "a")
        assert second.ok and not second.cancelled
        assert second.value == "b"


class TestProcess:
    def test_process_advances_through_timeouts(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield sim.timeout(1.0)
            trace.append(sim.now)
            yield sim.timeout(2.0)
            trace.append(sim.now)
            return "done"

        p = sim.process(proc())
        sim.run()
        assert trace == [0.0, 1.0, 3.0]
        assert p.value == "done"

    def test_process_receives_event_values(self, sim):
        def proc():
            got = yield sim.timeout(1.0, value="payload")
            return got

        assert sim.run_process(proc()) == "payload"

    def test_process_joining_another(self, sim):
        def child():
            yield sim.timeout(2.0)
            return 7

        def parent():
            result = yield sim.process(child())
            return result * 2

        assert sim.run_process(parent()) == 14

    def test_failed_event_raises_inside_process(self, sim):
        ev = sim.event()

        def proc():
            try:
                yield ev
            except ValueError:
                return "caught"
            return "missed"

        p = sim.process(proc())
        ev.fail(ValueError("x"))
        sim.run()
        assert p.value == "caught"

    def test_uncaught_exception_fails_the_process(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise KeyError("oops")

        p = sim.process(proc())
        sim.run()
        assert p.fired and not p.ok
        with pytest.raises(KeyError):
            _ = p.value

    def test_yielding_non_event_fails_process(self, sim):
        def proc():
            yield 42

        p = sim.process(proc())
        sim.run()
        assert p.fired and not p.ok

    def test_interrupt_raises_at_wait_point(self, sim):
        state = {}

        def proc():
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                state["cause"] = intr.cause
                state["resumed_at"] = sim.now
                return "interrupted"

        p = sim.process(proc())
        sim.schedule(1.0, p.interrupt, "node down")
        sim.run()
        assert p.value == "interrupted"
        assert state["cause"] == "node down"
        assert state["resumed_at"] == pytest.approx(1.0)

    def test_interrupting_finished_process_is_noop(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "ok"

        p = sim.process(proc())
        sim.run()
        p.interrupt("late")  # must not raise
        assert p.value == "ok"

    def test_interrupt_while_waiting_on_already_fired_event(self, sim):
        # The event fires and the interrupt lands in the same scheduler
        # step, with the interrupt delivered first: the process must see
        # the Interrupt, and the event's own (now stale) wakeup must be
        # ignored rather than resuming the process twice.
        ev = sim.event("contested")
        log = []

        def proc():
            try:
                got = yield ev
                log.append(("value", got))
            except Interrupt as intr:
                log.append(("interrupt", intr.cause))
                yield sim.timeout(1.0)
                log.append(("after", sim.now))
            return "done"

        p = sim.process(proc())

        def race():
            p.interrupt("failure")  # queued before the event's dispatch
            ev.succeed("too-late")

        sim.schedule(1.0, race)
        sim.run()
        assert log == [("interrupt", "failure"), ("after", 2.0)]
        assert p.value == "done"

    def test_unhandled_interrupt_fails_process(self, sim):
        def proc():
            yield sim.timeout(100.0)

        p = sim.process(proc())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        assert p.fired and not p.ok

    def test_run_process_requires_completion(self, sim):
        def proc():
            yield sim.timeout(10.0)

        with pytest.raises(RuntimeError):
            sim.run_process(proc(), until=1.0)

    def test_alive_tracks_completion(self, sim):
        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        assert p.alive
        sim.run()
        assert not p.alive

    def test_many_concurrent_processes(self, sim):
        done = []

        def proc(i):
            yield sim.timeout(i * 0.01)
            done.append(i)

        for i in range(100):
            sim.process(proc(i))
        sim.run()
        assert done == sorted(done)
        assert len(done) == 100


class TestScheduleAt:
    """Absolute-time scheduling used by pre-compiled timelines."""

    def test_runs_in_time_order(self, sim):
        seen = []
        sim.schedule_at(2.0, seen.append, "b")
        sim.schedule_at(1.0, seen.append, "a")
        sim.schedule_at(3.0, seen.append, "c")
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_at_now_lands_on_immediate_queue(self, sim):
        # time == now must match schedule(0.0, ...)'s ordering exactly:
        # interleaved zero-delay and at-now callbacks created inside a
        # callback run in insertion order, before the clock advances.
        seen = []

        def fire():
            sim.schedule(0.0, seen.append, "zero-1")
            sim.schedule_at(sim.now, seen.append, "at-now")
            sim.schedule(0.0, seen.append, "zero-2")
            sim.schedule(0.5, seen.append, "later")

        sim.schedule(1.0, fire)
        sim.run()
        assert seen == ["zero-1", "at-now", "zero-2", "later"]

    def test_into_the_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_roundtrips_precomputed_floats_exactly(self, sim):
        # The reason schedule_at exists: now + (t - now) != t in floats.
        # A pre-computed timeline instant must fire at exactly t.
        t = 0.1 + 0.2 + 0.3  # 0.6000000000000001
        fired = []
        sim.schedule(0.1, lambda: sim.schedule_at(t, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [t]

    def test_same_time_preserves_insertion_order(self, sim):
        seen = []
        for tag in "abc":
            sim.schedule_at(1.0, seen.append, tag)
        sim.run()
        assert seen == ["a", "b", "c"]
