"""Tests for deterministic named random streams."""

import pytest

from repro.sim import RngRegistry, stream_seed


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(42).stream("arrivals")
        b = RngRegistry(42).stream("arrivals")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        reg = RngRegistry(42)
        xs = [reg.stream("one").random() for _ in range(5)]
        ys = [reg.stream("two").random() for _ in range(5)]
        assert xs != ys

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("s").random()
        b = RngRegistry(2).stream("s").random()
        assert a != b

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(-1)

    def test_fork_is_independent_of_parent(self):
        parent = RngRegistry(7)
        child = parent.fork("worker")
        assert parent.stream("s").random() != child.stream("s").random()

    def test_fork_reproducible(self):
        a = RngRegistry(7).fork("w").stream("s").random()
        b = RngRegistry(7).fork("w").stream("s").random()
        assert a == b

    def test_stream_seed_is_64_bit(self):
        seed = stream_seed(0, "name")
        assert 0 <= seed < (1 << 64)
