"""Tests for measurement probes: percentiles, tallies, time-weighted."""

import pytest

from repro.sim import Counter, Simulator, Tally, TimeWeighted, percentile, summarize


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_extremes(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100

    def test_matches_numpy_linear_method(self):
        numpy = pytest.importorskip("numpy")
        data = sorted([0.3, 1.7, 2.2, 9.9, 4.4, 0.1])
        for q in (5, 25, 50, 75, 95):
            assert percentile(data, q) == pytest.approx(
                float(numpy.percentile(data, q))
            )

    def test_empty_with_default_returns_default(self):
        # warmup-only windows legitimately produce empty tallies; sweeps
        # pass a default instead of crashing on the first idle point.
        assert percentile([], 50, default=None) is None
        assert percentile([], 99, default=0.0) == 0.0

    def test_default_not_used_when_data_present(self):
        assert percentile([3.0], 50, default=None) == 3.0

    def test_out_of_range_q_still_rejected_with_data(self):
        with pytest.raises(ValueError):
            percentile([1.0], 200, default=None)


class TestTally:
    def test_basic_stats(self):
        tally = Tally("pct")
        for v in (1.0, 2.0, 3.0):
            tally.observe(v)
        assert tally.count == 3
        assert tally.mean == pytest.approx(2.0)
        assert tally.min == 1.0
        assert tally.max == 3.0
        assert tally.median == 2.0

    def test_empty_mean_rejected(self):
        with pytest.raises(ValueError):
            _ = Tally().mean

    def test_summary_keys(self):
        tally = Tally()
        tally.observe(5.0)
        summary = tally.summary(qs=(50, 95))
        assert set(summary) == {"count", "mean", "min", "max", "p50", "p95"}

    def test_summary_empty_has_count_zero(self):
        assert Tally().summary() == {"count": 0.0}

    def test_empty_percentile_is_none(self):
        # the probe contract differs from the module function on purpose:
        # "no observations" is a value, not an error.
        tally = Tally("idle")
        assert tally.percentile(50) is None
        assert tally.percentile(99) is None
        assert tally.median is None

    def test_percentile_after_observations(self):
        tally = Tally()
        for v in (4.0, 1.0, 3.0, 2.0):
            tally.observe(v)
        assert tally.percentile(50) == pytest.approx(2.5)
        assert tally.median == pytest.approx(2.5)
        assert tally.percentile(100) == 4.0

    def test_summarize_multiple(self):
        tallies = {"a": Tally("a"), "b": Tally("b")}
        tallies["a"].observe(1.0)
        out = summarize(tallies, qs=(50,))
        assert out["a"]["count"] == 1.0
        assert out["b"]["count"] == 0.0


class TestCounter:
    def test_incr_and_read(self):
        counter = Counter()
        counter.incr("x")
        counter.incr("x", 4)
        assert counter["x"] == 5
        assert counter["missing"] == 0

    def test_as_dict_snapshot(self):
        counter = Counter()
        counter.incr("a")
        snapshot = counter.as_dict()
        counter.incr("a")
        assert snapshot == {"a": 1}


class TestTimeWeighted:
    def test_max_tracking(self):
        sim = Simulator()
        probe = TimeWeighted(lambda: sim.now)
        sim.schedule(1.0, probe.set, 10)
        sim.schedule(2.0, probe.set, 3)
        sim.run()
        assert probe.max_value == 10
        assert probe.max_time == 1.0

    def test_time_average(self):
        sim = Simulator()
        probe = TimeWeighted(lambda: sim.now)
        sim.schedule(1.0, probe.set, 10.0)
        sim.schedule(2.0, probe.set, 0.0)
        sim.run(until=2.0)
        # 1s at 0 + 1s at 10 over 2s = 5
        assert probe.time_average() == pytest.approx(5.0)

    def test_add_is_relative(self):
        sim = Simulator()
        probe = TimeWeighted(lambda: sim.now, initial=5.0)
        probe.add(3.0)
        probe.add(-2.0)
        assert probe.value == 6.0

    def test_zero_elapsed_average_is_current(self):
        sim = Simulator()
        probe = TimeWeighted(lambda: sim.now, initial=4.0)
        assert probe.time_average() == 4.0


class TestTallySubclassing:
    """Regression tests for the observe-shadowing footgun: Tally binds
    ``observe`` to ``values.append`` per instance for speed, which used
    to silently shadow subclass overrides."""

    def test_base_tally_has_bound_fast_path(self):
        tally = Tally("t")
        assert "observe" in tally.__dict__
        tally.observe(1.0)
        assert tally.values == [1.0]

    def test_override_is_not_shadowed(self):
        class MsTally(Tally):
            def observe(self, value):
                super().observe(value * 1e3)

        tally = MsTally("ms")
        assert "observe" not in tally.__dict__
        tally.observe(0.5)
        assert tally.values == [500.0]
        assert tally.count == 1

    def test_override_without_super_init_does_not_crash(self):
        class Bare(Tally):
            def __init__(self):
                pass

            def observe(self, value):
                super().observe(value)

        tally = Bare()
        tally.observe(2.0)
        assert tally.values == [2.0]


class TestP2Quantile:
    def test_exact_while_buffer_fits(self):
        from repro.sim.monitor import P2Quantile

        est = P2Quantile(0.5)
        for v in [9.0, 1.0, 5.0]:
            est.observe(v)
        assert est.value() == 5.0

    def test_empty_is_none(self):
        from repro.sim.monitor import P2Quantile

        assert P2Quantile(0.9).value() is None

    def test_tracks_exact_percentile_on_uniform_stream(self):
        import random

        from repro.sim.monitor import P2Quantile, percentile

        rng = random.Random(7)
        values = [rng.random() * 100.0 for _ in range(5000)]
        for q in (0.5, 0.95, 0.99):
            est = P2Quantile(q)
            for v in values:
                est.observe(v)
            exact = percentile(sorted(values), q * 100.0)
            assert abs(est.value() - exact) < 3.0, (q, est.value(), exact)

    def test_monotone_stream(self):
        from repro.sim.monitor import P2Quantile

        est = P2Quantile(0.5)
        for v in range(1, 1001):
            est.observe(float(v))
        assert abs(est.value() - 500.0) < 25.0


class TestQuantileSketch:
    def test_exact_moments_and_bounded_memory(self):
        import random

        from repro.sim.monitor import QuantileSketch

        rng = random.Random(3)
        sketch = QuantileSketch("lat")
        values = [rng.expovariate(1.0) for _ in range(20000)]
        for v in values:
            sketch.observe(v)
        assert sketch.count == len(values)
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        assert abs(sketch.mean - sum(values) / len(values)) < 1e-9
        # O(1) state: slots only, no growing list of samples
        assert not hasattr(sketch, "__dict__")

    def test_summary_shape_matches_engine_expectations(self):
        from repro.sim.monitor import QuantileSketch

        sketch = QuantileSketch("x", qs=(0.50, 0.95, 0.99))
        assert sketch.summary() == {"count": 0.0}
        for v in (1.0, 2.0, 3.0):
            sketch.observe(v)
        summary = sketch.summary()
        assert set(summary) == {"count", "mean", "min", "max", "p50", "p95", "p99"}
        assert summary["count"] == 3.0
        assert summary["p50"] == 2.0

    def test_untracked_quantile_raises(self):
        from repro.sim.monitor import QuantileSketch

        sketch = QuantileSketch("x", qs=(0.5,))
        sketch.observe(1.0)
        with pytest.raises(KeyError):
            sketch.quantile(0.99)
        assert sketch.percentile(50) == 1.0

    def test_accuracy_against_tally(self):
        import random

        from repro.sim.monitor import QuantileSketch

        rng = random.Random(11)
        sketch = QuantileSketch("lat")
        tally = Tally("lat")
        for _ in range(8000):
            v = rng.lognormvariate(0.0, 1.0)
            sketch.observe(v)
            tally.observe(v)
        for q in (50, 95, 99):
            exact = tally.percentile(q)
            approx = sketch.percentile(q)
            assert abs(approx - exact) <= max(0.15 * exact, 0.05), (q, approx, exact)
