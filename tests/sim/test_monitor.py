"""Tests for measurement probes: percentiles, tallies, time-weighted."""

import pytest

from repro.sim import Counter, Simulator, Tally, TimeWeighted, percentile, summarize


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_extremes(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100

    def test_matches_numpy_linear_method(self):
        numpy = pytest.importorskip("numpy")
        data = sorted([0.3, 1.7, 2.2, 9.9, 4.4, 0.1])
        for q in (5, 25, 50, 75, 95):
            assert percentile(data, q) == pytest.approx(
                float(numpy.percentile(data, q))
            )

    def test_empty_with_default_returns_default(self):
        # warmup-only windows legitimately produce empty tallies; sweeps
        # pass a default instead of crashing on the first idle point.
        assert percentile([], 50, default=None) is None
        assert percentile([], 99, default=0.0) == 0.0

    def test_default_not_used_when_data_present(self):
        assert percentile([3.0], 50, default=None) == 3.0

    def test_out_of_range_q_still_rejected_with_data(self):
        with pytest.raises(ValueError):
            percentile([1.0], 200, default=None)


class TestTally:
    def test_basic_stats(self):
        tally = Tally("pct")
        for v in (1.0, 2.0, 3.0):
            tally.observe(v)
        assert tally.count == 3
        assert tally.mean == pytest.approx(2.0)
        assert tally.min == 1.0
        assert tally.max == 3.0
        assert tally.median == 2.0

    def test_empty_mean_rejected(self):
        with pytest.raises(ValueError):
            _ = Tally().mean

    def test_summary_keys(self):
        tally = Tally()
        tally.observe(5.0)
        summary = tally.summary(qs=(50, 95))
        assert set(summary) == {"count", "mean", "min", "max", "p50", "p95"}

    def test_summary_empty_has_count_zero(self):
        assert Tally().summary() == {"count": 0.0}

    def test_empty_percentile_is_none(self):
        # the probe contract differs from the module function on purpose:
        # "no observations" is a value, not an error.
        tally = Tally("idle")
        assert tally.percentile(50) is None
        assert tally.percentile(99) is None
        assert tally.median is None

    def test_percentile_after_observations(self):
        tally = Tally()
        for v in (4.0, 1.0, 3.0, 2.0):
            tally.observe(v)
        assert tally.percentile(50) == pytest.approx(2.5)
        assert tally.median == pytest.approx(2.5)
        assert tally.percentile(100) == 4.0

    def test_summarize_multiple(self):
        tallies = {"a": Tally("a"), "b": Tally("b")}
        tallies["a"].observe(1.0)
        out = summarize(tallies, qs=(50,))
        assert out["a"]["count"] == 1.0
        assert out["b"]["count"] == 0.0


class TestCounter:
    def test_incr_and_read(self):
        counter = Counter()
        counter.incr("x")
        counter.incr("x", 4)
        assert counter["x"] == 5
        assert counter["missing"] == 0

    def test_as_dict_snapshot(self):
        counter = Counter()
        counter.incr("a")
        snapshot = counter.as_dict()
        counter.incr("a")
        assert snapshot == {"a": 1}


class TestTimeWeighted:
    def test_max_tracking(self):
        sim = Simulator()
        probe = TimeWeighted(lambda: sim.now)
        sim.schedule(1.0, probe.set, 10)
        sim.schedule(2.0, probe.set, 3)
        sim.run()
        assert probe.max_value == 10
        assert probe.max_time == 1.0

    def test_time_average(self):
        sim = Simulator()
        probe = TimeWeighted(lambda: sim.now)
        sim.schedule(1.0, probe.set, 10.0)
        sim.schedule(2.0, probe.set, 0.0)
        sim.run(until=2.0)
        # 1s at 0 + 1s at 10 over 2s = 5
        assert probe.time_average() == pytest.approx(5.0)

    def test_add_is_relative(self):
        sim = Simulator()
        probe = TimeWeighted(lambda: sim.now, initial=5.0)
        probe.add(3.0)
        probe.add(-2.0)
        assert probe.value == 6.0

    def test_zero_elapsed_average_is_current(self):
        sim = Simulator()
        probe = TimeWeighted(lambda: sim.now, initial=4.0)
        assert probe.time_average() == 4.0


class TestTallySubclassing:
    """Regression tests for the observe-shadowing footgun: Tally binds
    ``observe`` to ``values.append`` per instance for speed, which used
    to silently shadow subclass overrides."""

    def test_base_tally_has_bound_fast_path(self):
        tally = Tally("t")
        assert "observe" in tally.__dict__
        tally.observe(1.0)
        assert tally.values == [1.0]

    def test_override_is_not_shadowed(self):
        class MsTally(Tally):
            def observe(self, value):
                super().observe(value * 1e3)

        tally = MsTally("ms")
        assert "observe" not in tally.__dict__
        tally.observe(0.5)
        assert tally.values == [500.0]
        assert tally.count == 1

    def test_override_without_super_init_does_not_crash(self):
        class Bare(Tally):
            def __init__(self):
                pass

            def observe(self, value):
                super().observe(value)

        tally = Bare()
        tally.observe(2.0)
        assert tally.values == [2.0]


class TestP2Quantile:
    def test_exact_while_buffer_fits(self):
        from repro.sim.monitor import P2Quantile

        est = P2Quantile(0.5)
        for v in [9.0, 1.0, 5.0]:
            est.observe(v)
        assert est.value() == 5.0

    def test_empty_is_none(self):
        from repro.sim.monitor import P2Quantile

        assert P2Quantile(0.9).value() is None

    def test_tracks_exact_percentile_on_uniform_stream(self):
        import random

        from repro.sim.monitor import P2Quantile, percentile

        rng = random.Random(7)
        values = [rng.random() * 100.0 for _ in range(5000)]
        for q in (0.5, 0.95, 0.99):
            est = P2Quantile(q)
            for v in values:
                est.observe(v)
            exact = percentile(sorted(values), q * 100.0)
            assert abs(est.value() - exact) < 3.0, (q, est.value(), exact)

    def test_monotone_stream(self):
        from repro.sim.monitor import P2Quantile

        est = P2Quantile(0.5)
        for v in range(1, 1001):
            est.observe(float(v))
        assert abs(est.value() - 500.0) < 25.0


class TestQuantileSketch:
    def test_exact_moments_and_bounded_memory(self):
        import random

        from repro.sim.monitor import QuantileSketch

        rng = random.Random(3)
        sketch = QuantileSketch("lat")
        values = [rng.expovariate(1.0) for _ in range(20000)]
        for v in values:
            sketch.observe(v)
        assert sketch.count == len(values)
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        assert abs(sketch.mean - sum(values) / len(values)) < 1e-9
        # O(1) state: slots only, no growing list of samples
        assert not hasattr(sketch, "__dict__")

    def test_summary_shape_matches_engine_expectations(self):
        from repro.sim.monitor import QuantileSketch

        sketch = QuantileSketch("x", qs=(0.50, 0.95, 0.99))
        assert sketch.summary() == {"count": 0.0}
        for v in (1.0, 2.0, 3.0):
            sketch.observe(v)
        summary = sketch.summary()
        assert set(summary) == {"count", "mean", "min", "max", "p50", "p95", "p99"}
        assert summary["count"] == 3.0
        assert summary["p50"] == 2.0

    def test_untracked_quantile_raises(self):
        from repro.sim.monitor import QuantileSketch

        sketch = QuantileSketch("x", qs=(0.5,))
        sketch.observe(1.0)
        with pytest.raises(KeyError):
            sketch.quantile(0.99)
        assert sketch.percentile(50) == 1.0

    def test_accuracy_against_tally(self):
        import random

        from repro.sim.monitor import QuantileSketch

        rng = random.Random(11)
        sketch = QuantileSketch("lat")
        tally = Tally("lat")
        for _ in range(8000):
            v = rng.lognormvariate(0.0, 1.0)
            sketch.observe(v)
            tally.observe(v)
        for q in (50, 95, 99):
            exact = tally.percentile(q)
            approx = sketch.percentile(q)
            assert abs(approx - exact) <= max(0.15 * exact, 0.05), (q, approx, exact)


class TestQuantileMonotonicity:
    """Regression pins for the PR-7 sketch audit: independent P² markers
    can cross on adversarial streams; reads are isotonically clamped."""

    # Heavy-duplicate stream (generated with random.Random(1): 60% exact
    # 1.0, 30% 1.0+tiny jitter, 10% large spikes) on which the raw p95
    # marker overtakes the raw p99 marker at observation 33.  Pinned so
    # the clamp's trigger case can never silently regress.
    CROSSING_STREAM = [
        1.0, 1.0000007637746189, 1.0, 1.0, 1.0, 1.000000788723351, 1.0,
        1.0, 1.000000432767068, 1.0000000021060533, 1.0,
        1.0000002287622212, 90.14274576114836, 1.0, 1.0, 1.0,
        38.12042376882124, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0,
        1.0, 1.0, 1.0, 1.0000005564543226, 1.000000185906266,
        85.99465287952899, 1.0,
    ]

    def test_pinned_crossing_stream_reads_monotone(self):
        from repro.sim.monitor import QuantileSketch

        sketch = QuantileSketch("pinned")
        for v in self.CROSSING_STREAM:
            sketch.observe(v)
        # The defect is real on this stream: the raw estimators cross.
        raw = {q: est.value() for q, est in sketch._quantiles.items()}
        assert raw[0.95] > raw[0.99], "stream no longer triggers the defect"
        # The read API must clamp it away.
        assert sketch.quantile(0.50) <= sketch.quantile(0.95) <= sketch.quantile(0.99)
        summary = sketch.summary()
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        # quantile() and summary() agree on the clamped values.
        for q in (0.50, 0.95, 0.99):
            assert summary["p%g" % (q * 100.0)] == sketch.quantile(q)

    def test_reads_monotone_and_bounded_on_random_streams(self):
        import random

        from repro.sim.monitor import QuantileSketch

        for seed in range(40):
            rng = random.Random(seed)
            sketch = QuantileSketch("fuzz")
            for i in range(300):
                r = rng.random()
                if r < 0.6:
                    v = 1.0
                elif r < 0.9:
                    v = 1.0 + rng.random() * 1e-6
                else:
                    v = rng.random() * 100.0
                sketch.observe(v)
                s = sketch.summary()
                assert s["p50"] <= s["p95"] <= s["p99"], (seed, i)
                assert sketch.min <= s["p50"] and s["p99"] <= sketch.max, (seed, i)

    def test_monotone_ramp_stays_ordered(self):
        from repro.sim.monitor import QuantileSketch

        sketch = QuantileSketch("ramp")
        for i in range(500):
            sketch.observe(float(i))
            s = sketch.summary()
            assert s["p50"] <= s["p95"] <= s["p99"]
            assert 0.0 <= s["p50"] and s["p99"] <= float(i)

    def test_exact_to_marker_transition_at_count_five(self):
        from repro.sim.monitor import P2Quantile, QuantileSketch

        values = [5.0, 1.0, 4.0, 2.0, 3.0]
        est = P2Quantile(0.5)
        for v in values:
            est.observe(v)
        # count == 5: still the exact path over the sorted buffer.
        assert est.count == 5
        assert est.value() == 3.0
        # count == 6: first marker-path update; the estimate must stay
        # inside the observed range and near the true median.
        est.observe(3.5)
        assert est.count == 6
        assert 1.0 <= est.value() <= 5.0
        assert abs(est.value() - 3.25) < 1.5
        # The sketch-level read stays ordered across the transition.
        sketch = QuantileSketch("transition")
        for v in values:
            sketch.observe(v)
            s = sketch.summary()
            assert s["p50"] <= s["p95"] <= s["p99"]
        sketch.observe(3.5)
        s = sketch.summary()
        assert s["p50"] <= s["p95"] <= s["p99"]

    def test_all_duplicates_collapse_to_the_value(self):
        from repro.sim.monitor import QuantileSketch

        sketch = QuantileSketch("dup")
        for _ in range(1000):
            sketch.observe(7.5)
        s = sketch.summary()
        assert s["p50"] == s["p95"] == s["p99"] == 7.5
        assert s["min"] == s["max"] == 7.5
