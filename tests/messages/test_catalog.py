"""Tests for the message catalog: schemas, samples, wire caching."""

import pytest

from repro.codec import codec_names, get_codec, validate
from repro.messages import CATALOG


class TestCatalogIntegrity:
    def test_catalog_has_all_layers(self):
        names = CATALOG.names()
        # S1AP, NAS, and S11 messages are all present.
        assert "InitialUEMessage" in names
        assert "AttachRequest" in names
        assert "CreateSessionRequest" in names
        assert len(names) >= 30

    def test_every_sample_validates(self):
        for name in CATALOG.names():
            validate(CATALOG.sample(name), CATALOG.schema(name))

    def test_unknown_message_rejected(self):
        with pytest.raises(KeyError):
            CATALOG.schema("NoSuchMessage")
        with pytest.raises(KeyError):
            CATALOG.sample("NoSuchMessage")

    @pytest.mark.parametrize(
        "codec_name", [n for n in codec_names() if n != "lcm"]
    )
    def test_every_message_roundtrips_in_every_codec(self, codec_name):
        codec = get_codec(codec_name)
        for name in CATALOG.names():
            schema, sample = CATALOG.schema(name), CATALOG.sample(name)
            assert codec.decode(schema, codec.encode(schema, sample)) == sample, name

    def test_wire_size_matches_real_encoding(self):
        for name in ("InitialUEMessage", "HandoverRequest"):
            for codec_name in ("asn1per", "flatbuffers"):
                assert CATALOG.wire_size(name, codec_name) == len(
                    CATALOG.encode(name, codec_name)
                )

    def test_wire_size_cached(self):
        first = CATALOG.wire_size("Paging", "cdr")
        assert CATALOG.wire_size("Paging", "cdr") == first

    def test_element_counts_stable(self):
        for name in CATALOG.names():
            assert CATALOG.element_count(name) >= 1


class TestPaperProperties:
    """Structural claims the paper makes about control messages."""

    PROCEDURE_MESSAGES = (
        "InitialUEMessage",
        "InitialContextSetup",
        "HandoverRequired",
        "HandoverRequest",
        "PathSwitchRequest",
        "Paging",
        "AttachRequest",
        "AttachAccept",
        "eRABSetupRequest",
        "eRABModifyRequest",
    )

    def test_key_messages_have_at_least_8_elements(self):
        # §6.7.4: "all cellular control messages we tested contained a
        # minimum of 8 data elements".
        for name in self.PROCEDURE_MESSAGES:
            assert CATALOG.element_count(name) >= 8, name

    def test_asn1_always_smallest(self):
        for name in CATALOG.names():
            per = CATALOG.wire_size(name, "asn1per")
            fb = CATALOG.wire_size(name, "flatbuffers")
            assert per < fb, name

    def test_flatbuffers_overhead_up_to_hundreds_of_bytes(self):
        # §4.4 / Fig. 20: FB can add up to ~300 bytes of metadata.
        deltas = [
            CATALOG.wire_size(n, "flatbuffers") - CATALOG.wire_size(n, "asn1per")
            for n in CATALOG.names()
        ]
        assert max(deltas) > 150
        assert all(d > 0 for d in deltas)

    def test_svtable_saves_on_union_messages(self):
        # Messages carrying CHOICEs shrink under the optimization.
        for name in ("HandoverRequired", "UEContextReleaseCommand", "InitialUEMessage"):
            assert CATALOG.wire_size(name, "flatbuffers_opt") < CATALOG.wire_size(
                name, "flatbuffers"
            ), name

    def test_svtable_savings_magnitude(self):
        # §4.4: 10 bytes per single-scalar union, 14 per var-length one;
        # whole-message savings land in the tens of bytes.
        total_saved = sum(
            CATALOG.wire_size(n, "flatbuffers") - CATALOG.wire_size(n, "flatbuffers_opt")
            for n in CATALOG.names()
        )
        assert total_saved >= 40

    def test_lcm_cannot_express_union_messages(self):
        supported = set(CATALOG.supported_by("lcm"))
        assert "HandoverRequired" not in supported
        assert "InitialUEMessage" not in supported


class TestComposedWireSizes:
    """NAS-in-S1AP composition: sizes reflect both layers' encodings."""

    def test_composition_changes_size(self):
        base = CATALOG.wire_size("InitialUEMessage", "asn1per")
        composed = CATALOG.composed_wire_size(
            "InitialUEMessage", "AttachRequest", "asn1per"
        )
        assert composed != base

    def test_none_nas_falls_back(self):
        assert CATALOG.composed_wire_size(
            "InitialUEMessage", None, "asn1per"
        ) == CATALOG.wire_size("InitialUEMessage", "asn1per")

    def test_no_nas_field_falls_back(self):
        assert CATALOG.composed_wire_size(
            "HandoverRequired", "AttachRequest", "asn1per"
        ) == CATALOG.wire_size("HandoverRequired", "asn1per")

    def test_bigger_nas_bigger_composite(self):
        small = CATALOG.composed_wire_size(
            "UplinkNASTransport", "AuthenticationResponse", "asn1per"
        )
        big = CATALOG.composed_wire_size(
            "UplinkNASTransport", "AttachRequest", "asn1per"
        )
        assert big > small

    def test_codec_applies_to_both_layers(self):
        per = CATALOG.composed_wire_size("InitialUEMessage", "AttachRequest", "asn1per")
        fb = CATALOG.composed_wire_size(
            "InitialUEMessage", "AttachRequest", "flatbuffers"
        )
        # FB inflates both the container and the payload.
        assert fb > per

    def test_composed_cached(self):
        first = CATALOG.composed_wire_size("InitialUEMessage", "AttachRequest", "cdr")
        assert CATALOG.composed_wire_size(
            "InitialUEMessage", "AttachRequest", "cdr"
        ) == first
