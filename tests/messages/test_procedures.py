"""Tests for control-procedure definitions."""

import pytest

from repro.messages import CATALOG, PROCEDURES, ProcedureSpec, Step, get_procedure
from repro.messages.procedures import procedure_names


class TestStep:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Step("teleport", "InitialUEMessage")

    def test_ue_message_cannot_have_response(self):
        with pytest.raises(ValueError):
            Step("ue_message", "InitialUEMessage", "DownlinkNASTransport")

    def test_exchange_may_have_response(self):
        step = Step("ue_exchange", "InitialUEMessage", "DownlinkNASTransport")
        assert step.response == "DownlinkNASTransport"


class TestProcedureSpec:
    def test_empty_steps_rejected(self):
        with pytest.raises(ValueError):
            ProcedureSpec("empty", ())

    def test_exactly_one_pct_marker_required(self):
        steps = (Step("ue_message", "InitialUEMessage"),)
        with pytest.raises(ValueError):
            ProcedureSpec("no-marker", steps)
        double = (
            Step("ue_message", "InitialUEMessage", ends_pct=True),
            Step("ue_message", "HandoverNotify", ends_pct=True),
        )
        with pytest.raises(ValueError):
            ProcedureSpec("two-markers", double)

    def test_lookup_helpers(self):
        assert get_procedure("attach").name == "attach"
        with pytest.raises(KeyError):
            get_procedure("teleport")
        assert "attach" in procedure_names()


class TestPaperProcedureSet:
    def test_the_four_supported_procedures_exist(self):
        # §5: initial attach, handover with CPF change, FastHandover,
        # service request — plus re_attach for recovery.
        for name in ("attach", "handover", "fast_handover", "service_request", "re_attach"):
            assert name in PROCEDURES

    def test_all_step_messages_are_in_catalog(self):
        known = set(CATALOG.names())
        for spec in PROCEDURES.values():
            for step in spec.steps:
                assert step.request in known, (spec.name, step.request)
                if step.response:
                    assert step.response in known
                if step.request_nas:
                    assert step.request_nas in known
                if step.response_nas:
                    assert step.response_nas in known

    def test_attach_is_multi_message(self):
        # §4.2: procedures are "composed of several control messages".
        attach = PROCEDURES["attach"]
        assert len(attach.uplink_messages) >= 3
        assert len(attach.cpf_processed_messages) >= 4

    def test_fast_handover_skips_migration(self):
        normal = PROCEDURES["handover"]
        fast = PROCEDURES["fast_handover"]
        assert any(s.kind == "cpf_cpf" for s in normal.steps)
        assert not any(s.kind == "cpf_cpf" for s in fast.steps)
        assert len(fast.steps) < len(normal.steps)

    def test_cpf_changing_procedures_flagged(self):
        assert PROCEDURES["handover"].changes_cpf
        assert PROCEDURES["fast_handover"].changes_cpf
        assert not PROCEDURES["attach"].changes_cpf
        assert not PROCEDURES["intra_handover"].changes_cpf

    def test_handover_target_steps_marked(self):
        ho = PROCEDURES["handover"]
        assert [s.at_target for s in ho.steps] == [False, False, False, True, True]

    def test_service_request_is_short(self):
        # SR must be much lighter than attach (that is what makes the
        # Fig. 7 vs Fig. 8 knee positions differ).
        sr = PROCEDURES["service_request"]
        attach = PROCEDURES["attach"]
        assert len(sr.cpf_processed_messages) < len(attach.cpf_processed_messages)

    def test_re_attach_mirrors_attach(self):
        assert PROCEDURES["re_attach"].steps == PROCEDURES["attach"].steps


class TestDpcmVariants:
    def test_dpcm_attach_saves_an_exchange(self):
        from repro.baselines import DPCM_PROCEDURES

        dpcm_attach = DPCM_PROCEDURES["attach"]
        attach = PROCEDURES["attach"]
        dpcm_exchanges = sum(1 for s in dpcm_attach.steps if s.kind == "ue_exchange")
        exchanges = sum(1 for s in attach.steps if s.kind == "ue_exchange")
        assert dpcm_exchanges < exchanges

    def test_dpcm_messages_in_catalog(self):
        from repro.baselines import DPCM_PROCEDURES

        known = set(CATALOG.names())
        for spec in DPCM_PROCEDURES.values():
            for step in spec.steps:
                assert step.request in known
