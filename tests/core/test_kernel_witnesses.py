"""Determinism witnesses for the optimized simulation kernel.

The kernel's zero-delay immediate queue and the codec word-level hot
paths (PR 3) are only admissible if they are *bit-identical* to the
original implementation: every callback must run in the same
``(time, seq)`` total order and every encoder must emit the same bytes.

These tests pin the witnesses produced by the pre-optimization kernel:

* the :class:`~repro.faults.trace.EventTrace` digest of every plan in
  ``tests/core/regression_schedules/`` (full verbose traces — every
  message traversal, every fault draw);
* the complete :class:`~repro.experiments.harness.PCTPoint` rows of a
  Fig. 7 slice (all four schemes at one rate) and a Fig. 10 slice
  (handover under CPF failure), float for float.

If an optimization reorders same-time callbacks, perturbs an RNG draw
sequence, or changes a single encoded byte, a digest or a percentile
here moves and the test fails.  The expected values must NEVER be
regenerated to make an optimization pass; they may only change when
the *model* (protocol logic, costs, workloads) intentionally changes.
"""

import dataclasses
import json
import math
import pathlib

import pytest

from repro.core import ControlPlaneConfig
from repro.experiments.harness import RunSpec, run_pct_point
from repro.faults import FaultPlan, run_plan

CORPUS_DIR = pathlib.Path(__file__).parent / "regression_schedules"
WITNESS_PCT = pathlib.Path(__file__).parent / "kernel_witness_pct.json"

#: blake2b trace digests recorded with the pre-optimization kernel
#: (binary heap only, per-bit codecs) at commit ca630d8.
EXPECTED_DIGESTS = {
    "blackhole_burst": "16025cfb48c4852bc48573070bdb81db",
    "combined_chaos": "8e0121f367c3d969b5294781ea03d0c5",
    "lossy_links": "11811451b4b6d0f14e2ee9422e656f07",
    "partition_inter_region": "738d8fe81bbbb04bf27c9c95829afa23",
    "s1_masked_failover": "6a3e5a482e351de00940883426f0d40d",
    "s4_cta_failure": "1e410cce822c6857e43d273071afa059",
}


def test_every_corpus_plan_has_a_pinned_digest():
    stems = sorted(p.stem for p in CORPUS_DIR.glob("*.json"))
    assert stems == sorted(EXPECTED_DIGESTS), (
        "regression corpus and pinned digests diverged; pin a digest for "
        "every schedule (computed with the unoptimized kernel)"
    )


@pytest.mark.parametrize("stem", sorted(EXPECTED_DIGESTS), ids=str)
def test_corpus_digest_matches_pre_optimization_kernel(stem):
    plan = FaultPlan.load(str(CORPUS_DIR / ("%s.json" % stem)))
    result = run_plan(plan, verbose_trace=True)
    assert result.digest == EXPECTED_DIGESTS[stem], (
        "trace digest moved for %s: the kernel/codec optimizations are no "
        "longer bit-identical to the pre-optimization event order" % stem
    )


# -- figure-slice witnesses -------------------------------------------------

_FIG07_SPEC = dict(
    procedure="service_request",
    procedures_target=150,
    min_duration_s=0.02,
    max_duration_s=0.06,
)
_FIG10_SPEC = dict(
    procedure="handover",
    cpfs_per_region=2,
    failure_cpf_index=0,
    failure_at_frac=0.5,
    first_region_only=True,
    procedures_target=150,
    min_duration_s=0.02,
    max_duration_s=0.06,
)


def _witnesses():
    with open(WITNESS_PCT) as fp:
        return json.load(fp)


def _assert_point_identical(point, expected, label):
    got = dataclasses.asdict(point)
    assert sorted(got) == sorted(expected), label
    for field, want in expected.items():
        have = got[field]
        if isinstance(want, float) and math.isnan(want):
            assert isinstance(have, float) and math.isnan(have), (label, field)
            continue
        # Bit-identical: exact equality, no approx.
        assert have == want, (
            "%s: field %r moved from %r to %r" % (label, field, want, have)
        )


@pytest.mark.parametrize("preset", ["existing_epc", "dpcm", "skycore", "neutrino"])
def test_fig07_slice_rows_are_byte_identical(preset):
    expected = _witnesses()["fig07"][preset]
    config = getattr(ControlPlaneConfig, preset)()
    point = run_pct_point(config, 100e3, RunSpec(**_FIG07_SPEC))
    _assert_point_identical(point, expected, "fig07/%s" % preset)


def test_fig10_slice_row_is_byte_identical():
    expected = _witnesses()["fig10"]["neutrino"]
    point = run_pct_point(
        ControlPlaneConfig.neutrino(), 60e3, RunSpec(**_FIG10_SPEC)
    )
    _assert_point_identical(point, expected, "fig10/neutrino")
