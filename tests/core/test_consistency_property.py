"""Property-based consistency tests (the paper's core guarantee).

Under *any* schedule of CPF/CTA failures and recoveries — and any
seeded message-level faults (drop/duplicate/reorder/extra delay) —
interleaved with any sequence of control procedures, Neutrino must
preserve Read-your-Writes: no UE request is ever served against state
older than the UE's own last completed write (§4.2.1).  Scenarios 1/2
additionally mask the failure; scenario 3 degrades to Re-Attach and
scenario 4 (CTA failure) forces a Re-Attach, but neither ever serves
stale state.

Schedules are generated directly as :class:`repro.faults.FaultPlan`
objects, so any failing example serializes to JSON
(``plan.to_json()``) and replays bit-for-bit with
``python -m repro chaos replay``.  The ``regression_schedules/``
corpus pins previously interesting schedules as permanent cases.
"""

import pathlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults import FaultPlan, replay, run_plan

PROCS = ("service_request", "tau", "intra_handover", "handover", "fast_handover")
HOPS = ("ue_bs", "bs_cta", "cta_cpf", "cpf_cpf_intra", "cpf_cpf_inter")
CPFS = ("cpf-20-0", "cpf-20-1", "cpf-21-0", "cpf-21-1")
CTAS = ("cta-20", "cta-21")

_SETTINGS = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def base_plan(seed, config="neutrino"):
    plan = FaultPlan(seed=seed, config=config)
    plan.workload = {"ues": [{"id": "ue-prop", "bs": "bs-20-0"}]}
    return plan


@st.composite
def fault_plans(draw, config="neutrino", cta_faults=False, message_faults=False):
    """A random, serializable interleaving of procedures and faults.

    ``cta_faults`` adds scenario-4 CTA crash/recover steps;
    ``message_faults`` overlays seeded per-hop drop/dup/reorder/delay
    profiles.  The plan's last-alive guard keeps generated schedules
    from trivially wedging the deployment (never kills the last CPF or
    CTA), matching the guard the hand-rolled version of this test used.
    """
    plan = base_plan(draw(st.integers(0, 2**16)), config=config)
    if message_faults:
        hops = draw(st.lists(st.sampled_from(HOPS), min_size=1, max_size=3, unique=True))
        for hop in hops:
            plan.perturb(
                hop,
                drop_p=draw(st.floats(0, 0.35)),
                dup_p=draw(st.floats(0, 0.25)),
                reorder_p=draw(st.floats(0, 0.25)),
                extra_delay_s=draw(st.floats(0, 5e-4)),
            )
    kinds = ["proc", "proc", "proc", "fail_cpf", "recover_cpf", "wait"]
    if cta_faults:
        kinds += ["fail_cta", "recover_cta"]
    for _ in range(draw(st.integers(3, 12))):
        kind = draw(st.sampled_from(kinds))
        if kind == "proc":
            plan.step("proc", proc=draw(st.sampled_from(PROCS)))
        elif kind == "wait":
            plan.step("wait", dt=draw(st.integers(1, 80)) / 1000.0)
        elif kind in ("fail_cpf", "recover_cpf"):
            plan.step(kind, draw(st.sampled_from(CPFS)))
        else:
            plan.step(kind, draw(st.sampled_from(CTAS)))
    return plan


@given(plan=fault_plans())
@settings(max_examples=50, **_SETTINGS)
def test_neutrino_read_your_writes_under_any_failure_schedule(plan):
    result = run_plan(plan)
    assert result.ok, (result.violations, plan.to_json())


@given(plan=fault_plans(cta_faults=True))
@settings(max_examples=40, **_SETTINGS)
def test_neutrino_read_your_writes_under_cta_failure(plan):
    """Scenario 4: the CTA's log and mapping are volatile; crashing it
    mid-schedule must still never serve stale state."""
    result = run_plan(plan)
    assert result.ok, (result.violations, plan.to_json())


@given(plan=fault_plans(cta_faults=True, message_faults=True))
@settings(max_examples=80, **_SETTINGS)
def test_neutrino_read_your_writes_under_message_level_faults(plan):
    """Lost checkpoints, lost ACKs, duplicated replays, delayed repair
    fetches — none of it may surface pre-write state to the UE."""
    result = run_plan(plan)
    assert result.ok, (result.violations, plan.to_json())


@given(plan=fault_plans(config="existing_epc"))
@settings(max_examples=35, **_SETTINGS)
def test_epc_read_your_writes_via_reattach(plan):
    # The EPC keeps RYW trivially: no replicas, failures force Re-Attach.
    result = run_plan(plan)
    assert result.ok, (result.violations, plan.to_json())


@given(plan=fault_plans())
@settings(max_examples=25, **_SETTINGS)
def test_primary_version_never_behind_reader(plan):
    """Stronger invariant: after the run, the serving CPF's committed
    version is at least the UE's completed-write count."""
    result = run_plan(plan)
    dep = result.dep
    ue = dep.ue("ue-prop")
    primary = dep.primary_of("ue-prop")
    if primary is None or not dep.cpfs[primary].up:
        return
    entry = dep.cpfs[primary].store.get("ue-prop")
    if entry is not None and ue.attached:
        assert entry.state.version >= ue.completed_version


@given(plan=fault_plans())
@settings(max_examples=15, **_SETTINGS)
def test_log_eventually_bounded(plan):
    """The CTA log never retains fully-ACKed procedures at quiescence."""
    result = run_plan(plan)
    for cta in result.dep.ctas.values():
        for record in cta.log.pending_records():
            assert not record.fully_acked


# ---------------------------------------------------------------------------
# Regression corpus: pinned schedules replayed on every test run.
# ---------------------------------------------------------------------------

CORPUS_DIR = pathlib.Path(__file__).parent / "regression_schedules"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def test_regression_corpus_present():
    assert len(CORPUS) >= 5, "regression_schedules corpus went missing"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_regression_schedule_replays_clean_and_deterministic(path):
    plan = FaultPlan.load(str(path))
    report = replay(plan, runs=2)
    assert report.deterministic, report.digests
    for result in report.results:
        assert result.ok, (result.violations, path.name)
