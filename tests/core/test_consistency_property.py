"""Property-based consistency tests (the paper's core guarantee).

Under *any* schedule of CPF failures/recoveries interleaved with any
sequence of control procedures, Neutrino must preserve Read-your-Writes:
no UE request is ever served against state older than the UE's own last
completed write (§4.2.1).  Scenarios 1/2 additionally mask the failure;
scenario 3 degrades to Re-Attach but never serves stale state.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ControlPlaneConfig, Deployment
from repro.sim import RngRegistry, Simulator

PROCS = ("service_request", "tau", "intra_handover", "handover", "fast_handover")


@st.composite
def schedules(draw):
    """A random interleaving of procedures and failure/recovery events.

    Each element: ("proc", proc_index) | ("fail", cpf_index) |
    ("recover", cpf_index) | ("wait", ms).
    """
    n = draw(st.integers(3, 12))
    events = []
    for _ in range(n):
        kind = draw(st.sampled_from(["proc", "proc", "proc", "fail", "recover", "wait"]))
        if kind == "proc":
            events.append(("proc", draw(st.integers(0, len(PROCS) - 1))))
        elif kind == "fail":
            events.append(("fail", draw(st.integers(0, 3))))
        elif kind == "recover":
            events.append(("recover", draw(st.integers(0, 3))))
        else:
            events.append(("wait", draw(st.integers(1, 80))))
    return events


def run_schedule(config, events, cpfs_per_region=2):
    sim = Simulator()
    dep = Deployment.build_grid(
        sim, config, cpfs_per_region=cpfs_per_region, regions=2, rng=RngRegistry(3)
    )
    cpf_names = sorted(dep.cpfs)
    ue = dep.new_ue("ue-prop", "bs-20-0")

    def driver():
        yield from ue.execute("attach")
        for kind, arg in events:
            if kind == "proc":
                proc = PROCS[arg]
                target = None
                if proc in ("handover", "fast_handover"):
                    target = "bs-21-0" if ue.bs_name.startswith("bs-20") else "bs-20-0"
                try:
                    yield from ue.execute(proc, target_bs=target)
                except Exception:
                    return  # total outage; consistency still audited
            elif kind == "fail":
                victim = cpf_names[arg % len(cpf_names)]
                alive = [n for n in cpf_names if dep.cpfs[n].up and n != victim]
                if alive:  # never kill the very last CPF
                    dep.fail_cpf(victim)
            elif kind == "recover":
                dep.recover_cpf(cpf_names[arg % len(cpf_names)])
            else:
                yield sim.timeout(arg / 1000.0)

    proc = sim.process(driver())
    sim.run(until=120.0)
    return dep, proc


@given(events=schedules())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_neutrino_read_your_writes_under_any_failure_schedule(events):
    dep, _proc = run_schedule(ControlPlaneConfig.neutrino(), events)
    assert dep.auditor.read_your_writes_held, dep.auditor.violations


@given(events=schedules())
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_epc_read_your_writes_via_reattach(events):
    # The EPC keeps RYW trivially: no replicas, failures force Re-Attach.
    dep, _proc = run_schedule(ControlPlaneConfig.existing_epc(), events)
    assert dep.auditor.read_your_writes_held, dep.auditor.violations


@given(events=schedules())
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_primary_version_never_behind_reader(events):
    """Stronger invariant: after the run, the serving CPF's committed
    version equals the UE's completed-write count."""
    dep, proc = run_schedule(ControlPlaneConfig.neutrino(), events)
    if not (proc.fired and proc.ok):
        return  # total outage path; audited invariant already checked
    ue = dep.ue("ue-prop")
    primary = dep.primary_of("ue-prop")
    if primary is None or not dep.cpfs[primary].up:
        return
    entry = dep.cpfs[primary].store.get("ue-prop")
    if entry is not None and ue.attached:
        assert entry.state.version >= ue.completed_version


@given(events=schedules())
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_log_eventually_bounded(events):
    """The CTA log never retains fully-ACKed procedures at quiescence."""
    dep, _proc = run_schedule(ControlPlaneConfig.neutrino(), events)
    for cta in dep.ctas.values():
        for record in cta.log.pending_records():
            assert not record.fully_acked
