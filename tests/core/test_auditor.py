"""Unit tests for the Read-your-Writes auditor."""

from repro.core import ConsistencyAuditor, Violation


class TestAuditor:
    def test_fresh_auditor_holds(self):
        auditor = ConsistencyAuditor()
        assert auditor.read_your_writes_held
        assert auditor.serves == 0

    def test_serving_current_state_is_clean(self):
        auditor = ConsistencyAuditor(sim_now=lambda: 1.0)
        auditor.record_serve("ue-1", reader_version=3, served_version=3, cpf_name="c")
        auditor.record_serve("ue-1", reader_version=3, served_version=5, cpf_name="c")
        assert auditor.serves == 2
        assert auditor.read_your_writes_held

    def test_serving_stale_state_is_a_violation(self):
        auditor = ConsistencyAuditor(sim_now=lambda: 2.5)
        auditor.record_serve("ue-1", reader_version=4, served_version=3, cpf_name="c")
        assert not auditor.read_your_writes_held
        violation = auditor.violations[0]
        assert violation == Violation(2.5, "ue-1", "c", 4, 3)

    def test_works_without_clock(self):
        auditor = ConsistencyAuditor()
        auditor.record_serve("ue-1", 2, 1, "c")
        assert auditor.violations[0].time == 0.0

    def test_counters(self):
        auditor = ConsistencyAuditor()
        auditor.record_reattach_forced("ue-1", "c")
        auditor.record_failover_masked("ue-1", replayed=3)
        auditor.record_failover_masked("ue-2", replayed=0)
        assert auditor.reattaches_forced == 1
        assert auditor.failovers_masked == 2
        assert auditor.messages_replayed == 3

    def test_violation_carries_serving_span_ids(self):
        """With obs installed the CPF passes its handle span; the
        violation then points into the exported trace timeline."""
        from repro.obs import Tracer

        tracer = Tracer(lambda: 0.0)
        root = tracer.begin("proc.service_request")
        handle = tracer.begin("cpf.handle", parent=root)
        auditor = ConsistencyAuditor(sim_now=lambda: 3.0)
        auditor.record_serve("ue-1", 4, 3, "c", span=handle)
        violation = auditor.violations[0]
        assert violation.trace_id == root.root_id
        assert violation.span_id == handle.span_id
        # span ids are diagnostics: equality still compares facts alone
        assert violation == Violation(3.0, "ue-1", "c", 4, 3)

    def test_violation_span_ids_default_to_none(self):
        auditor = ConsistencyAuditor()
        auditor.record_serve("ue-1", 2, 1, "c")
        assert auditor.violations[0].span_id is None
        assert auditor.violations[0].trace_id is None
