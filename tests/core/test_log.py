"""Tests for the CTA logical clock and in-memory message log (§4.2.3)."""

import pytest

from repro.core import LogicalClock, MessageLog


def make_log(enabled=True):
    now = {"t": 0.0}

    def sim_now():
        return now["t"]

    return MessageLog(sim_now, enabled=enabled), now


class TestLogicalClock:
    def test_monotone(self):
        clock = LogicalClock()
        values = [clock.tick() for _ in range(5)]
        assert values == [1, 2, 3, 4, 5]
        assert clock.value == 5

    def test_start_offset(self):
        assert LogicalClock(10).tick() == 11


class TestAppendAndReplaySet:
    def test_entries_after_filters_by_clock(self):
        log, _ = make_log()
        for clock in (1, 2, 3):
            log.append(clock, "ue-1", "InitialUEMessage", 100)
        assert [e.clock for e in log.entries_after("ue-1", 1)] == [2, 3]
        assert log.entries_after("ue-1", 3) == []
        assert log.entries_after("ue-other", 0) == []

    def test_disabled_log_records_nothing(self):
        log, _ = make_log(enabled=False)
        log.append(1, "ue-1", "m", 100)
        assert log.entry_count() == 0
        assert log.size_bytes == 0

    def test_size_includes_overhead(self):
        log, _ = make_log()
        log.append(1, "ue-1", "m", 100)
        assert log.size_bytes > 100


class TestAckAndPrune:
    def test_full_acks_prune_procedure(self):
        log, _ = make_log()
        for clock in (1, 2):
            log.append(clock, "ue-1", "m", 50)
        log.procedure_completed("ue-1", 2, ["r1", "r2"])
        log.ack("ue-1", 2, "r1")
        assert log.entry_count() == 2  # still waiting on r2
        log.ack("ue-1", 2, "r2")
        assert log.entry_count() == 0
        assert log.size_bytes == 0
        assert log.pruned == 2

    def test_prune_keeps_newer_messages(self):
        log, _ = make_log()
        log.append(1, "ue-1", "m", 50)
        log.procedure_completed("ue-1", 1, ["r1"])
        log.append(2, "ue-1", "m2", 50)  # next procedure's message
        log.ack("ue-1", 1, "r1")
        assert [e.clock for e in log.entries_after("ue-1", 0)] == [2]

    def test_no_replicas_prunes_immediately(self):
        log, _ = make_log()
        log.append(1, "ue-1", "m", 50)
        log.procedure_completed("ue-1", 1, [])
        assert log.entry_count() == 0

    def test_duplicate_ack_ignored(self):
        log, _ = make_log()
        log.append(1, "ue-1", "m", 50)
        log.procedure_completed("ue-1", 1, ["r1"])
        log.ack("ue-1", 1, "r1")
        log.ack("ue-1", 1, "r1")  # already pruned: no-op

    def test_unknown_ack_ignored(self):
        log, _ = make_log()
        log.ack("ue-x", 99, "r1")  # must not raise

    def test_per_ue_isolation(self):
        log, _ = make_log()
        log.append(1, "ue-a", "m", 50)
        log.append(2, "ue-b", "m", 50)
        log.procedure_completed("ue-a", 1, ["r1"])
        log.ack("ue-a", 1, "r1")
        assert log.entries_after("ue-b", 0) != []


class TestStaleRecords:
    def test_stale_records_by_timeout(self):
        log, now = make_log()
        log.append(1, "ue-1", "m", 50)
        log.procedure_completed("ue-1", 1, ["r1"])
        now["t"] = 31.0
        stale = log.stale_records(older_than=now["t"] - 30.0)
        assert len(stale) == 1
        assert stale[0].missing() == ["r1"]

    def test_acked_records_not_stale(self):
        log, now = make_log()
        log.append(1, "ue-1", "m", 50)
        log.procedure_completed("ue-1", 1, ["r1"])
        log.ack("ue-1", 1, "r1")
        now["t"] = 100.0
        assert log.stale_records(older_than=50.0) == []

    def test_unacked_for_lists_pending(self):
        log, _ = make_log()
        log.append(1, "ue-1", "m", 50)
        log.procedure_completed("ue-1", 1, ["r1"])
        assert len(log.unacked_for("ue-1")) == 1
        assert log.unacked_for("ue-2") == []

    def test_drop_procedure_clears_messages_and_record(self):
        # §4.2.4(1d)
        log, _ = make_log()
        for clock in (1, 2):
            log.append(clock, "ue-1", "m", 50)
        log.procedure_completed("ue-1", 2, ["r1"])
        log.drop_procedure("ue-1", 2)
        assert log.entry_count() == 0
        assert log.unacked_for("ue-1") == []


class TestSizeTracking:
    def test_max_size_survives_pruning(self):
        log, _ = make_log()
        for clock in range(1, 11):
            log.append(clock, "ue-1", "m", 100)
        peak = log.size_bytes
        log.procedure_completed("ue-1", 10, ["r"])
        log.ack("ue-1", 10, "r")
        assert log.size_bytes == 0
        assert log.max_size_bytes == peak

    def test_appended_counter(self):
        log, _ = make_log()
        for clock in range(1, 4):
            log.append(clock, "ue-1", "m", 10)
        assert log.appended == 3
