"""Idle-mode lifecycle: S1 release, paging, service-request wake-up."""

import pytest

from .conftest import run_proc


def page(dep, ue_id):
    handle = dep.sim.process(dep.deliver_downlink_paged(ue_id))
    dep.sim.run(until=dep.sim.now + 2.0)
    assert handle.fired
    return handle.value


class TestS1Release:
    def test_release_marks_core_state_idle(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "s1_release")
        entry = neutrino.cpfs[neutrino.primary_of("ue-1")].store.get("ue-1")
        assert entry.state.attached  # still registered...
        assert not entry.state.active  # ...but ECM-IDLE

    def test_release_suspends_upf_session(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "service_request")  # establish the path
        upf = neutrino.upf_for_region("20")
        assert upf.has_path("ue-1")
        run_proc(neutrino, ue, "s1_release")
        assert not upf.has_path("ue-1")

    def test_release_is_a_versioned_write(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        before = ue.completed_version
        run_proc(neutrino, ue, "s1_release")
        assert ue.completed_version == before + 1

    def test_release_state_replicated(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "s1_release")
        sim.run(until=sim.now + 0.2)
        backup = neutrino.replicas_of("ue-1")[0]
        entry = neutrino.cpfs[backup].store.get("ue-1")
        assert not entry.state.active

    def test_service_request_reactivates(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "s1_release")
        run_proc(neutrino, ue, "service_request")
        upf = neutrino.upf_for_region("20")
        assert upf.has_path("ue-1")
        entry = neutrino.cpfs[neutrino.primary_of("ue-1")].store.get("ue-1")
        assert entry.state.active


class TestPagedDelivery:
    def test_connected_ue_delivers_without_service_request(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "service_request")
        before = neutrino.pct["service_request"].count
        delivered, latency = page(neutrino, "ue-1")
        assert delivered
        assert neutrino.pct["service_request"].count == before  # no wake-up needed

    def test_idle_ue_wakes_via_service_request(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "s1_release")
        delivered, latency = page(neutrino, "ue-1")
        assert delivered
        assert neutrino.pct["service_request"].count == 1  # paging woke it
        entry = neutrino.cpfs[neutrino.primary_of("ue-1")].store.get("ue-1")
        assert entry.state.active

    def test_idle_delivery_slower_than_connected(self, sim, neutrino):
        connected = neutrino.bootstrap_ue("ue-c", "bs-20-0")
        run_proc(neutrino, connected, "service_request")
        _, connected_latency = page(neutrino, "ue-c")

        idle = neutrino.bootstrap_ue("ue-i", "bs-20-1")
        run_proc(neutrino, idle, "s1_release")
        _, idle_latency = page(neutrino, "ue-i")
        assert idle_latency > connected_latency

    def test_unknown_ue_not_delivered(self, sim, neutrino):
        delivered, _latency = page(neutrino, "ghost")
        assert not delivered

    def test_paged_wakeup_consistent_after_failover(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "s1_release")
        sim.run(until=sim.now + 0.2)  # replicate the idle state
        neutrino.fail_cpf(neutrino.primary_of("ue-1"))
        delivered, _latency = page(neutrino, "ue-1")
        assert delivered  # the synced backup pages and serves the wake-up
        assert neutrino.auditor.read_your_writes_held
