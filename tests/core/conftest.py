"""Shared fixtures for core protocol tests."""

import pytest

from repro.core import ControlPlaneConfig, Deployment
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def build(sim, config=None, cpfs_per_region=1, regions=2, **kwargs):
    config = config or ControlPlaneConfig.neutrino()
    return Deployment.build_grid(
        sim, config, cpfs_per_region=cpfs_per_region, regions=regions, **kwargs
    )


@pytest.fixture
def neutrino(sim):
    return build(sim)


@pytest.fixture
def neutrino_2x2(sim):
    return build(sim, cpfs_per_region=2)


@pytest.fixture
def epc(sim):
    return build(sim, ControlPlaneConfig.existing_epc())


def run_proc(dep, ue, name, target_bs=None, until=None):
    """Run one procedure to completion; returns the outcome."""
    proc = dep.sim.process(ue.execute(name, target_bs=target_bs))
    dep.sim.run(until=until) if until else dep.sim.run()
    assert proc.fired, "procedure did not finish"
    return proc.value
