"""Failure-recovery tests: the four scenarios of §4.2.5.

S1  primary fails, backup synced, no ongoing procedure -> promote.
S2  primary fails mid-procedure, backup synced through the previous
    procedure -> CTA replays the log tail at the backup, then promote.
S3  primary fails, no synced backup -> UE Re-Attaches.
S4  CTA fails -> UE Re-Attaches through another CTA.
"""

import pytest

from repro.core import ControlPlaneConfig

from .conftest import build, run_proc


def attach_and_settle(dep, ue_id="ue-1", bs="bs-20-0"):
    """Attach a UE and let replication ACKs land."""
    ue = dep.new_ue(ue_id, bs)
    run_proc(dep, ue, "attach")
    dep.sim.run(until=dep.sim.now + 0.2)
    return ue


class TestScenario1PromoteSyncedBackup:
    def test_next_procedure_served_by_promoted_backup(self, sim, neutrino):
        ue = attach_and_settle(neutrino)
        old_primary = neutrino.primary_of("ue-1")
        backup = neutrino.replicas_of("ue-1")[0]
        neutrino.fail_cpf(old_primary)
        outcome = run_proc(neutrino, ue, "service_request")
        assert outcome.completed
        assert outcome.recovered
        assert not outcome.reattached  # failure fully masked
        assert neutrino.primary_of("ue-1") == backup

    def test_only_triggering_message_replayed_when_synced(self, sim, neutrino):
        # The SR's first message is logged before the dead primary is
        # discovered, so exactly that one message is replayed; the
        # backup was otherwise fully synced.
        ue = attach_and_settle(neutrino)
        neutrino.fail_cpf(neutrino.primary_of("ue-1"))
        run_proc(neutrino, ue, "service_request")
        assert neutrino.auditor.failovers_masked == 1
        assert neutrino.auditor.messages_replayed <= 1

    def test_reader_version_preserved(self, sim, neutrino):
        ue = attach_and_settle(neutrino)
        neutrino.fail_cpf(neutrino.primary_of("ue-1"))
        run_proc(neutrino, ue, "service_request")
        assert ue.completed_version == 2  # attach + SR, nothing lost


class TestScenario2ReplayOnBackup:
    def _fail_mid_procedure(self, dep, ue, proc="service_request"):
        # Deterministically catch the procedure mid-flight: occupy the
        # primary with a long job so the UE's message queues behind it,
        # then kill the primary while the message is queued.
        primary_name = dep.primary_of(ue.ue_id)
        primary = dep.cpfs[primary_name]
        primary.server.submit(0.002)
        proc_handle = dep.sim.process(ue.execute(proc))
        dep.sim.schedule(0.001, dep.fail_cpf, primary_name)
        dep.sim.run(until=dep.sim.now + 1.0)
        assert proc_handle.fired, "procedure hung"
        return proc_handle.value

    def test_mid_procedure_failure_replays_and_resumes(self, sim, neutrino):
        ue = attach_and_settle(neutrino)
        outcome = self._fail_mid_procedure(neutrino, ue)
        assert outcome.completed
        assert outcome.recovered
        assert not outcome.reattached
        assert neutrino.auditor.messages_replayed >= 1

    def test_replayed_state_is_current(self, sim, neutrino):
        ue = attach_and_settle(neutrino)
        self._fail_mid_procedure(neutrino, ue)
        entry = neutrino.cpfs[neutrino.primary_of("ue-1")].store.get("ue-1")
        assert entry.state.version == ue.completed_version
        assert entry.is_primary

    def test_consistency_held_through_replay(self, sim, neutrino):
        ue = attach_and_settle(neutrino)
        self._fail_mid_procedure(neutrino, ue)
        run_proc(neutrino, ue, "service_request")
        assert neutrino.auditor.read_your_writes_held


class TestScenario3NoSyncedBackup:
    def test_unsynced_backup_forces_reattach(self, sim, neutrino):
        ue = neutrino.new_ue("ue-1", "bs-20-0")
        proc = sim.process(ue.execute("attach"))
        sim.run(until=1.0)
        # Kill primary AND its backup copy: wipe the backup's entry to
        # model a checkpoint that never arrived, then fail the primary.
        for backup in neutrino.replicas_of("ue-1"):
            neutrino.cpfs[backup].store.drop("ue-1")
        neutrino.fail_cpf(neutrino.primary_of("ue-1"))
        outcome = run_proc(neutrino, ue, "service_request")
        assert outcome.reattached
        assert outcome.completed is False or outcome.pct is not None

    def test_outdated_backup_not_promoted(self, sim, neutrino):
        ue = attach_and_settle(neutrino)
        for backup in neutrino.replicas_of("ue-1"):
            neutrino.cpfs[backup].store.mark_outdated("ue-1")
        neutrino.fail_cpf(neutrino.primary_of("ue-1"))
        outcome = run_proc(neutrino, ue, "service_request")
        assert outcome.reattached
        assert neutrino.auditor.read_your_writes_held

    def test_reattach_rebuilds_consistent_state(self, sim, neutrino):
        ue = attach_and_settle(neutrino)
        for backup in neutrino.replicas_of("ue-1"):
            neutrino.cpfs[backup].store.drop("ue-1")
        neutrino.fail_cpf(neutrino.primary_of("ue-1"))
        run_proc(neutrino, ue, "service_request")
        entry = neutrino.cpfs[neutrino.primary_of("ue-1")].store.get("ue-1")
        assert entry is not None
        assert entry.state.attached
        assert ue.completed_version == entry.state.version


class TestScenario4CtaFailure:
    def test_cta_failure_forces_reattach_via_new_cta(self, sim, neutrino):
        ue = attach_and_settle(neutrino)
        neutrino.fail_cta("cta-20")
        outcome = run_proc(neutrino, ue, "service_request")
        assert outcome.reattached
        # region 20 adopted a surviving CTA
        adopted = neutrino.cta_for_region("20")
        assert adopted is not None and adopted.up

    def test_cta_failure_loses_log(self, sim, neutrino):
        cta = neutrino.ctas["cta-20"]
        cta.log.append(1, "ue-1", "m", 100)
        neutrino.fail_cta("cta-20")
        assert cta.log.entry_count() == 0

    def test_consistency_held_after_cta_failure(self, sim, neutrino):
        ue = attach_and_settle(neutrino)
        neutrino.fail_cta("cta-20")
        run_proc(neutrino, ue, "service_request")
        run_proc(neutrino, ue, "service_request")
        assert neutrino.auditor.read_your_writes_held


class TestEpcRecovery:
    def test_epc_always_reattaches(self, sim, epc):
        ue = attach_and_settle(epc)
        epc.fail_cpf(epc.primary_of("ue-1"))
        outcome = run_proc(epc, ue, "service_request")
        assert outcome.reattached
        assert epc.auditor.failovers_masked == 0

    def test_epc_recovery_slower_than_neutrino(self, sim):
        from repro.sim import Simulator

        pcts = {}
        for config in (ControlPlaneConfig.existing_epc(), ControlPlaneConfig.neutrino()):
            local = Simulator()
            dep = build(local, config)
            ue = dep.new_ue("ue-1", "bs-20-0")
            run_proc(dep, ue, "attach")
            local.run(until=local.now + 0.2)
            dep.fail_cpf(dep.primary_of("ue-1"))
            outcome = run_proc(dep, ue, "service_request")
            pcts[config.name] = outcome.pct
        assert pcts["neutrino"] < pcts["existing_epc"]


class TestFailureAccounting:
    def test_failed_cpf_loses_state(self, sim, neutrino):
        attach_and_settle(neutrino)
        primary = neutrino.primary_of("ue-1")
        neutrino.fail_cpf(primary)
        assert len(neutrino.cpfs[primary].store) == 0

    def test_recovered_cpf_starts_empty(self, sim, neutrino):
        attach_and_settle(neutrino)
        primary = neutrino.primary_of("ue-1")
        neutrino.fail_cpf(primary)
        neutrino.recover_cpf(primary)
        assert neutrino.cpfs[primary].up
        assert len(neutrino.cpfs[primary].store) == 0

    def test_all_cpfs_down_aborts(self, sim, neutrino):
        ue = attach_and_settle(neutrino)
        for name in list(neutrino.cpfs):
            neutrino.fail_cpf(name)
        proc = sim.process(ue.execute("service_request"))
        sim.run(until=sim.now + 2.0)
        assert proc.fired and not proc.ok
