"""Downlink delivery and the §3.1 UE-Core inconsistency scenario.

The paper's motivating example: a UE attaches; the CPF fails before
updating any replica; the UE believes it is Attached while the core has
no state — downlink data/voice cannot be delivered until the UE
Re-Attaches.  Neutrino's synced replicas close that window.
"""

import pytest

from repro.core import ControlPlaneConfig

from .conftest import build, run_proc


def deliver(dep, ue_id):
    handle = dep.sim.process(dep.deliver_downlink(ue_id))
    dep.sim.run(until=dep.sim.now + 1.0)
    assert handle.fired
    return handle.value


class TestHealthyDelivery:
    def test_attached_ue_reachable(self, sim, neutrino):
        ue = neutrino.new_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "attach")
        delivered, served_by = deliver(neutrino, "ue-1")
        assert delivered
        assert served_by == neutrino.primary_of("ue-1")

    def test_unknown_ue_unreachable(self, sim, neutrino):
        delivered, served_by = deliver(neutrino, "ghost")
        assert not delivered and served_by is None

    def test_detached_ue_unreachable(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "detach")
        delivered, _ = deliver(neutrino, "ue-1")
        assert not delivered


class TestSection31Scenario:
    """The exact Fig. 2 sequence of the paper."""

    def _attach_then_fail_before_replication(self, dep):
        ue = dep.new_ue("ue-1", "bs-20-0")
        run_proc(dep, ue, "attach")
        # CPF fails right after attach completes, before any replica
        # copy exists (we wipe in-flight copies to model the race).
        for backup in dep.replicas_of("ue-1"):
            dep.cpfs[backup].store.drop("ue-1")
        dep.fail_cpf(dep.primary_of("ue-1"))
        return ue

    def test_epc_cannot_deliver_after_failure(self, sim, epc):
        ue = self._attach_then_fail_before_replication(epc)
        assert ue.attached  # the UE still believes it is Attached...
        delivered, _ = deliver(epc, "ue-1")
        assert not delivered  # ...but the core cannot reach it (§3.1)

    def test_reattach_restores_delivery(self, sim, epc):
        ue = self._attach_then_fail_before_replication(epc)
        run_proc(epc, ue, "re_attach")
        delivered, _ = deliver(epc, "ue-1")
        assert delivered

    def test_neutrino_synced_replica_keeps_ue_reachable(self, sim, neutrino):
        ue = neutrino.new_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "attach")
        sim.run(until=sim.now + 0.2)  # checkpoint ACKs land
        neutrino.fail_cpf(neutrino.primary_of("ue-1"))
        delivered, served_by = deliver(neutrino, "ue-1")
        assert delivered  # the backup holds up-to-date state
        assert served_by in neutrino.replicas_of("ue-1") or served_by is not None

    def test_neutrino_window_before_checkpoint_is_small_but_real(self, sim, neutrino):
        # Even Neutrino has the window between procedure completion and
        # checkpoint arrival; §4.2.5 scenario 3 covers it via Re-Attach.
        ue = self._attach_then_fail_before_replication(neutrino)
        delivered, _ = deliver(neutrino, "ue-1")
        assert not delivered
        run_proc(neutrino, ue, "re_attach")
        delivered, _ = deliver(neutrino, "ue-1")
        assert delivered
