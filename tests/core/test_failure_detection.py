"""Proactive CPF failure detection via CTA heartbeats (§4.1)."""

import pytest

from repro.core import ControlPlaneConfig, Deployment
from repro.sim import Simulator

from .conftest import build


def run_proc(dep, ue, name):
    # bounded: the heartbeat process keeps the event heap non-empty, so
    # unbounded sim.run() would never return with detection enabled.
    proc = dep.sim.process(ue.execute(name))
    dep.sim.run(until=dep.sim.now + 1.0)
    assert proc.fired, "procedure did not finish"
    return proc.value


def detection_config(**overrides):
    defaults = dict(heartbeat_interval_s=0.01, heartbeat_misses=2)
    defaults.update(overrides)
    return ControlPlaneConfig.neutrino(**defaults)


class TestHeartbeatDetection:
    def test_disabled_by_default(self, sim, neutrino):
        assert neutrino.config.heartbeat_interval_s == 0.0
        assert all(cta.failures_detected == 0 for cta in neutrino.ctas.values())

    def test_detection_counts_after_k_misses(self, sim):
        dep = build(sim, detection_config())
        dep.bootstrap_ue("ue-1", "bs-20-0")
        victim = dep.primary_of("ue-1")
        dep.fail_cpf(victim)
        sim.run(until=0.1)
        region = dep.region_map.region_of_cpf(victim).geohash
        cta = dep.cta_for_region(region)
        assert cta.failures_detected == 1

    def test_detection_fires_once_per_failure(self, sim):
        dep = build(sim, detection_config())
        dep.bootstrap_ue("ue-1", "bs-20-0")
        victim = dep.primary_of("ue-1")
        dep.fail_cpf(victim)
        sim.run(until=0.5)
        region = dep.region_map.region_of_cpf(victim).geohash
        assert dep.cta_for_region(region).failures_detected == 1

    def test_recovered_cpf_can_be_detected_again(self, sim):
        dep = build(sim, detection_config())
        dep.bootstrap_ue("ue-1", "bs-20-0")
        victim = dep.primary_of("ue-1")
        region = dep.region_map.region_of_cpf(victim).geohash
        dep.fail_cpf(victim)
        sim.run(until=0.1)
        dep.recover_cpf(victim)
        sim.run(until=0.2)
        dep.fail_cpf(victim)
        sim.run(until=0.3)
        assert dep.cta_for_region(region).failures_detected == 2

    def test_idle_ue_promoted_before_it_notices(self, sim):
        """The key benefit: the failover happens in the background."""
        dep = build(sim, detection_config())
        ue = dep.bootstrap_ue("ue-1", "bs-20-0")
        victim = dep.primary_of("ue-1")
        backup = dep.replicas_of("ue-1")[0]
        dep.fail_cpf(victim)
        sim.run(until=0.5)  # heartbeats detect; background failover runs
        assert dep.primary_of("ue-1") == backup
        # The UE's next procedure is served with no visible recovery.
        outcome = run_proc(dep, ue, "service_request")
        assert outcome.completed
        assert not outcome.recovered

    def test_busy_ue_left_to_its_own_recovery(self, sim):
        dep = build(sim, detection_config())
        ue = dep.bootstrap_ue("ue-1", "bs-20-0")
        ue.busy = True  # simulating an in-flight procedure
        dep.fail_cpf(dep.primary_of("ue-1"))
        sim.run(until=0.2)
        # placement untouched by the proactive path (reactive path owns it)
        assert dep.primary_of("ue-1") is not None

    def test_consistency_held_under_proactive_failover(self, sim):
        dep = build(sim, detection_config())
        ue = dep.bootstrap_ue("ue-1", "bs-20-0")
        run_proc(dep, ue, "service_request")
        sim.run(until=sim.now + 0.2)
        dep.fail_cpf(dep.primary_of("ue-1"))
        sim.run(until=sim.now + 0.5)
        run_proc(dep, ue, "service_request")
        assert dep.auditor.read_your_writes_held
