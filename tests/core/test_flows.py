"""End-to-end procedure flows on a healthy deployment."""

import pytest

from repro.core import ControlPlaneConfig, Deployment
from repro.sim import Simulator

from .conftest import build, run_proc


class TestAttach:
    def test_attach_creates_primary_state(self, sim, neutrino):
        ue = neutrino.new_ue("ue-1", "bs-20-0")
        outcome = run_proc(neutrino, ue, "attach")
        assert outcome.completed and outcome.pct is not None
        placement = neutrino.placement_of("ue-1")
        entry = neutrino.cpfs[placement.primary].store.get("ue-1")
        assert entry.is_primary
        assert entry.state.attached
        assert entry.state.version == 1

    def test_attach_sets_ue_reader_version(self, sim, neutrino):
        ue = neutrino.new_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "attach")
        assert ue.attached
        assert ue.completed_version == 1

    def test_attach_replicates_to_backups(self, sim, neutrino):
        ue = neutrino.new_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "attach")
        for backup_name in neutrino.replicas_of("ue-1"):
            entry = neutrino.cpfs[backup_name].store.get("ue-1")
            assert entry is not None
            assert entry.up_to_date
            assert entry.state.version == 1

    def test_attach_creates_upf_session(self, sim, neutrino):
        ue = neutrino.new_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "attach")
        upf = neutrino.upf_for_region("20")
        assert upf.has_path("ue-1")

    def test_backups_outside_home_region(self, sim, neutrino):
        ue = neutrino.new_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "attach")
        home = set(neutrino.region_map.region("20").cpfs)
        for backup in neutrino.replicas_of("ue-1"):
            assert backup not in home

    def test_log_pruned_after_acks(self, sim, neutrino):
        ue = neutrino.new_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "attach")
        sim.run(until=sim.now + 0.1)  # let ACKs land
        cta = neutrino.cta_of("ue-1")
        assert cta.log.entry_count() == 0
        assert cta.log.appended > 0

    def test_attach_pct_recorded(self, sim, neutrino):
        ue = neutrino.new_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "attach")
        assert neutrino.pct["attach"].count == 1
        assert 0 < neutrino.pct["attach"].median < 0.05

    def test_epc_does_not_replicate(self, sim, epc):
        ue = epc.new_ue("ue-1", "bs-20-0")
        run_proc(epc, ue, "attach")
        assert epc.replicas_of("ue-1") == []
        other_stores = [
            cpf for name, cpf in epc.cpfs.items() if name != epc.primary_of("ue-1")
        ]
        assert all(store.store.get("ue-1") is None for store in other_stores)


class TestServiceRequest:
    def test_sr_on_bootstrapped_ue(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        outcome = run_proc(neutrino, ue, "service_request")
        assert outcome.completed
        assert ue.completed_version == 2

    def test_sr_faster_than_attach(self, sim, neutrino):
        a = neutrino.new_ue("ue-a", "bs-20-0")
        run_proc(neutrino, a, "attach")
        b = neutrino.bootstrap_ue("ue-b", "bs-20-0")
        run_proc(neutrino, b, "service_request")
        assert neutrino.pct["service_request"].median < neutrino.pct["attach"].median

    def test_sequential_procedures_bump_version(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        for expected in (2, 3, 4):
            run_proc(neutrino, ue, "service_request")
            assert ue.completed_version == expected

    def test_checkpoint_per_procedure(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        primary = neutrino.cpfs[neutrino.primary_of("ue-1")]
        before = primary.checkpoints_sent
        run_proc(neutrino, ue, "service_request")
        assert primary.checkpoints_sent == before + 1


class TestHandover:
    def test_handover_moves_placement(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        old_primary = neutrino.primary_of("ue-1")
        run_proc(neutrino, ue, "handover", target_bs="bs-21-0")
        placement = neutrino.placement_of("ue-1")
        assert placement.region == "21"
        assert placement.primary in neutrino.region_map.region("21").cpfs
        assert ue.bs_name == "bs-21-0"

    def test_handover_migrates_state_version(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "service_request")
        run_proc(neutrino, ue, "handover", target_bs="bs-21-0")
        new_primary = neutrino.cpfs[neutrino.primary_of("ue-1")]
        assert new_primary.store.get("ue-1").state.version == ue.completed_version

    def test_old_copies_marked_outdated(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        old_primary = neutrino.primary_of("ue-1")
        run_proc(neutrino, ue, "handover", target_bs="bs-21-0")
        new_primary = neutrino.primary_of("ue-1")
        if old_primary != new_primary:
            entry = neutrino.cpfs[old_primary].store.get("ue-1")
            assert entry is None or not entry.up_to_date or entry.synced_clock > 0

    def test_fast_handover_avoids_migration_leg(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        inter_before = neutrino.links["cpf_cpf_inter"].messages_sent
        run_proc(neutrino, ue, "fast_handover", target_bs="bs-21-0")
        # the only inter-region messages are checkpoint shipping, not a
        # synchronous state migration; fast HO must finish and be fast
        assert neutrino.pct["fast_handover"].count == 1

    def test_fast_handover_faster_than_default(self, sim):
        results = {}
        for proc in ("handover", "fast_handover"):
            local_sim = Simulator()
            dep = build(local_sim)
            ue = dep.bootstrap_ue("ue-1", "bs-20-0")
            run_proc(dep, ue, proc, target_bs="bs-21-0")
            results[proc] = dep.pct[proc].median
        assert results["fast_handover"] < results["handover"]

    def test_intra_handover_keeps_cpf(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        primary = neutrino.primary_of("ue-1")
        run_proc(neutrino, ue, "intra_handover")
        assert neutrino.primary_of("ue-1") == primary

    def test_handover_requires_target(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        proc = sim.process(ue.execute("handover"))
        sim.run()
        assert proc.fired and not proc.ok  # ValueError propagates


class TestOtherProcedures:
    def test_tau_roundtrip(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        outcome = run_proc(neutrino, ue, "tau")
        assert outcome.completed

    def test_detach_clears_activity(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "detach")
        entry = neutrino.cpfs[neutrino.primary_of("ue-1")].store.get("ue-1")
        assert not entry.state.attached

    def test_unknown_procedure_rejected(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        proc = sim.process(ue.execute("levitate"))
        sim.run()
        assert proc.fired and not proc.ok


class TestDpcmFlows:
    def test_dpcm_attach_uses_override(self, sim):
        dep = build(sim, ControlPlaneConfig.dpcm())
        spec = dep.spec("attach")
        assert len(spec.steps) < len(build(Simulator()).spec("attach").steps)

    def test_dpcm_attach_completes(self, sim):
        dep = build(sim, ControlPlaneConfig.dpcm())
        ue = dep.new_ue("ue-1", "bs-20-0")
        outcome = run_proc(dep, ue, "attach")
        assert outcome.completed
        assert ue.attached
