"""Unit tests for UPF, BaseStation, CTA, and deployment helpers."""

import pytest

from repro.core import ControlPlaneConfig, Deployment
from repro.sim import NodeFailed, Simulator

from .conftest import build


class TestUPF:
    def test_create_session(self, sim, neutrino):
        upf = neutrino.upf_for_region("20")
        sim.process(iter([upf.program("CreateSessionRequest", "ue-1", "bs-20-0")]))
        done = upf.program("CreateSessionRequest", "ue-1", "bs-20-0")
        sim.run()
        assert upf.has_path("ue-1")
        assert upf.has_path("ue-1", "bs-20-0")
        assert not upf.has_path("ue-1", "bs-21-0")

    def test_modify_bearer_switches_bs(self, sim, neutrino):
        upf = neutrino.upf_for_region("20")
        upf.program("CreateSessionRequest", "ue-1", "bs-20-0")
        upf.program("ModifyBearerRequest", "ue-1", "bs-20-1")
        sim.run()
        assert upf.has_path("ue-1", "bs-20-1")

    def test_delete_session(self, sim, neutrino):
        upf = neutrino.upf_for_region("20")
        upf.program("CreateSessionRequest", "ue-1", "bs-20-0")
        upf.program("DeleteSessionRequest", "ue-1", "bs-20-0")
        sim.run()
        assert not upf.has_path("ue-1")

    def test_suspend_blocks_path(self, sim, neutrino):
        upf = neutrino.upf_for_region("20")
        upf.program("CreateSessionRequest", "ue-1", "bs-20-0")
        sim.run()
        upf.suspend("ue-1")
        assert not upf.has_path("ue-1")

    def test_modify_without_session_creates_one(self, sim, neutrino):
        upf = neutrino.upf_for_region("20")
        upf.program("ModifyBearerRequest", "ue-9", "bs-20-0")
        sim.run()
        assert upf.has_path("ue-9")

    def test_teids_unique(self, sim, neutrino):
        upf = neutrino.upf_for_region("20")
        upf.program("CreateSessionRequest", "a", "bs-20-0")
        upf.program("CreateSessionRequest", "b", "bs-20-0")
        sim.run()
        assert upf.sessions["a"].teid != upf.sessions["b"].teid


class TestBaseStation:
    def test_codec_affects_relay_delay(self, sim):
        fast = build(Simulator(), ControlPlaneConfig.neutrino())
        slow = build(Simulator(), ControlPlaneConfig.existing_epc())
        msg = "InitialUEMessage"
        assert fast.bss["bs-20-0"].uplink_delay(msg) < slow.bss["bs-20-0"].uplink_delay(msg)

    def test_counters_increment(self, sim, neutrino):
        bs = neutrino.bss["bs-20-0"]
        bs.uplink_delay("InitialUEMessage")
        bs.downlink_delay("Paging")
        assert bs.uplink_messages == 1
        assert bs.downlink_messages == 1


class TestCTAUnits:
    def test_ingest_assigns_increasing_clocks(self, sim, neutrino):
        cta = neutrino.ctas["cta-20"]
        ev1 = cta.ingest("ue-1", "InitialUEMessage", 100)
        ev2 = cta.ingest("ue-1", "UplinkNASTransport", 100)
        sim.run()
        assert ev2.value > ev1.value

    def test_clocks_are_per_ue(self, sim, neutrino):
        cta = neutrino.ctas["cta-20"]
        a = cta.ingest("ue-a", "InitialUEMessage", 100)
        b = cta.ingest("ue-b", "InitialUEMessage", 100)
        sim.run()
        assert a.value == 1 and b.value == 1

    def test_ingest_fails_when_down(self, sim, neutrino):
        cta = neutrino.ctas["cta-20"]
        cta.fail()
        ev = cta.ingest("ue-1", "InitialUEMessage", 100)
        assert ev.fired and not ev.ok

    def test_respond_fails_when_down(self, sim, neutrino):
        cta = neutrino.ctas["cta-20"]
        cta.fail()
        ev = cta.respond()
        assert ev.fired and not ev.ok

    def test_logging_disabled_skips_log(self, sim, epc):
        cta = epc.ctas["cta-20"]
        cta.ingest("ue-1", "InitialUEMessage", 100)
        sim.run()
        assert cta.log.entry_count() == 0


class TestDeploymentHelpers:
    def test_m_tmsi_nonzero_and_stable(self, sim, neutrino):
        assert neutrino.m_tmsi_of("ue-1") == neutrino.m_tmsi_of("ue-1")
        assert neutrino.m_tmsi_of("ue-1") != 0

    def test_duplicate_ue_rejected(self, sim, neutrino):
        neutrino.new_ue("ue-1", "bs-20-0")
        with pytest.raises(ValueError):
            neutrino.new_ue("ue-1", "bs-20-0")

    def test_unknown_bs_rejected(self, sim, neutrino):
        with pytest.raises(KeyError):
            neutrino.new_ue("ue-1", "bs-99-0")

    def test_cpf_hop_classes(self, sim, neutrino):
        assert neutrino.cpf_hop("cpf-20-0", "cpf-20-0") == "cpf_cpf_intra"
        assert neutrino.cpf_hop("cpf-20-0", "cpf-21-0") == "cpf_cpf_inter"

    def test_cta_hop_from_region(self, sim, neutrino):
        assert neutrino.cpf_hop_from_cta("20", "cpf-20-0") == "cta_cpf"
        assert neutrino.cpf_hop_from_cta("20", "cpf-21-0") == "cpf_cpf_inter"

    def test_fallback_cta_skips_dead(self, sim, neutrino):
        neutrino.fail_cta("cta-20")
        fallback = neutrino.fallback_cta("20")
        assert fallback is not None and fallback.up

    def test_fallback_none_when_all_dead(self, sim, neutrino):
        for name in list(neutrino.ctas):
            neutrino.fail_cta(name)
        assert neutrino.fallback_cta("20") is None

    def test_bootstrap_creates_replicated_state(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        assert ue.attached and ue.completed_version == 1
        placement = neutrino.placement_of("ue-1")
        for name in [placement.primary] + placement.backups:
            assert neutrino.cpfs[name].store.get("ue-1") is not None

    def test_grid_regions_validated(self, sim):
        with pytest.raises(ValueError):
            Deployment.build_grid(sim, ControlPlaneConfig.neutrino(), regions=0)
        with pytest.raises(ValueError):
            Deployment.build_grid(sim, ControlPlaneConfig.neutrino(), regions=5)

    def test_max_log_bytes_aggregates_ctas(self, sim, neutrino):
        neutrino.ctas["cta-20"].log.append(1, "u", "m", 100)
        assert neutrino.max_log_bytes() > 0

    def test_alive_primary_avoids_dead_region(self, sim, neutrino):
        for cpf in neutrino.region_map.region("20").cpfs:
            neutrino.fail_cpf(cpf)
        primary = neutrino._alive_primary("ue-1", "20")
        assert neutrino.cpfs[primary].up
        assert neutrino.region_map.region_of_cpf(primary).geohash != "20"

    def test_alive_primary_raises_when_none(self, sim, neutrino):
        for name in list(neutrino.cpfs):
            neutrino.fail_cpf(name)
        with pytest.raises(LookupError):
            neutrino._alive_primary("ue-1", "20")


class TestDeploymentSummary:
    def test_summary_structure(self, sim, neutrino):
        from .conftest import run_proc

        ue = neutrino.new_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "attach")
        summary = neutrino.summary()
        assert summary["config"] == "neutrino"
        assert summary["ues"] == 1
        assert summary["consistency"]["read_your_writes_held"]
        assert summary["pct_ms"]["attach"]["count"] == 1
        assert summary["pct_ms"]["attach"]["p50"] > 0
        primary = neutrino.primary_of("ue-1")
        assert summary["cpfs"][primary]["messages_handled"] > 0
        assert summary["links"]["ue_bs"]["messages"] > 0

    def test_summary_json_serializable(self, sim, neutrino):
        import json

        neutrino.bootstrap_ue("ue-1", "bs-20-0")
        json.dumps(neutrino.summary())  # must not raise

    def test_summary_reflects_failures(self, sim, neutrino):
        neutrino.bootstrap_ue("ue-1", "bs-20-0")
        victim = neutrino.primary_of("ue-1")
        neutrino.fail_cpf(victim)
        summary = neutrino.summary()
        assert summary["cpfs"][victim]["up"] is False
