"""Tests for UE state and the per-CPF state store."""

import pytest

from repro.core import StateEntry, StateStore, StaleStateError, UEState


class TestUEState:
    def test_new_state_detached(self):
        state = UEState("ue-1", 42)
        assert not state.attached
        assert state.version == 0

    def test_message_bumps_ops_not_version(self):
        state = UEState("ue-1", 42)
        state.apply_message()
        state.apply_message()
        assert state.ops_in_procedure == 2
        assert state.version == 0

    def test_complete_procedure_commits(self):
        state = UEState("ue-1", 42)
        state.apply_message()
        state.complete_procedure("attach")
        assert state.version == 1
        assert state.ops_in_procedure == 0
        assert state.attached and state.active

    def test_detach_clears_flags(self):
        state = UEState("ue-1", 42)
        state.complete_procedure("attach")
        state.complete_procedure("detach")
        assert not state.attached and not state.active
        assert state.version == 2

    def test_service_request_reactivates(self):
        state = UEState("ue-1", 42)
        state.complete_procedure("attach")
        state.active = False
        state.complete_procedure("service_request")
        assert state.active

    def test_copy_is_independent(self):
        state = UEState("ue-1", 42)
        snapshot = state.copy()
        state.complete_procedure("attach")
        assert snapshot.version == 0
        assert state.version == 1


class TestStateStore:
    def test_create_and_get(self):
        store = StateStore("cpf-1")
        entry = store.create("ue-1", 42, is_primary=True)
        assert store.get("ue-1") is entry
        assert entry.is_primary
        assert "ue-1" in store
        assert len(store) == 1

    def test_get_missing_is_none(self):
        assert StateStore("cpf-1").get("ue-x") is None

    def test_require_current_raises_when_absent(self):
        store = StateStore("cpf-1")
        with pytest.raises(StaleStateError):
            store.require_current("ue-1")

    def test_require_current_raises_when_outdated(self):
        store = StateStore("cpf-1")
        store.create("ue-1", 42, is_primary=False)
        store.mark_outdated("ue-1")
        with pytest.raises(StaleStateError) as err:
            store.require_current("ue-1")
        assert err.value.cpf_name == "cpf-1"

    def test_install_snapshot_sets_metadata(self):
        store = StateStore("cpf-1")
        snapshot = UEState("ue-1", 42)
        snapshot.version = 3
        entry = store.install_snapshot("ue-1", snapshot, synced_clock=17)
        assert entry.version == 3
        assert entry.synced_clock == 17
        assert entry.up_to_date

    def test_install_older_snapshot_ignored(self):
        # §4.2.4(1a): the boundary clock lets replicas ignore the
        # reception of outdated state.
        store = StateStore("cpf-1")
        fresh = UEState("ue-1", 42)
        fresh.version = 5
        store.install_snapshot("ue-1", fresh, synced_clock=20)
        stale = UEState("ue-1", 42)
        stale.version = 2
        entry = store.install_snapshot("ue-1", stale, synced_clock=10)
        assert entry.version == 5
        assert entry.synced_clock == 20

    def test_install_refreshes_outdated_entry(self):
        # §4.2.4(2): a state update for a previously-outdated UE makes
        # it up-to-date again.
        store = StateStore("cpf-1")
        store.create("ue-1", 42, is_primary=False)
        store.mark_outdated("ue-1")
        snapshot = UEState("ue-1", 42)
        snapshot.version = 1
        entry = store.install_snapshot("ue-1", snapshot, synced_clock=5)
        assert entry.up_to_date

    def test_snapshot_install_copies(self):
        store = StateStore("cpf-1")
        snapshot = UEState("ue-1", 42)
        store.install_snapshot("ue-1", snapshot, 1)
        snapshot.version = 99
        assert store.get("ue-1").version == 0

    def test_mark_outdated_missing_is_noop(self):
        StateStore("cpf-1").mark_outdated("nobody")

    def test_clear_loses_everything(self):
        store = StateStore("cpf-1")
        store.create("a", 1, True)
        store.create("b", 2, False)
        store.clear()
        assert len(store) == 0

    def test_drop_single(self):
        store = StateStore("cpf-1")
        store.create("a", 1, True)
        store.drop("a")
        store.drop("a")  # idempotent
        assert store.get("a") is None

    def test_ue_ids_sorted(self):
        store = StateStore("cpf-1")
        for ue in ("c", "a", "b"):
            store.create(ue, 1, False)
        assert store.ue_ids() == ["a", "b", "c"]
