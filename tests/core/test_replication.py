"""Replication protocol tests: checkpoints, ACKs, outdated marking."""

import pytest

from repro.core import ControlPlaneConfig

from .conftest import build, run_proc


class TestPerProcedureSync:
    def test_checkpoint_ships_async(self, sim, neutrino):
        ue = neutrino.new_ue("ue-1", "bs-20-0")
        proc = sim.process(ue.execute("attach"))
        sim.run(until=1.0)
        backup = neutrino.replicas_of("ue-1")[0]
        entry = neutrino.cpfs[backup].store.get("ue-1")
        assert entry is not None and entry.version == 1

    def test_one_checkpoint_per_procedure(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        primary = neutrino.cpfs[neutrino.primary_of("ue-1")]
        for _ in range(3):
            run_proc(neutrino, ue, "service_request")
        assert primary.checkpoints_sent == 3

    def test_acks_prune_the_log(self, sim, neutrino):
        ue = neutrino.new_ue("ue-1", "bs-20-0")
        run_proc(neutrino, ue, "attach")
        sim.run(until=sim.now + 0.5)
        assert neutrino.cta_of("ue-1").log.entry_count() == 0

    def test_backup_synced_clock_advances(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        backup = neutrino.replicas_of("ue-1")[0]
        before = neutrino.cpfs[backup].store.get("ue-1").synced_clock
        run_proc(neutrino, ue, "service_request")
        sim.run(until=sim.now + 0.5)
        after = neutrino.cpfs[backup].store.get("ue-1").synced_clock
        assert after > before


class TestPerMessageSync:
    def test_checkpoints_per_message(self, sim):
        dep = build(sim, ControlPlaneConfig.neutrino(
            name="permsg", sync_mode="per_message"))
        ue = dep.bootstrap_ue("ue-1", "bs-20-0")
        primary = dep.cpfs[dep.primary_of("ue-1")]
        run_proc(dep, ue, "service_request")
        # SR handles >= 2 uplink messages; each triggers a checkpoint.
        assert primary.checkpoints_sent >= 2

    def test_per_message_costs_more_cpu(self, sim):
        per_msg = ControlPlaneConfig.neutrino(name="permsg", sync_mode="per_message")
        per_proc = ControlPlaneConfig.neutrino()
        cpf_args = ("InitialUEMessage", "DownlinkNASTransport")
        from repro.core.cpf import CPF
        from repro.sim import Simulator

        costs = {}
        for config in (per_msg, per_proc):
            dep = build(Simulator(), config)
            cpf = next(iter(dep.cpfs.values()))
            costs[config.sync_mode] = cpf.message_service_time(*cpf_args)
        assert costs["per_message"] > costs["per_procedure"]


class TestBroadcastReplication:
    def test_skycore_broadcasts_to_all(self, sim):
        dep = build(
            sim,
            ControlPlaneConfig.skycore(),
            cpfs_per_region=2,
        )
        ue = dep.new_ue("ue-1", "bs-20-0")
        run_proc(dep, ue, "attach")
        sim.run(until=sim.now + 0.5)
        primary = dep.primary_of("ue-1")
        holders = [
            name for name, cpf in dep.cpfs.items() if cpf.store.get("ue-1") is not None
        ]
        assert len(holders) == len(dep.cpfs)  # everyone got a copy


class TestOnIdleSync:
    def test_on_idle_leaves_backups_stale(self, sim):
        # SCALE-style: replicas only updated on idle transitions, so a
        # mid-activity snapshot is stale — the §3.1 problem.
        dep = build(sim, ControlPlaneConfig.neutrino(name="scale", sync_mode="on_idle"))
        ue = dep.new_ue("ue-1", "bs-20-0")
        run_proc(dep, ue, "attach")
        run_proc(dep, ue, "service_request")
        sim.run(until=sim.now + 0.5)
        backup = dep.replicas_of("ue-1")[0]
        entry = dep.cpfs[backup].store.get("ue-1")
        assert entry is None or entry.version < ue.completed_version


class TestOutdatedMarking:
    def test_concurrent_procedure_marks_laggards(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        backup = neutrino.replicas_of("ue-1")[0]
        # Pretend the previous procedure's ACK never arrived.
        cta = neutrino.cta_of("ue-1")
        cta.log.append(5, "ue-1", "m", 50)
        cta.log.procedure_completed("ue-1", 5, [backup])
        cta.flag_concurrent_procedure("ue-1")
        entry = neutrino.cpfs[backup].store.get("ue-1")
        assert not entry.up_to_date or entry.synced_clock >= 5
        assert cta.outdated_marked >= 1

    def test_scan_timeout_marks_and_drops(self, sim, neutrino):
        neutrino.bootstrap_ue("ue-1", "bs-20-0")
        backup = neutrino.replicas_of("ue-1")[0]
        cta = neutrino.cta_of("ue-1")
        cta.log.append(7, "ue-1", "m", 50)
        cta.procedure_completed("ue-1", 7, [backup])
        # jump past the ACK timeout; the armed scan fires
        sim.run(until=neutrino.config.ack_timeout_s + 5.0)
        assert cta.log.entry_count() == 0  # §4.2.4(1d)

    def test_repair_refetches_state(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        backup_name = neutrino.replicas_of("ue-1")[0]
        backup = neutrino.cpfs[backup_name]
        backup.store.mark_outdated("ue-1")
        repair = sim.process(
            backup.fetch_state_from("ue-1", neutrino.primary_of("ue-1"))
        )
        sim.run(until=sim.now + 1.0)
        assert repair.value is True
        assert backup.store.get("ue-1").up_to_date

    def test_repair_from_dead_source_fails_gracefully(self, sim, neutrino):
        neutrino.bootstrap_ue("ue-1", "bs-20-0")
        backup = neutrino.cpfs[neutrino.replicas_of("ue-1")[0]]
        primary = neutrino.primary_of("ue-1")
        neutrino.fail_cpf(primary)
        repair = sim.process(backup.fetch_state_from("ue-1", primary))
        sim.run(until=sim.now + 1.0)
        assert repair.value is False


class TestReplicationResilience:
    def test_checkpoint_to_dead_replica_does_not_crash(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        backup = neutrino.replicas_of("ue-1")[0]
        neutrino.fail_cpf(backup)
        outcome = run_proc(neutrino, ue, "service_request")
        assert outcome.completed

    def test_missing_ack_leaves_log_entries(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        backup = neutrino.replicas_of("ue-1")[0]
        neutrino.fail_cpf(backup)
        proc = sim.process(ue.execute("service_request"))
        sim.run(until=0.5)  # bounded: stay inside the 30 s ACK timeout
        assert proc.fired
        cta = neutrino.cta_of("ue-1")
        assert cta.log.entry_count() > 0  # retained until scan timeout

    def test_missing_ack_pruned_after_scan_timeout(self, sim, neutrino):
        ue = neutrino.bootstrap_ue("ue-1", "bs-20-0")
        backup = neutrino.replicas_of("ue-1")[0]
        neutrino.fail_cpf(backup)
        run_proc(neutrino, ue, "service_request")  # unbounded: drains scans
        cta = neutrino.cta_of("ue-1")
        assert cta.log.entry_count() == 0  # §4.2.4(1d) after timeout

    def test_more_backups_all_receive(self, sim):
        dep = build(sim, ControlPlaneConfig.neutrino(n_backups=2), regions=3)
        ue = dep.new_ue("ue-1", "bs-20-0")
        run_proc(dep, ue, "attach")
        sim.run(until=sim.now + 0.5)
        backups = dep.replicas_of("ue-1")
        assert len(backups) == 2
        for backup in backups:
            assert dep.cpfs[backup].store.get("ue-1").version == 1
