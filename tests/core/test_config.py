"""Tests for control-plane configuration presets and validation."""

import pytest

from repro.core import ControlPlaneConfig


class TestValidation:
    def test_bad_sync_mode_rejected(self):
        with pytest.raises(ValueError):
            ControlPlaneConfig(sync_mode="sometimes")

    def test_bad_recovery_rejected(self):
        with pytest.raises(ValueError):
            ControlPlaneConfig(recovery="pray")

    def test_replication_without_backups_rejected(self):
        with pytest.raises(ValueError):
            ControlPlaneConfig(sync_mode="per_procedure", n_backups=0)

    def test_replay_requires_log(self):
        with pytest.raises(ValueError):
            ControlPlaneConfig(recovery="replay", message_logging=False)

    def test_negative_backups_rejected(self):
        with pytest.raises(ValueError):
            ControlPlaneConfig(n_backups=-1)


class TestPresets:
    def test_neutrino_defaults(self):
        cfg = ControlPlaneConfig.neutrino()
        assert cfg.codec == "flatbuffers_opt"
        assert cfg.sync_mode == "per_procedure"
        assert cfg.message_logging
        assert cfg.recovery == "replay"
        assert cfg.proactive_georep

    def test_existing_epc_defaults(self):
        cfg = ControlPlaneConfig.existing_epc()
        assert cfg.codec == "asn1per"
        assert cfg.sync_mode == "none"
        assert cfg.recovery == "reattach"
        assert not cfg.proactive_georep
        assert cfg.n_backups == 0

    def test_skycore_per_message_broadcast(self):
        cfg = ControlPlaneConfig.skycore()
        assert cfg.sync_mode == "per_message"
        assert cfg.broadcast_replication
        assert cfg.codec == "asn1per"

    def test_dpcm_flag(self):
        cfg = ControlPlaneConfig.dpcm()
        assert cfg.dpcm_mode
        assert cfg.codec == "asn1per"

    def test_preset_overrides(self):
        cfg = ControlPlaneConfig.neutrino(n_backups=3)
        assert cfg.n_backups == 3
        named = ControlPlaneConfig.neutrino(name="custom-neutrino")
        assert named.name == "custom-neutrino"

    def test_variant_copies(self):
        base = ControlPlaneConfig.neutrino()
        variant = base.variant("no-log", message_logging=False, recovery="reattach")
        assert variant.name == "no-log"
        assert not variant.message_logging
        assert base.message_logging  # original untouched

    def test_variant_validates(self):
        base = ControlPlaneConfig.neutrino()
        with pytest.raises(ValueError):
            base.variant("broken", message_logging=False)  # replay needs log
