"""Tests for the parallel sweep runner (repro.experiments.parallel)."""

import pytest

from repro.core import ControlPlaneConfig
from repro.experiments import RunSpec
from repro.experiments.cache import ResultCache
from repro.experiments.figures import fig07_service_request
from repro.experiments.harness import sweep
from repro.experiments.parallel import (
    SweepJob,
    SweepReport,
    default_jobs,
    expand_grid,
    run_jobs,
    run_sweep,
)

QUICK = dict(procedures_target=150, min_duration_s=0.02, max_duration_s=0.08)


def quick_spec(**overrides):
    return RunSpec(**{**QUICK, **overrides})


class TestExpandGrid:
    def test_serial_loop_iteration_order(self):
        configs = [ControlPlaneConfig.neutrino(), ControlPlaneConfig.existing_epc()]
        grid = expand_grid(configs, [10e3, 20e3], None)
        assert [(j.config.name, j.axis_rate) for j in grid] == [
            ("neutrino", 10e3),
            ("neutrino", 20e3),
            ("existing_epc", 10e3),
            ("existing_epc", 20e3),
        ]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestSerialParallelEquality:
    def test_parallel_points_bit_identical_to_serial(self):
        spec = quick_spec(procedure="attach")
        configs = [ControlPlaneConfig.neutrino(), ControlPlaneConfig.existing_epc()]
        grid = expand_grid(configs, [20e3, 40e3], spec)
        serial = run_jobs(grid, jobs=1)
        report = SweepReport()
        parallel = run_jobs(grid, jobs=2, report=report)
        # PCTPoint is a dataclass of floats/ints: == is exact, so this
        # asserts byte-identical rows, not approximate agreement.
        assert serial == parallel
        if not report.parallel:
            pytest.skip("platform fell back to serial: %s" % report.fallback_reason)

    def test_fig07_slice_equality(self):
        spec = quick_spec(procedure="service_request")
        serial = fig07_service_request(rates=(100e3,), spec=spec, jobs=1)
        parallel = fig07_service_request(rates=(100e3,), spec=spec, jobs=4)
        assert serial == parallel

    def test_harness_sweep_delegates(self):
        spec = quick_spec(procedure="attach")
        configs = [ControlPlaneConfig.neutrino()]
        assert sweep(configs, [30e3], spec) == sweep(configs, [30e3], spec, jobs=2)


class TestRunJobs:
    def test_results_positionally_aligned(self):
        spec = quick_spec(procedure="attach")
        grid = [
            SweepJob(ControlPlaneConfig.existing_epc(), 40e3, spec),
            SweepJob(ControlPlaneConfig.neutrino(), 20e3, spec),
        ]
        points = run_jobs(grid, jobs=2)
        assert [(p.scheme, p.axis_rate) for p in points] == [
            ("existing_epc", 40e3),
            ("neutrino", 20e3),
        ]

    def test_report_counts(self, tmp_path):
        spec = quick_spec(procedure="attach")
        grid = expand_grid([ControlPlaneConfig.neutrino()], [20e3, 40e3], spec)
        cache = ResultCache(str(tmp_path / "cache"))
        first = SweepReport()
        run_jobs(grid, jobs=1, cache=cache, report=first)
        assert (first.total, first.executed, first.cached) == (2, 2, 0)
        second = SweepReport()
        run_jobs(grid, jobs=1, cache=cache, report=second)
        assert (second.total, second.executed, second.cached) == (2, 0, 2)

    def test_cached_rerun_does_zero_simulation_work(self, tmp_path, monkeypatch):
        spec = quick_spec(procedure="attach")
        grid = expand_grid([ControlPlaneConfig.neutrino()], [20e3, 40e3], spec)
        cache = ResultCache(str(tmp_path / "cache"))
        warm = run_jobs(grid, jobs=1, cache=cache)

        def boom(*_args, **_kwargs):
            raise AssertionError("simulation ran on a fully cached sweep")

        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "run_pct_point", boom)
        cached = run_jobs(grid, jobs=1, cache=cache)
        assert cached == warm

    def test_worker_error_propagates(self):
        bad = SweepJob(ControlPlaneConfig.neutrino(), -5.0, quick_spec())
        with pytest.raises(ValueError):
            run_jobs([bad], jobs=2)


class TestRunSweep:
    def test_grouped_like_serial_sweep(self):
        spec = quick_spec(procedure="attach")
        configs = [ControlPlaneConfig.neutrino(), ControlPlaneConfig.existing_epc()]
        grouped = run_sweep(configs, [20e3, 40e3], spec, jobs=2)
        assert list(grouped) == ["neutrino", "existing_epc"]
        assert [p.axis_rate for p in grouped["neutrino"]] == [20e3, 40e3]
