"""Tests for the parallel sweep runner (repro.experiments.parallel)."""

import os

import pytest

from repro.core import ControlPlaneConfig
from repro.experiments import RunSpec
from repro.experiments.cache import ResultCache, task_key
from repro.experiments.figures import fig07_service_request
from repro.experiments.harness import sweep
from repro.experiments.parallel import (
    SweepJob,
    SweepReport,
    _run_pool,
    default_jobs,
    expand_grid,
    run_jobs,
    run_sweep,
    run_tasks,
)

QUICK = dict(procedures_target=150, min_duration_s=0.02, max_duration_s=0.08)


def quick_spec(**overrides):
    return RunSpec(**{**QUICK, **overrides})


class TestExpandGrid:
    def test_serial_loop_iteration_order(self):
        configs = [ControlPlaneConfig.neutrino(), ControlPlaneConfig.existing_epc()]
        grid = expand_grid(configs, [10e3, 20e3], None)
        assert [(j.config.name, j.axis_rate) for j in grid] == [
            ("neutrino", 10e3),
            ("neutrino", 20e3),
            ("existing_epc", 10e3),
            ("existing_epc", 20e3),
        ]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestSerialParallelEquality:
    def test_parallel_points_bit_identical_to_serial(self):
        spec = quick_spec(procedure="attach")
        configs = [ControlPlaneConfig.neutrino(), ControlPlaneConfig.existing_epc()]
        grid = expand_grid(configs, [20e3, 40e3], spec)
        serial = run_jobs(grid, jobs=1)
        report = SweepReport()
        parallel = run_jobs(grid, jobs=2, report=report)
        # PCTPoint is a dataclass of floats/ints: == is exact, so this
        # asserts byte-identical rows, not approximate agreement.
        assert serial == parallel
        if not report.parallel:
            pytest.skip("platform fell back to serial: %s" % report.fallback_reason)

    def test_fig07_slice_equality(self):
        spec = quick_spec(procedure="service_request")
        serial = fig07_service_request(rates=(100e3,), spec=spec, jobs=1)
        parallel = fig07_service_request(rates=(100e3,), spec=spec, jobs=4)
        assert serial == parallel

    def test_harness_sweep_delegates(self):
        spec = quick_spec(procedure="attach")
        configs = [ControlPlaneConfig.neutrino()]
        assert sweep(configs, [30e3], spec) == sweep(configs, [30e3], spec, jobs=2)


class TestRunJobs:
    def test_results_positionally_aligned(self):
        spec = quick_spec(procedure="attach")
        grid = [
            SweepJob(ControlPlaneConfig.existing_epc(), 40e3, spec),
            SweepJob(ControlPlaneConfig.neutrino(), 20e3, spec),
        ]
        points = run_jobs(grid, jobs=2)
        assert [(p.scheme, p.axis_rate) for p in points] == [
            ("existing_epc", 40e3),
            ("neutrino", 20e3),
        ]

    def test_report_counts(self, tmp_path):
        spec = quick_spec(procedure="attach")
        grid = expand_grid([ControlPlaneConfig.neutrino()], [20e3, 40e3], spec)
        cache = ResultCache(str(tmp_path / "cache"))
        first = SweepReport()
        run_jobs(grid, jobs=1, cache=cache, report=first)
        assert (first.total, first.executed, first.cached) == (2, 2, 0)
        second = SweepReport()
        run_jobs(grid, jobs=1, cache=cache, report=second)
        assert (second.total, second.executed, second.cached) == (2, 0, 2)

    def test_cached_rerun_does_zero_simulation_work(self, tmp_path, monkeypatch):
        spec = quick_spec(procedure="attach")
        grid = expand_grid([ControlPlaneConfig.neutrino()], [20e3, 40e3], spec)
        cache = ResultCache(str(tmp_path / "cache"))
        warm = run_jobs(grid, jobs=1, cache=cache)

        def boom(*_args, **_kwargs):
            raise AssertionError("simulation ran on a fully cached sweep")

        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "run_pct_point", boom)
        cached = run_jobs(grid, jobs=1, cache=cache)
        assert cached == warm

    def test_worker_error_propagates(self):
        bad = SweepJob(ControlPlaneConfig.neutrino(), -5.0, quick_spec())
        with pytest.raises(ValueError):
            run_jobs([bad], jobs=2)


class TestDefaultJobs:
    def test_respects_affinity_mask(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 3}, raising=False)
        assert default_jobs() == 2

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 7)
        assert default_jobs() == 7

    def test_never_below_one(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_jobs() == 1


_MAIN_PID = os.getpid()


def _crashy_worker(task):
    """Kill the *worker process* on the "boom" task; run fine in-process.

    ``os._exit`` (not an exception) makes the pool raise
    ``BrokenProcessPool`` mid-``map`` — the exact failure the fallback
    must survive.  The main-pid guard lets the serial fallback complete
    the same task.
    """
    name, log_path = task
    with open(log_path, "a") as fp:
        fp.write("%s %d\n" % (name, os.getpid()))
    if name == "boom" and os.getpid() != _MAIN_PID:
        os._exit(1)
    return "ran:%s" % name


def _executions(log_path, name):
    with open(log_path) as fp:
        return sum(1 for line in fp if line.split()[0] == name)


class TestBrokenPoolFallback:
    def test_completed_points_kept_and_remainder_reexecuted(self, tmp_path):
        log = str(tmp_path / "log.txt")
        tasks = [("a", log), ("boom", log), ("c", log)]
        report = SweepReport(total=3, executed=3)
        # workers=1 makes delivery deterministic: "a" is delivered before
        # the single worker dies on "boom".
        results = _run_pool(tasks, 1, report, fn=_crashy_worker)
        assert results == ["ran:a", "ran:boom", "ran:c"]
        assert not report.parallel
        assert report.fallback_reason
        # "a" ran exactly once (pool result kept, not re-executed
        # serially); on platforms without a working pool the whole list
        # runs serially and the count is identically one.
        assert _executions(log, "a") == 1
        assert _executions(log, "c") == 1

    def test_fallback_consults_cache(self, tmp_path):
        log = str(tmp_path / "log.txt")
        tasks = [("boom", log), ("b", log), ("c", log)]
        keys = [task_key("crashy", t[0]) for t in tasks]
        cache = ResultCache(
            str(tmp_path / "cache"), encode=lambda s: s, decode=lambda s: s
        )
        # A concurrent sweep persisted "c" after our initial cache pass
        # and before the pool broke.
        cache.put(keys[2], "cached:c")
        report = SweepReport(total=3, executed=3)
        results = _run_pool(
            tasks, 2, report, fn=_crashy_worker, keys=keys, cache=cache
        )
        assert results[0] == "ran:boom"
        assert results[1] == "ran:b"
        assert results[2] == "cached:c"
        assert report.executed + report.cached == report.total
        assert report.cached >= 1
        assert _executions(log, "c") <= 1  # never executed in fallback

    def test_run_tasks_report_truthful_through_crash(self, tmp_path):
        log = str(tmp_path / "log.txt")
        tasks = [("a", log), ("boom", log), ("c", log), ("d", log)]
        cache = ResultCache(
            str(tmp_path / "cache"), encode=lambda s: s, decode=lambda s: s
        )
        report = SweepReport()
        results = run_tasks(
            tasks, _crashy_worker, jobs=2, cache=cache,
            key_fn=lambda t: t[0], kind="crashy", report=report,
        )
        assert results == ["ran:a", "ran:boom", "ran:c", "ran:d"]
        assert report.total == 4
        assert report.executed + report.cached == report.total
        # every produced point landed in the cache: a rerun is all hits
        second = SweepReport()
        again = run_tasks(
            tasks, _crashy_worker, jobs=2, cache=cache,
            key_fn=lambda t: t[0], kind="crashy", report=second,
        )
        assert again == results
        assert (second.executed, second.cached) == (0, 4)


class TestRunSweep:
    def test_grouped_like_serial_sweep(self):
        spec = quick_spec(procedure="attach")
        configs = [ControlPlaneConfig.neutrino(), ControlPlaneConfig.existing_epc()]
        grouped = run_sweep(configs, [20e3, 40e3], spec, jobs=2)
        assert list(grouped) == ["neutrino", "existing_epc"]
        assert [p.axis_rate for p in grouped["neutrino"]] == [20e3, 40e3]
