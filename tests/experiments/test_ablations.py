"""Tests for the extra ablations (DESIGN.md §7)."""

import pytest

from repro.experiments import RunSpec
from repro.experiments.ablations import (
    ablate_ack_timeout,
    ablate_georep_level,
    ablate_n_backups,
)


class TestNBackups:
    def test_rows_and_consistency(self):
        spec = RunSpec(
            procedure="attach",
            regions=4,
            procedures_target=200,
            min_duration_s=0.03,
            max_duration_s=0.08,
            failure_cpf_index=0,
            failure_at_frac=0.5,
        )
        rows = ablate_n_backups(backups=(1, 2), rate=40e3, spec=spec)
        assert [r["n_backups"] for r in rows] == [1, 2]
        for row in rows:
            assert row["violations"] == 0
            assert 0.0 <= row["masked_frac"] <= 1.0


class TestGeorepLevel:
    def test_level3_makes_cross_level2_commute_fast(self):
        rows = ablate_georep_level(round_trips=6)
        by_level = {r["georep_level"]: r for r in rows}
        # level-2 placement can never put the replica across the
        # boundary; level-3 placement does (the route was chosen so).
        assert not by_level[2]["replica_waits_across_level2"]
        assert by_level[3]["replica_waits_across_level2"]
        # ... which makes the commute faster,
        assert by_level[3]["fast_ho_p50_ms"] < by_level[2]["fast_ho_p50_ms"]
        # ... at the cost of checkpoints riding the far links.
        assert by_level[3]["checkpoint_bytes_far"] > by_level[2]["checkpoint_bytes_far"] * 0.9
        # and consistency holds in both.
        assert all(r["violations"] == 0 for r in rows)


class TestAckTimeout:
    def test_shorter_timeout_bounds_log_sooner(self):
        rows = ablate_ack_timeout(timeouts_s=(0.5, 30.0))
        short, long_ = rows
        key = [k for k in short if k.startswith("log_entries")][0]
        assert short[key] <= long_[key]
        assert short[key] == 0  # already pruned at the observation point
        assert long_[key] > 0  # still retained, within the 30 s window
        assert all(r["violations"] == 0 for r in rows)


class TestSerializationBandwidth:
    def test_tradeoff_direction(self):
        from repro.experiments.ablations import ablate_serialization_bandwidth

        rows = ablate_serialization_bandwidth(n_procedures=40)
        by = {r["codec"]: r for r in rows}
        assert by["asn1per"]["inflation_vs_asn1"] == 1.0
        assert by["flatbuffers"]["inflation_vs_asn1"] > 1.5
        assert by["flatbuffers_opt"]["access_bytes"] <= by["flatbuffers"]["access_bytes"]
        assert by["flatbuffers"]["attach_p50_ms"] < by["asn1per"]["attach_p50_ms"]
        # replication bytes are codec-independent (state snapshots)
        assert by["flatbuffers"]["replication_bytes"] == by["asn1per"]["replication_bytes"]
