"""Tests for the experiment harness."""

import math

import pytest

from repro.core import ControlPlaneConfig
from repro.experiments import PCTPoint, RunSpec, run_pct_point, sweep
from repro.experiments.harness import TESTBED_CPFS

QUICK = dict(procedures_target=150, min_duration_s=0.02, max_duration_s=0.08)


class TestRunSpec:
    def test_n_sim_cpfs(self):
        assert RunSpec(regions=2, cpfs_per_region=2).n_sim_cpfs == 4

    def test_defaults_are_poisson(self):
        assert RunSpec().arrival_process == "poisson"


class TestRunPctPoint:
    def test_basic_point_shape(self):
        point = run_pct_point(
            ControlPlaneConfig.neutrino(), 40e3, RunSpec(procedure="attach", **QUICK)
        )
        assert point.scheme == "neutrino"
        assert point.procedure == "attach"
        assert point.count > 50
        assert 0 < point.p50_ms < point.p95_ms * 1.01
        assert point.completed > 0

    def test_offered_rate_scaling(self):
        spec = RunSpec(procedure="attach", regions=2, cpfs_per_region=1, **QUICK)
        point = run_pct_point(ControlPlaneConfig.neutrino(), 50e3, spec)
        assert point.offered_rate == pytest.approx(50e3 / TESTBED_CPFS * 2)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            run_pct_point(ControlPlaneConfig.neutrino(), 0.0)

    def test_warm_pool_procedures(self):
        point = run_pct_point(
            ControlPlaneConfig.neutrino(),
            40e3,
            RunSpec(procedure="service_request", **QUICK),
        )
        assert point.count > 50
        assert point.violations == 0

    def test_uniform_arrival_process_option(self):
        point = run_pct_point(
            ControlPlaneConfig.neutrino(),
            20e3,
            RunSpec(procedure="attach", arrival_process="uniform", **QUICK),
        )
        assert point.count > 20

    def test_bursty_mode_reports_users_axis(self):
        spec = RunSpec(
            procedure="attach", bursty_users=120, burst_window_s=0.02,
            drain_s=5.0, warmup_frac=0.0,
        )
        point = run_pct_point(ControlPlaneConfig.neutrino(), 1.0, spec)
        assert point.axis_rate == 120.0
        assert point.count == 120

    def test_failure_injection_recovers_procedures(self):
        spec = RunSpec(
            procedure="handover", cpfs_per_region=2, failure_cpf_index=0,
            failure_at_frac=0.5, first_region_only=True, **QUICK
        )
        point = run_pct_point(ControlPlaneConfig.neutrino(), 40e3, spec)
        assert point.recovered > 0
        assert point.violations == 0

    def test_seed_determinism(self):
        spec = RunSpec(procedure="attach", seed=9, **QUICK)
        a = run_pct_point(ControlPlaneConfig.neutrino(), 30e3, spec)
        b = run_pct_point(ControlPlaneConfig.neutrino(), 30e3, spec)
        assert a.p50_ms == b.p50_ms
        assert a.count == b.count

    def test_row_renders(self):
        point = run_pct_point(
            ControlPlaneConfig.neutrino(), 30e3, RunSpec(procedure="attach", **QUICK)
        )
        row = point.row()
        assert "neutrino" in row and "p50" in row

    def test_empty_window_reports_count_zero(self):
        # Regression: a window where nothing completes (here: warmup
        # covers the whole run) used to fabricate a count=1 NaN sample.
        spec = RunSpec(
            procedure="attach",
            procedures_target=50,
            min_duration_s=0.02,
            max_duration_s=0.05,
            warmup_frac=1.0,
            drain_s=0.0,
        )
        point = run_pct_point(ControlPlaneConfig.neutrino(), 30e3, spec)
        assert point.count == 0
        assert point.empty
        assert math.isnan(point.p50_ms) and math.isnan(point.p95_ms)
        assert math.isnan(point.mean_ms) and math.isnan(point.max_ms)

    def test_empty_window_row_renders_dash(self):
        spec = RunSpec(
            procedure="attach",
            procedures_target=50,
            min_duration_s=0.02,
            max_duration_s=0.05,
            warmup_frac=1.0,
            drain_s=0.0,
        )
        point = run_pct_point(ControlPlaneConfig.neutrino(), 30e3, spec)
        row = point.row()
        assert "nan" not in row
        assert "-" in row


class TestSweep:
    def test_sweep_groups_by_scheme(self):
        spec = RunSpec(procedure="attach", **QUICK)
        results = sweep(
            [ControlPlaneConfig.neutrino(), ControlPlaneConfig.existing_epc()],
            [20e3, 40e3],
            spec,
        )
        assert set(results) == {"neutrino", "existing_epc"}
        assert len(results["neutrino"]) == 2

    def test_saturation_shows_in_sweep(self):
        spec = RunSpec(procedure="attach", **QUICK)
        results = sweep([ControlPlaneConfig.existing_epc()], [40e3, 140e3], spec)
        points = results["existing_epc"]
        assert points[1].p50_ms > 5 * points[0].p50_ms  # deep saturation
