"""Tests for the analytic CPU/utilization estimators."""

import pytest

from repro.core import ControlPlaneConfig
from repro.experiments.harness import (
    TESTBED_CPFS,
    estimate_procedure_cpu,
    estimated_utilization,
    overload_pct_at_horizon,
)


class TestProcedureCpu:
    def test_epc_attach_costs_more_than_neutrino(self):
        epc = estimate_procedure_cpu(ControlPlaneConfig.existing_epc(), "attach")
        neutrino = estimate_procedure_cpu(ControlPlaneConfig.neutrino(), "attach")
        assert epc > 1.5 * neutrino

    def test_attach_costs_more_than_service_request(self):
        config = ControlPlaneConfig.existing_epc()
        assert estimate_procedure_cpu(config, "attach") > estimate_procedure_cpu(
            config, "service_request"
        )

    def test_knee_predictions_match_paper_ballpark(self):
        # Paper: EPC attach knee ~60K, Neutrino ~120K; SR knee ~140K.
        epc_attach = TESTBED_CPFS / estimate_procedure_cpu(
            ControlPlaneConfig.existing_epc(), "attach"
        )
        neutrino_attach = TESTBED_CPFS / estimate_procedure_cpu(
            ControlPlaneConfig.neutrino(), "attach"
        )
        epc_sr = TESTBED_CPFS / estimate_procedure_cpu(
            ControlPlaneConfig.existing_epc(), "service_request"
        )
        assert 50e3 < epc_attach < 90e3
        assert 100e3 < neutrino_attach < 160e3
        assert 110e3 < epc_sr < 170e3
        # the knee ratio is the paper's ~2x
        assert 1.5 < neutrino_attach / epc_attach < 2.5

    def test_per_message_sync_costs_more(self):
        per_proc = estimate_procedure_cpu(ControlPlaneConfig.neutrino(), "attach")
        per_msg = estimate_procedure_cpu(
            ControlPlaneConfig.neutrino(name="pm", sync_mode="per_message"), "attach"
        )
        assert per_msg > per_proc

    def test_dpcm_attach_cheaper_than_epc(self):
        epc = estimate_procedure_cpu(ControlPlaneConfig.existing_epc(), "attach")
        dpcm = estimate_procedure_cpu(ControlPlaneConfig.dpcm(), "attach")
        assert dpcm < epc

    def test_fast_handover_cheaper_than_handover(self):
        config = ControlPlaneConfig.neutrino()
        assert estimate_procedure_cpu(config, "fast_handover") < estimate_procedure_cpu(
            config, "handover"
        )


class TestUtilizationAndOverload:
    def test_utilization_linear_in_rate(self):
        config = ControlPlaneConfig.neutrino()
        rho1 = estimated_utilization(config, "attach", 50e3)
        rho2 = estimated_utilization(config, "attach", 100e3)
        assert rho2 == pytest.approx(2 * rho1)

    def test_underload_has_no_overload_delay(self):
        assert overload_pct_at_horizon(0.8, 60.0) == 0.0
        assert overload_pct_at_horizon(1.0, 60.0) == 0.0

    def test_overload_delay_grows_with_rho_and_horizon(self):
        assert overload_pct_at_horizon(2.0, 60.0) == pytest.approx(30.0)
        assert overload_pct_at_horizon(2.0, 120.0) == pytest.approx(60.0)
        assert overload_pct_at_horizon(4.0, 60.0) > overload_pct_at_horizon(2.0, 60.0)

    def test_predicted_vs_simulated_knee(self):
        """The analytic knee must agree with where the simulator melts."""
        from repro.experiments import RunSpec, run_pct_point

        config = ControlPlaneConfig.existing_epc()
        knee = TESTBED_CPFS / estimate_procedure_cpu(config, "attach")
        spec = RunSpec(procedure="attach", procedures_target=200,
                       min_duration_s=0.03, max_duration_s=0.06)
        below = run_pct_point(config, knee * 0.6, spec)
        above = run_pct_point(config, knee * 1.5, spec)
        assert above.p50_ms > 5 * below.p50_ms
