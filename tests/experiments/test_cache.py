"""Tests for the content-addressed result cache (repro.experiments.cache)."""

import dataclasses
import math

from repro.core import ControlPlaneConfig
from repro.experiments import RunSpec
from repro.experiments.cache import (
    ResultCache,
    code_fingerprint,
    describe_point_inputs,
    point_key,
)
from repro.experiments.harness import PCTPoint
from repro.faults.plan import FaultPlan


def sample_point(**overrides) -> PCTPoint:
    base = dict(
        scheme="neutrino",
        procedure="attach",
        axis_rate=40e3,
        offered_rate=16e3,
        count=123,
        p50_ms=0.295,
        p95_ms=0.51,
        mean_ms=0.31,
        max_ms=1.7,
        utilization=0.42,
    )
    base.update(overrides)
    return PCTPoint(**base)


class TestPointKey:
    def test_stable_across_equal_inputs(self):
        a = point_key(ControlPlaneConfig.neutrino(), 40e3, RunSpec(seed=3))
        b = point_key(ControlPlaneConfig.neutrino(), 40e3, RunSpec(seed=3))
        assert a == b and len(a) == 64

    def test_none_spec_means_default_spec(self):
        config = ControlPlaneConfig.neutrino()
        assert point_key(config, 40e3, None) == point_key(config, 40e3, RunSpec())

    def test_any_knob_changes_the_key(self):
        config = ControlPlaneConfig.neutrino()
        base = point_key(config, 40e3, RunSpec())
        assert point_key(config, 40e3 + 1, RunSpec()) != base
        assert point_key(config, 40e3, RunSpec(seed=2)) != base
        assert point_key(config.variant("v", n_backups=2), 40e3, RunSpec()) != base
        assert point_key(config, 40e3, RunSpec(procedure="handover")) != base

    def test_fault_plan_is_part_of_the_key(self):
        config = ControlPlaneConfig.neutrino()
        plan = FaultPlan(seed=7).perturb("cta_cpf", drop_p=0.1)
        with_plan = point_key(config, 40e3, RunSpec(fault_plan=plan))
        assert with_plan != point_key(config, 40e3, RunSpec())
        hotter = FaultPlan(seed=7).perturb("cta_cpf", drop_p=0.2)
        assert with_plan != point_key(config, 40e3, RunSpec(fault_plan=hotter))

    def test_inputs_record_is_debuggable_json(self):
        inputs = describe_point_inputs(ControlPlaneConfig.neutrino(), 40e3, None)
        assert inputs["config"]["name"] == "neutrino"
        assert inputs["axis_rate"] == repr(40e3)

    def test_fingerprint_is_cached_and_hex(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = point_key(ControlPlaneConfig.neutrino(), 40e3, RunSpec())
        assert cache.get(key) is None
        point = sample_point()
        cache.put(key, point)
        got = cache.get(key)
        assert got == point  # exact float equality through JSON
        assert dataclasses.asdict(got) == dataclasses.asdict(point)
        assert (cache.stats.hits, cache.stats.misses, cache.stats.stale) == (1, 1, 0)

    def test_nan_percentiles_survive_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        empty = sample_point(
            count=0,
            p50_ms=float("nan"),
            p95_ms=float("nan"),
            mean_ms=float("nan"),
            max_ms=float("nan"),
        )
        cache.put("k" * 64, empty)
        got = cache.get("k" * 64)
        assert got.count == 0 and got.empty
        assert math.isnan(got.p50_ms) and math.isnan(got.max_ms)

    def test_stale_fingerprint_ignored_and_counted(self, tmp_path):
        root = str(tmp_path / "c")
        old = ResultCache(root, fingerprint="old-code-version")
        key = "a" * 64
        old.put(key, sample_point())
        fresh = ResultCache(root)
        assert fresh.get(key) is None
        assert fresh.stats.stale == 1 and fresh.stats.misses == 0
        # the rerun overwrites the stale entry under the same address
        fresh.put(key, sample_point(count=9))
        assert fresh.get(key).count == 9

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "b" * 64
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        assert cache.get(key) is None
        assert cache.stats.misses == 1

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put("c" * 64, sample_point())
        cache.put("d" * 64, sample_point())
        assert cache.clear() == 2
        assert cache.get("c" * 64) is None


class TestFingerprintOncePerRun:
    def test_run_jobs_computes_fingerprint_once(self, tmp_path, monkeypatch):
        # Regression: the code fingerprint hashes every .py file under
        # src/repro, so it must be computed once per run, not once per
        # point lookup (or eagerly for caches that are never used).
        from repro.experiments import cache as cache_mod
        from repro.experiments.parallel import SweepJob, run_jobs

        calls = []

        def counting_fingerprint():
            calls.append(1)
            return "test-fp"

        monkeypatch.setattr(cache_mod, "code_fingerprint", counting_fingerprint)

        root = str(tmp_path / "c")
        config = ControlPlaneConfig.neutrino()
        jobs = [SweepJob(config, rate, RunSpec()) for rate in
                (10e3, 20e3, 30e3, 40e3, 50e3)]

        seed_cache = ResultCache(root, fingerprint="test-fp")
        for job in jobs:
            key = seed_cache.key(job.config, job.axis_rate, job.spec)
            seed_cache.put(key, sample_point(axis_rate=job.axis_rate))
        assert calls == []  # explicit fingerprint: no computation at all

        cache = ResultCache(root)
        assert calls == []  # lazy: constructing a cache hashes nothing
        points = run_jobs(jobs, jobs=1, cache=cache)
        assert len(points) == len(jobs)
        assert cache.stats.hits == len(jobs)
        assert len(calls) == 1, "fingerprint must be computed once per run"
