"""Tests for per-figure experiment definitions (at reduced scale)."""

import pytest

from repro.experiments import RunSpec, figures
from repro.experiments.report import (
    best_ratio,
    format_dict_rows,
    format_pct_table,
    median_ratio,
)

QUICK = RunSpec(procedures_target=120, min_duration_s=0.02, max_duration_s=0.06)


class TestCodecFigures:
    def test_fig18_modeled_shape(self):
        rows = figures.fig18_codec_speedup(element_counts=(3, 10, 35))
        by = {(r["codec"], r["elements"]): r["speedup_modeled"] for r in rows}
        # crossover: CDR ahead of FB at 3 elements, FB ahead at 10+.
        assert by[("cdr", 3)] > by[("flatbuffers", 3)]
        assert by[("flatbuffers", 10)] > by[("cdr", 10)]
        # FB max speedup in the paper's ballpark (1.6x-19.2x, ours ~22x).
        assert 15 < by[("flatbuffers", 35)] < 30

    def test_fig18_measured_orders_fb_above_asn1(self):
        # Use a large message (clear FB advantage) and enough repeats
        # that scheduler noise cannot flip the ordering.
        rows = figures.fig18_codec_speedup(
            element_counts=(35,), codecs=("flatbuffers",), measured_repeats=120
        )
        assert rows[0]["speedup_measured"] is not None
        assert rows[0]["speedup_measured"] > 1.2

    def test_fig18_lcm_unsupported_on_union_schemas_is_none(self):
        # the custom message avoids unions, so LCM measures fine
        rows = figures.fig18_codec_speedup(
            element_counts=(5,), codecs=("lcm",), measured_repeats=10
        )
        assert rows[0]["speedup_measured"] is not None

    def test_custom_message_element_count(self):
        from repro.codec import count_elements

        for n in (1, 7, 20):
            schema, value = figures.custom_message(n)
            assert count_elements(value, schema) == n

    def test_custom_message_validates(self):
        with pytest.raises(ValueError):
            figures.custom_message(0)

    def test_fig19_modeled_ordering(self):
        rows = figures.fig19_real_message_times()
        for msg in figures.FIG19_MESSAGES:
            times = {r["codec"]: r["modeled_us"] for r in rows if r["message"] == msg}
            assert times["flatbuffers_opt"] <= times["flatbuffers"] < times["asn1per"]

    def test_fig20_sizes_real_and_ordered(self):
        rows = figures.fig20_encoded_sizes()
        for msg in figures.FIG19_MESSAGES:
            sizes = {r["codec"]: r["bytes"] for r in rows if r["message"] == msg}
            assert sizes["asn1per"] < sizes["flatbuffers"]
            assert sizes["flatbuffers_opt"] <= sizes["flatbuffers"]

    def test_fig20_optimized_saves_tens_of_bytes_total(self):
        rows = figures.fig20_encoded_sizes()
        saved = sum(
            r["bytes"] for r in rows if r["codec"] == "flatbuffers"
        ) - sum(r["bytes"] for r in rows if r["codec"] == "flatbuffers_opt")
        assert saved >= 20


class TestPctFigures:
    def test_fig08_epc_vs_neutrino(self):
        points = figures.fig08_attach_uniform(rates=(40e3, 140e3), spec=QUICK.__class__(
            procedure="attach", procedures_target=120, min_duration_s=0.02,
            max_duration_s=0.06))
        ratio = median_ratio(points, "neutrino", "existing_epc", rate=140e3)
        assert ratio > 3  # EPC deeply saturated at 140K

    def test_fig15_sync_ordering(self):
        spec = RunSpec(procedure="attach", procedures_target=150,
                       min_duration_s=0.03, max_duration_s=0.06)
        points = figures.fig15_sync_schemes(rates=(80e3,), spec=spec)
        p50 = {p.scheme: p.p50_ms for p in points}
        # Fig. 15: per-message worst; per-procedure close to no-rep.
        assert p50["per_msg_rep"] > p50["per_proc_rep"]
        assert p50["per_proc_rep"] >= p50["no_rep"] * 0.95

    def test_fig16_logging_negligible(self):
        spec = RunSpec(procedure="attach", procedures_target=150,
                       min_duration_s=0.03, max_duration_s=0.06)
        points = figures.fig16_logging_overhead(rates=(60e3,), spec=spec)
        p50 = {p.scheme: p.p50_ms for p in points}
        assert p50["logging"] < p50["no_logging"] * 1.25

    def test_fig17_log_grows_with_users(self):
        rows = figures.fig17_log_size(users=(10e3, 50e3), procedures=("attach",))
        assert rows[1]["max_log_mb_extrapolated"] > rows[0]["max_log_mb_extrapolated"]
        assert all(r["max_log_bytes_sim"] > 0 for r in rows)


class TestReport:
    def test_format_pct_table_renders(self):
        points = figures.fig08_attach_uniform(rates=(30e3,), spec=RunSpec(
            procedure="attach", procedures_target=80, min_duration_s=0.02,
            max_duration_s=0.04))
        table = format_pct_table(points, title="fig8")
        assert "fig8" in table
        assert "neutrino" in table and "existing_epc" in table

    def test_format_dict_rows(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2.5, "b": None}]
        out = format_dict_rows(rows, "t")
        assert "t" in out and "2.500" in out and "-" in out

    def test_format_dict_rows_empty(self):
        assert "(no rows)" in format_dict_rows([], "t")

    def test_format_pct_table_marks_empty_points(self):
        from repro.experiments.harness import PCTPoint

        nan = float("nan")
        empty = PCTPoint(
            scheme="epc", procedure="attach", axis_rate=40e3, offered_rate=16e3,
            count=0, p50_ms=nan, p95_ms=nan, mean_ms=nan, max_ms=nan,
        )
        table = format_pct_table([empty], title="overload")
        assert "(empty)" in table
        assert "nan" not in table

    def test_format_run_footer(self):
        from repro.experiments.parallel import SweepReport
        from repro.experiments.report import format_run_footer

        assert format_run_footer() == ""
        report = SweepReport(total=4, executed=1, cached=3, parallel=True)
        footer = format_run_footer(report=report)
        assert "total=4" in footer and "cached=3" in footer and "parallel" in footer

    def test_format_run_footer_cache_stats(self, tmp_path):
        from repro.experiments.cache import ResultCache
        from repro.experiments.report import format_run_footer

        cache = ResultCache(str(tmp_path))
        cache.get("0" * 64)  # one miss
        footer = format_run_footer(cache=cache)
        assert "hits=0" in footer and "misses=1" in footer and "stale=0" in footer

    def test_ratio_helpers(self):
        points = figures.fig08_attach_uniform(rates=(40e3,), spec=RunSpec(
            procedure="attach", procedures_target=80, min_duration_s=0.02,
            max_duration_s=0.04))
        assert best_ratio(points, "neutrino", "existing_epc") > 0

    def test_ratio_requires_shared_rates(self):
        with pytest.raises(ValueError):
            median_ratio([], "a", "b")
