"""Multi-process sharded city: determinism, migration, RYW under faults.

The contract under test (``repro.scale.shard``):

* **fixed-shard-count determinism** — for a given shard count the
  merged EventTrace digest is bit-stable across runs *and* across
  backends (inline vs process), pinned below like the kernel witnesses;
* ``--shards 1`` is exactly the single-process engine;
* the batched lane's conformance (digest-identical to the cohort
  driver) survives sharding;
* a UE whose full handover crosses the shard boundary mid-fault-window
  migrates over the inter-shard channel on the discrete path and the
  merged RYW audit stays clean;
* a hypothesis campaign rides the storm x faults harness with the city
  split in two.

The pinned digests must NEVER be regenerated to make a refactor pass;
they may only change when engine semantics intentionally change.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.parallel import WorkerSpawnError
from repro.faults.runner import config_from_name
from repro.scale import shard as sh
from repro.scale.engine import run_scenario
from repro.scale.scenarios import get_scenario
from repro.scale.shard import ShardMap, run_sharded, shard_lookahead

N = 400
DURATION_S = 0.5
SEED = 3

#: merged verbose-trace digest of steady-city (N=400, 0.5s, seed=3) at
#: shards=2, recorded when the sharded coordinator first shipped.
PINNED_SHARDED_DIGEST = "64f1e6a8a5225f1808c05a847114f600"


def run2(mode="cohort", backend="inline", shards=2, seed=SEED, **kw):
    return run_sharded(
        "steady-city",
        n_ue=N,
        duration_s=DURATION_S,
        seed=seed,
        mode=mode,
        shards=shards,
        backend=backend,
        verbose_trace=True,
        **kw,
    )


# ------------------------------------------------------------------ ShardMap


class TestShardMap:
    def test_contiguous_chunks_with_front_loaded_remainder(self):
        m = ShardMap(["aa", "ab", "ba", "bb", "ca"], 2)
        assert m.owned_parents(0) == ["aa", "ab", "ba"]
        assert m.owned_parents(1) == ["bb", "ca"]
        for parent in m.parents:
            assert parent in m.owned_parents(m.owner_of_parent(parent))

    def test_owner_of_tile_strips_the_level1_char(self):
        m = ShardMap(["aa", "bb"], 2)
        assert m.owner_of_tile("aa7") == 0
        assert m.owner_of_tile("bb0") == 1

    def test_fresh_churned_in_parent_is_assigned_by_bisection(self):
        # a parent that did not exist at partition time (the spare tile
        # lives under a fresh parent east of the city) must still get a
        # deterministic owner, identical on every shard
        m = ShardMap(["aa", "bb", "cc", "dd"], 2)
        assert m.owner_of_parent("ba") == 0  # falls inside chunk 0's span
        assert m.owner_of_parent("cz") == 1
        assert m.owner_of_parent("zz") == 1  # past the east edge: last
        assert m.owner_of_parent("a0") == 0  # before the west edge: first

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap(["aa", "bb"], 0)
        with pytest.raises(ValueError, match="level-2"):
            ShardMap(["aa", "bb"], 3)

    def test_lookahead_is_the_far_cpf_link_floor(self, monkeypatch):
        spec = get_scenario("steady-city")
        assert shard_lookahead(spec) == pytest.approx(
            config_from_name(spec.config).latency.cpf_cpf_far
        )
        # degenerate zero-latency config: fall back to epoch windows
        real = config_from_name(spec.config)
        zero = dataclasses.replace(
            real, latency=dataclasses.replace(real.latency, cpf_cpf_far=0.0)
        )
        monkeypatch.setattr(sh, "config_from_name", lambda name: zero)
        assert shard_lookahead(spec) == pytest.approx(spec.duration_s / 64.0)


# ------------------------------------------------------- determinism witness


def test_fixed_shard_count_digest_is_pinned():
    res = run2()
    assert res.violations == 0
    assert res.n_shards == 2
    assert res.trace_events > 0
    assert res.digest == PINNED_SHARDED_DIGEST, (
        "merged sharded digest moved: the fixed-shard-count trajectory "
        "is no longer bit-identical to the pinned witness"
    )


def test_sharded_runs_are_reproducible():
    a, b = run2(), run2()
    assert a == b  # dataclass eq skips the measured-cost fields (perf)
    assert a.digest == b.digest
    assert a.region_pct_ms == b.region_pct_ms


def test_shards_one_is_exactly_the_single_process_engine():
    plain = run_scenario(
        "steady-city", n_ue=N, duration_s=DURATION_S, seed=SEED,
        verbose_trace=True,
    )
    one = run2(shards=1)
    assert one.n_shards == 1
    assert one.digest == plain.digest
    assert one == plain


def test_process_backend_matches_inline_bit_for_bit():
    inline = run2(backend="inline")
    try:
        procs = run2(backend="process")
    except (WorkerSpawnError, RuntimeError) as err:  # pragma: no cover
        pytest.skip("no worker processes on this platform: %s" % err)
    assert procs.perf["backend"] == "process"
    assert procs == inline
    assert procs.digest == inline.digest


def test_batched_lane_conformance_survives_sharding():
    cohort = run2(mode="cohort")
    batched = run2(mode="batched")
    assert batched.digest == cohort.digest
    assert batched.lane["enabled"] == 1
    dc, db = cohort.to_dict(), batched.to_dict()
    for d in (dc, db):
        for key in ("mode", "lane", "perf", "shards"):
            d.pop(key, None)
    assert dc == db, "sharded batched diverged from sharded cohort"


def test_four_shards_partition_and_merge():
    res = run2(shards=4)
    assert res.violations == 0
    assert res.n_shards == 4
    assert len(res.shards) == 4
    assert sum(row["n_local"] for row in res.shards) == N
    # every initial level-2 parent is owned by exactly one shard
    owned = [p for row in res.shards for p in row["parents"]]
    assert sorted(owned) == sh.city_parents(
        get_scenario("steady-city").with_overrides(n_ue=N)
    )
    assert res.counters.get("migrations_out", 0) == res.counters.get(
        "migrations_in", 0
    )


def test_rejects_individual_mode_and_oversharding():
    with pytest.raises(ValueError, match="cohort"):
        run2(mode="individual")
    with pytest.raises(ValueError, match="level-2"):
        run2(shards=99)


# ------------------------------------------- cross-shard handover under faults

#: steady-city variant: boosted roaming plus a region blackout window
#: [0.35, 0.70] x duration; seed 3 produces cross-shard migrations on
#: both shards *inside* the window (scouted, then pinned).
def _fault_window_spec(seed=3):
    return dataclasses.replace(
        get_scenario("steady-city"),
        name="cross-shard-fault",
        n_ue=240,
        duration_s=1.0,
        seed=seed,
        mobility_rate_per_ue=1.2,
        fault_events=[
            (0.35, "fail", "region:index:4"),
            (0.70, "recover", "region:index:4"),
        ],
        audit_history=True,
    )


def test_cross_shard_handover_mid_fault_window_keeps_ryw():
    spec = _fault_window_spec()
    parents = sh.city_parents(spec)
    smap = sh.ShardMap(parents, 2)
    bs_names, pops = sh.partition_population(spec, smap)
    delta = sh.shard_lookahead(spec)

    def maker(k):
        return lambda: sh.ShardEngine(
            spec, mode="cohort", shard_idx=k, shards=2,
            population=pops[k], bs_name_list=bs_names, delta=delta,
            verbose_trace=True,
        )

    hosts = [sh._InlineHost(maker(k)) for k in range(2)]
    sh._epoch_loop(hosts, spec.duration_s, delta)
    payloads = [h.finish() for h in hosts]

    lo, hi = 0.35 * spec.duration_s, 0.70 * spec.duration_s
    for k, host in enumerate(hosts):
        records = host.engine.trace.records
        out = [r for r in records if r.kind == "shard_migrate_out"]
        in_window = [r for r in out if lo <= r.time <= hi]
        assert in_window, "shard %d: no cross-shard handover in the window" % k
        # the full cross-level-2 handover is never lane-admitted: the
        # emigrating UE took the discrete path by construction
        assert host.engine.counters.get("moves_handover", 0) > 0
        assert payloads[k]["result"].violations == 0
        # the emigrant's state version crossed the channel intact
        assert all(dict(r.detail).get("version") is not None for r in in_window)

    # conservation: every record sent was installed somewhere
    sent = sum(h.engine.counters.get("migrations_out", 0) for h in hosts)
    received = sum(h.engine.counters.get("migrations_in", 0) for h in hosts)
    assert sent == received > 0

    # and the merged run is clean end to end
    merged = run_sharded(spec, shards=2, backend="inline", verbose_trace=True)
    assert merged.violations == 0
    assert merged.counters.get("migrations_out", 0) == sent


def test_migrated_ue_serves_again_at_destination():
    """An immigrant is not a tombstone: after install it keeps serving
    (its slot re-enters the destination's arrival buckets)."""
    res = run_sharded(
        _fault_window_spec(), shards=2, backend="inline", verbose_trace=True
    )
    assert res.counters.get("migrations_in", 0) > 0
    # channel accounting: one record per migration, plus any
    # endpoint-named legs (repair fetches) that cross shard owners
    assert (
        res.counters.get("channel_messages", 0)
        >= res.counters.get("migrations_out", 0)
        > 0
    )
    assert res.counters.get("channel_bytes", 0) >= 64 * res.counters.get(
        "migrations_out", 0
    )
    assert res.violations == 0


# ------------------------------------------------- storm x faults, sharded

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=6,
    print_blob=True,
)


@st.composite
def sharded_storm_specs(draw):
    seed = draw(st.integers(0, 2**20))
    l2_regions = draw(st.integers(2, 3))
    fault_events = []
    if draw(st.booleans()):
        fail_at = draw(st.floats(0.30, 0.50))
        recover_at = draw(st.floats(0.55, 0.70))
        victim = draw(st.integers(0, l2_regions * 2 - 1))
        fault_events = [
            (fail_at, "fail", "region:index:%d" % victim),
            (recover_at, "recover", "region:index:%d" % victim),
        ]
    link_faults = []
    if draw(st.booleans()):
        hop = draw(st.sampled_from(
            ("cpf_cpf_intra", "cpf_cpf_inter", "cpf_cpf_far")
        ))
        link_faults = [(hop, draw(st.floats(0.05, 0.30)))]
    return dataclasses.replace(
        get_scenario("iot-reattach-storm"),
        name="sharded-storm-property",
        n_ue=draw(st.integers(100, 200)),
        duration_s=1.5,
        seed=seed,
        l2_regions=l2_regions,
        l1_per_l2=2,
        cpfs_per_region=2,
        bss_per_region=2,
        traffic_rate_scale=8.0,
        fault_events=fault_events,
        link_faults=link_faults,
        audit_history=True,
    )


@given(spec=sharded_storm_specs())
@settings(**_SETTINGS)
def test_ryw_holds_through_sharded_storms(spec):
    res = run_sharded(spec, shards=2, backend="inline")
    assert res.violations == 0, (
        "RYW violated across the shard boundary (seed=%d faults=%r links=%r)"
        % (spec.seed, spec.fault_events, spec.link_faults)
    )
    assert res.serves > 0 and res.writes > 0
    assert res.counters.get("storm_arrivals", 0) > 0


@given(spec=sharded_storm_specs())
@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_sharded_storm_runs_are_reproducible(spec):
    a = run_sharded(spec, shards=2, backend="inline", verbose_trace=True)
    b = run_sharded(spec, shards=2, backend="inline", verbose_trace=True)
    assert a.digest == b.digest
    assert a == b


# ------------------------------------------------------------------ obs merge


def test_obs_metrics_snapshots_merge_across_shards():
    from repro.obs import Observability

    obs = Observability("metrics")
    res = run_sharded(
        "steady-city", n_ue=N, duration_s=DURATION_S, seed=SEED,
        shards=2, backend="inline", obs=obs,
    )
    snap = res.obs_snapshot
    assert snap["shards"] == 2
    assert snap["spans_started"] == snap["spans_finished"] > 0
    counters = {c["name"]: c["value"] for c in snap["metrics"]["counters"]}
    assert counters.get("hop_messages", 0) > 0
