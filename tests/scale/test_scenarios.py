"""Scenario-catalog and engine smoke tests at reduced population.

Each catalog scenario runs end to end at small N with the RYW auditor
on; beyond "no violations" the tests pin the scenario-specific effects:
ring churn really re-places replicas, the failover scenario really
applies its fault ops, windowed mobility really thins off-window
arrivals.
"""

import pytest

from repro.scale.engine import ScaleResult, run_replicates, run_scenario
from repro.scale.scenarios import SCENARIOS, get_scenario, scenario_names

_SMALL = dict(n_ue=300, duration_s=1.0, seed=11)


@pytest.fixture(scope="module")
def results():
    return {
        name: run_scenario(name, **_SMALL) for name in scenario_names()
    }


class TestCatalog:
    def test_names_sorted_and_known(self):
        names = scenario_names()
        assert names == sorted(names)
        assert {"steady-city", "commute-wave", "stadium-flash-crowd",
                "region-failover", "ring-churn"} <= set(names)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_with_overrides_replaces_only_given_fields(self):
        spec = get_scenario("steady-city")
        same = spec.with_overrides()
        assert same is spec
        other = spec.with_overrides(n_ue=7, seed=9)
        assert (other.n_ue, other.seed) == (7, 9)
        assert other.duration_s == spec.duration_s


class TestEveryScenario:
    def test_zero_ryw_violations(self, results):
        for name, res in results.items():
            assert res.violations == 0, "%s violated RYW" % name
            assert res.ok

    def test_work_actually_happened(self, results):
        for name, res in results.items():
            assert res.completed > 0, name
            assert res.serves > 0 and res.writes > 0, name
            # non-verbose runs stay lean: the trace holds only applied
            # fault ops and orchestration actions, never per-message
            # records
            orch_traced = sum(
                res.counters.get(key, 0)
                for key in (
                    "orch_scale_out",
                    "orch_scale_in",
                    "orch_upgrade_drained",
                    "orch_upgraded",
                    "orch_healed",
                )
            )
            assert res.trace_events == (
                res.fault_counters.get("ops_applied", 0) + orch_traced
            )
            assert res.digest  # ... but still produce a digest

    def test_latency_sketches_cover_regions(self, results):
        res = results["steady-city"]
        assert res.region_pct_ms, "no per-region percentiles recorded"
        some = next(iter(res.region_pct_ms.values()))
        proc_summary = next(iter(some.values()))
        assert {"count", "p50", "p95", "p99"} <= set(proc_summary)

    def test_report_renders(self, results):
        for res in results.values():
            text = res.format_report()
            assert "violations=0" in text
            assert res.scenario in text

    def test_round_trips_through_dict(self, results):
        for res in results.values():
            clone = ScaleResult.from_dict(res.to_dict())
            assert clone == res


class TestScenarioEffects:
    def test_ring_churn_re_places_replicas(self, results):
        counters = results["ring-churn"].counters
        assert counters.get("regions_added") == 1
        assert counters.get("regions_removed") == 1
        assert counters.get("replacements_planned", 0) > 0
        assert counters.get("replaced", 0) > 0
        assert counters.get("replace_fetch_failed", 0) == 0
        assert counters.get("replace_errors", 0) == 0
        assert counters.get("rehome_errors", 0) == 0
        assert results["ring-churn"].regions_final == 12  # 4x3 city restored

    def test_region_failover_applies_fault_ops(self, results):
        res = results["region-failover"]
        applied = res.fault_counters.get("ops_applied", 0)
        # 2 CPFs + 1 CTA failed, then recovered
        assert applied == 6

    def test_windowed_mobility_thins_off_window(self, results):
        for name in ("commute-wave", "stadium-flash-crowd"):
            counters = results[name].counters
            assert counters.get("moves_thinned", 0) > 0, name

    def test_cross_region_handovers_occur(self, results):
        for name, res in results.items():
            moves = res.counters.get("moves_fast_handover", 0) + res.counters.get(
                "moves_handover", 0
            )
            assert moves > 0, "%s never crossed a region boundary" % name

    def test_storm_scenarios_fire_their_storms(self, results):
        for name, storms in (
            ("iot-reattach-storm", ("sensor-reattach", "tracker-reattach")),
            ("paging-storm", ("paging-wave",)),
            ("midnight-tau-spike", ("midnight-tau", "midnight-tau-trackers")),
        ):
            counters = results[name].counters
            assert counters.get("storm_arrivals", 0) > 0, name
            for storm in storms:
                assert counters.get("storm_arrivals." + storm, 0) > 0, storm

    def test_reattach_storm_rides_the_region_blackout(self, results):
        res = results["iot-reattach-storm"]
        # the blackout really fails and recovers CTA + 2 CPFs
        assert res.fault_counters.get("ops_applied", 0) == 6
        # the attach wave re-registers devices that were already attached
        assert res.counters.get("storm_reregister", 0) > 0


class TestThinningBias:
    """Lewis-Shedler candidate rate must dominate the true rate.

    With a wave *lull* (``wave_mobility_boost < 1``) the old driver
    sampled the whole run at ``base * boost`` and never thinned —
    under-sampling off-window mobility by the boost factor.  The fixed
    driver samples at ``base * max(boost, 1)`` and thins inside the
    window, so the accepted fraction equals the window-weighted mean
    multiplier.
    """

    def _run(self, boost):
        spec = get_scenario("commute-wave").with_overrides(
            n_ue=200, duration_s=2.0, seed=5
        )
        import dataclasses

        spec = dataclasses.replace(
            spec,
            name="thinning-regression",
            mobility_rate_per_ue=1.0 / 5.0,
            wave_mobility_boost=boost,
        )
        return run_scenario(spec)

    def test_lull_thins_inside_the_window_only(self):
        res = self._run(0.25)
        accepted = res.counters.get("moves_accepted", 0)
        thinned = res.counters.get("moves_thinned", 0)
        assert thinned > 0, "a lull must thin in-window candidates"
        candidates = accepted + thinned
        # window covers half the run: E[accept] = 0.5*1 + 0.5*0.25
        ratio = accepted / candidates
        assert 0.55 < ratio < 0.70, (
            "accepted %d of %d candidates (ratio %.3f, want ~0.625): "
            "off-window mobility is biased" % (accepted, candidates, ratio)
        )

    def test_flat_boost_never_thins(self):
        res = self._run(1.0)
        assert res.counters.get("moves_thinned", 0) == 0
        assert res.counters.get("moves_accepted", 0) > 0


class TestDeterminism:
    def test_same_seed_same_digest(self):
        a = run_scenario("steady-city", n_ue=200, duration_s=0.5, seed=3,
                         verbose_trace=True)
        b = run_scenario("steady-city", n_ue=200, duration_s=0.5, seed=3,
                         verbose_trace=True)
        assert a.digest == b.digest
        assert a == b  # dataclass eq skips the measured-cost fields (perf)

    def test_different_seed_different_digest(self):
        a = run_scenario("steady-city", n_ue=200, duration_s=0.5, seed=3,
                         verbose_trace=True)
        b = run_scenario("steady-city", n_ue=200, duration_s=0.5, seed=4,
                         verbose_trace=True)
        assert a.digest != b.digest


class TestReplicates:
    def test_run_replicates_one_result_per_seed(self):
        out = run_replicates("steady-city", seeds=[1, 2], n_ue=150,
                             duration_s=0.5)
        assert [r.seed for r in out] == [1, 2]
        assert all(r.ok for r in out)

    def test_engine_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            run_scenario("steady-city", n_ue=10, duration_s=0.1, mode="bogus")
