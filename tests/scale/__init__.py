"""Tests for the city-scale harness (repro.scale)."""
