"""RYW under signaling storms: property campaign + pinned corpus.

The measured-model storm scenarios concentrate control-plane load in
ways the steady-state campaigns never produce: a mass IoT re-attach
drain right after a region blackout clears, tracker cohorts
re-registering while they roam, smartphones keeping their diurnal
session load underneath.  Hypothesis composes ``iot-reattach-storm``
with the fault dimensions of ``test_ryw_mobility.py``:

* the region crash timed so recovery lands *inside* the re-attach
  window (the storm hammers a region still replaying its log);
* checkpoint loss on an inter-CPF hop class for the whole run
  (``ScenarioSpec.link_faults``);
* ring churn — a sibling region joins and retires mid-storm.

The invariant is absolute: ``violations == 0`` for every serve the
auditor observes, with per-UE causal history enabled.  The pinned
corpus replays the campaign's nastiest configurations on fixed seeds
so a regression shows up as a named test, not a flaky property.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.scale.engine import run_scenario
from repro.scale.scenarios import get_scenario

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=10,
    print_blob=True,
)

#: hops that carry checkpoints / repair fetches between CPFs
_CHECKPOINT_HOPS = ("cpf_cpf_intra", "cpf_cpf_inter", "cpf_cpf_far")

#: the iot-reattach storms trigger at frac 0.52 and drain for 0.12-0.18
#: of the run; crash/recover windows below are chosen to overlap that.
_STORM_TRIGGER = 0.52


def _storm_spec(
    seed,
    n_ue=140,
    l2_regions=2,
    l1_per_l2=2,
    rate_scale=8.0,
    fault_events=(),
    link_faults=(),
    churn_events=(),
):
    base = get_scenario("iot-reattach-storm")
    return dataclasses.replace(
        base,
        name="iot-reattach-storm-property",
        n_ue=n_ue,
        duration_s=1.5,
        seed=seed,
        l2_regions=l2_regions,
        l1_per_l2=l1_per_l2,
        cpfs_per_region=2,
        bss_per_region=2,
        traffic_rate_scale=rate_scale,
        fault_events=list(fault_events),
        link_faults=list(link_faults),
        churn_events=list(churn_events),
        audit_history=True,
    )


@st.composite
def storm_city_specs(draw):
    seed = draw(st.integers(0, 2**20))
    l1_per_l2 = draw(st.integers(2, 3))
    l2_regions = draw(st.integers(2, 3))

    fault_events = []
    if draw(st.booleans()):
        # recovery inside the re-attach drain: the storm's attach wave
        # lands on a region that just finished §4.2.5 log replay
        fail_at = draw(st.floats(0.30, 0.50))
        recover_at = draw(st.floats(0.55, 0.70))
        victim = draw(st.integers(0, l2_regions * l1_per_l2 - 1))
        fault_events = [
            (fail_at, "fail", "region:index:%d" % victim),
            (recover_at, "recover", "region:index:%d" % victim),
        ]

    link_faults = []
    if draw(st.booleans()):
        hop = draw(st.sampled_from(_CHECKPOINT_HOPS))
        link_faults = [(hop, draw(st.floats(0.05, 0.30)))]

    churn_events = []
    if l1_per_l2 < 4 and draw(st.booleans()):
        add_at = draw(st.floats(0.15, 0.35))
        remove_at = draw(st.floats(0.60, 0.85))
        churn_events = [(add_at, "add", "fill:0"), (remove_at, "remove", "fill:0")]

    return _storm_spec(
        seed=seed,
        n_ue=draw(st.integers(100, 200)),
        l2_regions=l2_regions,
        l1_per_l2=l1_per_l2,
        rate_scale=draw(st.sampled_from((8.0, 16.0))),
        fault_events=fault_events,
        link_faults=link_faults,
        churn_events=churn_events,
    )


@given(spec=storm_city_specs())
@settings(**_SETTINGS)
def test_ryw_holds_through_reattach_storms(spec):
    res = run_scenario(spec)
    assert res.violations == 0, (
        "RYW violated (seed=%d faults=%r links=%r churn=%r)"
        % (spec.seed, spec.fault_events, spec.link_faults, spec.churn_events)
    )
    assert res.serves > 0 and res.writes > 0
    # the storm must actually fire — this campaign is about burst load
    assert res.counters.get("storm_arrivals", 0) > 0


@given(spec=storm_city_specs())
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_storm_runs_are_reproducible(spec):
    a = run_scenario(spec, verbose_trace=True)
    b = run_scenario(spec, verbose_trace=True)
    assert a.digest == b.digest
    assert a == b  # dataclass eq skips the measured-cost fields (perf)


# -------------------------------------------------------- pinned corpus

#: nastiest configurations the campaign has produced, replayed on fixed
#: seeds: a regression here is a named failure, never a flaky property.
_REGRESSION_CORPUS = [
    # recovery lands exactly at the storm trigger, lossy far links
    dict(
        seed=9001,
        fault_events=[
            (0.40, "fail", "region:index:0"),
            (_STORM_TRIGGER, "recover", "region:index:0"),
        ],
        link_faults=[("cpf_cpf_far", 0.30)],
    ),
    # region dies *during* the drain and stays down past the window
    dict(
        seed=4242,
        fault_events=[
            (0.55, "fail", "region:index:1"),
            (0.85, "recover", "region:index:1"),
        ],
        link_faults=[("cpf_cpf_inter", 0.25)],
    ),
    # ring churn brackets the storm; every hop class mildly lossy
    dict(
        seed=777,
        l1_per_l2=3,
        churn_events=[(0.25, "add", "fill:0"), (0.75, "remove", "fill:0")],
        link_faults=[(hop, 0.10) for hop in _CHECKPOINT_HOPS],
    ),
    # crash + churn + loss at the higher rate scale, bigger city
    dict(
        seed=31337,
        n_ue=200,
        l2_regions=3,
        rate_scale=16.0,
        fault_events=[
            (0.45, "fail", "region:index:2"),
            (0.65, "recover", "region:index:2"),
        ],
        churn_events=[(0.20, "add", "fill:1"), (0.80, "remove", "fill:1")],
        link_faults=[("cpf_cpf_intra", 0.20)],
    ),
]


def _corpus_id(case):
    return "seed%d" % case["seed"]


@pytest.mark.parametrize("case", _REGRESSION_CORPUS, ids=_corpus_id)
def test_regression_corpus(case):
    res = run_scenario(_storm_spec(**case))
    assert res.violations == 0, "corpus case %s regressed" % _corpus_id(case)
    assert res.counters.get("storm_arrivals", 0) > 0
    assert res.serves > 0 and res.writes > 0
