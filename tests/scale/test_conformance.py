"""Scale-conformance: the flyweight cohort is bit-identical to N UEs.

The aggregated cohort keeps per-UE state in flat arrays and hydrates a
UE object only while a procedure is in flight; ``IndividualDriver``
runs the very same schedule with N persistent UE objects.  If the
flyweight model is faithful, the two runs are indistinguishable *at the
message level* — the verbose EventTrace digest (every message of every
procedure, in order) must match bit for bit, not just the summary
counters.  Seeds are pinned so a conformance break bisects cleanly.
"""

import pytest

from repro.scale.engine import run_scenario

N = 50
SEEDS = (11, 23)
SCENARIOS = ("steady-city", "ring-churn", "region-failover")


def run(scenario, seed, mode):
    return run_scenario(
        scenario,
        n_ue=N,
        duration_s=2.0,
        seed=seed,
        mode=mode,
        verbose_trace=True,
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_cohort_digest_matches_individual(scenario, seed):
    cohort = run(scenario, seed, "cohort")
    individual = run(scenario, seed, "individual")
    assert cohort.trace_events > 0, "verbose trace recorded nothing"
    assert cohort.trace_events == individual.trace_events
    assert cohort.digest == individual.digest, (
        "flyweight cohort diverged from persistent UEs on %s seed %d"
        % (scenario, seed)
    )
    # identical messages must imply identical outcomes and measurements
    assert cohort.violations == individual.violations == 0
    for field in ("completed", "aborted", "recovered", "reattached",
                  "serves", "writes", "end_time_s", "regions_final"):
        assert getattr(cohort, field) == getattr(individual, field), field
    assert cohort.region_pct_ms == individual.region_pct_ms


def test_conformance_digests_are_pinned():
    """The witness itself is pinned: silent co-drift of both drivers
    (same bug in a shared code path) can't masquerade as conformance."""
    res = run("steady-city", 11, "cohort")
    assert res.digest == "e9e69136042bed05ecfba57ebba94154"


def test_mode_is_recorded_on_the_result():
    a = run_scenario("steady-city", n_ue=10, duration_s=0.2, seed=1,
                     mode="individual")
    assert a.mode == "individual"
