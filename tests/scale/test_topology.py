"""Tests for geo-hash city generation (repro.scale.topology)."""

import pytest

from repro.faults.injector import region_of
from repro.geo import geohash
from repro.scale.topology import (
    CHILD_ORDER,
    build_city,
    region_for_tile,
    tile_adjacency,
)


class TestBuildCity:
    def test_default_city_shape(self):
        topo = build_city()
        assert len(topo.regions) == 16
        assert len({t[:-1] for t in topo.tiles}) == 4  # 4 level-2 parents
        assert all(len(t) == 6 for t in topo.tiles)

    def test_tiles_are_string_extensions_of_parents(self):
        topo = build_city(l2_regions=3, l1_per_l2=2)
        for tile in topo.tiles:
            assert tile[-1] in CHILD_ORDER
        # membership in a level-2 region is exactly the prefix
        parents = {t[:-1] for t in topo.tiles}
        assert len(parents) == 3

    def test_city_graph_is_connected(self):
        # A disconnected city silently turns mobility into a no-op; the
        # CHILD_ORDER choice exists precisely to keep partial parents
        # (l1_per_l2=2 -> southern row only) contiguous.
        for l1 in (2, 3, 4):
            topo = build_city(l2_regions=4, l1_per_l2=l1)
            seen = {topo.tiles[0]}
            frontier = [topo.tiles[0]]
            while frontier:
                for nxt in topo.adjacency[frontier.pop()]:
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            assert seen == set(topo.tiles), "l1_per_l2=%d disconnects the city" % l1

    def test_spare_tile_outside_city_but_adjacent(self):
        topo = build_city()
        assert topo.spare_tile not in topo.tiles
        joined = topo.adjacency_with([topo.spare_tile])
        assert joined[topo.spare_tile], "spare tile is an island"

    def test_node_naming_matches_fault_injector_convention(self):
        topo = build_city(l2_regions=1, l1_per_l2=1)
        region = topo.regions[0]
        tile = region.geohash
        assert region.cta == "cta-" + tile
        for node in [region.cta] + region.cpfs + region.bss:
            assert region_of(node) == tile

    def test_region_map_round_trip(self):
        topo = build_city(l2_regions=2, l1_per_l2=2, cpfs_per_region=3)
        rmap = topo.region_map()
        assert sorted(rmap.regions) == sorted(topo.tiles)
        for tile in topo.tiles:
            assert len(rmap.region(tile).cpfs) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            build_city(l2_regions=0)
        with pytest.raises(ValueError):
            build_city(l1_per_l2=5)
        with pytest.raises(ValueError):
            build_city(precision=2)

    def test_antimeridian_guard(self):
        with pytest.raises(ValueError, match="antimeridian"):
            build_city(l2_regions=64, precision=3, origin=(41.88, 170.0))


class TestAdjacency:
    def test_adjacency_is_exact_edge_sharing(self):
        topo = build_city(l2_regions=2, l1_per_l2=4)
        for tile, nbrs in topo.adjacency.items():
            (lat_lo, lat_hi), (lon_lo, lon_hi) = geohash.decode_bounds(tile)
            for nbr in nbrs:
                (blat_lo, blat_hi), (blon_lo, blon_hi) = geohash.decode_bounds(nbr)
                touches = (
                    lat_lo == blat_hi
                    or lat_hi == blat_lo
                    or lon_lo == blon_hi
                    or lon_hi == blon_lo
                )
                assert touches, (tile, nbr)

    def test_adjacency_symmetric(self):
        topo = build_city()
        for tile, nbrs in topo.adjacency.items():
            for nbr in nbrs:
                assert tile in topo.adjacency[nbr]

    def test_band_degree_profile(self):
        # the city is a 2-tile-tall band marching east: corner tiles have
        # exactly 2 neighbours, every other tile 3 — no dangling leaves
        topo = build_city(l2_regions=3, l1_per_l2=4)
        counts = sorted(len(ns) for ns in topo.adjacency.values())
        assert counts[0] == 2 and counts[-1] == 3
        assert counts.count(2) == 4  # the four band corners

    def test_adjacency_without(self):
        topo = build_city(l2_regions=2, l1_per_l2=2)
        gone = topo.tiles[0]
        pruned = topo.adjacency_without([gone])
        assert gone not in pruned
        assert all(gone not in ns for ns in pruned.values())

    def test_tile_adjacency_only_equal_precision_siblings(self):
        # diagonal tiles share a corner, not an edge: not adjacent
        base = build_city(l2_regions=1, l1_per_l2=4).tiles
        adj = tile_adjacency(base)
        sw, se, nw, ne = (
            [t for t in base if t.endswith(c)][0] for c in ("0", "2", "1", "3")
        )
        assert se not in adj[nw] and nw not in adj[se]
        assert sw not in adj[ne] and ne not in adj[sw]


class TestRegionForTile:
    def test_counts_and_names(self):
        region = region_for_tile("dp3wj2", 3, 2)
        assert region.cpfs == ["cpf-dp3wj2-0", "cpf-dp3wj2-1", "cpf-dp3wj2-2"]
        assert region.bss == ["bs-dp3wj2-0", "bs-dp3wj2-1"]
        assert region.level2 == "dp3wj"
