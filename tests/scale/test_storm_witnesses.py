"""Determinism witnesses for the measured-model storm scenarios.

Style of ``tests/core/test_kernel_witnesses.py``: the verbose EventTrace
digest (every message of every procedure, in order) of each storm
scenario at a small pinned population is recorded below.  If a change
to the traffic-model layer, the stream merge, or the engine perturbs a
single RNG draw or reorders one same-time arrival, a digest moves and
the witness fails.  The expected values must NEVER be regenerated to
make a refactor pass; they may only change when the *model* (traffic
catalog, storm shapes, engine semantics) intentionally changes.

Beyond the raw pins, the witnesses close the runner matrix:

* flyweight cohort == N persistent UE objects (conformance extension);
* serial ``run_replicates`` == parallel (``jobs=2``), dict for dict;
* a result decoded from a ``ResultCache`` hit == the miss that wrote it.
"""

import pytest

from repro.experiments.cache import ResultCache
from repro.scale.engine import ScaleResult, run_replicates, run_scenario

N = 120
DURATION_S = 1.0
SEED = 11

#: verbose-trace digests recorded when the measured traffic models
#: first shipped (cohort mode, N=120, duration=1.0, seed=11).
EXPECTED_DIGESTS = {
    "iot-reattach-storm": "88c5db9bead872670ff9e2e0a1bd8b64",
    "paging-storm": "ba68783e1f40e48cf75b6ee9a75222f7",
    "midnight-tau-spike": "55e2bfe22e91877570fd8c6b40f4db78",
}


def run(scenario, mode="cohort", seed=SEED):
    return run_scenario(
        scenario,
        n_ue=N,
        duration_s=DURATION_S,
        seed=seed,
        mode=mode,
        verbose_trace=True,
    )


@pytest.mark.parametrize("scenario", sorted(EXPECTED_DIGESTS), ids=str)
def test_storm_digest_is_pinned(scenario):
    res = run(scenario)
    assert res.trace_events > 0, "verbose trace recorded nothing"
    assert res.counters.get("storm_arrivals", 0) > 0, "storm never fired"
    assert res.digest == EXPECTED_DIGESTS[scenario], (
        "trace digest moved for %s: the measured-model arrival schedule "
        "is no longer bit-identical to the pinned witness" % scenario
    )


@pytest.mark.parametrize("scenario", sorted(EXPECTED_DIGESTS), ids=str)
def test_cohort_matches_individual(scenario):
    cohort = run(scenario, "cohort")
    individual = run(scenario, "individual")
    assert cohort.trace_events == individual.trace_events
    assert cohort.digest == individual.digest, (
        "flyweight cohort diverged from persistent UEs on %s" % scenario
    )
    assert cohort.violations == individual.violations == 0


def test_storm_digests_differ_across_scenarios():
    """Three scenarios, three schedules: identical digests would mean
    the model layer is not actually reaching the trace."""
    assert len(set(EXPECTED_DIGESTS.values())) == len(EXPECTED_DIGESTS)


def test_parallel_replicates_match_serial():
    serial = run_replicates(
        "iot-reattach-storm", seeds=[11, 23], n_ue=N,
        duration_s=DURATION_S, jobs=1,
    )
    parallel = run_replicates(
        "iot-reattach-storm", seeds=[11, 23], n_ue=N,
        duration_s=DURATION_S, jobs=2,
    )
    assert list(serial) == list(parallel)  # dataclass eq skips perf fields


def test_cache_hit_replays_the_miss(tmp_path):
    cache = ResultCache(
        str(tmp_path),
        encode=lambda r: r.to_dict(),
        decode=ScaleResult.from_dict,
    )
    miss = run_replicates(
        "midnight-tau-spike", seeds=[7], n_ue=N,
        duration_s=DURATION_S, cache=cache,
    )
    assert cache.stats.misses == 1
    hit = run_replicates(
        "midnight-tau-spike", seeds=[7], n_ue=N,
        duration_s=DURATION_S, cache=cache,
    )
    assert cache.stats.hits == 1
    assert list(miss) == list(hit)  # dataclass eq skips perf fields
