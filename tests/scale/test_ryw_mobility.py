"""RYW under mobility: property campaign over traces × fault plans.

Hypothesis drives randomized city runs — a small population roaming
across at least three regions at a boosted mobility rate — against
randomized fault dimensions:

* a whole region (CTA + every CPF) crashing mid-run, timed to land
  inside the handover wave, and recovering later;
* checkpoint loss on an inter-CPF hop class for the entire run
  (``LinkPerturbation.drop_p``), so state replication to level-2
  backups and re-placement repair fetches both ride lossy links;
* ring churn (a sibling region joining and later retiring) while the
  population keeps moving.

The invariant is the paper's: read-your-writes must hold for every
serve the auditor observes, under *any* combination of the above —
``violations == 0`` with no exceptions tolerated.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.scale.engine import run_scenario
from repro.scale.scenarios import ScenarioSpec

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=12,
    print_blob=True,
)

#: hops that carry checkpoints / repair fetches between CPFs
_CHECKPOINT_HOPS = ("cpf_cpf_intra", "cpf_cpf_inter", "cpf_cpf_far")


@st.composite
def mobile_city_specs(draw):
    seed = draw(st.integers(0, 2**20))
    l1_per_l2 = draw(st.integers(2, 3))
    l2_regions = draw(st.integers(2, 3))

    fault_events = []
    if draw(st.booleans()):
        # CTA + CPFs of one region crash inside the roaming window and
        # recover before the end: inter-region handovers in flight land
        # on a dead region and must ride §4.2.5 recovery
        fail_at = draw(st.floats(0.20, 0.45))
        recover_at = draw(st.floats(0.55, 0.80))
        victim = draw(st.integers(0, l2_regions * l1_per_l2 - 1))
        fault_events = [
            (fail_at, "fail", "region:index:%d" % victim),
            (recover_at, "recover", "region:index:%d" % victim),
        ]

    link_faults = []
    if draw(st.booleans()):
        hop = draw(st.sampled_from(_CHECKPOINT_HOPS))
        link_faults = [(hop, draw(st.floats(0.05, 0.30)))]

    churn_events = []
    if l1_per_l2 < 4 and draw(st.booleans()):
        add_at = draw(st.floats(0.15, 0.35))
        remove_at = draw(st.floats(0.55, 0.85))
        churn_events = [(add_at, "add", "fill:0"), (remove_at, "remove", "fill:0")]

    return ScenarioSpec(
        name="ryw-mobility-property",
        description="randomized RYW-under-mobility case",
        n_ue=draw(st.integers(30, 80)),
        duration_s=1.5,
        seed=seed,
        l2_regions=l2_regions,
        l1_per_l2=l1_per_l2,
        cpfs_per_region=2,
        bss_per_region=2,
        # roam hard: every UE moves ~15x/run, most moves cross regions
        mobility_rate_per_ue=1.0 / 10.0,
        service_rate_per_ue=1.0 / 5.0,
        tau_rate_per_ue=1.0 / 30.0,
        fault_events=fault_events,
        link_faults=link_faults,
        churn_events=churn_events,
        audit_history=True,
    )


@given(spec=mobile_city_specs())
@settings(**_SETTINGS)
def test_ryw_holds_under_mobility_and_faults(spec):
    res = run_scenario(spec)
    assert res.violations == 0, (
        "RYW violated (seed=%d faults=%r links=%r churn=%r)"
        % (spec.seed, spec.fault_events, spec.link_faults, spec.churn_events)
    )
    assert res.serves > 0 and res.writes > 0
    # the campaign must actually exercise mobility, not idle around
    moved = (
        res.counters.get("moves_fast_handover", 0)
        + res.counters.get("moves_handover", 0)
        + res.counters.get("moves_intra", 0)
    )
    assert moved > 0


@given(spec=mobile_city_specs())
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_randomized_runs_are_reproducible(spec):
    a = run_scenario(spec, verbose_trace=True)
    b = run_scenario(spec, verbose_trace=True)
    assert a.digest == b.digest
    assert a == b  # dataclass eq skips the measured-cost fields (perf)


def test_known_hard_case_cta_crash_mid_handover_wave():
    """Pinned worst case: the region everyone is handing over into dies
    mid-wave with lossy inter-CPF links, then recovers."""
    spec = ScenarioSpec(
        name="ryw-hard-case",
        description="CTA crash mid-wave + lossy checkpoint links",
        n_ue=60,
        duration_s=1.5,
        seed=1337,
        l2_regions=2,
        l1_per_l2=2,
        mobility_rate_per_ue=1.0 / 8.0,
        service_rate_per_ue=1.0 / 5.0,
        fault_events=[
            (0.30, "fail", "region:index:0"),
            (0.70, "recover", "region:index:0"),
        ],
        link_faults=[("cpf_cpf_inter", 0.25), ("cpf_cpf_far", 0.25)],
        audit_history=True,
    )
    res = run_scenario(spec)
    assert res.violations == 0
    assert res.fault_counters.get("ops_applied", 0) == 6
    retransmits = sum(
        v for k, v in res.fault_counters.items() if k.endswith(".retransmits")
    )
    assert retransmits > 0, (
        "the lossy links never dropped anything; the case is not hard"
    )
