"""Shard-aware observability: trace stitching, heartbeats, the ledger.

The contract under test (ISSUE: schedule transparency at scale):

* installing tracing on a sharded run leaves the merged EventTrace
  digest bit-identical to the obs-off pinned witness (the trace-link id
  rides the obs channel only — sim consumers index ``rec[:7]``);
* the coordinator stitches the per-shard span tables into one
  Chrome/Perfetto trace with one process per shard and, on a
  migration-bearing run, at least one cross-shard flow event joining
  the emigrating procedure to its ``shard.install_migrated``
  continuation;
* the epoch-aligned heartbeat stream is deterministic in every
  simulation-derived field (two runs produce identical rows once the
  wall-clock measurement fields are dropped) and requesting it never
  perturbs the schedule;
* the run ledger round-trips through JSON under its stable schema.

The pinned digest must NEVER be regenerated to make a refactor pass.
"""

import io
import json

import pytest

from repro.obs import Observability
from repro.obs.export import stitch_chrome_trace, validate_chrome_trace
from repro.obs.ledger import LEDGER_SCHEMA, build_run_ledger, write_run_ledger
from repro.obs.stream import HeartbeatStream
from repro.scale.shard import run_sharded

from .test_sharded import PINNED_SHARDED_DIGEST, _fault_window_spec, run2

#: heartbeat fields that are wall-clock measurement, not contract.
_VOLATILE = ("wall_s", "lag_s", "imbalance")


def _stable_rows(text: str):
    rows = []
    for line in text.splitlines():
        row = json.loads(line)
        for key in _VOLATILE:
            row.pop(key, None)
        for shard_row in row.get("shards", ()):
            for key in _VOLATILE:
                shard_row.pop(key, None)
        rows.append(row)
    return rows


# ---------------------------------------------------- schedule transparency


def test_sharded_trace_digest_matches_pinned_witness():
    res = run2(obs=Observability("trace"))
    assert res.violations == 0
    assert res.digest == PINNED_SHARDED_DIGEST, (
        "installing tracing moved the sharded digest: the obs channel "
        "leaked into the simulation schedule"
    )
    snap = res.obs_snapshot
    assert snap["mode"] == "trace"
    assert snap["spans_started"] == snap["spans_finished"] > 0


def test_sharded_batched_trace_digest_matches_pinned_witness():
    res = run2(mode="batched", obs=Observability("trace"))
    assert res.digest == PINNED_SHARDED_DIGEST


def test_heartbeat_stream_does_not_perturb_the_digest():
    stream = HeartbeatStream(io.StringIO(), progress=None)
    res = run2(obs=Observability("metrics"), stream=stream)
    assert res.digest == PINNED_SHARDED_DIGEST
    assert stream.rows > 1  # heartbeats + the summary row


# ------------------------------------------------------------------ stitching


def test_stitched_trace_validates_with_per_shard_tracks():
    res = run2(obs=Observability("trace"))
    data = stitch_chrome_trace(res.obs_shards)
    assert validate_chrome_trace(data) == len(data["traceEvents"])
    assert data["metadata"]["shards"] == 2
    names = {
        ev["args"]["name"]
        for ev in data["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "process_name"
    }
    assert names == {"repro-sim shard 0", "repro-sim shard 1"}
    pids = {ev["pid"] for ev in data["traceEvents"]}
    assert pids == {1, 2}


def test_migration_bearing_run_has_cross_shard_flow_events():
    res = run_sharded(
        _fault_window_spec(), shards=2, backend="inline",
        obs=Observability("trace"), verbose_trace=True,
    )
    assert res.counters.get("migrations_out", 0) > 0
    data = stitch_chrome_trace(res.obs_shards)
    validate_chrome_trace(data)
    starts = [ev for ev in data["traceEvents"] if ev["ph"] == "s"]
    ends = [ev for ev in data["traceEvents"] if ev["ph"] == "f"]
    assert data["metadata"]["flow_events"] >= 1
    assert len(starts) == len(ends) == data["metadata"]["flow_events"]
    by_id = {ev["id"]: ev for ev in starts}
    for fin in ends:
        start = by_id[fin["id"]]
        # the flow crosses a process (= shard) boundary, forward in time
        assert start["pid"] != fin["pid"]
        assert start["ts"] <= fin["ts"]
        assert start["args"]["ue"] == fin["args"]["ue"]
    # every destination anchor is an install continuation span
    install = [
        ev for ev in data["traceEvents"]
        if ev["ph"] == "X" and ev["name"] == "shard.install_migrated"
    ]
    assert len(install) >= len(ends)


def test_span_keep_knob_is_digest_transparent():
    res = run2(obs=Observability("trace", span_keep=2))
    assert res.digest == PINNED_SHARDED_DIGEST  # retention is obs-side only
    assert res.obs_snapshot["retention"]["limit"] == 2


def test_bounded_retention_caps_kept_roots():
    keep = 2
    res = run_sharded(
        _fault_window_spec(), shards=2, backend="inline",
        obs=Observability("trace", span_keep=keep), verbose_trace=True,
    )
    ret = res.obs_snapshot["retention"]
    assert ret["limit"] == keep
    assert ret["roots_dropped"] > 0
    from repro.obs.tracer import SpanRetention

    ok = SpanRetention.OK_STATUSES
    for snap in res.obs_shards:
        trees = {}
        for r in snap["spans"]:
            trees.setdefault(r["root"], []).append(r)
        anchors = {f["span"] for f in snap["flows_out"]}
        per_proc = {}
        for root_id, tree in trees.items():
            root = next(r for r in tree if r["id"] == root_id)
            # fault-touched, recovered, and migration-anchor trees are
            # exempt; the slowest-K cap binds the clean steady traffic
            if (
                not root["name"].startswith("proc.")
                or root_id in anchors
                or root["attrs"].get("recovered")
                or root["attrs"].get("reattached")
                or any(r["status"] not in ok for r in tree)
            ):
                continue
            per_proc[root["name"]] = per_proc.get(root["name"], 0) + 1
        assert per_proc
        assert max(per_proc.values()) <= keep


# ------------------------------------------------------------------ heartbeats


def test_heartbeat_stream_is_deterministic_and_epoch_aligned():
    def run_streamed():
        buf = io.StringIO()
        run2(
            obs=Observability("metrics"),
            stream=HeartbeatStream(buf, progress=None),
        )
        return buf.getvalue()

    a, b = _stable_rows(run_streamed()), _stable_rows(run_streamed())
    assert a == b, "heartbeat stream is not deterministic in stable fields"
    beats = [r for r in a if r["type"] == "heartbeat"]
    assert beats
    assert a[-1]["type"] == "summary"
    epochs = [r["epoch"] for r in beats]
    assert epochs == sorted(epochs)
    for row in beats:
        assert len(row["shards"]) == 2
        assert row["serves"] == sum(s["serves"] for s in row["shards"])
        assert 0.0 <= row["progress"] <= 1.0
        # merged labeled metrics rode the epoch replies
        counters = {c["name"] for c in row["metrics"]["counters"]}
        assert "hop_messages" in counters
        shards_seen = {
            c["labels"].get("shard")
            for c in row["metrics"]["counters"]
            if c["name"] == "hop_messages"
        }
        assert shards_seen <= {"0", "1"}
    summary = a[-1]
    assert summary["digest"] == PINNED_SHARDED_DIGEST
    assert summary["ok"] is True


def test_progress_line_mirrors_each_heartbeat():
    buf, prog = io.StringIO(), io.StringIO()
    run2(
        obs=Observability("metrics"),
        stream=HeartbeatStream(buf, progress=prog),
    )
    beats = [
        l for l in buf.getvalue().splitlines()
        if json.loads(l)["type"] == "heartbeat"
    ]
    lines = prog.getvalue().splitlines()
    assert len(lines) == len(beats)
    assert all(l.startswith("[obs-stream] t=") for l in lines)


def test_single_process_stream_emits_summary_only():
    from repro.scale.engine import run_scenario

    buf = io.StringIO()
    run_scenario(
        "steady-city", n_ue=400, duration_s=0.5, seed=3,
        stream=HeartbeatStream(buf, progress=None), verbose_trace=True,
    )
    rows = [json.loads(l) for l in buf.getvalue().splitlines()]
    assert [r["type"] for r in rows] == ["summary"]


# ------------------------------------------------------------------ ledger


def test_run_ledger_schema_and_roundtrip(tmp_path):
    res = run2(obs=Observability("trace"))
    path = str(tmp_path / "ledger.json")
    ledger = write_run_ledger(
        path, res, argv=["scale", "steady-city"],
        stream_path="hb.ndjson", trace_path="trace.json",
    )
    assert res.ledger_path == path
    with open(path) as fp:
        loaded = json.load(fp)
    assert loaded == ledger
    assert loaded["schema"] == LEDGER_SCHEMA
    assert loaded["config"] == {
        "scenario": "steady-city", "mode": "cohort", "n_ue": 400,
        "duration_s": 0.5, "seed": 3, "n_shards": 2,
    }
    assert len(loaded["config_fingerprint"]) == 64
    assert loaded["auditor"]["ok"] is True
    assert loaded["digest"] == PINNED_SHARDED_DIGEST
    assert loaded["artifacts"] == {
        "trace": "trace.json", "stream": "hb.ndjson",
    }
    assert loaded["obs"]["mode"] == "trace"
    assert len(loaded["shards"]) == 2
    for row in loaded["shards"]:
        assert row["health"]["violations"] == 0
    assert loaded["latency_ms"]  # per-(region, procedure) quantiles


def test_ledger_config_fingerprint_tracks_the_spec():
    a = build_run_ledger(run2())
    b = build_run_ledger(run2())
    assert a["config_fingerprint"] == b["config_fingerprint"]
    c = build_run_ledger(run2(seed=4))
    assert c["config_fingerprint"] != a["config_fingerprint"]


def test_result_json_embeds_ledger_path_and_shard_health(tmp_path):
    res = run2()
    path = str(tmp_path / "l.json")
    write_run_ledger(path, res)
    payload = json.loads(json.dumps(res.to_dict()))
    assert payload["ledger_path"] == path
    assert len(payload["shards"]) == 2
    for row in payload["shards"]:
        health = row["health"]
        assert health["events"] > 0
        assert health["shard"] == row["shard"]


# ------------------------------------------------------------------ CLI


def test_cli_sharded_trace_stream_ledger(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    rc = main([
        "scale", "steady-city", "--n-ue", "400", "--duration", "0.5",
        "--seed", "3", "--shards", "2", "--shard-backend", "inline",
        "--mode", "batched", "--obs", "trace",
        "--obs-stream", "hb.ndjson", "--ledger", "ledger.json",
        "--trace-out", "stitched.json", "--verbose-trace",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "trace: wrote stitched.json" in out
    assert "ledger: wrote ledger.json" in out
    with open(tmp_path / "stitched.json") as fp:
        validate_chrome_trace(json.load(fp))
    with open(tmp_path / "ledger.json") as fp:
        ledger = json.load(fp)
    assert ledger["digest"] == PINNED_SHARDED_DIGEST
    assert ledger["artifacts"]["trace"] == "stitched.json"
    rows = [
        json.loads(l) for l in (tmp_path / "hb.ndjson").read_text().splitlines()
    ]
    assert rows[-1]["type"] == "summary"
    assert any(r["type"] == "heartbeat" for r in rows)


def test_cli_rejects_stream_flags_with_seed_sweeps(capsys):
    from repro.cli import main

    rc = main([
        "scale", "steady-city", "--seeds", "1,2", "--obs-stream", "-",
    ])
    assert rc == 2
    assert "incompatible" in capsys.readouterr().err
