"""Tests for the flyweight cohort driver (repro.scale.cohort)."""

import pytest

from repro.core.deployment import Deployment
from repro.faults.runner import config_from_name
from repro.scale.cohort import CohortDriver, IndividualDriver
from repro.scale.topology import build_city
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry


def make_dep(seed=1, l2_regions=2, l1_per_l2=2):
    sim = Simulator()
    topo = build_city(l2_regions=l2_regions, l1_per_l2=l1_per_l2)
    dep = Deployment(
        sim,
        config_from_name("neutrino"),
        topo.region_map(),
        rng=RngRegistry(seed).fork("dep"),
    )
    return sim, topo, dep


def make_driver(cls=CohortDriver, n=4, seed=1):
    sim, topo, dep = make_dep(seed=seed)
    bs_names = [b for r in topo.regions for b in r.bss]
    return sim, topo, dep, cls(dep, bs_names, n)


class TestBookkeeping:
    def test_ue_ids_are_stable_and_indexed(self):
        _sim, _topo, _dep, driver = make_driver()
        assert driver.ue_id(0) == "c-0000000"
        assert driver.ue_id(3) == "c-0000003"
        assert int(driver.ue_id(3).split("-")[-1]) == 3  # engine relies on this

    def test_bootstrap_sets_arrays(self):
        _sim, topo, dep, driver = make_driver()
        bs = topo.regions[0].bss[0]
        driver.bootstrap(0, bs)
        assert driver.attached[0] == 1
        assert driver.busy[0] == 0
        assert driver.bs_of(0) == bs
        assert driver.version[0] >= 1
        assert dep.placement_of("c-0000000") is not None

    def test_bs_index_registers_new_names(self):
        _sim, _topo, _dep, driver = make_driver()
        before = len(driver.bs_names)
        idx = driver.bs_index("bs-zzzzz9-0")
        assert idx == before
        assert driver.bs_index("bs-zzzzz9-0") == idx  # idempotent
        assert driver.bs_of is not None

    def test_no_per_ue_objects_at_rest(self):
        _sim, topo, dep, driver = make_driver(n=50)
        for i in range(50):
            driver.bootstrap(i, topo.regions[0].bss[0])
        # the cohort holds arrays only; the deployment UE registry stays
        # empty until a procedure hydrates a flyweight
        assert dep.ues() == []


class TestProcedures:
    def test_service_request_completes_and_writes_back(self):
        sim, topo, dep, driver = make_driver()
        driver.bootstrap(0, topo.regions[0].bss[0])
        v0 = driver.version[0]
        sim.process(driver.run_procedure(0, "service_request"), name="t")
        sim.run()
        assert driver.completed == 1
        assert driver.aborted == 0
        assert driver.busy[0] == 0
        assert driver.version[0] > v0
        assert dep.ues() == [], "flyweight leaked after writeback"

    def test_handover_moves_bs(self):
        sim, topo, dep, driver = make_driver()
        src = topo.regions[0].bss[0]
        dst = topo.regions[1].bss[0]
        driver.bootstrap(0, src)
        sim.process(driver.run_procedure(0, "handover", dst), name="t")
        sim.run()
        assert driver.completed == 1
        assert driver.bs_of(0) == dst

    def test_abort_counts_instead_of_raising(self):
        sim, topo, dep, driver = make_driver()
        driver.bootstrap(0, topo.regions[0].bss[0])
        # fail every CPF that could serve the UE: the procedure aborts
        for cpf in dep.cpfs.values():
            cpf.fail()
        sim.process(driver.run_procedure(0, "service_request"), name="t")
        sim.run()
        assert driver.aborted == 1
        assert driver.busy[0] == 0  # busy flag released even on abort

    def test_busy_flag_spans_the_procedure(self):
        sim, topo, dep, driver = make_driver()
        driver.bootstrap(0, topo.regions[0].bss[0])
        observed = []

        def watcher():
            observed.append(driver.busy[0])
            yield sim.timeout(1e-6)
            observed.append(driver.busy[0])

        sim.process(driver.run_procedure(0, "service_request"), name="t")
        sim.process(watcher(), name="w")
        sim.run()
        assert observed[0] == 1  # mid-procedure
        assert driver.busy[0] == 0


class TestIndividualDriver:
    def test_persistent_ues_live_in_registry(self):
        sim, topo, dep, driver = make_driver(cls=IndividualDriver, n=3)
        for i in range(3):
            driver.bootstrap(i, topo.regions[0].bss[0])
        assert len(dep.ues()) == 3

    def test_same_scalars_as_cohort_after_procedure(self):
        results = {}
        for cls in (CohortDriver, IndividualDriver):
            sim, topo, dep, driver = make_driver(cls=cls, seed=5)
            driver.bootstrap(0, topo.regions[0].bss[0])
            sim.process(driver.run_procedure(0, "service_request"), name="t")
            sim.run()
            results[cls.mode] = (
                driver.attached[0],
                driver.version[0],
                driver.runs[0],
                driver.bs_of(0),
                driver.completed,
            )
        assert results["cohort"] == results["individual"]
