"""Batched-lane witnesses: the analytic lane is bit-identical to cohort.

The batched driver advances steady-state procedures analytically
(``repro.scale.lane``) and only falls back to the discrete-event path
for contention, faults, cross-region handovers, and storm backlogs.
Its correctness story is *conformance*: a batched run must be
indistinguishable from the cohort run — same verbose EventTrace digest,
same auditor verdict, same per-(region, procedure) sketch quantiles —
with ``gate_misses == 0`` proving every admission gate held.

Edge cases pinned here: a population of one, an all-busy cohort where
the lane admits nothing, a base station joining the ring mid-run
(add-only churn), and a signaling storm hot enough to spill lane steps
onto the queued server path.
"""

from dataclasses import replace

import pytest

from repro.scale.cohort import BatchedDriver
from repro.scale.engine import _Engine, run_scenario
from repro.scale.scenarios import get_scenario

N = 50
SEEDS = (11, 23)
SCENARIOS = ("steady-city", "ring-churn", "region-failover")

#: same constant as tests/scale/test_conformance.py pins for the cohort
#: driver — one digest, three drivers.
PINNED_STEADY_DIGEST = "e9e69136042bed05ecfba57ebba94154"


def run(scenario, seed, mode, n_ue=N, duration_s=2.0, audit_history=None):
    spec = scenario if not isinstance(scenario, str) else get_scenario(scenario)
    spec = spec.with_overrides(
        n_ue=n_ue, duration_s=duration_s, seed=seed, audit_history=audit_history
    )
    return run_scenario(spec, mode=mode, verbose_trace=True)


def stripped(result):
    """Full result dict minus the fields that *name* the driver
    (and the measured-cost fields, which are machine noise)."""
    d = result.to_dict()
    d.pop("mode")
    d.pop("lane", None)
    d.pop("perf", None)
    d.pop("shards", None)
    return d


def assert_conformant(cohort, batched):
    assert batched.lane.get("enabled"), "lane never engaged"
    assert batched.lane["gate_misses"] == 0
    assert batched.lane["walk_aborts"] == 0
    assert cohort.trace_events > 0, "verbose trace recorded nothing"
    assert stripped(cohort) == stripped(batched)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_batched_digest_matches_cohort(scenario, seed):
    cohort = run(scenario, seed, "cohort")
    batched = run(scenario, seed, "batched")
    assert batched.lane["admitted"] > 0, "nothing exercised the lane"
    assert_conformant(cohort, batched)


def test_batched_digest_is_pinned():
    """Batched reproduces the *cohort's* pinned digest: equality with a
    constant rules out co-drift of both drivers through a shared bug."""
    res = run("steady-city", 11, "batched")
    assert res.digest == PINNED_STEADY_DIGEST


def test_single_ue_population():
    """N=1: every array is one slot long, the lane still engages."""
    cohort = run("steady-city", 11, "cohort", n_ue=1, duration_s=600.0)
    batched = run("steady-city", 11, "batched", n_ue=1, duration_s=600.0)
    assert batched.completed > 0
    assert batched.lane["admitted"] > 0
    assert_conformant(cohort, batched)


def test_all_busy_cohort_admits_nothing():
    """Arrivals for busy UEs never enter the lane (empty sweep)."""
    spec = get_scenario("steady-city").with_overrides(n_ue=4, seed=1)
    engine = _Engine(spec, mode="batched")
    engine._bootstrap_population()
    driver = engine.driver
    assert isinstance(driver, BatchedDriver)
    assert driver.lane is not None
    driver.busy[:] = b"\x01" * spec.n_ue
    for i in range(spec.n_ue):
        driver.start_procedure(i, "service_request")
    assert driver.stats["admitted"] == 0
    assert driver.stats["fallback"] == spec.n_ue


def test_ring_churn_add_only_new_bs_mid_run():
    """A region (CTA + CPFs + BSs) joins mid-run; add-only spec, so the
    lane stays enabled outside the churn hazard window and replicas
    re-place onto the newcomer identically in both drivers."""
    spec = replace(
        get_scenario("ring-churn"), churn_events=[(0.30, "add", "fill:0")]
    )
    cohort = run(spec, 11, "cohort", n_ue=400)
    batched = run(spec, 11, "batched", n_ue=400)
    assert batched.counters.get("regions_added") == 1
    assert batched.lane["admitted"] > 0
    assert_conformant(cohort, batched)


def test_storm_spills_onto_queued_path():
    """A storm hot enough that some lane steps find the server busy:
    the spill path (``Server.submit`` fallback mid-walk) must keep the
    run bit-identical, not just the admission-time fallback."""
    cohort = run("paging-storm", 3, "cohort", n_ue=8000, audit_history=False)
    batched = run("paging-storm", 3, "batched", n_ue=8000, audit_history=False)
    assert batched.lane["spills"] > 0, "storm never exercised the spill path"
    assert_conformant(cohort, batched)


def test_lazy_bootstrap_matches_eager_cohort():
    """Past the history cutoff the batched driver bootstraps lazily
    (placement sink + wholesale prefill); the cohort driver stays
    eager — results must still be identical."""
    cohort = run("steady-city", 2, "cohort", n_ue=3000, audit_history=False)
    batched = run("steady-city", 2, "batched", n_ue=3000, audit_history=False)
    assert batched.lane["lazy_bootstrap"] == 1
    assert_conformant(cohort, batched)
