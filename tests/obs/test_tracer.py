"""Unit tests for the deterministic span tracer."""

import pytest

from repro.obs import Tracer
from repro.sim import Simulator
from repro.sim.node import NodeFailed


class TestSpanBasics:
    def test_root_and_child_linking(self):
        tracer = Tracer(lambda: 0.0)
        root = tracer.begin("proc.attach", proc="attach")
        child = tracer.begin("hop.ue_bs", parent=root)
        assert root.is_root and root.root_id == root.span_id
        assert child.parent_id == root.span_id
        assert child.root_id == root.root_id
        assert tracer.children_of(root) == [child]
        assert tracer.roots() == [root]

    def test_phase_defaults_to_first_dotted_component(self):
        tracer = Tracer(lambda: 0.0)
        assert tracer.begin("cta.ingest").phase == "cta"
        assert tracer.begin("hop.bs_cta", phase="transit").phase == "transit"

    def test_ids_are_sequential_from_one(self):
        tracer = Tracer(lambda: 0.0)
        spans = [tracer.begin("s") for _ in range(3)]
        assert [s.span_id for s in spans] == [1, 2, 3]

    def test_finish_is_idempotent(self):
        tracer = Tracer(lambda: 0.0)
        span = tracer.begin("s")
        tracer.finish(span, status="ok")
        tracer.finish(span, status="error")  # late callback: no-op
        assert span.status == "ok"
        assert tracer.finished == 1

    def test_retain_false_keeps_counters_only(self):
        tracer = Tracer(lambda: 0.0, retain=False)
        tracer.finish(tracer.begin("s"))
        assert tracer.spans == []
        assert (tracer.started, tracer.finished) == (1, 1)


class TestSimIntegration:
    def test_context_manager_times_the_yield(self):
        sim = Simulator()
        tracer = Tracer(lambda: sim.now)
        seen = {}

        def proc():
            with tracer.span("work") as span:
                yield sim.timeout(0.5)
            seen["span"] = span

        sim.process(proc())
        sim.run()
        span = seen["span"]
        assert span.start == 0.0
        assert span.end == 0.5
        assert span.status == "ok"

    def test_exception_at_yield_marks_error_and_propagates(self):
        sim = Simulator()
        tracer = Tracer(lambda: sim.now)
        seen = {}

        def proc():
            root = tracer.begin("proc.x")
            try:
                with tracer.span("leg", parent=root) as span:
                    seen["span"] = span
                    ev = sim.event("doomed")
                    sim.schedule(0.25, lambda: ev.fail(NodeFailed("n")))
                    yield ev
            except NodeFailed:
                seen["caught"] = True
            tracer.finish(root, status="failed")

        sim.process(proc())
        sim.run()
        assert seen["caught"]
        assert seen["span"].status == "error"
        assert seen["span"].end == 0.25

    def test_end_on_finishes_at_event_fire_time(self):
        sim = Simulator()
        tracer = Tracer(lambda: sim.now)
        span = tracer.begin("hop")
        tracer.end_on(span, sim.timeout(0.125))
        sim.run()
        assert span.end == 0.125
        assert span.status == "ok"

    def test_parents_do_not_cross_contaminate_interleaved_processes(self):
        """Two sim processes interleave at every yield; explicit parent
        threading must keep each child under its own process's root."""
        sim = Simulator()
        tracer = Tracer(lambda: sim.now)
        roots = {}

        def proc(name, dt):
            root = tracer.begin("proc." + name, proc=name)
            roots[name] = root
            for _ in range(3):
                with tracer.span("leg", parent=root):
                    yield sim.timeout(dt)
            tracer.finish(root)

        sim.process(proc("a", 0.1))
        sim.process(proc("b", 0.07))
        sim.run()
        for name, root in roots.items():
            children = tracer.children_of(root)
            assert len(children) == 3
            assert all(c.root_id == root.root_id for c in children)


class TestPhaseFolding:
    def test_children_fold_into_open_root(self):
        folds = []
        now = [0.0]
        tracer = Tracer(lambda: now[0], on_root_finish=lambda r, p: folds.append((r, p)))
        root = tracer.begin("proc.sr", proc="sr")
        child = tracer.begin("hop.x", parent=root, phase="transit")
        now[0] = 0.2
        tracer.finish(child)
        now[0] = 0.5
        tracer.finish(root)
        (got_root, phases), = folds
        assert got_root is root
        assert phases == {"transit": pytest.approx(0.2)}

    def test_phases_override_splits_one_span(self):
        folds = []
        now = [0.0]
        tracer = Tracer(lambda: now[0], on_root_finish=lambda r, p: folds.append(p))
        root = tracer.begin("proc.sr")
        handle = tracer.begin("cpf.handle", parent=root, phase="cpf")
        now[0] = 0.3
        tracer.finish(handle, phases=(("cpf_wait", 0.1), ("cpf_serve", 0.2)))
        tracer.finish(root)
        assert folds[0] == {
            "cpf_wait": pytest.approx(0.1), "cpf_serve": pytest.approx(0.2)
        }
        assert "cpf" not in folds[0]

    def test_finish_after_root_close_goes_offpath(self):
        offpath = []
        now = [0.0]
        tracer = Tracer(lambda: now[0], on_offpath_finish=offpath.append)
        root = tracer.begin("proc.sr")
        ship = tracer.begin("checkpoint.ship", parent=root, phase="checkpoint")
        now[0] = 0.1
        tracer.finish(root)  # PCT clock stops
        now[0] = 0.4
        tracer.finish(ship, status="acked")
        assert offpath == [ship]
        assert ship.status == "acked"
