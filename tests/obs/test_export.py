"""Perfetto/Chrome trace export: schema validity and round trips."""

import json

import pytest

from repro.core.config import ControlPlaneConfig
from repro.experiments.harness import RunSpec, run_pct_point
from repro.obs import Observability, Tracer
from repro.obs.export import (
    chrome_trace_events,
    timeline_summary,
    validate_chrome_trace,
    write_chrome_trace,
)


def _traced_run():
    obs = Observability("trace")
    spec = RunSpec(
        procedure="service_request",
        procedures_target=120,
        min_duration_s=0.02,
        max_duration_s=0.05,
    )
    run_pct_point(ControlPlaneConfig.neutrino(), 80e3, spec, obs=obs)
    return obs


class TestChromeTrace:
    def test_real_run_exports_valid_trace(self):
        obs = _traced_run()
        data = chrome_trace_events(obs.tracer)
        count = validate_chrome_trace(data)
        assert count > 100
        # one "X" slice per retained span, plus metadata events
        slices = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(obs.tracer.spans)

    def test_every_root_gets_its_own_named_track(self):
        obs = _traced_run()
        data = chrome_trace_events(obs.tracer)
        thread_names = [
            e for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        roots = obs.tracer.roots()
        assert len(thread_names) == len(roots)
        tids = {e["tid"] for e in thread_names}
        assert len(tids) == len(roots)  # distinct track per procedure

    def test_span_ids_are_searchable_in_args(self):
        tracer = Tracer(lambda: 1.0)
        root = tracer.begin("proc.attach", ue="ue-1")
        child = tracer.begin("hop.x", parent=root)
        tracer.finish(child)
        tracer.finish(root)
        data = chrome_trace_events(tracer)
        slices = {e["args"]["span_id"]: e for e in data["traceEvents"] if e["ph"] == "X"}
        assert slices[child.span_id]["args"]["parent_id"] == root.span_id
        assert slices[child.span_id]["args"]["trace_id"] == root.root_id

    def test_unfinished_span_exports_zero_duration(self):
        tracer = Tracer(lambda: 2.0)
        tracer.begin("proc.open")
        data = chrome_trace_events(tracer)
        slice_ev = [e for e in data["traceEvents"] if e["ph"] == "X"][0]
        assert slice_ev["dur"] == 0.0
        assert slice_ev["args"]["unfinished"] is True
        validate_chrome_trace(data)

    def test_write_round_trip(self, tmp_path):
        obs = _traced_run()
        path = tmp_path / "out.trace.json"
        write_chrome_trace(str(path), obs.tracer)
        with open(path) as fp:
            reloaded = json.load(fp)
        assert validate_chrome_trace(reloaded) == len(reloaded["traceEvents"])

    def test_validator_rejects_bad_events(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1, "tid": 1}]}
            )
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 1, "tid": 1,
                     "ts": 0.0, "dur": -1.0}
                ]}
            )
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": "one", "tid": 1,
                     "ts": 0.0, "dur": 1.0}
                ]}
            )


class TestTimeline:
    def test_timeline_lists_roots_with_children(self):
        obs = _traced_run()
        text = timeline_summary(obs.tracer, limit=2)
        assert "proc.service_request" in text
        assert "cpf.handle" in text
        assert text.count("-- trace") == 2

    def test_empty_tracer_has_placeholder(self):
        assert "(no spans recorded)" in timeline_summary(Tracer(lambda: 0.0))
