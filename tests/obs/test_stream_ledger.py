"""Unit tests for the sharded-obs primitives.

Covers the pieces the sharded integration suite exercises end to end:
bounded span retention (slowest-K heaps, always-keep exemptions, the
migration-anchor pin/limbo rescue), compact + labeled metric snapshots
and their tolerant merge, the heartbeat stream's folding, the stitcher
against hand-built snapshots, and the run-ledger schema helpers.
"""

import io
import json

import pytest

from repro.obs import Observability
from repro.obs.export import stitch_chrome_trace, validate_chrome_trace
from repro.obs.metrics import MetricsRegistry, label_snapshot, merge_snapshots
from repro.obs.stream import HeartbeatStream, open_stream
from repro.obs.tracer import SpanRetention, Tracer, span_rows, spans_from_rows
from repro.sim.monitor import imbalance


def make_tracer(keep=2):
    clock = {"t": 0.0}
    tracer = Tracer(lambda: clock["t"], retention=SpanRetention(keep))
    return tracer, clock


def run_root(tracer, clock, name="proc.attach", dur=1.0, **attrs):
    root = tracer.begin(name, proc=name.split(".", 1)[1], **attrs)
    clock["t"] += dur
    tracer.finish(root, status="completed")
    return root


# ------------------------------------------------------------- SpanRetention


class TestSpanRetention:
    def test_slowest_k_admission_and_eviction(self):
        tracer, clock = make_tracer(keep=2)
        slow = run_root(tracer, clock, dur=5.0)
        fast = run_root(tracer, clock, dur=1.0)
        faster = run_root(tracer, clock, dur=0.5)  # rejected outright
        mid = run_root(tracer, clock, dur=3.0)  # evicts fast
        kept = {s.span_id for s in tracer.spans}
        assert slow.span_id in kept
        assert mid.span_id in kept
        assert fast.span_id not in kept
        assert faster.span_id not in kept
        stats = tracer.retention.stats()
        assert stats == {"limit": 2, "roots_kept": 2, "roots_dropped": 2}

    def test_budget_is_per_procedure(self):
        tracer, clock = make_tracer(keep=1)
        a = run_root(tracer, clock, name="proc.attach", dur=1.0)
        b = run_root(tracer, clock, name="proc.handover", dur=1.0)
        kept = {s.span_id for s in tracer.spans}
        assert kept == {a.span_id, b.span_id}

    def test_children_ride_their_roots_fate(self):
        tracer, clock = make_tracer(keep=1)
        root = tracer.begin("proc.attach", proc="attach")
        child = tracer.begin("hop.radio", parent=root)
        clock["t"] += 0.1
        tracer.finish(child)
        clock["t"] += 4.9
        tracer.finish(root, status="completed")
        run_root(tracer, clock, dur=0.5)  # slower root already holds the slot
        kept = {s.span_id for s in tracer.spans}
        assert kept == {root.span_id, child.span_id}

    def test_fault_touched_trees_bypass_the_budget(self):
        tracer, clock = make_tracer(keep=1)
        run_root(tracer, clock, dur=9.0)  # fills the budget
        root = tracer.begin("proc.attach", proc="attach")
        child = tracer.begin("cpf.handle", parent=root)
        clock["t"] += 0.1
        tracer.finish(child, status="error")
        tracer.finish(root, status="completed")
        recovered = tracer.begin("proc.service_request", proc="service_request")
        clock["t"] += 0.1
        tracer.finish(recovered, status="completed", recovered=True)
        kept = {s.span_id for s in tracer.spans}
        assert root.span_id in kept and recovered.span_id in kept
        assert tracer.retention.roots_dropped == 0

    def test_open_offpath_spans_do_not_exempt_a_tree(self):
        tracer, clock = make_tracer(keep=1)
        run_root(tracer, clock, dur=9.0)
        root = tracer.begin("proc.attach", proc="attach")
        tracer.begin("ckpt.ship", parent=root)  # still open at root close
        clock["t"] += 0.1
        tracer.finish(root, status="completed")
        assert root.span_id not in {s.span_id for s in tracer.spans}

    def test_pin_rescues_the_just_dropped_root(self):
        tracer, clock = make_tracer(keep=1)
        run_root(tracer, clock, dur=9.0)
        fast = run_root(tracer, clock, dur=0.1)  # rejected -> limbo
        assert tracer.pin(fast.span_id) is True
        assert fast.span_id in {s.span_id for s in tracer.spans}
        # a pinned root survives later evictions of its heap slot
        assert tracer.pin(fast.span_id) is True  # idempotent (now kept)

    def test_pin_protects_kept_roots_from_eviction(self):
        tracer, clock = make_tracer(keep=1)
        first = run_root(tracer, clock, dur=1.0)
        assert tracer.pin(first.span_id)
        slower = run_root(tracer, clock, dur=5.0)  # would evict first
        kept = {s.span_id for s in tracer.spans}
        assert first.span_id in kept and slower.span_id in kept

    def test_pin_misses_older_drops(self):
        tracer, clock = make_tracer(keep=1)
        run_root(tracer, clock, dur=9.0)
        old = run_root(tracer, clock, dur=0.1)
        run_root(tracer, clock, dur=0.2)  # overwrites limbo
        assert tracer.pin(old.span_id) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            SpanRetention(0)


def test_span_rows_round_trip():
    tracer, clock = make_tracer(keep=4)
    root = tracer.begin("proc.attach", proc="attach", ue="ue-1")
    child = tracer.begin("hop.radio", parent=root, nbytes=64)
    clock["t"] += 0.25
    tracer.finish(child)
    tracer.finish(root, status="completed")
    rows = span_rows(tracer.spans)
    back = spans_from_rows(json.loads(json.dumps(rows)))
    assert [s.span_id for s in back] == [root.span_id, child.span_id]
    assert back[0].status == "completed"
    assert back[1].parent_id == root.span_id
    assert back[1].duration == pytest.approx(0.25)
    assert back[1].attrs == {"nbytes": 64}


# ------------------------------------------------------------------ metrics


class TestCompactAndLabeledSnapshots:
    def test_compact_snapshot_drops_raw_samples(self):
        reg = MetricsRegistry()
        reg.counter("hops", hop="radio").inc(3)
        h = reg.histogram("lat", proc="attach")
        h.observe(1.0)
        h.observe(3.0)
        reg.histogram("empty", proc="x")
        snap = reg.compact_snapshot()
        assert snap["counters"][0]["value"] == 3
        rows = {r["name"]: r for r in snap["histograms"]}
        assert rows["lat"] == {
            "name": "lat", "labels": {"proc": "attach"},
            "count": 2, "mean": 2.0,
        }
        assert "mean" not in rows["empty"] and rows["empty"]["count"] == 0

    def test_label_snapshot_stamps_every_row(self):
        reg = MetricsRegistry()
        reg.counter("hops", hop="radio").inc()
        reg.gauge("queue").set(2.0)
        reg.histogram("lat").observe(1.0)
        snap = reg.snapshot()
        labeled = label_snapshot(snap, shard=1)
        for section in ("counters", "gauges", "histograms"):
            assert all(
                row["labels"]["shard"] == "1" for row in labeled[section]
            )
        # the original is untouched
        assert all("shard" not in row["labels"] for row in snap["counters"])
        assert label_snapshot(None, shard=1) is None

    def test_merge_keeps_distinct_shard_rows(self):
        snaps = []
        for k in range(2):
            reg = MetricsRegistry()
            reg.counter("hops").inc(k + 1)
            snaps.append(label_snapshot(reg.snapshot(), shard=k))
        merged = merge_snapshots(snaps)
        values = {
            row["labels"]["shard"]: row["value"]
            for row in merged["counters"]
        }
        assert values == {"0": 1, "1": 2}

    def test_merge_tolerates_compact_rows(self):
        full = MetricsRegistry()
        for v in (1.0, 2.0):
            full.histogram("lat").observe(v)
        compact = MetricsRegistry()
        for v in (4.0, 8.0):
            compact.histogram("lat").observe(v)
        merged = merge_snapshots(
            [full.snapshot(), compact.compact_snapshot()]
        )
        row = merged["histograms"][0]
        assert row["count"] == 4
        assert row["mean"] == pytest.approx(3.75)  # count-weighted
        assert "values" not in row  # partial samples would lie

    def test_merge_of_full_rows_keeps_exact_samples(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat").observe(1.0)
        b.histogram("lat").observe(2.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["histograms"][0]["values"] == [1.0, 2.0]


def test_imbalance():
    assert imbalance([2.0, 2.0, 2.0]) == pytest.approx(1.0)
    assert imbalance([1.0, 3.0]) == pytest.approx(1.5)
    assert imbalance([]) == 1.0
    assert imbalance([0.0, 0.0]) == 1.0


# ------------------------------------------------------------------ stream


def _health(shard, **kw):
    row = {
        "shard": shard, "t": 1.0, "events": 100, "heap": 5,
        "completed": 10, "migrations_out": 1, "migrations_in": 2,
        "serves": 50, "writes": 20, "violations": 0, "wall_s": 0.5,
    }
    row.update(kw)
    return row


class TestHeartbeatStream:
    def test_heartbeat_folds_shard_rows(self):
        buf = io.StringIO()
        stream = HeartbeatStream(buf, progress=None)
        stream.heartbeat(7, 1.0, 2.0, [_health(0), _health(1, serves=30)])
        row = json.loads(buf.getvalue())
        assert row["type"] == "heartbeat"
        assert row["epoch"] == 7
        assert row["progress"] == pytest.approx(0.5)
        assert row["draining"] is False
        assert row["serves"] == 80
        assert row["migrations_out"] == 2
        assert len(row["shards"]) == 2
        assert "metrics" not in row  # no shard carried metrics

    def test_heartbeat_merges_labeled_metrics_once(self):
        reg = MetricsRegistry()
        reg.counter("hops").inc(4)
        buf = io.StringIO()
        stream = HeartbeatStream(buf, progress=None)
        stream.heartbeat(
            1, 2.5, 2.0,
            [_health(0, metrics=reg.compact_snapshot()), _health(1)],
        )
        row = json.loads(buf.getvalue())
        assert row["draining"] is True  # t past the horizon
        assert row["t"] == 2.0  # clamped to the traffic horizon
        counters = row["metrics"]["counters"]
        assert counters[0]["labels"]["shard"] == "0"
        # per-shard rows carry scalars only; metrics appear once, merged
        assert all("metrics" not in s for s in row["shards"])

    def test_progress_line_format(self):
        buf, prog = io.StringIO(), io.StringIO()
        HeartbeatStream(buf, progress=prog).heartbeat(
            3, 0.5, 2.0, [_health(0)]
        )
        line = prog.getvalue()
        assert line.startswith("[obs-stream] t=0.500/2.000s epoch=3 ")
        assert "violations=0" in line

    def test_open_stream_stdout_and_file(self, tmp_path, capsys):
        stream, closer = open_stream("-")
        assert closer is None
        stream.emit({"type": "x"})
        assert json.loads(capsys.readouterr().out) == {"type": "x"}
        path = str(tmp_path / "hb.ndjson")
        stream, closer = open_stream(path)
        stream.emit({"type": "y"})
        closer.close()
        assert json.loads(open(path).read()) == {"type": "y"}


# ------------------------------------------------------------------ stitching


def _installed_obs():
    from types import SimpleNamespace

    dep = SimpleNamespace(obs=None, sim=SimpleNamespace(now=0.0))
    return Observability("trace").install(dep)


def test_stitch_links_flows_across_hand_built_shards():
    src = _installed_obs()
    root = src.tracer.begin("proc.handover", proc="handover", ue="ue-9")
    src.tracer.finish(root, status="completed")
    src.note_migration_out("m0:0", root.span_id, 1.0, "ue-9", 1)

    dst = _installed_obs()
    cont = dst.tracer.begin("shard.install_migrated", phase="migrate", ue="ue-9")
    dst.tracer.finish(cont)
    dst.note_migration_in("m0:0", cont.span_id, 1.5, "ue-9")

    data = stitch_chrome_trace(
        [src.snapshot(include_spans=True), dst.snapshot(include_spans=True)]
    )
    validate_chrome_trace(data)
    assert data["metadata"]["flow_events"] == 1
    start = next(e for e in data["traceEvents"] if e["ph"] == "s")
    fin = next(e for e in data["traceEvents"] if e["ph"] == "f")
    assert start["pid"] == 1 and fin["pid"] == 2
    assert start["id"] == fin["id"]
    assert fin["bp"] == "e"


def test_stitch_skips_flows_whose_anchor_was_dropped():
    snapshots = [
        {
            "spans": [],
            "flows_out": [
                {"link": "m0:0", "span": 99, "t": 1.0, "ue": "u", "dst": 1}
            ],
            "flows_in": [],
        },
        {
            "spans": [],
            "flows_out": [],
            "flows_in": [{"link": "m0:0", "span": 1, "t": 1.5, "ue": "u"}],
        },
    ]
    data = stitch_chrome_trace(snapshots)
    validate_chrome_trace(data)
    assert data["metadata"]["flow_events"] == 0


def test_note_migration_in_without_link_is_a_noop():
    obs = Observability("trace")
    obs.note_migration_in(None, 1, 0.0, "ue-1")
    assert obs.flows_in == []


# ------------------------------------------------------------------ ledger


def test_build_ledger_minimal_result():
    from repro.obs.ledger import LEDGER_SCHEMA, build_run_ledger
    from repro.scale.engine import ScaleResult

    result = ScaleResult(
        scenario="steady-city", mode="cohort", n_ue=10, duration_s=1.0,
        seed=1, end_time_s=1.0, regions_final=4, serves=5, writes=3,
        violations=0, completed=2, aborted=0, recovered=0, reattached=0,
        digest="abc",
    )
    ledger = build_run_ledger(result, argv=["scale"], trace_path="t.json")
    json.dumps(ledger)  # JSON-able throughout
    assert ledger["schema"] == LEDGER_SCHEMA
    assert ledger["auditor"] == {
        "serves": 5, "writes": 3, "violations": 0, "ok": True,
    }
    assert ledger["digest"] == "abc"
    assert ledger["artifacts"] == {"trace": "t.json", "stream": None}
    assert ledger["argv"] == ["scale"]
    assert "obs" not in ledger  # no obs_snapshot on the result
    assert len(ledger["code_fingerprint"]) == 64
