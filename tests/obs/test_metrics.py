"""Unit tests for labeled metrics + snapshot merging.

The parallel-vs-serial test is the load-bearing one: sweep workers ship
their registry snapshots back inside ``PCTPoint.obs``, and merging them
on the parent must be bit-identical to the serial loop's merge.
"""

import json

import pytest

from repro.core.config import ControlPlaneConfig
from repro.experiments.harness import RunSpec
from repro.experiments.parallel import SweepJob, run_jobs
from repro.obs import MetricsRegistry, merge_snapshots, summarize_histogram
from repro.sim.monitor import Tally


class TestRegistry:
    def test_create_or_return_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("msgs", node="c1")
        b = reg.counter("msgs", node="c1")
        c = reg.counter("msgs", node="c2")
        assert a is b and a is not c

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.histogram("phase_s", proc="attach", phase="cta")
        b = reg.histogram("phase_s", phase="cta", proc="attach")
        assert a is b

    def test_gauge_tracks_peak_and_last(self):
        now = [0.0]
        reg = MetricsRegistry(lambda: now[0])
        gauge = reg.gauge("log_bytes", node="cta-10")
        gauge.set(100.0)
        now[0] = 1.0
        gauge.set(40.0)
        assert gauge.max_value == 100.0
        assert gauge.value == 40.0

    def test_snapshot_is_json_able_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_counter").inc(2)
        reg.counter("a_counter").inc()
        reg.histogram("h", k="v").observe(1.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert [c["name"] for c in snap["counters"]] == ["a_counter", "b_counter"]
        assert snap["histograms"][0]["values"] == [1.5]


class TestHistogramFastPath:
    def test_histogram_keeps_bound_append(self):
        """Regression canary for the Tally.observe shadowing fix:
        Histogram calls super().__init__ and must keep the per-sample
        bound-append fast path."""
        reg = MetricsRegistry()
        hist = reg.histogram("pct_s")
        assert "observe" in hist.__dict__  # the bound list.append
        hist.observe(0.25)
        assert hist.values == [0.25]

    def test_subclass_overriding_observe_is_not_shadowed(self):
        class Doubling(Tally):
            def observe(self, value):
                super().observe(value * 2)

        tally = Doubling("d")
        assert "observe" not in tally.__dict__  # override must win
        tally.observe(3.0)
        assert tally.values == [6.0]

    def test_subclass_skipping_init_still_works(self):
        class Lazy(Tally):
            def __init__(self):
                pass  # forgot super().__init__() — the old footgun

            def observe(self, value):
                super().observe(value)

        tally = Lazy()
        tally.observe(1.0)
        tally.observe(2.0)
        assert tally.values == [1.0, 2.0]


class TestMerge:
    def _snap(self, counter=0, values=(), peak=0.0, avg=0.0):
        return {
            "counters": [{"name": "c", "labels": {}, "value": counter}],
            "gauges": [
                {"name": "g", "labels": {}, "last": avg, "max": peak,
                 "time_average": avg}
            ],
            "histograms": [
                {"name": "h", "labels": {}, "count": len(values),
                 "values": list(values)}
            ],
        }

    def test_counters_sum_histograms_concat_gauges_peak(self):
        merged = merge_snapshots([
            self._snap(counter=2, values=[1.0], peak=10.0, avg=4.0),
            None,  # a point run without obs
            self._snap(counter=3, values=[2.0, 3.0], peak=7.0, avg=6.0),
        ])
        assert merged["counters"][0]["value"] == 5
        assert merged["histograms"][0]["values"] == [1.0, 2.0, 3.0]
        assert merged["histograms"][0]["count"] == 3
        assert merged["gauges"][0]["max"] == 10.0
        assert merged["gauges"][0]["time_average"] == pytest.approx(5.0)

    def test_summarize_histogram(self):
        stats = summarize_histogram([3.0, 1.0, 2.0, 4.0])
        assert stats["count"] == 4
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["max"] == 4.0


class TestParallelAggregation:
    def _jobs(self):
        spec = RunSpec(
            procedure="service_request",
            procedures_target=120,
            min_duration_s=0.02,
            max_duration_s=0.05,
            obs_mode="metrics",
        )
        config = ControlPlaneConfig.neutrino()
        return [SweepJob(config, rate, spec) for rate in (60e3, 100e3)]

    def test_parallel_merge_is_bit_identical_to_serial(self):
        serial = run_jobs(self._jobs(), jobs=1)
        parallel = run_jobs(self._jobs(), jobs=2)
        merged_serial = merge_snapshots([p.obs["metrics"] for p in serial])
        merged_parallel = merge_snapshots([p.obs["metrics"] for p in parallel])
        # Bit-identical, not approximately equal: same JSON bytes.
        assert json.dumps(merged_serial, sort_keys=True) == json.dumps(
            merged_parallel, sort_keys=True
        )
        for s, p in zip(serial, parallel):
            assert s.obs == p.obs
