"""Schedule-transparency witnesses: obs on == obs off, bit for bit.

The tracer's determinism contract (no RNG draws, no clock advances, no
scheduled work — ``repro.obs.tracer`` docstring) is only worth anything
if it is *pinned*.  These tests re-run the kernel-witness workloads
with observability installed and require the exact pre-obs results:

* every regression-schedule EventTrace digest unchanged;
* the Fig. 7 / Fig. 10 PCT witness rows identical float-for-float in
  every field except ``obs`` itself.
"""

import dataclasses
import math

import pytest

from repro.core import ControlPlaneConfig
from repro.experiments.harness import RunSpec, run_pct_point
from repro.faults import FaultPlan, run_plan
from repro.obs import Observability

from tests.core.test_kernel_witnesses import (
    _FIG07_SPEC,
    _FIG10_SPEC,
    CORPUS_DIR,
    EXPECTED_DIGESTS,
    _witnesses,
)


@pytest.mark.parametrize("stem", sorted(EXPECTED_DIGESTS), ids=str)
def test_tracing_leaves_corpus_digests_unchanged(stem):
    plan = FaultPlan.load(str(CORPUS_DIR / ("%s.json" % stem)))
    obs = Observability("trace")
    result = run_plan(plan, verbose_trace=True, obs=obs)
    assert result.digest == EXPECTED_DIGESTS[stem], (
        "enabling tracing perturbed the schedule for %s: the tracer broke "
        "its determinism contract" % stem
    )
    assert obs.tracer.started > 0  # the run really was traced


def _assert_identical_except_obs(point, expected, label):
    got = dataclasses.asdict(point)
    assert sorted(got) == sorted(expected), label
    for field, want in expected.items():
        have = got[field]
        if field == "obs":
            assert have is not None, (label, "obs snapshot missing")
            continue
        if isinstance(want, float) and math.isnan(want):
            assert isinstance(have, float) and math.isnan(have), (label, field)
            continue
        assert have == want, (
            "%s: field %r moved from %r to %r with obs enabled"
            % (label, field, want, have)
        )


@pytest.mark.parametrize("mode", ["metrics", "trace"])
def test_fig07_slice_row_identical_with_obs_enabled(mode):
    expected = _witnesses()["fig07"]["neutrino"]
    point = run_pct_point(
        ControlPlaneConfig.neutrino(),
        100e3,
        RunSpec(obs_mode=mode, **_FIG07_SPEC),
    )
    _assert_identical_except_obs(point, expected, "fig07/neutrino/" + mode)
    assert point.obs["mode"] == mode
    assert point.obs["spans_started"] == point.obs["spans_finished"] > 0


def test_fig10_slice_row_identical_with_obs_enabled():
    """Failure + recovery path (failover, replay, re-parenting) traced."""
    expected = _witnesses()["fig10"]["neutrino"]
    obs = Observability("trace")
    point = run_pct_point(
        ControlPlaneConfig.neutrino(), 60e3, RunSpec(**_FIG10_SPEC), obs=obs
    )
    _assert_identical_except_obs(point, expected, "fig10/neutrino")
    names = {s.name for s in obs.tracer.spans}
    assert "recovery.failover" in names  # the kill really was traced
