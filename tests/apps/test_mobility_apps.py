"""Tests for the mobility/VR/video/web application experiments."""

import pytest

from repro.apps import (
    MobilityAppSpec,
    VideoAppSpec,
    WebAppSpec,
    run_mobility_experiment,
    run_page_load,
    run_self_driving,
    run_video_startup,
    run_vr,
    self_driving_spec,
    vr_spec,
)
from repro.core import ControlPlaneConfig
from repro.experiments import RunSpec

FAST = dict(drive_duration_s=1.0, radio_interruption_s=0.2)


class TestSpecs:
    def test_self_driving_deadline(self):
        assert self_driving_spec().deadline_s == pytest.approx(0.1)

    def test_vr_deadline(self):
        assert vr_spec().deadline_s == pytest.approx(0.016)

    def test_overrides_apply(self):
        spec = self_driving_spec(handovers=3, drive_duration_s=2.0)
        assert spec.handovers == 3
        assert spec.drive_duration_s == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MobilityAppSpec(packet_rate_hz=0).validate()
        with pytest.raises(ValueError):
            MobilityAppSpec(handovers=-1).validate()
        with pytest.raises(ValueError):
            MobilityAppSpec(drive_duration_s=0).validate()


class TestMobilityExperiment:
    def test_zero_handovers_zero_misses(self):
        spec = MobilityAppSpec(handovers=0, **{k: v for k, v in FAST.items() if k != "radio_interruption_s"})
        result = run_mobility_experiment(
            ControlPlaneConfig.neutrino(), 10e3, spec
        )
        assert result.missed == 0
        assert result.handovers_executed == 0

    def test_handover_executed_and_counted(self):
        result = run_self_driving(
            ControlPlaneConfig.neutrino(), 10e3,
            spec=self_driving_spec(handovers=1, **FAST),
        )
        assert result.handovers_executed == 1
        assert result.total == 1000

    def test_radio_interruption_causes_baseline_misses(self):
        # 200 ms interruption with 100 ms budget: ~100 ms of misses/HO.
        result = run_self_driving(
            ControlPlaneConfig.neutrino(), 10e3,
            spec=self_driving_spec(handovers=1, **FAST),
        )
        assert 50 <= result.missed <= 250

    def test_vr_misses_more_than_car(self):
        car = run_self_driving(
            ControlPlaneConfig.neutrino(), 10e3,
            spec=self_driving_spec(handovers=1, **FAST),
        )
        vr = run_vr(
            ControlPlaneConfig.neutrino(), 10e3,
            spec=vr_spec(handovers=1, **FAST),
        )
        assert vr.missed > car.missed  # tighter budget

    def test_epc_worse_under_heavy_load(self):
        users = 500e3
        epc = run_self_driving(
            ControlPlaneConfig.existing_epc(), users,
            spec=self_driving_spec(handovers=1, **FAST),
        )
        neutrino = run_self_driving(
            ControlPlaneConfig.neutrino(), users,
            spec=self_driving_spec(handovers=1, **FAST),
        )
        assert epc.missed > neutrino.missed

    def test_multiple_handovers_scale_misses(self):
        single = run_self_driving(
            ControlPlaneConfig.neutrino(), 10e3,
            spec=self_driving_spec(handovers=1, **FAST),
        )
        multiple = run_self_driving(
            ControlPlaneConfig.neutrino(), 10e3,
            spec=self_driving_spec(handovers=3, **FAST),
        )
        assert multiple.missed > 2 * single.missed

    def test_miss_fraction_property(self):
        result = run_self_driving(
            ControlPlaneConfig.neutrino(), 10e3,
            spec=self_driving_spec(handovers=1, **FAST),
        )
        assert 0 <= result.miss_fraction <= 1


SMALL_RUN = RunSpec(procedure="service_request", procedures_target=150, max_duration_s=0.1)


class TestVideoAndWeb:
    def test_video_startup_includes_player_constant(self):
        spec = VideoAppSpec(player_startup_s=0.45, run=SMALL_RUN)
        result = run_video_startup(ControlPlaneConfig.neutrino(), 60e3, spec)
        assert result.startup_p50_s > 0.45
        assert result.startup_p95_s >= result.startup_p50_s

    def test_plt_includes_page_constant(self):
        spec = WebAppSpec(page_fetch_s=1.9, run=SMALL_RUN)
        result = run_page_load(ControlPlaneConfig.neutrino(), 60e3, spec)
        assert result.plt_p50_s > 1.9

    def test_epc_startup_worse_when_saturated(self):
        video_spec = VideoAppSpec(run=SMALL_RUN)
        epc = run_video_startup(ControlPlaneConfig.existing_epc(), 260e3, video_spec)
        neutrino = run_video_startup(ControlPlaneConfig.neutrino(), 260e3, video_spec)
        assert epc.startup_p50_s > neutrino.startup_p50_s
        assert epc.sr_pct_p50_ms > 5 * neutrino.sr_pct_p50_ms
