"""Tests for the data-path stall model and deadline accounting."""

import pytest

from repro.apps import StallInterval, count_missed_deadlines, stalls_from_outcomes
from repro.core.ue import ProcedureOutcome


def outcome(name, start, pct):
    out = ProcedureOutcome(name, start)
    out.pct = pct
    out.completed = True
    return out


class TestStallExtraction:
    def test_handover_stalls_whole_pct(self):
        stalls = stalls_from_outcomes([outcome("handover", 1.0, 0.05)])
        assert len(stalls) == 1
        assert stalls[0].start == 1.0
        assert stalls[0].duration == pytest.approx(0.05)

    def test_attach_not_a_stall(self):
        # attach establishes a path; it does not interrupt an existing one
        assert stalls_from_outcomes([outcome("attach", 0.0, 0.01)]) == []

    def test_incomplete_outcomes_skipped(self):
        out = ProcedureOutcome("handover", 0.0)  # pct is None
        assert stalls_from_outcomes([out]) == []

    def test_sorted_by_start(self):
        stalls = stalls_from_outcomes(
            [outcome("handover", 2.0, 0.01), outcome("re_attach", 1.0, 0.01)]
        )
        assert [s.start for s in stalls] == [1.0, 2.0]

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            StallInterval(2.0, 1.0, "x")


class TestDeadlineCounting:
    def test_no_stalls_no_misses(self):
        missed, total = count_missed_deadlines([], 1.0, 1000.0, 0.1)
        assert missed == 0
        assert total == 1000

    def test_base_latency_above_deadline_misses_everything(self):
        missed, total = count_missed_deadlines([], 1.0, 100.0, 0.01, base_latency_s=0.02)
        assert missed == total == 100

    def test_long_stall_misses_contained_packets(self):
        # 0.5 s stall, 100 ms budget: packets in the first 0.4 s of the
        # stall have residual > 100 ms and miss.
        stalls = [StallInterval(0.2, 0.7, "handover")]
        missed, total = count_missed_deadlines(stalls, 1.0, 1000.0, 0.1)
        assert missed == pytest.approx(400, abs=2)

    def test_short_stall_within_budget_misses_nothing(self):
        stalls = [StallInterval(0.2, 0.25, "handover")]  # 50 ms < 100 ms
        missed, _ = count_missed_deadlines(stalls, 1.0, 1000.0, 0.1)
        assert missed == 0

    def test_tight_deadline_misses_most_of_stall(self):
        stalls = [StallInterval(0.2, 0.25, "handover")]  # 50 ms stall
        missed, _ = count_missed_deadlines(stalls, 1.0, 1000.0, 0.016)
        assert missed == pytest.approx(34, abs=2)  # 50-16 ms worth

    def test_stall_outside_window_ignored(self):
        stalls = [StallInterval(5.0, 6.0, "handover")]
        missed, _ = count_missed_deadlines(stalls, 1.0, 1000.0, 0.01)
        assert missed == 0

    def test_stall_overlapping_window_end_clipped(self):
        stalls = [StallInterval(0.9, 2.0, "handover")]
        missed, total = count_missed_deadlines(stalls, 1.0, 1000.0, 0.01)
        assert 0 < missed <= 100

    def test_missed_never_exceeds_total(self):
        stalls = [StallInterval(0.0, 10.0, "handover")]
        missed, total = count_missed_deadlines(stalls, 1.0, 1000.0, 0.001)
        assert missed <= total

    def test_multiple_stalls_accumulate(self):
        stalls = [
            StallInterval(0.1, 0.4, "handover"),
            StallInterval(0.6, 0.9, "handover"),
        ]
        single = count_missed_deadlines(stalls[:1], 1.0, 1000.0, 0.1)[0]
        both = count_missed_deadlines(stalls, 1.0, 1000.0, 0.1)[0]
        assert both == pytest.approx(2 * single, abs=3)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            count_missed_deadlines([], 1.0, 0.0, 0.1)
        with pytest.raises(ValueError):
            count_missed_deadlines([], -1.0, 10.0, 0.1)
