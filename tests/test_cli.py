"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_list_prints_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "fig20" in out
        assert "georep_level" in out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1


class TestFigure:
    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_fig20_runs(self, capsys):
        assert main(["figure", "fig20"]) == 0
        out = capsys.readouterr().out
        assert "InitialUEMessage" in out
        assert "asn1per" in out

    def test_fig18_quick_runs(self, capsys):
        assert main(["figure", "fig18"]) == 0
        out = capsys.readouterr().out
        assert "flatbuffers" in out


class TestSweep:
    def test_sweep_runs_and_reports_cache(self, tmp_path, capsys):
        argv = [
            "sweep", "--configs", "neutrino", "--procedure", "attach",
            "--rates", "20e3,40e3", "--procedures-target", "120",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "neutrino" in out
        assert "cache: hits=0 misses=2 stale=0" in out

    def test_sweep_second_run_all_hits(self, tmp_path, capsys):
        argv = [
            "sweep", "--configs", "neutrino", "--rates", "25e3",
            "--procedures-target", "120", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache: hits=1 misses=0 stale=0" in out
        assert "executed=0 cached=1" in out

    def test_sweep_no_cache_flag(self, capsys):
        argv = [
            "sweep", "--configs", "neutrino", "--rates", "25e3",
            "--procedures-target", "120", "--no-cache",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache:" not in out

    def test_sweep_parallel_jobs(self, tmp_path, capsys):
        argv = [
            "sweep", "--configs", "neutrino,existing_epc", "--rates", "20e3,40e3",
            "--procedures-target", "120", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "existing_epc" in out and "total=4" in out

    def test_sweep_unknown_config_rejected(self, capsys):
        assert main(["sweep", "--configs", "nope", "--no-cache"]) == 1
        assert "unknown config" in capsys.readouterr().out

    def test_sweep_bad_rates_rejected(self, capsys):
        assert main(["sweep", "--rates", "fast", "--no-cache"]) == 1
        assert "bad --rates" in capsys.readouterr().out


class TestFigureRunnerFlags:
    def test_figure_smoke_with_jobs_and_cache(self, tmp_path, capsys):
        argv = [
            "figure", "fig08", "--smoke", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out
        assert "cache: hits=0" in out
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "misses=0 stale=0" in out

    def test_non_sweep_figure_has_no_cache_footer(self, capsys):
        assert main(["figure", "fig20"]) == 0
        assert "cache:" not in capsys.readouterr().out


class TestProfile:
    def test_profile_fig20_reports_hot_functions(self, capsys):
        assert main(["profile", "fig20", "--top", "10"]) == 0
        out = capsys.readouterr().out
        # The figure output still appears, followed by the pstats report.
        assert "InitialUEMessage" in out
        assert "top 10 functions by cumulative" in out
        assert "function calls" in out  # pstats header
        assert "encode" in out  # a codec hot function makes the top-10

    def test_profile_sort_and_output_dump(self, tmp_path, capsys):
        dump = tmp_path / "fig20.pstats"
        argv = ["profile", "fig20", "--top", "5", "--sort", "tottime",
                "--output", str(dump)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "top 5 functions by tottime" in out
        assert dump.exists() and dump.stat().st_size > 0

    def test_profile_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["profile", "fig99"])


class TestTrace:
    def test_trace_generation(self, tmp_path, capsys):
        out_file = tmp_path / "trace.jsonl"
        assert main(
            ["trace", str(out_file), "--devices", "5", "--duration", "10"]
        ) == 0
        lines = out_file.read_text().strip().splitlines()
        assert len(lines) >= 5  # at least one attach per device
        assert "wrote" in capsys.readouterr().out


class TestScale:
    ARGS = ["scale", "steady-city", "--n-ue", "200", "--duration", "0.5"]

    def test_single_run_reports(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "scenario steady-city" in out
        assert "violations=0" in out

    def test_json_output(self, capsys):
        import json

        assert main(self.ARGS + ["--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"] == "steady-city"
        assert data["violations"] == 0

    def test_individual_mode(self, capsys):
        assert main(self.ARGS + ["--mode", "individual"]) == 0
        assert "mode=individual" in capsys.readouterr().out

    def test_obs_summary_line(self, capsys):
        assert main(self.ARGS + ["--obs"]) == 0
        out = capsys.readouterr().out
        assert "obs: spans=" in out and "mode=metrics" in out

    def test_replicates_cache_round_trip(self, tmp_path, capsys):
        argv = self.ARGS + ["--seeds", "1,2", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "executed=2" in first and "cached=0" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "executed=0" in second and "cached=2" in second
        assert "replicates=2 violations=0" in second

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["scale", "not-a-city"])


class TestScaleSharded:
    ARGS = [
        "scale", "steady-city", "--n-ue", "200", "--duration", "0.5",
        "--shards", "2", "--shard-backend", "inline",
    ]

    def test_sharded_run_reports(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "shards=2" in out
        assert "violations=0" in out
        assert "shard 0:" in out and "shard 1:" in out

    def test_sharded_json_carries_perf_and_shards(self, capsys):
        import json

        assert main(self.ARGS + ["--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["n_shards"] == 2
        assert len(data["shards"]) == 2
        assert data["perf"]["backend"] == "inline"
        assert data["perf"]["lookahead_s"] > 0

    def test_shards_one_matches_unsharded_digest(self, capsys):
        base = [
            "scale", "steady-city", "--n-ue", "150", "--duration", "0.4",
            "--verbose-trace", "--json",
        ]
        import json

        assert main(base) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main(base + ["--shards", "1"]) == 0
        sharded = json.loads(capsys.readouterr().out)
        assert plain["digest"] == sharded["digest"]

    def test_sharded_obs_metrics_merges(self, capsys):
        assert main(self.ARGS + ["--obs"]) == 0
        out = capsys.readouterr().out
        assert "obs: spans=" in out and "mode=metrics" in out

    def test_too_many_shards_rejected(self, capsys):
        argv = list(self.ARGS)
        argv[argv.index("--shards") + 1] = "99"
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "level-2 regions" in err

    def test_incompatible_combos_rejected(self, capsys):
        assert main(self.ARGS + ["--mode", "individual"]) == 2
        assert "individual" in capsys.readouterr().err
        assert main(self.ARGS + ["--seeds", "1,2"]) == 2
        assert "--seeds" in capsys.readouterr().err
        # per-run artifact flags make no sense across a seed sweep
        assert main(
            self.ARGS[:-4] + ["--seeds", "1,2", "--obs-stream", "-"]
        ) == 2
        assert "incompatible" in capsys.readouterr().err
        assert main(self.ARGS[:-2] + ["--shards", "bogus"]) == 2
        assert "integer or 'auto'" in capsys.readouterr().err

    def test_sharded_obs_trace_stitches(self, capsys, tmp_path, monkeypatch):
        # the PR 8 rejection is gone: sharded tracing stitches one trace
        monkeypatch.chdir(tmp_path)  # default --trace-out lands in cwd
        assert main(self.ARGS + ["--obs", "trace"]) == 0
        out = capsys.readouterr().out
        assert "mode=trace" in out
        assert "trace: wrote scale-steady-city.trace.json" in out
        assert (tmp_path / "scale-steady-city.trace.json").exists()
