"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_list_prints_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "fig20" in out
        assert "georep_level" in out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1


class TestFigure:
    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_fig20_runs(self, capsys):
        assert main(["figure", "fig20"]) == 0
        out = capsys.readouterr().out
        assert "InitialUEMessage" in out
        assert "asn1per" in out

    def test_fig18_quick_runs(self, capsys):
        assert main(["figure", "fig18"]) == 0
        out = capsys.readouterr().out
        assert "flatbuffers" in out


class TestTrace:
    def test_trace_generation(self, tmp_path, capsys):
        out_file = tmp_path / "trace.jsonl"
        assert main(
            ["trace", str(out_file), "--devices", "5", "--duration", "10"]
        ) == 0
        lines = out_file.read_text().strip().splitlines()
        assert len(lines) >= 5  # at least one attach per device
        assert "wrote" in capsys.readouterr().out
