"""Fig. 13 — effect of mobility on a self-driving car application.

Paper: sensor packets (1 kHz uplink) miss their ~100 ms decision budget
during handovers; under both single- and multiple-handover scenarios
Neutrino performs up to 2.8x better than the existing EPC, with misses
growing with the number of active (background) users.
"""

from repro.experiments import figures
from repro.experiments.report import format_dict_rows

USERS = (50e3, 200e3, 500e3)
FAST = dict(drive_duration_s=2.5, radio_interruption_s=0.4)


def run_fig13():
    return figures.fig13_self_driving(users=USERS, handovers=(1, 3), **FAST)


def test_fig13_selfdriving(benchmark, print_series):
    rows = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    print_series(format_dict_rows(rows, "Fig. 13 — self-driving missed deadlines"))
    by = {(r["scheme"], r["scenario"], r["active_users"]): r for r in rows}

    for scenario in ("single_ho", "multiple_ho"):
        # At heavy load the EPC misses far more than Neutrino.
        epc = by[("existing_epc", scenario, 500e3)]["missed"]
        neutrino = by[("neutrino", scenario, 500e3)]["missed"]
        assert neutrino > 0  # radio interruption alone costs packets
        assert epc > neutrino
        ratio = epc / neutrino
        print_series("fig13 %s ratio @500K users: %.1fx (paper: up to 2.8x)" % (scenario, ratio))
        assert ratio > 1.5
        # multiple handovers miss more than a single one
        assert (
            by[("neutrino", "multiple_ho", 500e3)]["missed"]
            > by[("neutrino", "single_ho", 500e3)]["missed"]
        )
    # EPC misses grow with active users; Neutrino stays flat.
    assert (
        by[("existing_epc", "single_ho", 500e3)]["missed"]
        > by[("existing_epc", "single_ho", 50e3)]["missed"]
    )
    assert (
        by[("neutrino", "single_ho", 500e3)]["missed"]
        <= by[("neutrino", "single_ho", 50e3)]["missed"] * 1.5
    )
