"""Fig. 18 — encode+decode speedup vs ASN.1 by number of elements.

Paper: Fast-CDR and LCM win below ~7 information elements; beyond 7
FlatBuffers is the clear winner, reaching ~19.2x over ASN.1 around 35
elements; FlexBuffers/protobuf sit in between.  Two series here: the
calibrated model the simulator charges, and wall-clock measurements of
this repository's real codec implementations (ordering cross-check).
"""

from repro.experiments import figures
from repro.experiments.report import format_dict_rows

COUNTS = (1, 3, 5, 7, 10, 15, 20, 25, 30, 35)


def run_fig18():
    return figures.fig18_codec_speedup(element_counts=COUNTS, measured_repeats=60)


def test_fig18_codec_speedup(benchmark, print_series):
    rows = benchmark.pedantic(run_fig18, rounds=1, iterations=1)
    print_series(
        format_dict_rows(rows, "Fig. 18 — codec speedup vs ASN.1 (modeled + measured)")
    )
    modeled = {(r["codec"], r["elements"]): r["speedup_modeled"] for r in rows}
    measured = {(r["codec"], r["elements"]): r.get("speedup_measured") for r in rows}

    # Modeled shape: crossover near 7, FB max in the paper's ballpark.
    assert modeled[("cdr", 3)] > modeled[("flatbuffers", 3)]
    assert modeled[("lcm", 5)] > modeled[("flatbuffers", 5)]
    assert modeled[("flatbuffers", 10)] > modeled[("cdr", 10)]
    assert 15 < modeled[("flatbuffers", 35)] < 30
    for codec in figures.FIG18_CODECS:
        assert modeled[(codec, 20)] > 1.0  # everything beats ASN.1

    # Measured cross-check: the real Python codecs also beat the real
    # ASN.1 PER implementation on large messages.
    for codec in ("flatbuffers", "cdr", "protobuf"):
        assert measured[(codec, 35)] is not None
        assert measured[(codec, 35)] > 1.0
