"""Fig. 11 — Fast Handover procedure completion times.

Paper: Neutrino-Proactive (state proactively replicated in the target
region, no migration before the handover) improves median PCT by up to
7x over the existing EPC below 60 KPPS; Neutrino-Default still migrates
state and lands in between.
"""

from repro.experiments import figures
from repro.experiments.report import format_pct_table, median_ratio

from conftest import quick_spec

RATES = (40e3, 60e3, 100e3)


def run_fig11():
    return figures.fig11_fast_handover(rates=RATES, spec=quick_spec())


def test_fig11_fast_handover(benchmark, print_series):
    points = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    print_series(format_pct_table(points, "Fig. 11 — fast handover PCT (median ms)"))
    by = {(p.scheme, p.axis_rate): p for p in points}

    for rate in RATES:
        proactive = by[("neutrino_proactive", rate)]
        default = by[("neutrino_default", rate)]
        epc = by[("existing_epc", rate)]
        # Proactive < Default < EPC at every rate.
        assert proactive.p50_ms < default.p50_ms
        assert default.p50_ms < epc.p50_ms * 1.05

    ratio = median_ratio(points, "neutrino_proactive", "existing_epc")
    print_series("fig11 best ratio proactive vs EPC: %.1fx (paper: up to 7x)" % ratio)
    assert ratio > 4.0
