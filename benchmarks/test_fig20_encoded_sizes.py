"""Fig. 20 — encoded message sizes: Optimized FB vs FB vs ASN.1.

Paper: FlatBuffers adds up to ~300 bytes of metadata over ASN.1 PER on
real S1 messages; the svtable optimization saves up to 32 bytes per
message.  These are *real bytes* from this repository's codecs — no
model involved.
"""

from repro.experiments import figures
from repro.experiments.report import format_dict_rows


def run_fig20():
    return figures.fig20_encoded_sizes()


def test_fig20_encoded_sizes(benchmark, print_series):
    rows = benchmark.pedantic(run_fig20, rounds=1, iterations=1)
    print_series(format_dict_rows(rows, "Fig. 20 — encoded sizes (bytes)"))

    overhead = []
    savings = []
    for msg in figures.FIG19_MESSAGES:
        sizes = {r["codec"]: r["bytes"] for r in rows if r["message"] == msg}
        assert sizes["asn1per"] < sizes["flatbuffers"]
        assert sizes["flatbuffers_opt"] <= sizes["flatbuffers"]
        overhead.append(sizes["flatbuffers"] - sizes["asn1per"])
        savings.append(sizes["flatbuffers"] - sizes["flatbuffers_opt"])

    # FB metadata overhead reaches into the hundreds of bytes.
    assert max(overhead) > 150
    # svtable saves tens of bytes across the message set (paper: <=32/msg).
    assert sum(savings) >= 20
    assert max(savings) <= 40
