"""Observability overhead: disabled, metrics-only, and full trace export.

The ``repro.obs`` determinism contract has a perf side: with no
Observability installed (``dep.obs is None``, the default of every
figure run) each instrumentation site must cost one attribute check.
``test_obs_point_disabled`` times exactly the code every other
benchmark in this directory runs — a full measurement point with obs
off — and is *guarded* in ``BENCH_baseline.json``: if instrumentation
creep slows the disabled path by more than the calibrated 30% gate, CI
fails.

The enabled modes are recorded unguarded for trajectory: they tell you
what turning tracing on costs (span allocation + retention + export),
which is a feature budget, not a regression gate.

Run / refresh::

    PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py \
        --benchmark-json=/tmp/obs-bench.json
    python benchmarks/compare_baseline.py /tmp/obs-bench.json \
        BENCH_baseline.json --subset
"""

import pytest

pytest.importorskip("pytest_benchmark")

from repro.core.config import ControlPlaneConfig
from repro.experiments.harness import RunSpec, run_pct_point
from repro.obs import Observability, Tracer
from repro.obs.export import chrome_trace_events

#: one small but full measurement point (procedures, checkpoints, ACKs).
_SPEC = dict(
    procedure="service_request",
    procedures_target=150,
    min_duration_s=0.02,
    max_duration_s=0.06,
)
_RATE = 100e3


def _point(obs_mode="off"):
    point = run_pct_point(
        ControlPlaneConfig.neutrino(), _RATE, RunSpec(obs_mode=obs_mode, **_SPEC)
    )
    assert point.count > 0
    return point


def test_obs_point_disabled(benchmark):
    """GUARDED: the per-site ``dep.obs is None`` checks must stay free."""
    point = benchmark(_point)
    assert point.obs is None


def test_obs_point_metrics(benchmark):
    """Phase folding + counters, spans not retained."""
    point = benchmark(_point, "metrics")
    assert point.obs["metrics"]["histograms"]


def test_obs_point_trace_export(benchmark):
    """Full span retention plus the Chrome/Perfetto export walk."""

    def run():
        obs = Observability("trace")
        run_pct_point(ControlPlaneConfig.neutrino(), _RATE, RunSpec(**_SPEC), obs=obs)
        return chrome_trace_events(obs.tracer)

    data = benchmark(run)
    assert len(data["traceEvents"]) > 100


def test_obs_tracer_span_loop(benchmark):
    """Micro: raw begin/finish cost per span (no sim, no retention)."""
    N = 20_000

    def loop():
        tracer = Tracer(lambda: 0.0, retain=False)
        root = tracer.begin("proc.x")
        for _ in range(N):
            tracer.finish(tracer.begin("hop.y", parent=root))
        tracer.finish(root)
        return tracer.finished

    assert benchmark(loop) == N + 1
