"""Fig. 7 — service request PCT: EPC vs DPCM vs SkyCore vs Neutrino.

Paper: up to 120 KPPS Neutrino is 2.3x/1.3x/3.4x better than the EPC,
DPCM, and SkyCore in median PCT; beyond 140 KPPS EPC and SkyCore
saturate drastically; Neutrino saturates last.
"""

from repro.experiments import figures
from repro.experiments.report import format_pct_table, median_ratio

from conftest import quick_spec, sweep_jobs

RATES = (100e3, 140e3, 180e3, 220e3)


def run_fig07():
    return figures.fig07_service_request(
        rates=RATES, spec=quick_spec(procedure="service_request"), jobs=sweep_jobs()
    )


def test_fig07_service_request(benchmark, print_series):
    points = benchmark.pedantic(run_fig07, rounds=1, iterations=1)
    print_series(format_pct_table(points, "Fig. 7 — service request PCT (median ms)"))

    by = {(p.scheme, p.axis_rate): p for p in points}
    # Ordering at every rate: Neutrino best, SkyCore worst.
    for rate in RATES:
        assert by[("neutrino", rate)].p50_ms <= by[("dpcm", rate)].p50_ms * 1.05
        assert by[("dpcm", rate)].p50_ms < by[("existing_epc", rate)].p50_ms * 1.05
        assert by[("existing_epc", rate)].p50_ms < by[("skycore", rate)].p50_ms * 1.05
    # "up to Nx better" ratios in the paper's direction and magnitude.
    assert median_ratio(points, "neutrino", "existing_epc") > 2.0
    assert median_ratio(points, "neutrino", "skycore") > 3.0
    assert median_ratio(points, "neutrino", "dpcm") > 1.2
    # EPC/SkyCore saturate inside the sweep; Neutrino does not.
    assert by[("existing_epc", 220e3)].p50_ms > 10 * by[("existing_epc", 100e3)].p50_ms
    assert by[("neutrino", 220e3)].p50_ms < 5 * by[("neutrino", 100e3)].p50_ms
