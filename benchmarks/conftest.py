"""Shared benchmark configuration.

Each benchmark file regenerates one figure of the paper at a reduced
but shape-preserving scale (see DESIGN.md §4 for the scaling rules) and
prints the same series the paper plots.  ``pytest benchmarks/
--benchmark-only`` therefore both times the harness and emits the
reproduction tables that EXPERIMENTS.md records.
"""

import os

import pytest

from repro.experiments import RunSpec


def quick_spec(**overrides) -> RunSpec:
    """Benchmark-scale run: ~600 procedures per point."""
    base = dict(procedures_target=600, min_duration_s=0.03, max_duration_s=0.15)
    base.update(overrides)
    return RunSpec(**base)


def sweep_jobs() -> int:
    """Worker-process count for sweep-backed figures.

    Defaults to 1 (serial — keeps benchmark timings comparable);
    ``REPRO_BENCH_JOBS=N`` fans points out over N processes, which is
    bit-identical to serial (asserted in tests/experiments) but reports
    wall-clock per figure, not per point.  ``0`` means one per core.
    """
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture
def print_series(capsys):
    """Print a figure's series so it lands in the benchmark output."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return emit
