"""Shared benchmark configuration.

Each benchmark file regenerates one figure of the paper at a reduced
but shape-preserving scale (see DESIGN.md §4 for the scaling rules) and
prints the same series the paper plots.  ``pytest benchmarks/
--benchmark-only`` therefore both times the harness and emits the
reproduction tables that EXPERIMENTS.md records.
"""

import pytest

from repro.experiments import RunSpec


def quick_spec(**overrides) -> RunSpec:
    """Benchmark-scale run: ~600 procedures per point."""
    base = dict(procedures_target=600, min_duration_s=0.03, max_duration_s=0.15)
    base.update(overrides)
    return RunSpec(**base)


@pytest.fixture
def print_series(capsys):
    """Print a figure's series so it lands in the benchmark output."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return emit
