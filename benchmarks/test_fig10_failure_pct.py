"""Fig. 10 — handover PCT under CPF failure.

Paper: below 60 KPPS Neutrino improves median PCT under failure by up
to 5.6x: instead of Re-Attaching, the CTA replays logged messages at a
replica, saving multiple RTTs.  PCT excludes failure detection time in
both systems.
"""

from repro.experiments import RunSpec, figures
from repro.experiments.report import format_pct_table, median_ratio

RATES = (40e3, 60e3, 100e3)


def run_fig10():
    spec = RunSpec(
        procedure="handover",
        cpfs_per_region=2,
        failure_cpf_index=0,
        failure_at_frac=0.5,
        first_region_only=True,
        procedures_target=600,
        min_duration_s=0.03,
        max_duration_s=0.15,
    )
    return figures.fig10_failure_handover(rates=RATES, spec=spec)


def test_fig10_failure_pct(benchmark, print_series):
    points = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    print_series(
        format_pct_table(points, "Fig. 10 — handover PCT under CPF failure (median ms)")
    )
    by = {(p.scheme, p.axis_rate): p for p in points}

    for rate in RATES:
        neutrino = by[("neutrino", rate)]
        assert neutrino.recovered > 0
        # Neutrino masks most failures instead of Re-Attaching.
        assert neutrino.reattached < neutrino.recovered
        assert neutrino.violations == 0
    for rate in (40e3, 60e3):  # below EPC saturation its re-attaches finish
        epc = by[("existing_epc", rate)]
        assert epc.recovered > 0
        # The EPC can only Re-Attach.
        assert epc.reattached == epc.recovered

    # Below the EPC knee the median gap matches the paper's up-to-5.6x.
    ratio = median_ratio(points, "neutrino", "existing_epc", rate=40e3)
    print_series("fig10 median ratio @40K: %.1fx (paper: up to 5.6x)" % ratio)
    assert ratio > 3.0
