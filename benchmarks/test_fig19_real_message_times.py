"""Fig. 19 — encode+decode times on real S1 messages.

Paper: FlatBuffers decreases encode+decode times by up to 5.9x over
ASN.1 on real S1AP messages (InitialContextSetup, its response, E-RAB
setup/modify, InitialUEMessage); Optimized FlatBuffers is slightly
faster still.  The benchmark also times this repository's real codec
implementations on the same messages.
"""

import pytest

from repro.experiments import figures
from repro.experiments.report import format_dict_rows
from repro.messages import CATALOG


def run_fig19():
    return figures.fig19_real_message_times(measured_repeats=80)


def test_fig19_real_message_times(benchmark, print_series):
    rows = benchmark.pedantic(run_fig19, rounds=1, iterations=1)
    print_series(
        format_dict_rows(rows, "Fig. 19 — encode+decode on real S1 messages (µs)")
    )

    measured_totals = {"flatbuffers": 0.0, "asn1per": 0.0}
    for msg in figures.FIG19_MESSAGES:
        per_codec = {r["codec"]: r for r in rows if r["message"] == msg}
        # modeled: optimized FB <= FB << ASN.1
        assert per_codec["flatbuffers_opt"]["modeled_us"] <= per_codec["flatbuffers"]["modeled_us"]
        assert per_codec["flatbuffers"]["modeled_us"] < per_codec["asn1per"]["modeled_us"]
        for codec in measured_totals:
            measured_totals[codec] += per_codec[codec]["measured_us"]
    # measured: aggregated over the message set (single-message wall
    # clock is too noisy for strict per-message ordering) the real FB
    # implementation clearly beats the real PER one.
    assert measured_totals["flatbuffers"] < measured_totals["asn1per"]


def test_fig19_speedup_magnitude(benchmark):
    def speedups():
        rows = figures.fig19_real_message_times()
        out = {}
        for msg in figures.FIG19_MESSAGES:
            per_codec = {r["codec"]: r["modeled_us"] for r in rows if r["message"] == msg}
            out[msg] = per_codec["asn1per"] / per_codec["flatbuffers"]
        return out

    ratios = benchmark.pedantic(speedups, rounds=1, iterations=1)
    # Paper reports up to 5.9x on these messages; our calibration gives
    # the same direction with somewhat larger factors (8 - 20 elements).
    assert all(r > 3.0 for r in ratios.values())
    assert max(ratios.values()) < 30.0
