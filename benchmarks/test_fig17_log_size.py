"""Fig. 17 — maximum CTA log size vs number of active users.

Paper: with per-procedure synchronization the log grows with the number
of active users but stays below 400 MB even at 200K users.  We simulate
a 1/50 user slice and extrapolate linearly (log entries are per-UE
independent).
"""

from repro.experiments import figures
from repro.experiments.report import format_dict_rows

USERS = (10e3, 50e3, 100e3, 200e3)


def run_fig17():
    return figures.fig17_log_size(users=USERS, procedures=("attach", "handover"))


def test_fig17_log_size(benchmark, print_series):
    rows = benchmark.pedantic(run_fig17, rounds=1, iterations=1)
    print_series(format_dict_rows(rows, "Fig. 17 — max CTA log size"))
    by = {(r["procedure"], r["active_users"]): r for r in rows}

    for proc in ("attach", "handover"):
        series = [by[(proc, u)]["max_log_mb_extrapolated"] for u in USERS]
        # grows with active users
        assert series == sorted(series)
        assert series[-1] > series[0]
        # stays under the paper's 400 MB bound at 200K users
        assert by[(proc, 200e3)]["max_log_mb_extrapolated"] < 400.0
