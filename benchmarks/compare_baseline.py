#!/usr/bin/env python
"""Compare a fresh pytest-benchmark run against BENCH_baseline.json.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_kernel_micro.py \
        --benchmark-json=/tmp/bench.json
    python benchmarks/compare_baseline.py /tmp/bench.json BENCH_baseline.json

Exit status is non-zero when any *guarded* benchmark (the kernel
schedule/fire throughput and the ASN.1 PER codec, listed in the
baseline's ``guarded`` array) regresses more than ``max_regression``
(default 30%) beyond the committed baseline.

Raw milliseconds are not comparable across machines or load levels, so
the check is **calibrated**: the machine-speed scale is the median of
``current/baseline`` ratios over every benchmark present in both runs.
A CI box that is uniformly 2x slower moves the median to ~2x, scales
every limit accordingly, and passes; a change that slows the guarded
hot paths *relative to the rest of the suite* fails.  (A single named
calibration benchmark would be hostage to its own noise; the run-wide
median is robust as long as a regression doesn't hit most of the suite
at once — and one that does will push some guarded ratio past the
limit anyway.)

``--update`` rewrites the baseline's recorded numbers from the fresh
run (keeping guards, notes, and pre-optimization history) for when a
faster kernel legitimately moves the trajectory.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def load_run(path: str) -> dict:
    """name -> min milliseconds from a --benchmark-json file."""
    with open(path) as fp:
        data = json.load(fp)
    return {b["name"]: b["stats"]["min"] * 1e3 for b in data["benchmarks"]}


def compare(run: dict, baseline: dict, subset: bool = False) -> int:
    base_ms = {k: v["min_ms"] for k, v in baseline["benchmarks"].items()}
    guarded = set(baseline.get("guarded", ()))
    tolerance = float(baseline.get("max_regression", 0.30))
    if subset:
        # Partial run (e.g. CI timing only the obs-overhead file):
        # baseline rows absent from the run — guarded or not — are
        # skipped, not failures; everything that *did* run is still
        # held to the calibrated limit.
        dropped = [k for k in base_ms if k not in run]
        base_ms = {k: v for k, v in base_ms.items() if k in run}
        if dropped:
            print("subset mode: ignoring %d baseline benchmarks not in this run"
                  % len(dropped))

    shared = [k for k in base_ms if k in run and base_ms[k] > 0]
    if shared:
        scale = statistics.median(run[k] / base_ms[k] for k in shared)
        print("machine calibration (median ratio over %d benchmarks): %.2fx"
              % (len(shared), scale))
    else:
        scale = 1.0
        print("WARNING: no shared benchmarks; comparing raw times")

    failures = []
    print("%-45s %10s %10s %8s  %s" % ("benchmark", "base(ms)", "now(ms)", "ratio", "status"))
    for name in sorted(base_ms):
        base = base_ms[name]
        now = run.get(name)
        if now is None:
            status = "MISSING"
            if name in guarded:
                failures.append("%s: not present in the fresh run" % name)
            print("%-45s %10.3f %10s %8s  %s" % (name, base, "-", "-", status))
            continue
        ratio = now / (base * scale) if base > 0 else float("inf")
        if name in guarded:
            if ratio > 1.0 + tolerance:
                status = "FAIL (>%d%% regression)" % round(tolerance * 100)
                failures.append(
                    "%s: %.3f ms vs calibrated limit %.3f ms (%.0f%% over baseline)"
                    % (name, now, base * scale * (1 + tolerance), (ratio - 1) * 100)
                )
            else:
                status = "ok (guarded)"
        else:
            status = "ok" if ratio <= 1.0 + tolerance else "slower (unguarded)"
        print("%-45s %10.3f %10.3f %8.2f  %s" % (name, base, now, ratio, status))

    if failures:
        print()
        print("PERF REGRESSION: %d guarded benchmark(s) failed" % len(failures))
        for failure in failures:
            print("  - " + failure)
        return 1
    print()
    print("all guarded benchmarks within %.0f%% of the calibrated baseline" % (tolerance * 100))
    return 0


def update(run: dict, baseline: dict, baseline_path: str) -> int:
    for name, ms in run.items():
        baseline["benchmarks"][name] = {"min_ms": round(ms, 4)}
    with open(baseline_path, "w") as fp:
        json.dump(baseline, fp, indent=2)
        fp.write("\n")
    print("rewrote %s from the fresh run (%d benchmarks)" % (baseline_path, len(run)))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("run_json", help="--benchmark-json output of a fresh run")
    parser.add_argument("baseline_json", help="committed BENCH_baseline.json")
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline numbers from the fresh run instead of comparing",
    )
    parser.add_argument(
        "--subset", action="store_true",
        help="the fresh run timed only part of the suite: baseline rows "
        "absent from it are skipped instead of failing when guarded",
    )
    args = parser.parse_args(argv)

    run = load_run(args.run_json)
    with open(args.baseline_json) as fp:
        baseline = json.load(fp)
    if args.update:
        return update(run, baseline, args.baseline_json)
    return compare(run, baseline, subset=args.subset)


if __name__ == "__main__":
    sys.exit(main())
