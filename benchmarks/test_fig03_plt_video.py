"""Fig. 3 — page load time & video startup delay vs load.

Paper: changing the serializer improves median video startup delay by
up to 37x and page load time by up to 3.2x at 180K-300K active users/s
(rates past the existing EPC's service-request saturation).  The shape
to reproduce: the EPC's startup/PLT explode once saturated while
Neutrino's stay flat at the app-constant floor.
"""

from repro.apps import VideoAppSpec, WebAppSpec
from repro.experiments import figures
from repro.experiments.report import format_dict_rows

from conftest import quick_spec

RATES = (180e3, 240e3, 300e3)


def run_fig03():
    run = quick_spec(procedure="service_request")
    return figures.fig03_plt_and_video(
        rates=RATES,
        video_spec=VideoAppSpec(run=run),
        web_spec=WebAppSpec(run=run),
    )


def test_fig03_plt_and_video(benchmark, print_series):
    rows = benchmark.pedantic(run_fig03, rounds=1, iterations=1)
    print_series(format_dict_rows(rows, "Fig. 3 — video startup & PLT"))

    by = {(r["scheme"], r["rate"]): r for r in rows}
    for rate in RATES:
        epc = by[("existing_epc", rate)]
        neutrino = by[("neutrino", rate)]
        # EPC saturated; Neutrino flat: both app metrics favor Neutrino.
        assert epc["video_startup_p50_s"] > neutrino["video_startup_p50_s"]
        assert epc["plt_p50_s"] > neutrino["plt_p50_s"]
        # the EPC is overloaded at every one of these rates; Neutrino
        # only approaches its own knee at the very top of the sweep.
        assert epc["est_rho"] > 1.0
        assert neutrino["est_rho"] < epc["est_rho"] * 0.6
    # the gap widens with load (paper's "up to" framing)
    gap_low = by[("existing_epc", RATES[0])]["video_startup_p50_s"]
    gap_high = by[("existing_epc", RATES[-1])]["video_startup_p50_s"]
    assert gap_high >= gap_low
    # At the paper's 60 s horizon the overloaded EPC's startup delay
    # extrapolates to tens of seconds while Neutrino stays near the
    # player constant — the paper's up-to-37x / 3.2x gaps ("up to" =
    # the best rate in the sweep).
    video_ratio = max(
        by[("existing_epc", r)]["est_video_startup_60s_s"]
        / by[("neutrino", r)]["est_video_startup_60s_s"]
        for r in RATES
    )
    plt_ratio = max(
        by[("existing_epc", r)]["est_plt_60s_s"] / by[("neutrino", r)]["est_plt_60s_s"]
        for r in RATES
    )
    print_series(
        "fig3 extrapolated 60s ratios: video %.0fx (paper: up to 37x), "
        "PLT %.1fx (paper: up to 3.2x)" % (video_ratio, plt_ratio)
    )
    assert video_ratio > 20
    assert plt_ratio > 2.5
