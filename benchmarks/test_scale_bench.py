"""City-scale driver benchmarks: the batched lane vs the cohort driver.

Times ``run_scenario`` end to end on ``steady-city`` at a CI-feasible
population (20k UEs, 2 simulated seconds — the scenario default), in
both modes.  The committed ``BENCH_baseline.json`` carries both rows;
``test_scale_steady_city_batched`` is guarded, so a regression that
slows the analytic lane relative to the rest of the suite fails CI.

Protocol notes (they matter for reproducing the recorded numbers):

* **min over rounds** — wall-clock minima are the stable statistic for
  a single-process simulation; means absorb GC and scheduler noise.
* **default interpreter GC** — deliberately left on: it is what every
  user of ``python -m repro scale`` gets, and the discrete cohort
  path's object churn pays real GC cost that an artificially GC-off
  measurement would hide.
* the speedup witness below interleaves cohort/batched runs so slow
  machine drift hits both sides equally; the ratio is scale-invariant,
  which is why a wall-clock ratio can be asserted in CI at all.

The acceptance-scale measurement (100k UEs, ≥5x) is too slow for every
CI run; it is recorded in ``BENCH_baseline.json`` under
``scale_speedup`` and in EXPERIMENTS.md, refreshed with::

    PYTHONPATH=src python -m pytest benchmarks/test_scale_bench.py \
        --benchmark-json=/tmp/scale-bench.json
    python benchmarks/compare_baseline.py /tmp/scale-bench.json \
        BENCH_baseline.json --subset
"""

import time

import pytest

pytest.importorskip("pytest_benchmark")

from repro.obs import Observability
from repro.scale.engine import run_scenario

N_UE = 20_000
DURATION_S = 2.0


def _run(mode):
    return run_scenario(
        "steady-city", n_ue=N_UE, duration_s=DURATION_S, seed=1, mode=mode
    )


def _run_sharded():
    # inline backend: the epoch loop and the merge run in this process,
    # so the row times the sharding machinery itself (partition, ghost
    # topologies, migration records, deterministic merge) independent of
    # how many cores the CI machine happens to have.
    return run_scenario(
        "steady-city", n_ue=N_UE, duration_s=DURATION_S, seed=1,
        mode="batched", shards=2, shard_backend="inline",
    )


def test_scale_steady_city_cohort(benchmark):
    result = benchmark.pedantic(_run, args=("cohort",), rounds=3, iterations=1)
    assert result.violations == 0


def test_scale_steady_city_batched(benchmark):
    result = benchmark.pedantic(_run, args=("batched",), rounds=5, iterations=1)
    assert result.violations == 0
    assert result.lane["gate_misses"] == 0


def test_scale_steady_city_sharded(benchmark):
    result = benchmark.pedantic(_run_sharded, rounds=3, iterations=1)
    assert result.violations == 0
    assert result.perf["backend"] == "inline"
    assert len(result.shards) == 2


def _run_sharded_obs():
    # same inline 2-shard run with full tracing installed per shard:
    # spans + bounded retention + span-table export at merge + stitch
    # inputs.  The delta over test_scale_steady_city_sharded is the
    # whole sharded-obs machinery, guarded so instrumentation creep on
    # the traced path shows up in CI.
    return run_scenario(
        "steady-city", n_ue=N_UE, duration_s=DURATION_S, seed=1,
        mode="batched", shards=2, shard_backend="inline",
        obs=Observability("trace"),
    )


def test_scale_steady_city_sharded_obs(benchmark):
    result = benchmark.pedantic(_run_sharded_obs, rounds=3, iterations=1)
    assert result.violations == 0
    assert result.obs_snapshot["spans_finished"] > 0
    assert result.obs_snapshot["retention"]["limit"] > 0
    assert len(result.obs_shards) == 2


def test_scale_batched_speedup_witness():
    """Interleaved min-of-3 A/B: batched must stay well ahead of cohort
    *and* bit-identical to it.  The 2.5x floor is deliberately far
    below the measured 4.4x at this scale (5.3x at 100k) so only a real
    lane regression trips it, not CI noise."""
    cohort_s, batched_s = [], []
    for _ in range(3):
        t0 = time.perf_counter()
        res_c = _run("cohort")
        cohort_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        res_b = _run("batched")
        batched_s.append(time.perf_counter() - t0)
    dict_c, dict_b = res_c.to_dict(), res_b.to_dict()
    for d in (dict_c, dict_b):
        d.pop("mode")
        d.pop("lane", None)
        d.pop("perf", None)
        d.pop("shards", None)
    assert dict_c == dict_b, "batched diverged from cohort"
    speedup = min(cohort_s) / min(batched_s)
    print(
        "\nscale speedup (n=%d, %ss sim): cohort min %.3fs, batched min "
        "%.3fs -> %.2fx" % (N_UE, DURATION_S, min(cohort_s), min(batched_s), speedup)
    )
    assert speedup >= 2.5, "batched lane lost its wall-clock advantage (%.2fx)" % speedup
