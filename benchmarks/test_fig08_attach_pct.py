"""Fig. 8 — attach PCT with uniform traffic: EPC vs Neutrino.

Paper: Neutrino up to 2.3x better until 60 KPPS; the EPC enters its
saturation region beyond ~60 KPPS while Neutrino's knee sits at about
double that rate (~120 KPPS), where Neutrino is up to 3.4x better.
"""

from repro.experiments import figures
from repro.experiments.report import format_pct_table, median_ratio

from conftest import quick_spec, sweep_jobs

RATES = (40e3, 60e3, 80e3, 100e3, 120e3, 140e3)


def run_fig08():
    return figures.fig08_attach_uniform(
        rates=RATES, spec=quick_spec(procedure="attach"), jobs=sweep_jobs()
    )


def find_knee(points, scheme):
    """First rate where median PCT exceeds 3x the lowest-rate median."""
    series = sorted(
        (p for p in points if p.scheme == scheme), key=lambda p: p.axis_rate
    )
    floor = series[0].p50_ms
    for point in series:
        if point.p50_ms > 3 * floor:
            return point.axis_rate
    return float("inf")


def test_fig08_attach_pct(benchmark, print_series):
    points = benchmark.pedantic(run_fig08, rounds=1, iterations=1)
    print_series(format_pct_table(points, "Fig. 8 — attach PCT (median ms)"))

    epc_knee = find_knee(points, "existing_epc")
    neutrino_knee = find_knee(points, "neutrino")
    print_series(
        "saturation knees: existing_epc=%.0f  neutrino=%.0f" % (epc_knee, neutrino_knee)
    )
    # The EPC saturates inside the sweep; Neutrino's knee is much later.
    assert epc_knee <= 100e3
    assert neutrino_knee >= 1.5 * epc_knee
    # Median improvement in the paper's direction everywhere.
    assert median_ratio(points, "neutrino", "existing_epc") > 2.0
    by = {(p.scheme, p.axis_rate): p for p in points}
    for rate in RATES:
        assert by[("neutrino", rate)].p50_ms < by[("existing_epc", rate)].p50_ms
