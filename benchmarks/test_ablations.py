"""Extra ablations beyond the paper's factor analysis (DESIGN.md §7).

* replication factor N (the paper leaves N as a parameter),
* replica ring level — 2 (the paper) vs 3 (its footnote-14 future work),
* the §4.2.4 ACK timeout.
"""

from repro.experiments import RunSpec
from repro.experiments.ablations import (
    ablate_ack_timeout,
    ablate_georep_level,
    ablate_n_backups,
    ablate_serialization_bandwidth,
)
from repro.experiments.report import format_dict_rows


def test_ablation_n_backups(benchmark, print_series):
    spec = RunSpec(
        procedure="attach",
        regions=4,
        procedures_target=500,
        max_duration_s=0.15,
        failure_cpf_index=0,
        failure_at_frac=0.5,
    )
    rows = benchmark.pedantic(
        lambda: ablate_n_backups(backups=(1, 2, 3), rate=40e3, spec=spec),
        rounds=1,
        iterations=1,
    )
    print_series(format_dict_rows(rows, "Ablation — replication factor N"))
    assert all(r["violations"] == 0 for r in rows)
    # failure masking never degrades as N grows
    fracs = [r["masked_frac"] for r in rows]
    assert fracs[-1] >= fracs[0] - 0.05


def test_ablation_georep_level(benchmark, print_series):
    rows = benchmark.pedantic(
        lambda: ablate_georep_level(round_trips=8), rounds=1, iterations=1
    )
    print_series(format_dict_rows(rows, "Ablation — replica ring level (2 vs 3)"))
    by_level = {r["georep_level"]: r for r in rows}
    assert by_level[3]["fast_ho_p50_ms"] < by_level[2]["fast_ho_p50_ms"]


def test_ablation_ack_timeout(benchmark, print_series):
    rows = benchmark.pedantic(
        lambda: ablate_ack_timeout(timeouts_s=(0.5, 5.0, 30.0)),
        rounds=1,
        iterations=1,
    )
    print_series(format_dict_rows(rows, "Ablation — §4.2.4 ACK timeout"))
    assert all(r["violations"] == 0 for r in rows)


def test_ablation_serialization_bandwidth(benchmark, print_series):
    rows = benchmark.pedantic(
        lambda: ablate_serialization_bandwidth(n_procedures=150),
        rounds=1,
        iterations=1,
    )
    print_series(format_dict_rows(rows, "Ablation — §7 serialization bandwidth trade-off"))
    by = {r["codec"]: r for r in rows}
    # FlatBuffers buys lower PCT with more bytes on the access side...
    assert by["flatbuffers"]["inflation_vs_asn1"] > 1.5
    assert by["flatbuffers"]["attach_p50_ms"] < by["asn1per"]["attach_p50_ms"]
    # ...and the svtable optimization claws some of the bytes back.
    assert (
        by["flatbuffers_opt"]["access_bytes"] <= by["flatbuffers"]["access_bytes"]
    )
