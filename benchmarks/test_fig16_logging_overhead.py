"""Fig. 16 — impact of CTA message logging on attach PCT.

Paper: in-memory logging has negligible impact on PCT — the entire
point of keeping the log at the CTA in volatile memory.
"""

from repro.experiments import figures
from repro.experiments.report import format_pct_table

from conftest import quick_spec

RATES = (20e3, 60e3, 100e3)


def run_fig16():
    return figures.fig16_logging_overhead(
        rates=RATES, spec=quick_spec(procedure="attach")
    )


def test_fig16_logging_overhead(benchmark, print_series):
    points = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    print_series(
        format_pct_table(points, "Fig. 16 — attach PCT, logging on/off (median ms)")
    )
    by = {(p.scheme, p.axis_rate): p for p in points}

    for rate in RATES:
        logged = by[("logging", rate)].p50_ms
        bare = by[("no_logging", rate)].p50_ms
        # negligible: within 25% at every rate (paper: indistinguishable)
        assert logged < bare * 1.25 + 0.05, (rate, logged, bare)
