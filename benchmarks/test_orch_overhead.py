"""Controller overhead: an observing orchestrator must be ~free.

The ``repro.orch`` determinism contract has a perf side to match the
digest side: a non-mutating controller (a policy with ticks but no
behaviours armed) reads health rows at every tick and decides nothing,
and the witness suite pins that its digest equals the orch-off run's.
This file prices the same claim — the tick loop, per-tick ``load``
table construction, and controller bookkeeping must cost a few percent
of the run, not a multiple.

``test_scale_steady_city_orch_noop`` is *guarded* in
``BENCH_baseline.json``: if the observation path creeps (say the load
table starts walking every placement), CI fails.  The orch-off row is
the denominator and stays unguarded (it duplicates the guarded batched
row's workload in cohort mode at a smaller population).

Run / refresh::

    PYTHONPATH=src python -m pytest benchmarks/test_orch_overhead.py \
        --benchmark-json=/tmp/orch-bench.json
    python benchmarks/compare_baseline.py /tmp/orch-bench.json \
        BENCH_baseline.json --subset
"""

import dataclasses
import time

import pytest

pytest.importorskip("pytest_benchmark")

from repro.scale.engine import run_scenario
from repro.scale.scenarios import get_scenario

N_UE = 20_000
DURATION_S = 2.0

#: ticks but no behaviours: observe-only, the digest-neutral controller.
_NOOP_POLICY = {"tick_s": 0.05}


def _spec(policy):
    spec = get_scenario("steady-city").with_overrides(
        n_ue=N_UE, duration_s=DURATION_S, seed=1
    )
    return dataclasses.replace(spec, orch_policy=policy)


def test_scale_steady_city_orch_off(benchmark):
    result = benchmark.pedantic(
        run_scenario, args=(_spec(None),), rounds=3, iterations=1
    )
    assert result.violations == 0


def test_scale_steady_city_orch_noop(benchmark):
    """GUARDED: 40 observe-only ticks on top of the same run."""
    result = benchmark.pedantic(
        run_scenario, args=(_spec(_NOOP_POLICY),), rounds=3, iterations=1
    )
    assert result.violations == 0
    assert result.orch_summary["ticks"] == 39  # tick 40 lands past t=duration
    assert result.orch_log == []


def test_orch_noop_overhead_witness():
    """Interleaved min-of-3 A/B: the observing controller must cost
    under 15% wall-clock over the identical orch-off run — and produce
    the identical digest, so the only thing being paid for is reading."""
    off_s, noop_s = [], []
    for _ in range(3):
        t0 = time.perf_counter()
        res_off = run_scenario(_spec(None))
        off_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        res_noop = run_scenario(_spec(_NOOP_POLICY))
        noop_s.append(time.perf_counter() - t0)
    assert res_noop.digest == res_off.digest, "observation perturbed the run"
    overhead = min(noop_s) / min(off_s) - 1.0
    print(
        "\norch no-op overhead (n=%d, %ss sim): off min %.3fs, noop min "
        "%.3fs -> %+.1f%%"
        % (N_UE, DURATION_S, min(off_s), min(noop_s), 100 * overhead)
    )
    assert overhead < 0.15, (
        "observing controller costs %.1f%% wall-clock" % (100 * overhead)
    )
