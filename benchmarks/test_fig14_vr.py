"""Fig. 14 — effect of mobility on a VR application.

Paper: head-tracked VR needs <16 ms motion-to-photon latency; packets
missing that budget are counted during single- and multiple-handover
sessions.  Neutrino performs up to 2.5x better than the existing EPC.
"""

from repro.experiments import figures
from repro.experiments.report import format_dict_rows

USERS = (50e3, 500e3)
FAST = dict(drive_duration_s=2.5, radio_interruption_s=0.4)


def run_fig14():
    return figures.fig14_vr(users=USERS, handovers=(1, 3), **FAST)


def test_fig14_vr(benchmark, print_series):
    rows = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    print_series(format_dict_rows(rows, "Fig. 14 — VR missed deadlines"))
    by = {(r["scheme"], r["scenario"], r["active_users"]): r for r in rows}

    for scenario in ("single_ho", "multiple_ho"):
        epc = by[("existing_epc", scenario, 500e3)]["missed"]
        neutrino = by[("neutrino", scenario, 500e3)]["missed"]
        assert epc > neutrino > 0
        ratio = epc / neutrino
        print_series("fig14 %s ratio @500K users: %.1fx (paper: up to 2.5x)" % (scenario, ratio))
        assert ratio > 1.4
    # At light load the radio interruption dominates and designs converge.
    light_epc = by[("existing_epc", "single_ho", 50e3)]["missed"]
    light_neutrino = by[("neutrino", "single_ho", 50e3)]["missed"]
    assert light_epc <= light_neutrino * 1.5
