"""Fig. 9 — attach PCT with bursty IoT traffic vs number of active users.

Paper: with synchronized bursts queues build immediately for both
designs; Neutrino stays up to 2x better in median PCT from 10K to 2M
active users.  (We simulate a documented 1/50 slice of each burst.)
"""

from repro.experiments import figures
from repro.experiments.report import format_pct_table

USERS = (10e3, 100e3, 500e3, 2e6)


def run_fig09():
    return figures.fig09_attach_bursty(users=USERS)


def test_fig09_bursty_attach(benchmark, print_series):
    points = benchmark.pedantic(run_fig09, rounds=1, iterations=1)
    print_series(
        format_pct_table(points, "Fig. 9 — bursty attach PCT (median ms) vs users")
    )

    by = {(p.scheme, p.axis_rate): p for p in points}
    for users in USERS:
        epc = by[("existing_epc", users)]
        neutrino = by[("neutrino", users)]
        assert epc.count == neutrino.count  # every burst member completed
        # Neutrino handles bursts better (paper: up to 2x).
        assert neutrino.p50_ms < epc.p50_ms
    # the improvement factor is ~2x at scale
    big = USERS[-1]
    ratio = by[("existing_epc", big)].p50_ms / by[("neutrino", big)].p50_ms
    assert 1.5 < ratio < 4.0
    # PCT grows with burst size for both (queues build immediately)
    for scheme in ("existing_epc", "neutrino"):
        assert by[(scheme, USERS[-1])].p50_ms > by[(scheme, USERS[0])].p50_ms
