"""Fig. 15 — effect of state synchronization scheme on attach PCT.

Paper: per-message replication has the highest median PCT (frequent
state locking for checkpointing); per-procedure replication costs only
slightly more than no replication — the consistency/overhead trade-off
Neutrino picks (§4.2.2, §6.7.1).
"""

from repro.experiments import figures
from repro.experiments.report import format_pct_table

from conftest import quick_spec

RATES = (20e3, 60e3, 100e3)


def run_fig15():
    return figures.fig15_sync_schemes(rates=RATES, spec=quick_spec(procedure="attach"))


def test_fig15_sync_schemes(benchmark, print_series):
    points = benchmark.pedantic(run_fig15, rounds=1, iterations=1)
    print_series(
        format_pct_table(points, "Fig. 15 — attach PCT by sync scheme (median ms)")
    )
    by = {(p.scheme, p.axis_rate): p for p in points}

    for rate in RATES:
        no_rep = by[("no_rep", rate)].p50_ms
        per_msg = by[("per_msg_rep", rate)].p50_ms
        per_proc = by[("per_proc_rep", rate)].p50_ms
        # per-message is the most expensive scheme
        assert per_msg > per_proc
        # per-procedure adds only a small premium over no replication
        assert per_proc < no_rep * 1.4 + 0.05

    # At high rate per-message locking pushes the knee earlier: the gap
    # widens with load.
    gap_low = by[("per_msg_rep", RATES[0])].p50_ms - by[("per_proc_rep", RATES[0])].p50_ms
    gap_high = by[("per_msg_rep", RATES[-1])].p50_ms - by[("per_proc_rep", RATES[-1])].p50_ms
    assert gap_high > gap_low
