"""Microbenchmarks guarding the simulator-kernel and codec hot paths.

Unlike the figure benchmarks (which time whole experiment sweeps), this
file isolates the primitives every figure point is built from:

* ``Simulator.schedule`` / zero-delay fire throughput — the dominant
  operation of the DES kernel (``Event._dispatch`` and ``Process``
  wakeups are zero-delay callbacks);
* the timed-heap path (non-zero delays through the binary heap);
* the process trampoline (generator yield → timeout → resume);
* codec encode/decode on real catalog messages (ASN.1 PER bit-level,
  FlatBuffers and protobuf byte-level) — the Fig. 18–20 hot loop;
* ``Tally.observe`` — the per-sample measurement cost.

CI runs this file with ``--benchmark-json`` and compares the kernel
and codec throughput against the committed ``BENCH_baseline.json``
snapshot (see ``benchmarks/compare_baseline.py``); a >30% regression
of the guarded benchmarks fails the build.  Run a fresh snapshot with::

    PYTHONPATH=src python -m pytest benchmarks/test_kernel_micro.py \
        --benchmark-json=/tmp/bench.json
    python benchmarks/compare_baseline.py /tmp/bench.json BENCH_baseline.json
"""

import pytest

pytest.importorskip("pytest_benchmark")

from repro.codec import get_codec
from repro.messages.registry import CATALOG
from repro.sim.core import Simulator
from repro.sim.monitor import Tally

# -- kernel ----------------------------------------------------------------

#: events per benchmark round; large enough that per-round setup
#: (Simulator construction) is noise.
N_EVENTS = 20_000


def _zero_delay_chain(n: int) -> int:
    """n zero-delay callbacks, each scheduling the next (dispatch chain)."""
    sim = Simulator()
    left = [n]

    def tick():
        left[0] -= 1
        if left[0]:
            sim.schedule(0.0, tick)

    sim.schedule(0.0, tick)
    sim.run()
    assert left[0] == 0
    return n


def _zero_delay_fanout(n: int) -> int:
    """n pre-scheduled zero-delay callbacks drained in seq order."""
    sim = Simulator()
    seen = [0]

    def tick():
        seen[0] += 1

    for _ in range(n):
        sim.schedule(0.0, tick)
    sim.run()
    assert seen[0] == n
    return n


def test_kernel_schedule_fire_zero_delay(benchmark):
    """Dispatch-chain latency (tracked, unguarded: noisy under load)."""
    benchmark(_zero_delay_chain, N_EVENTS)


def test_kernel_schedule_fire_fanout(benchmark):
    """THE guarded metric: bulk zero-delay schedule+fire throughput."""
    benchmark(_zero_delay_fanout, N_EVENTS)


def test_kernel_schedule_timed_heap(benchmark):
    """Non-zero delays: the binary-heap path stays the fallback."""

    def run(n):
        sim = Simulator()
        seen = [0]

        def tick():
            seen[0] += 1

        # Deterministic pseudo-random delays; no RNG dependency.
        for i in range(n):
            sim.schedule(((i * 2654435761) % 1000) * 1e-6, tick)
        sim.run()
        assert seen[0] == n

    benchmark(run, N_EVENTS)


def test_kernel_process_trampoline(benchmark):
    """Generator processes yielding timeouts: yield → fire → resume."""

    def run(n_procs, n_yields):
        sim = Simulator()
        done = [0]

        def proc():
            for _ in range(n_yields):
                yield sim.timeout(0.0)
            done[0] += 1

        for _ in range(n_procs):
            sim.process(proc())
        sim.run()
        assert done[0] == n_procs

    benchmark(run, 200, 50)


def test_kernel_event_callback_fanout(benchmark):
    """One event with many waiters succeeding (dispatch burst)."""

    def run(n_events, n_waiters):
        sim = Simulator()
        seen = [0]

        def cb(_ev):
            seen[0] += 1

        for i in range(n_events):
            ev = sim.event()
            for _ in range(n_waiters):
                ev.add_callback(cb)
            sim.schedule(1e-6 * i, ev.succeed, i)
        sim.run()
        assert seen[0] == n_events * n_waiters

    benchmark(run, 500, 20)


# -- codecs ----------------------------------------------------------------

#: representative catalog messages: the biggest S1AP message, a NAS
#: message, and a mid-size context setup (the Fig. 18 x-axis spread).
_CODEC_MESSAGES = ("HandoverRequest", "AttachRequest", "InitialContextSetup")


def _codec_fixtures(codec_name):
    codec = get_codec(codec_name)
    fixtures = []
    for name in _CODEC_MESSAGES:
        schema = CATALOG.schema(name)
        sample = CATALOG.sample(name)
        fixtures.append((schema, sample, codec.encode(schema, sample)))
    return codec, fixtures


def _encode_loop(codec, fixtures, repeats):
    for _ in range(repeats):
        for schema, sample, _wire in fixtures:
            codec.encode(schema, sample)


def _decode_loop(codec, fixtures, repeats):
    for _ in range(repeats):
        for schema, _sample, wire in fixtures:
            codec.decode(schema, wire)


@pytest.mark.parametrize("codec_name", ["asn1per", "flatbuffers", "protobuf"])
def test_codec_encode(benchmark, codec_name):
    codec, fixtures = _codec_fixtures(codec_name)
    benchmark(_encode_loop, codec, fixtures, 100)


@pytest.mark.parametrize("codec_name", ["asn1per", "flatbuffers", "protobuf"])
def test_codec_decode(benchmark, codec_name):
    codec, fixtures = _codec_fixtures(codec_name)
    benchmark(_decode_loop, codec, fixtures, 100)


def test_codec_roundtrip_correctness():
    """Sanity (not timing): the benchmark fixtures round-trip."""
    for codec_name in ("asn1per", "flatbuffers", "protobuf"):
        codec, fixtures = _codec_fixtures(codec_name)
        for schema, sample, wire in fixtures:
            assert codec.decode(schema, wire) == sample


# -- monitor ---------------------------------------------------------------


def test_monitor_tally_observe(benchmark):
    """Per-sample measurement cost on the PCT hot path."""

    def run(n):
        tally = Tally("pct")
        observe = tally.observe
        for i in range(n):
            observe(i * 1e-6)
        assert tally.count == n

    benchmark(run, 50_000)
