#!/usr/bin/env python3
"""Serialization explorer: every codec on every real control message.

Encodes each S1AP/NAS/S11 message in the catalog with all seven codecs
and prints sizes and (optionally) measured encode+decode times — the raw
material behind the paper's §4.4 and Figs. 18-20.  Also demonstrates the
FlatBuffers lazy accessor (random field access without a full decode)
and the svtable optimization on union-bearing messages.

Run:  python examples/serialization_explorer.py [--timing]
"""

import sys

from repro.codec import UnsupportedSchema, codec_names, get_codec, measure
from repro.codec.flatbuf import FlatBuffersCodec
from repro.messages import CATALOG

SHOW = (
    "InitialUEMessage",
    "InitialContextSetup",
    "InitialContextSetupResponse",
    "HandoverRequired",
    "HandoverRequest",
    "Paging",
    "AttachRequest",
    "CreateSessionRequest",
)


def size_table() -> None:
    codecs = codec_names()
    print("encoded sizes (bytes); '-' = schema not expressible (LCM)")
    print("%-30s" % "message" + "".join("%16s" % c for c in codecs))
    for name in SHOW:
        cells = []
        for codec_name in codecs:
            try:
                cells.append("%16d" % CATALOG.wire_size(name, codec_name))
            except UnsupportedSchema:
                cells.append("%16s" % "-")
        print("%-30s" % name + "".join(cells))
    print()


def timing_table() -> None:
    print("measured encode+decode (µs/op) of this repository's codecs")
    codecs = [c for c in codec_names() if c != "lcm"]
    print("%-30s" % "message" + "".join("%16s" % c for c in codecs))
    for name in SHOW:
        cells = []
        for codec_name in codecs:
            enc, dec = measure(
                codec_name, CATALOG.schema(name), CATALOG.sample(name), repeats=50
            )
            cells.append("%16.1f" % ((enc + dec) * 1e6))
        print("%-30s" % name + "".join(cells))
    print()


def lazy_access_demo() -> None:
    print("FlatBuffers random access: read one field without decoding the rest")
    fb: FlatBuffersCodec = get_codec("flatbuffers")
    schema = CATALOG.schema("InitialContextSetup")
    data = fb.encode(schema, CATALOG.sample("InitialContextSetup"))
    view = fb.view(schema, data)
    print("  buffer: %d bytes" % len(data))
    print("  view.get('mme_ue_s1ap_id') -> %r" % view.get("mme_ue_s1ap_id"))
    print("  view.has('trace_activation') -> %r" % view.has("trace_activation"))
    print("  (ASN.1 PER must decode every preceding field to do this)")
    print()


def svtable_demo() -> None:
    print("svtable optimization on union-bearing messages (paper §4.4)")
    for name in ("HandoverRequired", "UEContextReleaseCommand", "InitialUEMessage"):
        fb = CATALOG.wire_size(name, "flatbuffers")
        opt = CATALOG.wire_size(name, "flatbuffers_opt")
        print("  %-26s FB=%4d B  optimized=%4d B  saved=%d B" % (name, fb, opt, fb - opt))
    print()


def main() -> None:
    size_table()
    lazy_access_demo()
    svtable_demo()
    if "--timing" in sys.argv:
        timing_table()
    else:
        print("(re-run with --timing for measured encode+decode times)")


if __name__ == "__main__":
    main()
