#!/usr/bin/env python3
"""Quickstart: bring up a Neutrino deployment and run the basic procedures.

Builds the canonical 4-region edge deployment (Fig. 6 of the paper),
attaches a UE, runs a service request, an inter-region handover, and a
Fast Handover back, printing each procedure's completion time and the
resulting placement (primary CPF + level-2 backups).

Run:  python examples/quickstart.py
"""

from repro.core import ControlPlaneConfig, Deployment
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    config = ControlPlaneConfig.neutrino()
    dep = Deployment.build_grid(sim, config, cpfs_per_region=2, regions=4)

    print("deployment: %d regions, %d CPFs, %d CTAs, %d BSs" % (
        len(dep.region_map.regions), len(dep.cpfs), len(dep.ctas), len(dep.bss)))
    print("codec: %s   sync: %s   recovery: %s" % (
        config.codec, config.sync_mode, config.recovery))
    print()

    ue = dep.new_ue("ue-quickstart", "bs-20-0")

    def session():
        for proc, target in (
            ("attach", None),
            ("service_request", None),
            ("handover", "bs-21-0"),     # inter-region, with migration
            ("fast_handover", "bs-20-1"),  # back, via the level-2 replica
        ):
            outcome = yield from ue.execute(proc, target_bs=target)
            placement = dep.placement_of(ue.ue_id)
            print(
                "%-16s pct=%7.3f ms   primary=%-10s backups=%s"
                % (proc, outcome.pct * 1e3, placement.primary, placement.backups)
            )

    sim.process(session())
    sim.run(until=5.0)

    print()
    print("UE state version: %d (every completed procedure is a write)" % ue.completed_version)
    print("consistency: read-your-writes held = %s (%d serves audited)" % (
        dep.auditor.read_your_writes_held, dep.auditor.serves))
    print("CTA log entries remaining after ACK pruning: %d" % sum(
        cta.log.entry_count() for cta in dep.ctas.values()))


if __name__ == "__main__":
    main()
