#!/usr/bin/env python3
"""Generate and replay a synthetic ng4T-style control-traffic trace.

Builds a trace matching the published statistics the paper relies on
(session request every ~106.9 s per device, mobility handovers, power
cycles), saves it as JSON-lines, then replays it byte-for-byte through a
Neutrino deployment and reports the per-procedure PCT distributions —
the same pipeline the paper's DPDK generator drives with the commercial
ng4T traces.

Run:  python examples/trace_replay.py [trace.jsonl]
"""

import io
import sys

from repro.core import ControlPlaneConfig, Deployment
from repro.sim import RngRegistry, Simulator
from repro.traffic import TraceConfig, WorkloadDriver, generate_trace, load_trace, save_trace


def main() -> None:
    sim = Simulator()
    dep = Deployment.build_grid(
        sim, ControlPlaneConfig.neutrino(), cpfs_per_region=2, rng=RngRegistry(21)
    )
    bs_names = sorted(dep.bss)

    # Generate (time-compressed so the demo finishes quickly: the same
    # per-device statistics, 60x faster clock).
    config = TraceConfig(
        n_devices=400,
        duration_s=10.0,
        session_interarrival_s=106.9 / 60.0,
        handover_interarrival_s=300.0 / 60.0,
        power_cycle_fraction=0.05,
        seed=3,
    )
    records = generate_trace(config, bs_names=bs_names)
    print("generated %d trace records for %d devices" % (len(records), config.n_devices))

    # Persist + reload (JSON-lines) to show the replayable format.
    buf = io.StringIO()
    save_trace(records, buf)
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as fp:
            fp.write(buf.getvalue())
        print("trace written to %s" % sys.argv[1])
    buf.seek(0)
    records = load_trace(buf)

    mix = {}
    for record in records:
        mix[record.procedure] = mix.get(record.procedure, 0) + 1
    print("procedure mix:", dict(sorted(mix.items())))

    # Replay through the deployment.
    driver = WorkloadDriver(dep)
    driver.schedule_trace(records)
    sim.run(until=config.duration_s + 5.0)

    print("\nper-procedure completion times:")
    for name in sorted(dep.pct):
        tally = dep.pct[name]
        print(
            "  %-16s n=%5d  p50=%7.3f ms  p95=%7.3f ms"
            % (name, tally.count, tally.percentile(50) * 1e3, tally.percentile(95) * 1e3)
        )
    print("\narrivals dropped (UE busy): %d" % driver.arrivals_dropped)
    print("read-your-writes held: %s" % dep.auditor.read_your_writes_held)


if __name__ == "__main__":
    main()
