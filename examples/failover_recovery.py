#!/usr/bin/env python3
"""Failure recovery demo: the paper's §4.2.5 scenarios, side by side.

Kills the primary CPF mid-procedure under three designs and shows what
each does:

* Neutrino     — CTA replays the logged messages at a synced backup and
                 promotes it; the failure is masked from the UE (S1/S2).
* Neutrino-S3  — the backup's copy is wiped first, so no synced backup
                 exists; the UE is forced to Re-Attach (S3) but never
                 operates on stale state.
* existing EPC — no replicas at all; every failure costs a Re-Attach.

The kill is injected through :mod:`repro.faults`, so each case's fault
schedule is a serializable :class:`FaultPlan` — the same machinery the
chaos CLI (``python -m repro chaos replay``) and the property tests use.

Run:  python examples/failover_recovery.py
"""

from repro.core import ControlPlaneConfig, Deployment
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim import Simulator


def run_case(label, config, sabotage_backups=False):
    sim = Simulator()
    dep = Deployment.build_grid(sim, config, cpfs_per_region=2, regions=2)
    ue = dep.new_ue("ue-victim", "bs-20-0")

    # Attach and let the checkpoint ACKs land.
    proc = sim.process(ue.execute("attach"))
    sim.run(until=0.5)
    assert proc.ok

    if sabotage_backups:
        for backup in dep.replicas_of(ue.ue_id):
            dep.cpfs[backup].store.drop(ue.ue_id)

    # Busy out the primary so the next request queues, then kill it via
    # a timed FaultPlan event (guard off: this kill is the experiment).
    primary = dep.primary_of(ue.ue_id)
    dep.cpfs[primary].server.submit(0.0006)
    plan = FaultPlan(seed=1, guard_last_alive=False)
    plan.events.append(FaultEvent(op="fail_cpf", target=primary, at=sim.now + 0.0003))
    injector = FaultInjector(dep, plan).install()
    handle = sim.process(ue.execute("service_request"))
    sim.run(until=2.0)
    outcome = handle.value
    assert injector.ops_applied == 1  # the kill fired

    print("%-14s primary %-10s failed mid-procedure:" % (label, primary))
    print(
        "    pct=%7.3f ms   masked=%-5s re-attached=%-5s replayed=%d messages"
        % (
            outcome.pct * 1e3,
            not outcome.reattached,
            outcome.reattached,
            dep.auditor.messages_replayed,
        )
    )
    print(
        "    new primary=%s   read-your-writes held=%s"
        % (dep.primary_of(ue.ue_id), dep.auditor.read_your_writes_held)
    )
    print()
    return outcome


def main() -> None:
    print("=== CPF failure mid-procedure: recovery per design ===\n")
    neutrino = run_case("neutrino", ControlPlaneConfig.neutrino())
    scenario3 = run_case(
        "neutrino (S3)", ControlPlaneConfig.neutrino(), sabotage_backups=True
    )
    epc = run_case("existing EPC", ControlPlaneConfig.existing_epc())

    print("summary (PCT under failure):")
    print("  neutrino replay : %7.3f ms  (failure masked)" % (neutrino.pct * 1e3))
    print("  neutrino S3     : %7.3f ms  (re-attach, consistent)" % (scenario3.pct * 1e3))
    print("  existing EPC    : %7.3f ms  (re-attach, always)" % (epc.pct * 1e3))
    print(
        "  improvement     : %.1fx (paper: up to 5.6x under load)"
        % (epc.pct / neutrino.pct)
    )

    # Message-level chaos: the same subsystem drives seeded drop/reorder
    # faults, and the whole schedule replays bit-for-bit.
    from repro.faults import replay

    chaos = FaultPlan(seed=42, note="lossy cta_cpf hop")
    chaos.perturb("cta_cpf", drop_p=0.2, reorder_p=0.2)
    for _ in range(5):
        chaos.step("proc", proc="service_request")
        chaos.step("wait", dt=0.002)
    report = replay(chaos, runs=2)
    print("\nchaos (20%% drop on cta_cpf): %s" % report.results[0].brief())
    print("bit-for-bit replay: %s" % report.deterministic)


if __name__ == "__main__":
    main()
