#!/usr/bin/env python3
"""Self-driving car on the cellular edge (paper §6.6, Figs. 12-13).

A car streams 1 kHz sensor data to an edge application with a ~100 ms
decision budget while driving across base stations (handover per region
crossing) under background control-plane load.  Counts the sensor
packets that miss their deadline because the data path stalled during
handovers, per control-plane design.

Run:  python examples/self_driving_edge.py
"""

from repro.apps import run_self_driving, self_driving_spec
from repro.core import ControlPlaneConfig


def main() -> None:
    spec_kwargs = dict(drive_duration_s=3.0, radio_interruption_s=0.4)
    users_axis = (50e3, 200e3, 500e3)

    print("=== self-driving car: missed 100 ms deadlines per drive ===")
    print("(1 kHz sensor stream, 2 handovers, background users loading the core)\n")
    print("%-14s %12s %12s %12s" % ("scheme", *["%dK users" % (u / 1e3) for u in users_axis]))

    rows = {}
    for config in (ControlPlaneConfig.existing_epc(), ControlPlaneConfig.neutrino()):
        missed = []
        for users in users_axis:
            result = run_self_driving(
                config, users, spec=self_driving_spec(handovers=2, **spec_kwargs)
            )
            missed.append(result.missed)
        rows[config.name] = missed
        print("%-14s %12d %12d %12d" % (config.name, *missed))

    print()
    for users, epc, neutrino in zip(users_axis, rows["existing_epc"], rows["neutrino"]):
        ratio = epc / neutrino if neutrino else float("inf")
        print(
            "at %3.0fK users: EPC misses %.1fx more deadlines (paper: up to 2.8x)"
            % (users / 1e3, ratio)
        )
    print(
        "\nThe gap opens when background load pushes the EPC's handover PCT\n"
        "past the decision budget; Neutrino's Fast Handover keeps the stall\n"
        "near the radio-layer floor regardless of load."
    )


if __name__ == "__main__":
    main()
