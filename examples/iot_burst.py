#!/usr/bin/env python3
"""Bursty IoT control traffic: Neutrino vs existing EPC (paper Fig. 9).

Thousands of IoT devices wake on a shared trigger and attach within a
20 ms window; queues build immediately at the CPFs and drain at the
service rate, so the serializer on the critical path decides how long
the burst takes to clear.

Run:  python examples/iot_burst.py [n_devices]
"""

import sys

from repro.core import ControlPlaneConfig, Deployment
from repro.sim import RngRegistry, Simulator
from repro.traffic import WorkloadDriver, bursty_arrivals


def run_burst(config, n_devices: int):
    sim = Simulator()
    rng = RngRegistry(11)
    dep = Deployment.build_grid(sim, config, rng=rng)
    driver = WorkloadDriver(dep)
    arrivals = bursty_arrivals(n_devices, 0.02, rng.stream("burst"))
    driver.schedule_attaches(list(arrivals))
    sim.run(until=60.0)
    tally = dep.pct["attach"]
    return {
        "scheme": config.name,
        "completed": driver.completed(),
        "p50_ms": tally.percentile(50) * 1e3,
        "p95_ms": tally.percentile(95) * 1e3,
        "max_ms": tally.max * 1e3,
        "drain_s": max(
            o.started_at + o.pct for o in dep.outcomes if o.pct is not None
        ),
    }


def main() -> None:
    n_devices = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    print("=== %d IoT devices attach within 20 ms ===\n" % n_devices)

    results = [
        run_burst(ControlPlaneConfig.existing_epc(), n_devices),
        run_burst(ControlPlaneConfig.neutrino(), n_devices),
    ]
    print("%-14s %10s %10s %10s %10s %10s" % (
        "scheme", "completed", "p50 ms", "p95 ms", "max ms", "drain s"))
    for r in results:
        print("%-14s %10d %10.1f %10.1f %10.1f %10.3f" % (
            r["scheme"], r["completed"], r["p50_ms"], r["p95_ms"],
            r["max_ms"], r["drain_s"]))

    epc, neutrino = results
    print(
        "\nNeutrino clears the burst %.1fx faster in median PCT "
        "(paper: up to 2x)." % (epc["p50_ms"] / neutrino["p50_ms"])
    )


if __name__ == "__main__":
    main()
