"""Cellular control messages: IEs, S1AP/NAS/S11 schemas, procedures.

* :mod:`repro.messages.ies` — shared information elements.
* :mod:`repro.messages.s1ap` — S1AP-style messages + sample builders.
* :mod:`repro.messages.nas` — NAS-style messages carried in NAS PDUs.
* :mod:`repro.messages.s11` — CPF->UPF session management messages.
* :mod:`repro.messages.procedures` — control procedures as message flows.
* :data:`CATALOG` — the message catalog with per-codec wire caching.
"""

from .procedures import PROCEDURES, ProcedureSpec, Step, get_procedure, procedure_names
from .registry import CATALOG, MessageCatalog

__all__ = [
    "CATALOG",
    "MessageCatalog",
    "PROCEDURES",
    "ProcedureSpec",
    "Step",
    "get_procedure",
    "procedure_names",
]
