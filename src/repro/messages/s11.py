"""S11-style (GTP-C-like) session management messages, CPF -> UPF.

The paper interfaces its CPF with Intel's 5G UPF over the S11 interface
(§6.6): create session, modify bearer, delete session.  These messages
ride the CPF-UPF hop in the simulator and never cross the CTA, so they
are not logged; they do consume CPF and UPF service time.
"""

from __future__ import annotations

from typing import Any, Dict

from ..codec.schema import (
    ArrayType,
    BytesType,
    EnumType,
    Field,
    IntType,
    TableType,
)
from . import ies

__all__ = [
    "CREATE_SESSION_REQUEST",
    "CREATE_SESSION_RESPONSE",
    "MODIFY_BEARER_REQUEST",
    "MODIFY_BEARER_RESPONSE",
    "RELEASE_ACCESS_BEARERS_REQUEST",
    "RELEASE_ACCESS_BEARERS_RESPONSE",
    "DELETE_SESSION_REQUEST",
    "DELETE_SESSION_RESPONSE",
    "sample_value",
]

_BEARER_CONTEXT = TableType(
    "BearerContext",
    [
        Field("eps_bearer_id", ies.ERAB_ID),
        Field("s1u_enb_teid", ies.TEID, optional=True),
        Field("s1u_sgw_teid", ies.TEID, optional=True),
        Field("qci", IntType(8, lo=0, hi=255)),
    ],
)

CREATE_SESSION_REQUEST = TableType(
    "CreateSessionRequest",
    [
        Field("imsi", BytesType(max_len=8)),
        Field("msisdn", BytesType(max_len=8), optional=True),
        Field("serving_network", ies.PLMN_IDENTITY),
        Field("rat_type", EnumType("RATType", ["eutran", "nr", "wlan"])),
        Field("sender_teid", ies.TEID),
        Field("apn", BytesType(max_len=32)),
        Field("pdn_type", EnumType("PDNType", ["ipv4", "ipv6", "ipv4v6"])),
        Field("bearer_contexts", ArrayType(_BEARER_CONTEXT, max_len=8)),
    ],
)

CREATE_SESSION_RESPONSE = TableType(
    "CreateSessionResponse",
    [
        Field("cause", IntType(8)),
        Field("sender_teid", ies.TEID),
        Field("paa", BytesType(max_len=16)),
        Field("bearer_contexts", ArrayType(_BEARER_CONTEXT, max_len=8)),
    ],
)

MODIFY_BEARER_REQUEST = TableType(
    "ModifyBearerRequest",
    [
        Field("sender_teid", ies.TEID),
        Field("bearer_contexts", ArrayType(_BEARER_CONTEXT, max_len=8)),
        Field("indication_flags", BytesType(max_len=4), optional=True),
    ],
)

MODIFY_BEARER_RESPONSE = TableType(
    "ModifyBearerResponse",
    [
        Field("cause", IntType(8)),
        Field("bearer_contexts", ArrayType(_BEARER_CONTEXT, max_len=8)),
    ],
)

RELEASE_ACCESS_BEARERS_REQUEST = TableType(
    "ReleaseAccessBearersRequest",
    [
        Field("sender_teid", ies.TEID),
        Field("node_type", EnumType("NodeType", ["mme", "sgsn"]), optional=True),
    ],
)

RELEASE_ACCESS_BEARERS_RESPONSE = TableType(
    "ReleaseAccessBearersResponse",
    [
        Field("cause", IntType(8)),
    ],
)

DELETE_SESSION_REQUEST = TableType(
    "DeleteSessionRequest",
    [
        Field("sender_teid", ies.TEID),
        Field("linked_eps_bearer_id", ies.ERAB_ID),
    ],
)

DELETE_SESSION_RESPONSE = TableType(
    "DeleteSessionResponse",
    [
        Field("cause", IntType(8)),
    ],
)


def _bearer(teid: bytes = b"\x00\x00\x10\x01") -> Dict[str, Any]:
    return {"eps_bearer_id": 5, "s1u_sgw_teid": teid, "qci": 9}


_SAMPLES = {
    "CreateSessionRequest": lambda ue: {
        "imsi": b"\x21\x43\x65\x87\x09\x21\x43\xf5",
        "serving_network": b"\x21\xf3\x54",
        "rat_type": "eutran",
        "sender_teid": (ue & 0xFFFFFFFF).to_bytes(4, "big"),
        "apn": b"internet.mnc345.mcc123.gprs",
        "pdn_type": "ipv4",
        "bearer_contexts": [_bearer()],
    },
    "CreateSessionResponse": lambda ue: {
        "cause": 16,  # accepted
        "sender_teid": (ue & 0xFFFFFFFF).to_bytes(4, "big"),
        "paa": b"\x0a\x00\x00\x02",
        "bearer_contexts": [_bearer(b"\x00\x00\x20\x01")],
    },
    "ModifyBearerRequest": lambda ue: {
        "sender_teid": (ue & 0xFFFFFFFF).to_bytes(4, "big"),
        "bearer_contexts": [_bearer(b"\x00\x00\x30\x01")],
    },
    "ModifyBearerResponse": lambda ue: {
        "cause": 16,
        "bearer_contexts": [_bearer(b"\x00\x00\x30\x01")],
    },
    "ReleaseAccessBearersRequest": lambda ue: {
        "sender_teid": (ue & 0xFFFFFFFF).to_bytes(4, "big"),
    },
    "ReleaseAccessBearersResponse": lambda ue: {"cause": 16},
    "DeleteSessionRequest": lambda ue: {
        "sender_teid": (ue & 0xFFFFFFFF).to_bytes(4, "big"),
        "linked_eps_bearer_id": 5,
    },
    "DeleteSessionResponse": lambda ue: {"cause": 16},
}


def sample_value(schema: TableType, ue_id: int = 0x0100_0001) -> Dict[str, Any]:
    """A realistic sample value for one of the S11 schemas above."""
    try:
        factory = _SAMPLES[schema.name]
    except KeyError:
        raise KeyError("no sample builder for S11 message %r" % schema.name)
    return factory(ue_id)
