"""Control procedure definitions: ordered message flows.

A *control procedure* (paper §4.2: "composed of several control
messages") is described here as an ordered list of :class:`Step`\\ s that
the simulated UE, BS, CTA and CPF interpret.  The CPF implementation in
:mod:`repro.core.cpf` supports the same four procedures the paper's CPF
does (§5) — initial attach, handover with CPF change, fast handover,
service request — plus the Re-Attach used for failure recovery and the
supporting intra-region handover, TAU, and detach flows.

Step kinds (actor perspective):

* ``ue_exchange`` — UE/BS sends an uplink S1AP message (logged at the
  CTA, processed by the primary CPF) and waits for the downlink reply.
* ``ue_message`` — uplink message with no downlink reply (still CPF work).
* ``cpf_bs`` — CPF-initiated exchange with the BS (e.g. context setup).
* ``cpf_upf`` — CPF programs the user plane (S11-like; §6.6).
* ``cpf_cpf`` — source-CPF to target-CPF exchange (state migration; this
  is the step proactive geo-replication removes for Fast Handover).

``ends_pct`` marks the step whose completion stops the procedure
completion time clock at the UE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Step", "ProcedureSpec", "PROCEDURES", "get_procedure", "procedure_names"]


@dataclass(frozen=True)
class Step:
    kind: str
    request: str
    response: Optional[str] = None
    request_nas: Optional[str] = None
    response_nas: Optional[str] = None
    ends_pct: bool = False
    #: for CPF-changing procedures: this step executes at the target CPF
    #: (through the target region's BS/CTA) rather than the source.
    at_target: bool = False

    _KINDS = ("ue_exchange", "ue_message", "cpf_bs", "cpf_upf", "cpf_cpf")

    def __post_init__(self):
        if self.kind not in self._KINDS:
            raise ValueError("unknown step kind %r" % self.kind)
        if self.kind == "ue_message" and self.response is not None:
            raise ValueError("ue_message steps have no response")


@dataclass(frozen=True)
class ProcedureSpec:
    """A named control procedure and its message flow."""

    name: str
    steps: Tuple[Step, ...]
    #: True when this procedure migrates the UE to a different CPF.
    changes_cpf: bool = False

    def __post_init__(self):
        if not self.steps:
            raise ValueError("procedure %r has no steps" % self.name)
        if sum(1 for s in self.steps if s.ends_pct) != 1:
            raise ValueError("procedure %r must mark exactly one ends_pct step" % self.name)

    @property
    def uplink_messages(self) -> List[str]:
        """S1AP messages that traverse the CTA and are logged there."""
        return [
            s.request for s in self.steps if s.kind in ("ue_exchange", "ue_message")
        ]

    @property
    def cpf_processed_messages(self) -> List[str]:
        """Every message the primary CPF decodes and handles."""
        out: List[str] = []
        for s in self.steps:
            if s.kind in ("ue_exchange", "ue_message"):
                out.append(s.request)
            elif s.kind == "cpf_bs" and s.response:
                out.append(s.response)
            elif s.kind == "cpf_cpf" and s.response:
                out.append(s.response)
        return out


_ATTACH_STEPS = (
    Step(
        "ue_exchange",
        "InitialUEMessage",
        "DownlinkNASTransport",
        request_nas="AttachRequest",
        response_nas="AuthenticationRequest",
    ),
    Step(
        "ue_exchange",
        "UplinkNASTransport",
        "DownlinkNASTransport",
        request_nas="AuthenticationResponse",
        response_nas="SecurityModeCommand",
    ),
    Step(
        "ue_message",
        "UplinkNASTransport",
        request_nas="SecurityModeComplete",
    ),
    Step("cpf_upf", "CreateSessionRequest", "CreateSessionResponse"),
    Step(
        "cpf_bs",
        "InitialContextSetup",
        "InitialContextSetupResponse",
        request_nas="AttachAccept",
        ends_pct=True,
    ),
    Step(
        "ue_message",
        "UplinkNASTransport",
        request_nas="AttachComplete",
    ),
)

_SERVICE_REQUEST_STEPS = (
    Step(
        "ue_message",
        "InitialUEMessage",
        request_nas="NASServiceRequest",
    ),
    Step("cpf_upf", "ModifyBearerRequest", "ModifyBearerResponse"),
    Step(
        "cpf_bs",
        "InitialContextSetup",
        "InitialContextSetupResponse",
        ends_pct=True,
    ),
)

# S1-style handover between CPFs: the expensive middle leg is the
# state migration between source and target CPF (cpf_cpf), which the
# proactive geo-replication of §4.3 eliminates.
_HANDOVER_STEPS = (
    Step("ue_message", "HandoverRequired"),
    Step("cpf_cpf", "HandoverRequest", "HandoverRequestAcknowledge"),
    Step(
        "cpf_bs",
        "HandoverCommand",
        None,
    ),
    Step(
        "ue_message",
        "HandoverNotify",
        at_target=True,
    ),
    Step(
        "cpf_upf",
        "ModifyBearerRequest",
        "ModifyBearerResponse",
        ends_pct=True,
        at_target=True,
    ),
)

# Fast Handover (§4.3): no inter-CPF state migration — the target-region
# replica already holds the UE state via the level-2 ring.
_FAST_HANDOVER_STEPS = (
    Step("ue_message", "HandoverRequired"),
    Step("cpf_bs", "HandoverCommand", None),
    Step("ue_message", "HandoverNotify", at_target=True),
    Step(
        "cpf_upf",
        "ModifyBearerRequest",
        "ModifyBearerResponse",
        ends_pct=True,
        at_target=True,
    ),
)

# Intra-region BS change: same CPF, path switch only.
_INTRA_HANDOVER_STEPS = (
    Step("ue_message", "PathSwitchRequest"),
    Step("cpf_upf", "ModifyBearerRequest", "ModifyBearerResponse"),
    Step("cpf_bs", "PathSwitchRequestAcknowledge", None, ends_pct=True),
)

_TAU_STEPS = (
    Step(
        "ue_exchange",
        "UplinkNASTransport",
        "DownlinkNASTransport",
        request_nas="TrackingAreaUpdateRequest",
        response_nas="TrackingAreaUpdateAccept",
        ends_pct=True,
    ),
)

# S1 Release (inactivity): the CPF releases the radio-side context and
# access bearers; the UE enters ECM-IDLE.  Downlink data then requires
# paging + a service request (§4.2.1's paging consistency argument).
_S1_RELEASE_STEPS = (
    Step(
        "cpf_bs",
        "UEContextReleaseCommand",
        "UEContextReleaseComplete",
        ends_pct=True,
    ),
    Step("cpf_upf", "ReleaseAccessBearersRequest", "ReleaseAccessBearersResponse"),
)

_DETACH_STEPS = (
    Step(
        "ue_message",
        "UplinkNASTransport",
        request_nas="DetachRequest",
    ),
    Step("cpf_upf", "DeleteSessionRequest", "DeleteSessionResponse"),
    Step("cpf_bs", "UEContextReleaseCommand", "UEContextReleaseComplete", ends_pct=True),
)

PROCEDURES: Dict[str, ProcedureSpec] = {
    "attach": ProcedureSpec("attach", _ATTACH_STEPS),
    "service_request": ProcedureSpec("service_request", _SERVICE_REQUEST_STEPS),
    "handover": ProcedureSpec("handover", _HANDOVER_STEPS, changes_cpf=True),
    "fast_handover": ProcedureSpec("fast_handover", _FAST_HANDOVER_STEPS, changes_cpf=True),
    "intra_handover": ProcedureSpec("intra_handover", _INTRA_HANDOVER_STEPS),
    "tau": ProcedureSpec("tau", _TAU_STEPS),
    "s1_release": ProcedureSpec("s1_release", _S1_RELEASE_STEPS),
    "detach": ProcedureSpec("detach", _DETACH_STEPS),
}

#: Re-Attach (recovery path, §4.2.5 scenarios 3/4): same flow as attach;
#: kept as a distinct name so recovery statistics are separable.
PROCEDURES["re_attach"] = ProcedureSpec("re_attach", _ATTACH_STEPS)


def get_procedure(name: str) -> ProcedureSpec:
    try:
        return PROCEDURES[name]
    except KeyError:
        raise KeyError(
            "unknown procedure %r (known: %s)" % (name, ", ".join(sorted(PROCEDURES)))
        )


def procedure_names() -> List[str]:
    return sorted(PROCEDURES)
