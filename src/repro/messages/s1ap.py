"""S1AP-style control messages (TS 36.413 shapes) with sample builders.

Every message is a schema (:class:`TableType`) plus a ``sample_*``
factory producing a realistic value, used both by the simulated network
functions (the bytes on the simulated wire are real encodings of these
values) and by the Fig. 18-20 benchmarks.  All messages carry at least
8 information elements, matching the paper's observation that every real
control message it tested did.
"""

from __future__ import annotations

from typing import Any, Dict

from ..codec.schema import (
    ArrayType,
    BitStringType,
    BytesType,
    EnumType,
    Field,
    IntType,
    TableType,
    UnionType,
)
from . import ies

__all__ = [
    "INITIAL_UE_MESSAGE",
    "DOWNLINK_NAS_TRANSPORT",
    "UPLINK_NAS_TRANSPORT",
    "INITIAL_CONTEXT_SETUP_REQUEST",
    "INITIAL_CONTEXT_SETUP_RESPONSE",
    "ERAB_SETUP_REQUEST",
    "ERAB_SETUP_RESPONSE",
    "ERAB_MODIFY_REQUEST",
    "ERAB_MODIFY_RESPONSE",
    "UE_CONTEXT_RELEASE_COMMAND",
    "UE_CONTEXT_RELEASE_COMPLETE",
    "HANDOVER_REQUIRED",
    "HANDOVER_REQUEST",
    "HANDOVER_REQUEST_ACK",
    "HANDOVER_COMMAND",
    "HANDOVER_NOTIFY",
    "PATH_SWITCH_REQUEST",
    "PATH_SWITCH_REQUEST_ACK",
    "PAGING",
    "sample_value",
]

_PLMN = b"\x21\xf3\x54"
_CELL = (0x0ABCDE1, 28)
_ADDR = (0x0A000001, 32)
_KEY = (int.from_bytes(bytes(range(32)), "big"), 256)


INITIAL_UE_MESSAGE = TableType(
    "InitialUEMessage",
    [
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("nas_pdu", ies.NAS_PDU),
        Field("tai", ies.TAI),
        Field("eutran_cgi", ies.EUTRAN_CGI),
        Field("rrc_establishment_cause", ies.RRC_ESTABLISHMENT_CAUSE),
        Field(
            "ue_identity",
            UnionType("UEIdentity", [("s_tmsi", ies.M_TMSI), ("imsi", BytesType(max_len=8))]),
            optional=True,
        ),
        Field("gummei_id", BytesType(max_len=6), optional=True),
        Field("relay_node_indicator", EnumType("RelayNode", ["true", "false"]), optional=True),
    ],
)

DOWNLINK_NAS_TRANSPORT = TableType(
    "DownlinkNASTransport",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("nas_pdu", ies.NAS_PDU),
        Field("handover_restriction", BytesType(max_len=8), optional=True),
        Field("subscriber_profile_id", IntType(8, lo=1, hi=255), optional=True),
    ],
)

UPLINK_NAS_TRANSPORT = TableType(
    "UplinkNASTransport",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("nas_pdu", ies.NAS_PDU),
        Field("eutran_cgi", ies.EUTRAN_CGI),
        Field("tai", ies.TAI),
        Field("gw_transport_layer_address", ies.TRANSPORT_LAYER_ADDRESS, optional=True),
    ],
)

INITIAL_CONTEXT_SETUP_REQUEST = TableType(
    "InitialContextSetup",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("ue_aggregate_maximum_bitrate", ies.UE_AGGREGATE_MAX_BITRATE),
        Field("erab_to_be_setup_list", ArrayType(ies.ERAB_TO_BE_SETUP_ITEM, max_len=16)),
        Field("ue_security_capabilities", ies.UE_SECURITY_CAPABILITIES),
        Field("security_key", ies.SECURITY_KEY),
        Field("trace_activation", BytesType(max_len=12), optional=True),
        Field("ue_radio_capability", BytesType(), optional=True),
        Field("csg_membership_status", EnumType("CSG", ["member", "not_member"]), optional=True),
    ],
)

INITIAL_CONTEXT_SETUP_RESPONSE = TableType(
    "InitialContextSetupResponse",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("erab_setup_list", ArrayType(ies.ERAB_SETUP_ITEM, max_len=16)),
        Field("erab_failed_list", ArrayType(ies.ERAB_FAILED_ITEM, max_len=16), optional=True),
        Field("criticality_diagnostics", BytesType(max_len=16), optional=True),
    ],
)

ERAB_SETUP_REQUEST = TableType(
    "eRABSetupRequest",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("ue_aggregate_maximum_bitrate", ies.UE_AGGREGATE_MAX_BITRATE, optional=True),
        Field("erab_to_be_setup_list", ArrayType(ies.ERAB_TO_BE_SETUP_ITEM, max_len=16)),
    ],
)

ERAB_SETUP_RESPONSE = TableType(
    "eRABSetupResponse",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("erab_setup_list", ArrayType(ies.ERAB_SETUP_ITEM, max_len=16)),
        Field("erab_failed_list", ArrayType(ies.ERAB_FAILED_ITEM, max_len=16), optional=True),
    ],
)

ERAB_MODIFY_REQUEST = TableType(
    "eRABModifyRequest",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("ue_aggregate_maximum_bitrate", ies.UE_AGGREGATE_MAX_BITRATE, optional=True),
        Field("erab_to_be_modified_list", ArrayType(ies.ERAB_TO_BE_MODIFIED_ITEM, max_len=16)),
    ],
)

ERAB_MODIFY_RESPONSE = TableType(
    "eRABModifyResponse",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("erab_modify_list", ArrayType(ies.ERAB_MODIFY_ITEM, max_len=16)),
    ],
)

UE_CONTEXT_RELEASE_COMMAND = TableType(
    "UEContextReleaseCommand",
    [
        Field("ue_s1ap_ids", ies.UE_S1AP_IDS),
        Field("cause", ies.CAUSE),
    ],
)

UE_CONTEXT_RELEASE_COMPLETE = TableType(
    "UEContextReleaseComplete",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("criticality_diagnostics", BytesType(max_len=16), optional=True),
    ],
)

HANDOVER_REQUIRED = TableType(
    "HandoverRequired",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("handover_type", ies.HANDOVER_TYPE),
        Field("cause", ies.CAUSE),
        Field("target_id", ies.TARGET_ID),
        Field("source_to_target_container", ies.SOURCE_TO_TARGET_CONTAINER),
        Field("direct_forwarding_path", EnumType("DFP", ["available", "unavailable"]), optional=True),
    ],
)

HANDOVER_REQUEST = TableType(
    "HandoverRequest",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("handover_type", ies.HANDOVER_TYPE),
        Field("cause", ies.CAUSE),
        Field("ue_aggregate_maximum_bitrate", ies.UE_AGGREGATE_MAX_BITRATE),
        Field("erab_to_be_setup_list", ArrayType(ies.ERAB_TO_BE_SETUP_ITEM, max_len=16)),
        Field("source_to_target_container", ies.SOURCE_TO_TARGET_CONTAINER),
        Field("ue_security_capabilities", ies.UE_SECURITY_CAPABILITIES),
        Field("security_context", ies.SECURITY_KEY),
    ],
)

HANDOVER_REQUEST_ACK = TableType(
    "HandoverRequestAcknowledge",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("erab_admitted_list", ArrayType(ies.ERAB_SETUP_ITEM, max_len=16)),
        Field("erab_failed_list", ArrayType(ies.ERAB_FAILED_ITEM, max_len=16), optional=True),
        Field("target_to_source_container", BytesType()),
    ],
)

HANDOVER_COMMAND = TableType(
    "HandoverCommand",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("handover_type", ies.HANDOVER_TYPE),
        Field("target_to_source_container", BytesType()),
        Field("erab_to_release_list", ArrayType(ies.ERAB_ID, max_len=16), optional=True),
    ],
)

HANDOVER_NOTIFY = TableType(
    "HandoverNotify",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("eutran_cgi", ies.EUTRAN_CGI),
        Field("tai", ies.TAI),
    ],
)

PATH_SWITCH_REQUEST = TableType(
    "PathSwitchRequest",
    [
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("erab_to_be_switched_list", ArrayType(ies.ERAB_SETUP_ITEM, max_len=16)),
        Field("source_mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("eutran_cgi", ies.EUTRAN_CGI),
        Field("tai", ies.TAI),
        Field("ue_security_capabilities", ies.UE_SECURITY_CAPABILITIES),
    ],
)

PATH_SWITCH_REQUEST_ACK = TableType(
    "PathSwitchRequestAcknowledge",
    [
        Field("mme_ue_s1ap_id", ies.MME_UE_S1AP_ID),
        Field("enb_ue_s1ap_id", ies.ENB_UE_S1AP_ID),
        Field("erab_switched_list", ArrayType(ies.ERAB_MODIFY_ITEM, max_len=16), optional=True),
        Field("security_context", ies.SECURITY_KEY),
    ],
)

PAGING = TableType(
    "Paging",
    [
        Field("ue_identity_index", BitStringType(10)),
        Field("ue_paging_id", ies.EPS_MOBILE_IDENTITY),
        Field("cn_domain", EnumType("CNDomain", ["ps", "cs"])),
        Field("tai_list", ies.TAI_LIST),
        Field("paging_drx", EnumType("PagingDRX", ["v32", "v64", "v128", "v256"]), optional=True),
    ],
)


def _tai(tac: int = 0x1234) -> Dict[str, Any]:
    return {"plmn_identity": _PLMN, "tac": tac}


def _cgi() -> Dict[str, Any]:
    return {"plmn_identity": _PLMN, "cell_id": _CELL}


def _qos() -> Dict[str, Any]:
    return {
        "qci": 9,
        "priority_level": 8,
        "preemption_capability": "shall_not",
        "preemption_vulnerability": "no",
        "gbr_qos_information": {
            "erab_maximum_bitrate_dl": 100_000_000,
            "erab_maximum_bitrate_ul": 50_000_000,
            "erab_guaranteed_bitrate_dl": 1_000_000,
            "erab_guaranteed_bitrate_ul": 500_000,
        },
    }


def _erab_setup_item(erab_id: int = 5, nas: bytes = b"\x07\x42" * 12) -> Dict[str, Any]:
    return {
        "erab_id": erab_id,
        "erab_level_qos": _qos(),
        "transport_layer_address": _ADDR,
        "gtp_teid": b"\x00\x00\x10\x01",
        "nas_pdu": nas,
    }


_SAMPLES = {
    "InitialUEMessage": lambda ue, nas: {
        "enb_ue_s1ap_id": ue & 0xFFFFFF,
        "nas_pdu": nas,
        "tai": _tai(),
        "eutran_cgi": _cgi(),
        "rrc_establishment_cause": "mo_signalling",
        "ue_identity": ("s_tmsi", ue),
    },
    "DownlinkNASTransport": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": ue & 0xFFFFFF,
        "nas_pdu": nas,
        "subscriber_profile_id": 7,
    },
    "UplinkNASTransport": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": ue & 0xFFFFFF,
        "nas_pdu": nas,
        "eutran_cgi": _cgi(),
        "tai": _tai(),
    },
    "InitialContextSetup": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": ue & 0xFFFFFF,
        "ue_aggregate_maximum_bitrate": {"ue_ambr_dl": 500_000_000, "ue_ambr_ul": 100_000_000},
        "erab_to_be_setup_list": [_erab_setup_item(5, nas)],
        "ue_security_capabilities": {
            "encryption_algorithms": (0xE000, 16),
            "integrity_protection_algorithms": (0xE000, 16),
        },
        "security_key": _KEY,
    },
    "InitialContextSetupResponse": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": ue & 0xFFFFFF,
        "erab_setup_list": [
            {"erab_id": 5, "transport_layer_address": _ADDR, "gtp_teid": b"\x00\x00\x20\x01"}
        ],
        "erab_failed_list": [
            {"erab_id": 7, "cause": ("radio_network", "unspecified")}
        ],
    },
    "eRABSetupRequest": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": ue & 0xFFFFFF,
        "erab_to_be_setup_list": [_erab_setup_item(6, nas)],
    },
    "eRABSetupResponse": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": ue & 0xFFFFFF,
        "erab_setup_list": [
            {"erab_id": 6, "transport_layer_address": _ADDR, "gtp_teid": b"\x00\x00\x20\x02"}
        ],
    },
    "eRABModifyRequest": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": ue & 0xFFFFFF,
        "erab_to_be_modified_list": [
            {"erab_id": 5, "erab_level_qos": _qos(), "nas_pdu": nas}
        ],
    },
    "eRABModifyResponse": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": ue & 0xFFFFFF,
        "erab_modify_list": [{"erab_id": 5}],
    },
    "UEContextReleaseCommand": lambda ue, nas: {
        "ue_s1ap_ids": ("id_pair", {"mme_ue_s1ap_id": ue, "enb_ue_s1ap_id": ue & 0xFFFFFF}),
        "cause": ("nas", "normal_release"),
    },
    "UEContextReleaseComplete": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": ue & 0xFFFFFF,
    },
    "HandoverRequired": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": ue & 0xFFFFFF,
        "handover_type": "intralte",
        "cause": ("radio_network", "handover_triggered"),
        "target_id": ("targeteNB_ID", {"global_enb_id": (0x5432A, 20), "selected_tai": _tai(0x1235)}),
        "source_to_target_container": nas + b"\x00" * 16,
    },
    "HandoverRequest": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "handover_type": "intralte",
        "cause": ("radio_network", "handover_triggered"),
        "ue_aggregate_maximum_bitrate": {"ue_ambr_dl": 500_000_000, "ue_ambr_ul": 100_000_000},
        "erab_to_be_setup_list": [_erab_setup_item(5, nas)],
        "source_to_target_container": nas + b"\x00" * 16,
        "ue_security_capabilities": {
            "encryption_algorithms": (0xE000, 16),
            "integrity_protection_algorithms": (0xE000, 16),
        },
        "security_context": _KEY,
    },
    "HandoverRequestAcknowledge": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": (ue + 1) & 0xFFFFFF,
        "erab_admitted_list": [
            {"erab_id": 5, "transport_layer_address": _ADDR, "gtp_teid": b"\x00\x00\x30\x01"}
        ],
        "target_to_source_container": b"\x1b" * 24,
    },
    "HandoverCommand": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": ue & 0xFFFFFF,
        "handover_type": "intralte",
        "target_to_source_container": b"\x1b" * 24,
    },
    "HandoverNotify": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": (ue + 1) & 0xFFFFFF,
        "eutran_cgi": _cgi(),
        "tai": _tai(0x1235),
    },
    "PathSwitchRequest": lambda ue, nas: {
        "enb_ue_s1ap_id": (ue + 1) & 0xFFFFFF,
        "erab_to_be_switched_list": [
            {"erab_id": 5, "transport_layer_address": _ADDR, "gtp_teid": b"\x00\x00\x40\x01"}
        ],
        "source_mme_ue_s1ap_id": ue,
        "eutran_cgi": _cgi(),
        "tai": _tai(),
        "ue_security_capabilities": {
            "encryption_algorithms": (0xE000, 16),
            "integrity_protection_algorithms": (0xE000, 16),
        },
    },
    "PathSwitchRequestAcknowledge": lambda ue, nas: {
        "mme_ue_s1ap_id": ue,
        "enb_ue_s1ap_id": (ue + 1) & 0xFFFFFF,
        "security_context": _KEY,
    },
    "Paging": lambda ue, nas: {
        "ue_identity_index": (ue & 0x3FF, 10),
        "ue_paging_id": (
            "guti",
            {"plmn_identity": _PLMN, "mme_group_id": 0x8001, "mme_code": 1, "m_tmsi": ue},
        ),
        "cn_domain": "ps",
        "tai_list": [_tai(), _tai(0x1235)],
    },
}


def sample_value(schema: TableType, ue_id: int = 0x0100_0001, nas_pdu: bytes = b"\x07\x41" * 16) -> Dict[str, Any]:
    """A realistic sample value for one of the message schemas above."""
    try:
        factory = _SAMPLES[schema.name]
    except KeyError:
        raise KeyError("no sample builder for message %r" % schema.name)
    return factory(ue_id, nas_pdu)
