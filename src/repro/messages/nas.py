"""NAS-style messages (TS 24.301 shapes) carried inside S1AP NAS PDUs.

NAS messages run end-to-end between the UE and the CPF; the base station
relays them opaquely.  We define their schemas so that the simulated UE
and CPF exchange *real encoded bytes* for both layers, and so the NAS
share of per-message serialization work is represented in message sizes.
"""

from __future__ import annotations

from typing import Any, Dict

from ..codec.schema import (
    ArrayType,
    BitStringType,
    BytesType,
    EnumType,
    Field,
    IntType,
    TableType,
)
from . import ies

__all__ = [
    "ATTACH_REQUEST",
    "ATTACH_ACCEPT",
    "ATTACH_COMPLETE",
    "AUTHENTICATION_REQUEST",
    "AUTHENTICATION_RESPONSE",
    "SECURITY_MODE_COMMAND",
    "SECURITY_MODE_COMPLETE",
    "SERVICE_REQUEST",
    "TRACKING_AREA_UPDATE_REQUEST",
    "TRACKING_AREA_UPDATE_ACCEPT",
    "DETACH_REQUEST",
    "sample_value",
]

_EPS_ATTACH_TYPE = EnumType("EPSAttachType", ["eps_attach", "combined", "emergency"])
_EPS_ATTACH_RESULT = EnumType("EPSAttachResult", ["eps_only", "combined"])

ATTACH_REQUEST = TableType(
    "AttachRequest",
    [
        Field("eps_attach_type", _EPS_ATTACH_TYPE),
        Field("nas_key_set_identifier", IntType(8, lo=0, hi=7)),
        Field("eps_mobile_identity", ies.EPS_MOBILE_IDENTITY),
        Field("ue_network_capability", BytesType(max_len=13)),
        Field("esm_message_container", BytesType()),
        Field("last_visited_tai", ies.TAI, optional=True),
        Field("drx_parameter", BytesType(max_len=2), optional=True),
        Field("ms_network_capability", BytesType(max_len=10), optional=True),
        Field("old_guti_type", EnumType("GUTIType", ["native", "mapped"]), optional=True),
    ],
)

ATTACH_ACCEPT = TableType(
    "AttachAccept",
    [
        Field("eps_attach_result", _EPS_ATTACH_RESULT),
        Field("t3412_value", IntType(8)),
        Field("tai_list", ies.TAI_LIST),
        Field("esm_message_container", BytesType()),
        Field("guti", ies.GUTI, optional=True),
        Field("emm_cause", IntType(8), optional=True),
        Field("t3402_value", IntType(8), optional=True),
        Field("eps_network_feature_support", BitStringType(8), optional=True),
    ],
)

ATTACH_COMPLETE = TableType(
    "AttachComplete",
    [
        Field("esm_message_container", BytesType()),
    ],
)

AUTHENTICATION_REQUEST = TableType(
    "AuthenticationRequest",
    [
        Field("nas_key_set_identifier", IntType(8, lo=0, hi=7)),
        Field("rand", BytesType(max_len=16)),
        Field("autn", BytesType(max_len=16)),
    ],
)

AUTHENTICATION_RESPONSE = TableType(
    "AuthenticationResponse",
    [
        Field("res", BytesType(max_len=16)),
    ],
)

SECURITY_MODE_COMMAND = TableType(
    "SecurityModeCommand",
    [
        Field("selected_nas_security_algorithms", BitStringType(8)),
        Field("nas_key_set_identifier", IntType(8, lo=0, hi=7)),
        Field("replayed_ue_security_capabilities", ies.UE_SECURITY_CAPABILITIES),
        Field("imeisv_request", EnumType("IMEISVRequest", ["requested", "not_requested"]), optional=True),
        Field("replayed_nonce_ue", IntType(32), optional=True),
        Field("nonce_mme", IntType(32), optional=True),
    ],
)

SECURITY_MODE_COMPLETE = TableType(
    "SecurityModeComplete",
    [
        Field("imeisv", BytesType(max_len=9), optional=True),
    ],
)

SERVICE_REQUEST = TableType(
    "NASServiceRequest",
    [
        Field("ksi_and_sequence_number", IntType(8)),
        Field("short_mac", BytesType(max_len=2)),
        Field("m_tmsi", ies.M_TMSI),
        Field("eps_bearer_context_status", BitStringType(16), optional=True),
        Field("device_properties", EnumType("DeviceProps", ["normal", "low_priority"]), optional=True),
    ],
)

TRACKING_AREA_UPDATE_REQUEST = TableType(
    "TrackingAreaUpdateRequest",
    [
        Field("eps_update_type", EnumType("EPSUpdateType", ["ta", "combined", "periodic"])),
        Field("nas_key_set_identifier", IntType(8, lo=0, hi=7)),
        Field("old_guti", ies.GUTI),
        Field("ue_network_capability", BytesType(max_len=13), optional=True),
        Field("last_visited_tai", ies.TAI, optional=True),
        Field("eps_bearer_context_status", BitStringType(16), optional=True),
    ],
)

TRACKING_AREA_UPDATE_ACCEPT = TableType(
    "TrackingAreaUpdateAccept",
    [
        Field("eps_update_result", EnumType("EPSUpdateResult", ["ta", "combined"])),
        Field("t3412_value", IntType(8), optional=True),
        Field("guti", ies.GUTI, optional=True),
        Field("tai_list", ies.TAI_LIST, optional=True),
        Field("eps_bearer_context_status", BitStringType(16), optional=True),
    ],
)

DETACH_REQUEST = TableType(
    "DetachRequest",
    [
        Field("detach_type", EnumType("DetachType", ["eps", "imsi", "combined"])),
        Field("nas_key_set_identifier", IntType(8, lo=0, hi=7)),
        Field("eps_mobile_identity", ies.EPS_MOBILE_IDENTITY),
    ],
)

_PLMN = b"\x21\xf3\x54"


def _guti(ue: int) -> Dict[str, Any]:
    return {
        "plmn_identity": _PLMN,
        "mme_group_id": 0x8001,
        "mme_code": 1,
        "m_tmsi": ue & 0xFFFFFFFF,
    }


_SAMPLES = {
    "AttachRequest": lambda ue: {
        "eps_attach_type": "eps_attach",
        "nas_key_set_identifier": 1,
        "eps_mobile_identity": ("guti", _guti(ue)),
        "ue_network_capability": b"\xe0\xe0\x00\x08",
        "esm_message_container": b"\x02\x01\xd0\x11" * 4,
        "last_visited_tai": {"plmn_identity": _PLMN, "tac": 0x1234},
    },
    "AttachAccept": lambda ue: {
        "eps_attach_result": "eps_only",
        "t3412_value": 54,
        "tai_list": [
            {"plmn_identity": _PLMN, "tac": 0x1234},
            {"plmn_identity": _PLMN, "tac": 0x1235},
        ],
        "esm_message_container": b"\x02\x01\xc1\x05" * 6,
        "guti": _guti(ue),
        "eps_network_feature_support": (0x01, 8),
    },
    "AttachComplete": lambda ue: {"esm_message_container": b"\x02\x01\xc2"},
    "AuthenticationRequest": lambda ue: {
        "nas_key_set_identifier": 1,
        "rand": bytes(range(16)),
        "autn": bytes(range(16, 32)),
    },
    "AuthenticationResponse": lambda ue: {"res": bytes(range(8))},
    "SecurityModeCommand": lambda ue: {
        "selected_nas_security_algorithms": (0x11, 8),
        "nas_key_set_identifier": 1,
        "replayed_ue_security_capabilities": {
            "encryption_algorithms": (0xE000, 16),
            "integrity_protection_algorithms": (0xE000, 16),
        },
        "imeisv_request": "requested",
    },
    "SecurityModeComplete": lambda ue: {"imeisv": b"\x53\x08\x04\x02\x07\x74\x10\x95\xf1"},
    "NASServiceRequest": lambda ue: {
        "ksi_and_sequence_number": 0x21,
        "short_mac": b"\xab\xcd",
        "m_tmsi": ue & 0xFFFFFFFF,
        "eps_bearer_context_status": (0x2000, 16),
    },
    "TrackingAreaUpdateRequest": lambda ue: {
        "eps_update_type": "ta",
        "nas_key_set_identifier": 1,
        "old_guti": _guti(ue),
        "last_visited_tai": {"plmn_identity": _PLMN, "tac": 0x1234},
    },
    "TrackingAreaUpdateAccept": lambda ue: {
        "eps_update_result": "ta",
        "t3412_value": 54,
        "guti": _guti(ue),
        "tai_list": [{"plmn_identity": _PLMN, "tac": 0x1235}],
    },
    "DetachRequest": lambda ue: {
        "detach_type": "eps",
        "nas_key_set_identifier": 1,
        "eps_mobile_identity": ("guti", _guti(ue)),
    },
}


def sample_value(schema: TableType, ue_id: int = 0x0100_0001) -> Dict[str, Any]:
    """A realistic sample value for one of the NAS schemas above."""
    try:
        factory = _SAMPLES[schema.name]
    except KeyError:
        raise KeyError("no sample builder for NAS message %r" % schema.name)
    return factory(ue_id)
