"""Message catalog: every control message, its schema, sample, and
per-codec cached wire properties.

The simulator prices each simulated message from real encodings: the
catalog encodes the sample value of every message with every codec once
and caches ``(encoded_size, element_count)``.  That makes "FlatBuffers
messages are bigger but cheaper to process" an emergent property of the
actual codec implementations rather than a hard-coded table.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..codec.base import UnsupportedSchema, get_codec
from ..codec.schema import TableType, count_elements
from . import nas, s1ap, s11

__all__ = ["MessageCatalog", "CATALOG"]


def _collect() -> Dict[str, Tuple[TableType, Any]]:
    """All message schemas with their sample values, keyed by name."""
    out: Dict[str, Tuple[TableType, Any]] = {}
    for module, sampler in ((s1ap, s1ap.sample_value), (s11, s11.sample_value)):
        for attr in module.__all__:
            schema = getattr(module, attr)
            if isinstance(schema, TableType):
                out[schema.name] = (schema, sampler(schema))
    for attr in nas.__all__:
        schema = getattr(nas, attr)
        if isinstance(schema, TableType):
            out[schema.name] = (schema, nas.sample_value(schema))
    return out


class MessageCatalog:
    """Schema + sample lookup with per-codec wire-size caching."""

    def __init__(self):
        self._messages = _collect()
        self._wire_cache: Dict[Tuple[str, str], int] = {}
        self._element_cache: Dict[str, int] = {}

    def names(self) -> List[str]:
        return sorted(self._messages)

    def schema(self, name: str) -> TableType:
        return self._entry(name)[0]

    def sample(self, name: str) -> Any:
        return self._entry(name)[1]

    def _entry(self, name: str) -> Tuple[TableType, Any]:
        try:
            return self._messages[name]
        except KeyError:
            raise KeyError("unknown control message %r" % name)

    def element_count(self, name: str) -> int:
        """Number of leaf IEs in the sample value (Fig. 18 x-axis)."""
        cached = self._element_cache.get(name)
        if cached is None:
            schema, sample = self._entry(name)
            cached = count_elements(sample, schema)
            self._element_cache[name] = cached
        return cached

    def wire_size(self, name: str, codec_name: str) -> int:
        """Encoded size of the sample value under ``codec_name`` (bytes)."""
        key = (name, codec_name)
        cached = self._wire_cache.get(key)
        if cached is None:
            schema, sample = self._entry(name)
            codec = get_codec(codec_name)
            cached = len(codec.encode(schema, sample))
            self._wire_cache[key] = cached
        return cached

    def composed_wire_size(
        self, s1ap_name: str, nas_name: Optional[str], codec_name: str
    ) -> int:
        """S1AP size with the *real* encoded NAS message as its payload.

        NAS messages ride inside the S1AP ``nas_pdu`` octet string; the
        bytes on the wire therefore depend on both layers' encodings.
        Falls back to :meth:`wire_size` when the step carries no NAS
        message or the S1AP schema has no ``nas_pdu`` field.
        """
        if nas_name is None:
            return self.wire_size(s1ap_name, codec_name)
        key = (s1ap_name, nas_name, codec_name)
        cached = self._wire_cache.get(key)
        if cached is not None:
            return cached
        schema, sample = self._entry(s1ap_name)
        if "nas_pdu" not in schema.field_map:
            size = self.wire_size(s1ap_name, codec_name)
        else:
            nas_bytes = self.encode(nas_name, codec_name)
            composed = dict(sample)
            composed["nas_pdu"] = nas_bytes
            size = len(get_codec(codec_name).encode(schema, composed))
        self._wire_cache[key] = size
        return size

    def encode(self, name: str, codec_name: str, value: Any = None) -> bytes:
        """Real encoding (sample value unless one is given)."""
        schema, sample = self._entry(name)
        return get_codec(codec_name).encode(schema, value if value is not None else sample)

    def decode(self, name: str, codec_name: str, data: bytes) -> Any:
        return get_codec(codec_name).decode(self.schema(name), data)

    def supported_by(self, codec_name: str) -> List[str]:
        """Messages this codec can express (LCM rejects most of them)."""
        codec = get_codec(codec_name)
        names = []
        for name, (schema, _sample) in sorted(self._messages.items()):
            try:
                codec.check_schema(schema)
                names.append(name)
            except UnsupportedSchema:
                continue
        return names


#: Shared singleton; the catalog is immutable after construction.
CATALOG = MessageCatalog()
