"""Information elements (IEs) shared across S1AP/NAS-style messages.

These mirror the structures of 3GPP TS 36.413 (S1AP) and TS 24.301 (NAS)
closely enough to exercise everything the paper's serialization analysis
cares about: range-constrained unsigned integers, nested sequences, BIT
STRINGs, OCTET STRINGs, and — pervasively — CHOICEs (unions), often
wrapping a single value (the svtable target).
"""

from __future__ import annotations

from ..codec.schema import (
    ArrayType,
    BitStringType,
    BytesType,
    EnumType,
    Field,
    IntType,
    StringType,
    TableType,
    UnionType,
)

__all__ = [
    "ENB_UE_S1AP_ID",
    "MME_UE_S1AP_ID",
    "M_TMSI",
    "ERAB_ID",
    "TEID",
    "PLMN_IDENTITY",
    "TAC",
    "TAI",
    "EUTRAN_CGI",
    "GUTI",
    "EPS_MOBILE_IDENTITY",
    "CAUSE",
    "UE_S1AP_IDS",
    "SECURITY_KEY",
    "UE_SECURITY_CAPABILITIES",
    "ERAB_LEVEL_QOS",
    "GBR_QOS_INFO",
    "TRANSPORT_LAYER_ADDRESS",
    "ERAB_TO_BE_SETUP_ITEM",
    "ERAB_SETUP_ITEM",
    "ERAB_FAILED_ITEM",
    "ERAB_TO_BE_MODIFIED_ITEM",
    "ERAB_MODIFY_ITEM",
    "TAI_LIST",
    "NAS_PDU",
    "HANDOVER_TYPE",
    "TARGET_ID",
    "RRC_ESTABLISHMENT_CAUSE",
    "UE_AGGREGATE_MAX_BITRATE",
    "SOURCE_TO_TARGET_CONTAINER",
]

# -- identifiers ------------------------------------------------------------

#: eNB-assigned UE id on the S1 interface (TS 36.413: 0..2^24-1).
ENB_UE_S1AP_ID = IntType(32, lo=0, hi=(1 << 24) - 1)

#: MME-assigned UE id on the S1 interface (0..2^32-1).
MME_UE_S1AP_ID = IntType(32)

#: MME Temporary Mobile Subscriber Identity; the CTA keys its per-UE
#: routing and message log on this value (paper §4.3, footnote 15).
M_TMSI = IntType(32)

#: E-RAB (bearer) identifier, 0..15.
ERAB_ID = IntType(8, lo=0, hi=15)

#: GTP tunnel endpoint id.
TEID = BytesType(max_len=4)

#: PLMN = MCC+MNC packed into 3 octets.
PLMN_IDENTITY = BytesType(max_len=3)

#: Tracking area code.
TAC = IntType(16)

TAI = TableType(
    "TAI",
    [
        Field("plmn_identity", PLMN_IDENTITY),
        Field("tac", TAC),
    ],
)

#: Cell global id: PLMN + 28-bit cell identity (BIT STRING).
EUTRAN_CGI = TableType(
    "EUTRAN-CGI",
    [
        Field("plmn_identity", PLMN_IDENTITY),
        Field("cell_id", BitStringType(28)),
    ],
)

GUTI = TableType(
    "GUTI",
    [
        Field("plmn_identity", PLMN_IDENTITY),
        Field("mme_group_id", IntType(16)),
        Field("mme_code", IntType(8)),
        Field("m_tmsi", M_TMSI),
    ],
)

#: NAS EPS mobile identity: IMSI digits or a GUTI (TS 24.301 §9.9.3.12).
EPS_MOBILE_IDENTITY = UnionType(
    "EPS-Mobile-Identity",
    [
        ("imsi", BytesType(max_len=8)),  # BCD-packed digits
        ("guti", GUTI),
    ],
)

# -- cause: the canonical single-value CHOICE -------------------------------

_CAUSE_RADIO = EnumType(
    "CauseRadioNetwork",
    [
        "unspecified",
        "handover_triggered",
        "tx2relocoverall_expiry",
        "successful_handover",
        "release_due_to_eutran_generated_reason",
        "user_inactivity",
        "radio_connection_with_ue_lost",
    ],
)
_CAUSE_TRANSPORT = EnumType(
    "CauseTransport", ["transport_resource_unavailable", "unspecified"]
)
_CAUSE_NAS = EnumType(
    "CauseNas", ["normal_release", "authentication_failure", "detach", "unspecified"]
)
_CAUSE_PROTOCOL = EnumType(
    "CauseProtocol",
    [
        "transfer_syntax_error",
        "abstract_syntax_error_reject",
        "message_not_compatible",
        "semantic_error",
        "unspecified",
    ],
)
_CAUSE_MISC = EnumType(
    "CauseMisc",
    [
        "control_processing_overload",
        "not_enough_user_plane_resources",
        "hardware_failure",
        "om_intervention",
        "unspecified",
    ],
)

#: S1AP Cause: a CHOICE whose every alternative is a single enum — the
#: paper's motivating case for svtable.
CAUSE = UnionType(
    "Cause",
    [
        ("radio_network", _CAUSE_RADIO),
        ("transport", _CAUSE_TRANSPORT),
        ("nas", _CAUSE_NAS),
        ("protocol", _CAUSE_PROTOCOL),
        ("misc", _CAUSE_MISC),
    ],
)

#: UE-S1AP-IDs: another CHOICE with a single-scalar alternative.
UE_S1AP_IDS = UnionType(
    "UE-S1AP-IDs",
    [
        (
            "id_pair",
            TableType(
                "UE-S1AP-ID-pair",
                [
                    Field("mme_ue_s1ap_id", MME_UE_S1AP_ID),
                    Field("enb_ue_s1ap_id", ENB_UE_S1AP_ID),
                ],
            ),
        ),
        ("mme_ue_s1ap_id", MME_UE_S1AP_ID),
    ],
)

# -- security ----------------------------------------------------------------

#: KeNB / NH: 256-bit key as a BIT STRING.
SECURITY_KEY = BitStringType(256)

UE_SECURITY_CAPABILITIES = TableType(
    "UESecurityCapabilities",
    [
        Field("encryption_algorithms", BitStringType(16)),
        Field("integrity_protection_algorithms", BitStringType(16)),
    ],
)

# -- bearers & QoS ------------------------------------------------------------

GBR_QOS_INFO = TableType(
    "GBR-QosInformation",
    [
        Field("erab_maximum_bitrate_dl", IntType(64, lo=0, hi=10_000_000_000)),
        Field("erab_maximum_bitrate_ul", IntType(64, lo=0, hi=10_000_000_000)),
        Field("erab_guaranteed_bitrate_dl", IntType(64, lo=0, hi=10_000_000_000)),
        Field("erab_guaranteed_bitrate_ul", IntType(64, lo=0, hi=10_000_000_000)),
    ],
)

ERAB_LEVEL_QOS = TableType(
    "E-RABLevelQoSParameters",
    [
        Field("qci", IntType(8, lo=0, hi=255)),
        Field("priority_level", IntType(8, lo=0, hi=15)),
        Field("preemption_capability", EnumType("PreemptCap", ["may", "shall_not"])),
        Field("preemption_vulnerability", EnumType("PreemptVul", ["yes", "no"])),
        Field("gbr_qos_information", GBR_QOS_INFO, optional=True),
    ],
)

#: IPv4/IPv6 address as a BIT STRING (we use the IPv4 width).
TRANSPORT_LAYER_ADDRESS = BitStringType(32)

ERAB_TO_BE_SETUP_ITEM = TableType(
    "E-RABToBeSetupItem",
    [
        Field("erab_id", ERAB_ID),
        Field("erab_level_qos", ERAB_LEVEL_QOS),
        Field("transport_layer_address", TRANSPORT_LAYER_ADDRESS),
        Field("gtp_teid", TEID),
        Field("nas_pdu", BytesType(), optional=True),
    ],
)

ERAB_SETUP_ITEM = TableType(
    "E-RABSetupItem",
    [
        Field("erab_id", ERAB_ID),
        Field("transport_layer_address", TRANSPORT_LAYER_ADDRESS),
        Field("gtp_teid", TEID),
    ],
)

#: (E-RAB-ID, Cause) pair reported for bearers that failed to set up —
#: each carries a Cause CHOICE (TS 36.413 E-RAB-Item), one of the
#: union-heavy structures the svtable optimization targets.
ERAB_FAILED_ITEM = TableType(
    "E-RABFailedItem",
    [
        Field("erab_id", ERAB_ID),
        Field("cause", CAUSE),
    ],
)

ERAB_TO_BE_MODIFIED_ITEM = TableType(
    "E-RABToBeModifiedItem",
    [
        Field("erab_id", ERAB_ID),
        Field("erab_level_qos", ERAB_LEVEL_QOS),
        Field("nas_pdu", BytesType()),
    ],
)

ERAB_MODIFY_ITEM = TableType(
    "E-RABModifyItem",
    [
        Field("erab_id", ERAB_ID),
    ],
)

#: Tracking area identity list handed to the UE at attach; UE and core
#: must agree on it or paging breaks (§4.2.1's consistency example).
TAI_LIST = ArrayType(TAI, max_len=16)

#: Opaque NAS payload carried inside S1AP.
NAS_PDU = BytesType()

HANDOVER_TYPE = EnumType(
    "HandoverType",
    ["intralte", "ltetoutran", "ltetogeran", "utrantolte", "gerantolte"],
)

#: Handover target: CHOICE of target eNB / RNC / cell — union with
#: table and scalar-ish alternatives.
TARGET_ID = UnionType(
    "TargetID",
    [
        (
            "targeteNB_ID",
            TableType(
                "TargeteNB-ID",
                [
                    Field("global_enb_id", BitStringType(20)),
                    Field("selected_tai", TAI),
                ],
            ),
        ),
        ("targetRNC_ID", IntType(16)),
        ("cGI", EUTRAN_CGI),
    ],
)

RRC_ESTABLISHMENT_CAUSE = EnumType(
    "RRC-Establishment-Cause",
    [
        "emergency",
        "high_priority_access",
        "mt_access",
        "mo_signalling",
        "mo_data",
        "delay_tolerant_access",
    ],
)

UE_AGGREGATE_MAX_BITRATE = TableType(
    "UEAggregateMaximumBitrate",
    [
        Field("ue_ambr_dl", IntType(64, lo=0, hi=10_000_000_000)),
        Field("ue_ambr_ul", IntType(64, lo=0, hi=10_000_000_000)),
    ],
)

#: Transparent RRC container moved source->target during handover.
SOURCE_TO_TARGET_CONTAINER = BytesType()
