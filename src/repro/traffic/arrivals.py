"""Arrival processes: uniform-rate, bursty, modulated, and compound.

The paper drives its testbed with two patterns: (i) uniform traffic at a
pre-specified number of control procedures per second, and (ii) bursty
traffic emulating a large number of IoT devices sending requests in a
synchronized pattern.  Both are reproduced here as deterministic-seed
generators of arrival timestamps.

The measured traffic models (``traffic.models``, after Meng et al.,
*Characterizing and Modeling Control-Plane Traffic for Mobile Core
Network*) additionally need renewal processes with non-exponential gap
distributions, piecewise-constant diurnal rate modulation, and
correlated bursts.  The modulation primitive here is *exact*: gaps are
drawn in operational time and mapped through the inverse integrated
rate of a :class:`RateEnvelope`, so — unlike thinning — there is no
candidate-rate ceiling to get wrong and breakpoints can never emit
duplicate or out-of-order timestamps.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "uniform_arrivals",
    "poisson_arrivals",
    "bursty_arrivals",
    "RateEnvelope",
    "modulated_arrivals",
    "compound_arrivals",
]


def uniform_arrivals(rate_per_s: float, duration_s: float, start_s: float = 0.0) -> Iterator[float]:
    """Evenly spaced arrivals at ``rate_per_s`` for ``duration_s``."""
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    if duration_s < 0:
        raise ValueError("duration must be non-negative")
    interval = 1.0 / rate_per_s
    n = int(duration_s * rate_per_s)
    for i in range(n):
        yield start_s + i * interval


def poisson_arrivals(
    rate_per_s: float,
    duration_s: float,
    rng: random.Random,
    start_s: float = 0.0,
) -> Iterator[float]:
    """Poisson process arrivals (exponential gaps) — open-loop traffic."""
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    t = start_s
    end = start_s + duration_s
    while True:
        t += rng.expovariate(rate_per_s)
        if t >= end:
            return
        yield t


def bursty_arrivals(
    n_devices: int,
    window_s: float,
    rng: random.Random,
    start_s: float = 0.0,
    waves: int = 1,
    wave_gap_s: float = 0.0,
) -> Iterator[float]:
    """Synchronized IoT burst: ``n_devices`` requests inside ``window_s``.

    Devices wake on a shared trigger (firmware timer, network event) and
    fire almost simultaneously — arrival jitter inside the window is
    uniform.  ``waves`` repeats the burst, separated by ``wave_gap_s``.
    """
    if n_devices <= 0:
        raise ValueError("need at least one device")
    if window_s <= 0:
        raise ValueError("window must be positive")
    if waves < 1:
        raise ValueError("waves must be >= 1")
    per_wave = n_devices // waves
    remainder = n_devices - per_wave * waves
    t0 = start_s
    for wave in range(waves):
        count = per_wave + (1 if wave < remainder else 0)
        offsets = sorted(rng.random() * window_s for _ in range(count))
        for off in offsets:
            yield t0 + off
        t0 += window_s + wave_gap_s


# ------------------------------------------------------------- modulation


class RateEnvelope:
    """Piecewise-constant rate multiplier over a run of ``duration_s``.

    ``points`` is a sorted tuple of ``(start_frac, multiplier)`` pairs:
    the multiplier applies from ``start_frac * duration_s`` until the
    next breakpoint (the last segment runs to the end of the window).
    The first point must start at fraction 0.  Multipliers may be 0
    (dead segment — no arrivals inside it) but not negative.

    The envelope maps *operational time* (the renewal process's own
    clock, in which gaps are i.i.d. draws from the base distribution)
    to wall time: a segment of wall length ``L`` at multiplier ``m``
    holds ``L * m`` operational seconds.  :meth:`advance` inverts that
    integral exactly, so modulation introduces no thinning bias and no
    breakpoint artifacts.
    """

    def __init__(
        self, duration_s: float, points: Sequence[Tuple[float, float]]
    ):
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if not points:
            raise ValueError("envelope needs at least one point")
        fracs = [f for f, _m in points]
        if fracs[0] != 0.0:
            raise ValueError("first envelope point must start at fraction 0")
        if any(b <= a for a, b in zip(fracs, fracs[1:])):
            raise ValueError("envelope fractions must be strictly increasing")
        if fracs[-1] >= 1.0:
            raise ValueError("envelope fractions must lie in [0, 1)")
        if any(m < 0 for _f, m in points):
            raise ValueError("multipliers must be non-negative")
        self.duration_s = duration_s
        self.points = tuple((float(f), float(m)) for f, m in points)
        bounds = [f * duration_s for f, _m in self.points] + [duration_s]
        self._segments: List[Tuple[float, float, float]] = [
            (bounds[i], bounds[i + 1], self.points[i][1])
            for i in range(len(self.points))
        ]

    def multiplier_at(self, t: float) -> float:
        """The multiplier in force at wall time ``t`` (clamped)."""
        for start, end, mult in self._segments:
            if start <= t < end:
                return mult
        return self._segments[-1][2] if t >= self.duration_s else self._segments[0][2]

    def segments(self) -> List[Tuple[float, float, float]]:
        """``(start_s, end_s, multiplier)`` triples, in order."""
        return list(self._segments)

    def mean_multiplier(self) -> float:
        """Time-average multiplier (1.0 = rate-preserving envelope)."""
        return sum((e - s) * m for s, e, m in self._segments) / self.duration_s

    def op_time(self, t: float) -> float:
        """Operational seconds accumulated over wall ``[0, t]``.

        The exact inverse of :meth:`advance`: mapping a modulated
        arrival stream through ``op_time`` recovers the raw renewal
        gaps, which is how the calibration suite KS-tests enveloped
        processes against their base distribution.
        """
        total = 0.0
        for start, end, mult in self._segments:
            if start >= t:
                break
            total += (min(t, end) - start) * mult
        return total

    def advance(self, t: float, op_gap: float) -> float:
        """Wall time ``op_gap`` operational seconds after wall time ``t``.

        Returns ``inf`` when the remaining envelope cannot absorb the
        gap (stream exhausted).  Zero-multiplier segments contribute no
        operational time and are skipped exactly.
        """
        if op_gap <= 0.0:
            return t
        remaining = op_gap
        cur = t
        for start, end, mult in self._segments:
            if end <= cur:
                continue
            lo = max(cur, start)
            if mult <= 0.0:
                continue
            capacity = (end - lo) * mult
            if remaining <= capacity:
                return lo + remaining / mult
            remaining -= capacity
        return float("inf")


def modulated_arrivals(
    gap_fn: Callable[[random.Random], float],
    duration_s: float,
    rng: random.Random,
    envelope: Optional[RateEnvelope] = None,
    start_s: float = 0.0,
) -> Iterator[float]:
    """Renewal process with gaps from ``gap_fn``, modulated by ``envelope``.

    ``gap_fn(rng)`` draws one inter-arrival gap in operational time; a
    gap of ``inf`` (the zero-rate degenerate case) ends the stream
    immediately, yielding no events.  Without an envelope the stream is
    the plain renewal process; with one, gaps are mapped through the
    envelope's inverse integrated rate (exact inhomogeneous sampling).
    """
    if duration_s < 0:
        raise ValueError("duration must be non-negative")
    end = start_s + duration_s
    t = start_s
    while True:
        gap = gap_fn(rng)
        if gap < 0:
            raise ValueError("gap_fn returned a negative gap")
        if math.isinf(gap):
            return
        if envelope is None:
            t += gap
        else:
            t = start_s + envelope.advance(t - start_s, gap)
        if t >= end:
            return
        yield t


def compound_arrivals(
    trigger_rate_per_s: float,
    duration_s: float,
    rng: random.Random,
    burst_size: int = 1,
    jitter_s: float = 0.0,
    start_s: float = 0.0,
) -> Iterator[float]:
    """Correlated-burst (compound Poisson) arrivals.

    Burst *triggers* form a Poisson process at ``trigger_rate_per_s``;
    each trigger releases ``burst_size`` arrivals jittered uniformly
    over ``[0, jitter_s)`` after it (synchronized device cohorts waking
    on a shared event).  With ``burst_size == 1`` and ``jitter_s == 0``
    the generator draws nothing beyond the trigger gaps and degenerates
    exactly to :func:`poisson_arrivals`.  Arrivals past the window end
    are clipped.
    """
    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    if jitter_s < 0:
        raise ValueError("jitter must be non-negative")
    end = start_s + duration_s
    for trigger in poisson_arrivals(trigger_rate_per_s, duration_s, rng, start_s):
        if jitter_s == 0.0:
            for _ in range(burst_size):
                yield trigger
            continue
        offsets = sorted(rng.random() * jitter_s for _ in range(burst_size))
        for off in offsets:
            t = trigger + off
            if t < end:
                yield t
