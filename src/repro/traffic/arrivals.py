"""Arrival processes: uniform-rate and bursty IoT traffic (paper §6.1).

The paper drives its testbed with two patterns: (i) uniform traffic at a
pre-specified number of control procedures per second, and (ii) bursty
traffic emulating a large number of IoT devices sending requests in a
synchronized pattern.  Both are reproduced here as deterministic-seed
generators of arrival timestamps.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Optional

__all__ = ["uniform_arrivals", "poisson_arrivals", "bursty_arrivals"]


def uniform_arrivals(rate_per_s: float, duration_s: float, start_s: float = 0.0) -> Iterator[float]:
    """Evenly spaced arrivals at ``rate_per_s`` for ``duration_s``."""
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    if duration_s < 0:
        raise ValueError("duration must be non-negative")
    interval = 1.0 / rate_per_s
    n = int(duration_s * rate_per_s)
    for i in range(n):
        yield start_s + i * interval


def poisson_arrivals(
    rate_per_s: float,
    duration_s: float,
    rng: random.Random,
    start_s: float = 0.0,
) -> Iterator[float]:
    """Poisson process arrivals (exponential gaps) — open-loop traffic."""
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    t = start_s
    end = start_s + duration_s
    while True:
        t += rng.expovariate(rate_per_s)
        if t >= end:
            return
        yield t


def bursty_arrivals(
    n_devices: int,
    window_s: float,
    rng: random.Random,
    start_s: float = 0.0,
    waves: int = 1,
    wave_gap_s: float = 0.0,
) -> Iterator[float]:
    """Synchronized IoT burst: ``n_devices`` requests inside ``window_s``.

    Devices wake on a shared trigger (firmware timer, network event) and
    fire almost simultaneously — arrival jitter inside the window is
    uniform.  ``waves`` repeats the burst, separated by ``wave_gap_s``.
    """
    if n_devices <= 0:
        raise ValueError("need at least one device")
    if window_s <= 0:
        raise ValueError("window must be positive")
    if waves < 1:
        raise ValueError("waves must be >= 1")
    per_wave = n_devices // waves
    remainder = n_devices - per_wave * waves
    t0 = start_s
    for wave in range(waves):
        count = per_wave + (1 if wave < remainder else 0)
        offsets = sorted(rng.random() * window_s for _ in range(count))
        for off in offsets:
            yield t0 + off
        t0 += window_s + wave_gap_s
