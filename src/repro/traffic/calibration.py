"""Statistical calibration of measured traffic models.

A "measured" model is only credible if the trace it emits provably
matches the statistics it claims.  :func:`calibrate_model` replays a
model's generators on pinned seeds and runs every check the claims
admit:

* **KS goodness-of-fit** on aggregate inter-arrival gaps for every
  un-enveloped (class, procedure) process, against the declared
  distribution at the declared aggregate mean;
* **rate-envelope checks** for diurnal processes: per-segment arrival
  counts must match ``base_rate x multiplier x segment_length`` within
  tolerance, plus a chi-square over the segment histogram;
* **storm checks**: exact burst size, burst-intensity ratio (peak
  window rate over the class's background rate), and KS of in-window
  offsets against the declared burst shape.

The crucial property is that these checks consume the *same emission
functions* the scenario engine plays (``models.process_stream`` /
``models.storm_times``), so passing calibration certifies the traffic
actually simulated.  The suite is deterministic: seeds are pinned by
the caller and every statistic is a pure function of the model.

The mutation hook: ``emit_model`` lets a test emit traffic from one
model while checking it against another's claims — a deliberately
mis-parameterized model must fail, proving the suite has teeth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim.rng import RngRegistry
from .arrivals import RateEnvelope
from .models import (
    TrafficModel,
    class_ranges,
    make_distribution,
    process_stream,
    storm_offset_cdf,
    storm_times,
)
from .stats import bin_counts, chi_square_test, ks_test

__all__ = ["CalibrationCheck", "CalibrationReport", "calibrate_model"]

#: significance level: a correct model must clear it, a mutated one
#: must fall far below (mutation checks assert p < REJECT_P).
DEFAULT_ALPHA = 0.01
REJECT_P = 1e-4

#: minimum samples before a KS verdict is meaningful.
MIN_KS_SAMPLES = 200

#: per-segment envelope rate tolerance (relative).
ENVELOPE_RTOL = 0.20

#: a storm must lift its window's rate at least this far over background.
MIN_BURST_INTENSITY = 3.0


@dataclass
class CalibrationCheck:
    """One statistical verdict on one emitted stream."""

    name: str
    kind: str  # "ks" | "chi2" | "rate" | "count" | "intensity"
    passed: bool
    statistic: float
    p_value: Optional[float]
    detail: str

    def row(self) -> str:
        p = "-" if self.p_value is None else "%.4g" % self.p_value
        return "%-42s %-9s %-4s stat=%-10.4g p=%-9s %s" % (
            self.name,
            self.kind,
            "ok" if self.passed else "FAIL",
            self.statistic,
            p,
            self.detail,
        )


@dataclass
class CalibrationReport:
    """All checks of one model calibration run."""

    model: str
    n_ue: int
    duration_s: float
    seed: int
    checks: List[CalibrationCheck]

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def failed(self) -> List[CalibrationCheck]:
        return [c for c in self.checks if not c.passed]

    def format_report(self) -> str:
        lines = [
            "calibration %s  n_ue=%d duration=%.1fs seed=%d  -> %s"
            % (
                self.model,
                self.n_ue,
                self.duration_s,
                self.seed,
                "ok" if self.ok else "FAILED (%d checks)" % len(self.failed()),
            )
        ]
        lines.extend(c.row() for c in self.checks)
        return "\n".join(lines)


def _gaps(times: List[float]) -> List[float]:
    return [b - a for a, b in zip(times, times[1:])]


def calibrate_model(
    model: TrafficModel,
    n_ue: int,
    duration_s: float,
    seed: int,
    alpha: float = DEFAULT_ALPHA,
    rate_scale: float = 1.0,
    emit_model: Optional[TrafficModel] = None,
) -> CalibrationReport:
    """Emit the model's traffic and test it against the model's claims.

    ``emit_model`` (default: ``model`` itself) generates the traffic;
    the *claims* always come from ``model``.  Passing a different
    ``emit_model`` is the mutation hook: the report must then fail.
    """
    emitter = model if emit_model is None else emit_model
    rngs = RngRegistry(seed)
    ranges = class_ranges(model, n_ue)
    emit_ranges = class_ranges(emitter, n_ue)
    checks: List[CalibrationCheck] = []

    for cls in model.classes:
        lo, hi = ranges[cls.name]
        class_n = hi - lo
        if class_n <= 0:
            continue
        try:
            emit_cls = emitter.class_spec(cls.name)
        except KeyError:
            continue
        emit_n = emit_ranges[cls.name][1] - emit_ranges[cls.name][0]
        for idx, proc in enumerate(cls.processes):
            emit_proc = emit_cls.processes[idx]
            rng = rngs.stream("traffic.%s.%s" % (cls.name, proc.procedure))
            times = list(
                process_stream(
                    emit_proc, emit_n, duration_s, rng,
                    model=emitter, rate_scale=rate_scale,
                )
            )
            label = "%s/%s" % (cls.name, proc.procedure)
            if proc.envelope:
                checks.extend(
                    _check_envelope(
                        label, model, proc, class_n, duration_s, times,
                        alpha, rate_scale,
                    )
                )
            else:
                checks.append(
                    _check_distribution(
                        label, proc, class_n, duration_s, times, alpha,
                        rate_scale,
                    )
                )

    background = _background_rates(model, ranges, rate_scale)
    for storm in model.storms:
        emit_storm = next(
            (s for s in emitter.storms if s.name == storm.name), None
        )
        lo, hi = ranges[storm.device_class]
        class_n = hi - lo
        rng = rngs.stream("traffic.storm." + storm.name)
        times = (
            storm_times(emit_storm, class_n, duration_s, rng)
            if emit_storm is not None
            else []
        )
        checks.extend(
            _check_storm(
                storm, class_n, duration_s, times,
                background.get(storm.device_class, 0.0), alpha,
            )
        )

    return CalibrationReport(
        model=model.name,
        n_ue=n_ue,
        duration_s=duration_s,
        seed=seed,
        checks=checks,
    )


def _check_distribution(
    label, proc, class_n, duration_s, times, alpha, rate_scale
) -> CalibrationCheck:
    """KS of emitted aggregate gaps vs the declared distribution."""
    gaps = _gaps(times)
    aggregate_mean = proc.mean_interarrival_s / (class_n * rate_scale)
    dist = make_distribution(proc.dist, aggregate_mean, proc.sigma, proc.alpha)
    if len(gaps) < MIN_KS_SAMPLES:
        return CalibrationCheck(
            name=label,
            kind="ks",
            passed=False,
            statistic=float(len(gaps)),
            p_value=None,
            detail="only %d gaps (< %d needed); raise n_ue/duration"
            % (len(gaps), MIN_KS_SAMPLES),
        )
    d, p = ks_test(gaps, dist.cdf)
    return CalibrationCheck(
        name=label,
        kind="ks",
        passed=p > alpha,
        statistic=d,
        p_value=p,
        detail="%s mean=%.4gs n=%d" % (proc.dist, aggregate_mean, len(gaps)),
    )


def _check_envelope(
    label, model, proc, class_n, duration_s, times, alpha, rate_scale
) -> List[CalibrationCheck]:
    """Per-segment rate check + chi-square for a diurnal process."""
    envelope = RateEnvelope(duration_s, model.envelope_points(proc.envelope))
    base_rate = class_n * rate_scale / proc.mean_interarrival_s
    # de-modulate: mapping arrivals through the envelope's integrated
    # rate recovers the raw renewal gaps exactly (op_time inverts the
    # exact-inversion sampler), so the enveloped process still gets a
    # KS verdict against its base distribution.
    checks = [
        _check_distribution(
            label + "/demodulated",
            proc,
            class_n,
            duration_s,
            [envelope.op_time(t) for t in times],
            alpha,
            rate_scale,
        )
    ]
    segments = envelope.segments()
    edges = [s for s, _e, _m in segments] + [duration_s]
    observed = bin_counts(times, edges)
    expected = []
    worst_rel = 0.0
    for (start, end, mult), count in zip(segments, observed):
        want = base_rate * mult * (end - start)
        expected.append(want)
        if want > 0:
            rel = abs(count - want) / want
            worst_rel = max(worst_rel, rel)
        elif count:
            worst_rel = float("inf")
    checks.append(
        CalibrationCheck(
            name=label + "/envelope-rate",
            kind="rate",
            passed=worst_rel <= ENVELOPE_RTOL,
            statistic=worst_rel,
            p_value=None,
            detail="worst segment rel. error vs rtol=%.2f (counts %s)"
            % (ENVELOPE_RTOL, observed),
        )
    )
    # Pearson chi-square assumes (near-)Poisson bin counts; renewal
    # processes with CV != 1 (lognormal, Pareto) overdisperse segment
    # counts and would flake, so the histogram test runs only where the
    # count model is exact.
    live = [(o, e) for o, e in zip(observed, expected) if e > 0]
    if proc.dist == "exponential" and len(live) >= 2:
        stat, p = chi_square_test([o for o, _ in live], [e for _, e in live])
        checks.append(
            CalibrationCheck(
                name=label + "/envelope-chi2",
                kind="chi2",
                passed=p > alpha,
                statistic=stat,
                p_value=p,
                detail="segment histogram vs multipliers",
            )
        )
    return checks


def _background_rates(model, ranges, rate_scale):
    """Per-class steady service_request+tau rate (arrivals/s)."""
    out = {}
    for cls in model.classes:
        lo, hi = ranges[cls.name]
        class_n = hi - lo
        rate = 0.0
        for proc in cls.processes:
            rate += class_n * rate_scale / proc.mean_interarrival_s
        out[cls.name] = rate
    return out


def _check_storm(
    storm, class_n, duration_s, times, background_rate, alpha
) -> List[CalibrationCheck]:
    checks: List[CalibrationCheck] = []
    want = int(round(storm.participation * class_n))
    checks.append(
        CalibrationCheck(
            name="storm/%s/size" % storm.name,
            kind="count",
            passed=len(times) == want,
            statistic=float(len(times)),
            p_value=None,
            detail="burst released %d arrivals, claim %d" % (len(times), want),
        )
    )
    window = storm.window_frac * duration_s
    trigger = storm.trigger_frac * duration_s
    in_window = [t for t in times if trigger <= t < trigger + window]
    if window > 0 and in_window:
        # a storm's signature is its *peak* signaling rate, not the
        # window average (an expdecay drain front-loads the burst): the
        # densest of 10 sub-window bins must dwarf the class background.
        bins = 10
        sub = window / bins
        edges = [trigger + i * sub for i in range(bins + 1)]
        peak_rate = max(bin_counts(in_window, edges)) / sub
        intensity = (
            peak_rate / background_rate if background_rate > 0 else float("inf")
        )
        checks.append(
            CalibrationCheck(
                name="storm/%s/intensity" % storm.name,
                kind="intensity",
                passed=intensity >= MIN_BURST_INTENSITY,
                statistic=intensity,
                p_value=None,
                detail="peak window rate %.1f/s vs background %.2f/s (min x%.1f)"
                % (peak_rate, background_rate, MIN_BURST_INTENSITY),
            )
        )
    offsets = [t - trigger for t in in_window]
    if len(offsets) >= MIN_KS_SAMPLES:
        cdf = storm_offset_cdf(storm, duration_s)
        d, p = ks_test(offsets, cdf)
        checks.append(
            CalibrationCheck(
                name="storm/%s/shape" % storm.name,
                kind="ks",
                passed=p > alpha,
                statistic=d,
                p_value=p,
                detail="%s offsets n=%d" % (storm.shape, len(offsets)),
            )
        )
        # Probability-integral-transform chi-square: under the declared
        # shape, cdf(offset) is uniform on [0, 1), so a 10-bin histogram
        # of the transformed offsets is exactly multinomial — a valid
        # second (binned) verdict alongside KS.
        bins = 10
        edges = [i / bins for i in range(bins + 1)]
        observed = bin_counts([cdf(x) for x in offsets], edges)
        expected = [len(offsets) / bins] * bins
        stat, chi_p = chi_square_test(observed, expected)
        checks.append(
            CalibrationCheck(
                name="storm/%s/shape-chi2" % storm.name,
                kind="chi2",
                passed=chi_p > alpha,
                statistic=stat,
                p_value=chi_p,
                detail="PIT histogram, %d bins" % bins,
            )
        )
    return checks
