"""Measured control-plane traffic models (after Meng et al.).

Meng et al. (*Characterizing and Modeling Control-Plane Traffic for
Mobile Core Network*, PAPERS.md) show that real control-plane load is
not Poisson superposition: per-procedure inter-arrival distributions
range from exponential through lognormal to Pareto tails, device
classes (smartphones vs several IoT profiles) differ by orders of
magnitude in procedure rates and registration behaviour, rates swing
diurnally, and synchronized storms dwarf the steady state.  This module
is that characterization as a declarative, deterministic model layer:

* :class:`InterArrival` distributions (exponential / lognormal /
  Pareto) parameterized by their mean, so a per-device model rescales
  to any aggregate rate while keeping its shape;
* :class:`DeviceClassSpec` — a population fraction plus per-procedure
  arrival processes and a mobility rate;
* piecewise-constant diurnal envelopes (``traffic.arrivals.RateEnvelope``)
  applied by exact inversion, never thinning;
* :class:`StormSpec` correlated-burst generators (mass re-registration
  after a blackout, paging storms, synchronized periodic-TAU spikes).

**Calibration contract.**  The model's published statistic is the
*aggregate* per-(device-class, procedure) arrival process: inter-arrival
gaps follow the named distribution with mean ``mean_interarrival_s /
(class population × rate scale)``, diurnal classes obey their envelope's
per-segment rate, and storms release ``round(participation × class
population)`` arrivals whose offsets follow the declared burst shape.
Everything the scenario engine plays is emitted by the same functions
(:func:`process_stream`, :func:`storm_times`) the calibration suite
measures (``tests/traffic/test_calibration.py``), so a generator cannot
drift from its contract without failing KS / chi-square.

All randomness comes from named ``sim.rng`` streams, so scenarios stay
replayable and cache-keyable; a model is identified by name in
:data:`MODELS` and referenced from ``ScenarioSpec.traffic_model``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .arrivals import RateEnvelope, modulated_arrivals

__all__ = [
    "InterArrival",
    "Exponential",
    "LogNormal",
    "ParetoTail",
    "make_distribution",
    "ProcessSpec",
    "DeviceClassSpec",
    "StormSpec",
    "TrafficModel",
    "MODELS",
    "get_model",
    "model_names",
    "class_ranges",
    "process_stream",
    "storm_times",
    "storm_offset_cdf",
]


# ------------------------------------------------------------ distributions


class InterArrival:
    """A positive inter-arrival gap distribution, parameterized by mean."""

    kind = "abstract"

    def mean(self) -> float:
        raise NotImplementedError

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def cdf(self, x: float) -> float:
        raise NotImplementedError


class Exponential(InterArrival):
    """Memoryless gaps — the Poisson-process baseline."""

    kind = "exponential"

    def __init__(self, mean_s: float):
        if mean_s <= 0:
            raise ValueError("mean must be positive")
        self.mean_s = mean_s
        self._rate = 1.0 / mean_s

    def mean(self) -> float:
        return self.mean_s

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(self._rate)

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return 1.0 - math.exp(-x * self._rate)


class LogNormal(InterArrival):
    """Lognormal gaps: multiplicative burstiness around a typical gap.

    ``sigma`` is the shape (std-dev of ``ln gap``); ``mu`` is derived so
    the distribution has exactly ``mean_s`` mean: ``mu = ln(mean) -
    sigma^2 / 2``.
    """

    kind = "lognormal"

    def __init__(self, mean_s: float, sigma: float):
        if mean_s <= 0:
            raise ValueError("mean must be positive")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.mean_s = mean_s
        self.sigma = sigma
        self.mu = math.log(mean_s) - 0.5 * sigma * sigma

    def mean(self) -> float:
        return self.mean_s

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        z = (math.log(x) - self.mu) / self.sigma
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


class ParetoTail(InterArrival):
    """Pareto gaps: the heavy tail of IoT reporting intervals.

    ``alpha`` is the tail index (must exceed 1 for a finite mean); the
    scale ``xm`` is derived from the target mean: ``xm = mean * (alpha
    - 1) / alpha``.
    """

    kind = "pareto"

    def __init__(self, mean_s: float, alpha: float):
        if mean_s <= 0:
            raise ValueError("mean must be positive")
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1 for a finite mean")
        self.mean_s = mean_s
        self.alpha = alpha
        self.xm = mean_s * (alpha - 1.0) / alpha

    def mean(self) -> float:
        return self.mean_s

    def sample(self, rng: random.Random) -> float:
        return self.xm * rng.paretovariate(self.alpha)

    def cdf(self, x: float) -> float:
        if x <= self.xm:
            return 0.0
        return 1.0 - (self.xm / x) ** self.alpha


def make_distribution(
    kind: str, mean_s: float, sigma: float = 1.0, alpha: float = 2.5
) -> InterArrival:
    """Instantiate a distribution by name at the given mean."""
    if kind == "exponential":
        return Exponential(mean_s)
    if kind == "lognormal":
        return LogNormal(mean_s, sigma)
    if kind == "pareto":
        return ParetoTail(mean_s, alpha)
    raise ValueError(
        "unknown distribution %r (have: exponential, lognormal, pareto)" % kind
    )


# ------------------------------------------------------------- model specs


@dataclass(frozen=True)
class ProcessSpec:
    """One per-device arrival process of a device class.

    ``mean_interarrival_s`` is the *per-device* mean gap; the aggregate
    class process keeps the distribution's shape at mean
    ``mean_interarrival_s / class_population``.  ``envelope`` names a
    diurnal profile in the model's envelope table ("" = constant rate).
    """

    procedure: str  # "service_request" | "tau"
    dist: str  # "exponential" | "lognormal" | "pareto"
    mean_interarrival_s: float
    sigma: float = 1.0  # lognormal shape
    alpha: float = 2.5  # pareto tail index
    envelope: str = ""

    def __post_init__(self):
        if self.procedure not in ("service_request", "tau"):
            raise ValueError(
                "background processes drive service_request/tau, got %r"
                % (self.procedure,)
            )
        if self.mean_interarrival_s <= 0:
            raise ValueError("mean inter-arrival must be positive")


@dataclass(frozen=True)
class DeviceClassSpec:
    """A device population slice with its procedure behaviour."""

    name: str
    fraction: float
    processes: Tuple[ProcessSpec, ...] = ()
    #: per-device mean seconds between mobility events (0 = static class)
    mobility_mean_s: float = 0.0

    def __post_init__(self):
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("class fraction must be in (0, 1]")
        if self.mobility_mean_s < 0:
            raise ValueError("mobility mean must be non-negative")


@dataclass(frozen=True)
class StormSpec:
    """A correlated burst: a device cohort firing nearly simultaneously.

    ``round(participation * class_population)`` arrivals are released
    inside ``[trigger, trigger + window)`` (times as fractions of the
    run duration).  ``shape`` controls the offset law inside the window:
    ``expdecay`` is a truncated-exponential ramp-down with mean offset
    ``window / decay`` (re-registration drains), ``uniform`` a flat
    synchronized window (timer-aligned TAU).
    """

    name: str
    procedure: str  # "attach" | "service_request" | "tau"
    device_class: str
    trigger_frac: float
    window_frac: float
    participation: float
    shape: str = "expdecay"
    decay: float = 4.0

    def __post_init__(self):
        if self.procedure not in ("attach", "service_request", "tau"):
            raise ValueError("unsupported storm procedure %r" % (self.procedure,))
        if not 0.0 <= self.trigger_frac < 1.0:
            raise ValueError("trigger_frac must be in [0, 1)")
        if not 0.0 < self.window_frac <= 1.0 - self.trigger_frac:
            raise ValueError("window must fit inside the run")
        if not 0.0 < self.participation <= 1.0:
            raise ValueError("participation must be in (0, 1]")
        if self.shape not in ("expdecay", "uniform"):
            raise ValueError("shape must be expdecay or uniform")
        if self.decay <= 0:
            raise ValueError("decay must be positive")


@dataclass(frozen=True)
class TrafficModel:
    """A complete measured workload: classes + envelopes + storms."""

    name: str
    description: str
    classes: Tuple[DeviceClassSpec, ...]
    #: name -> ((start_frac, multiplier), ...) piecewise diurnal profiles
    envelopes: Tuple[Tuple[str, Tuple[Tuple[float, float], ...]], ...] = ()
    storms: Tuple[StormSpec, ...] = ()

    def __post_init__(self):
        if not self.classes:
            raise ValueError("model needs at least one device class")
        total = sum(c.fraction for c in self.classes)
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
            raise ValueError(
                "class fractions must sum to 1 (got %r)" % (total,)
            )
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate device-class names")
        table = dict(self.envelopes)
        for cls in self.classes:
            for proc in cls.processes:
                if proc.envelope and proc.envelope not in table:
                    raise ValueError(
                        "process %s/%s names unknown envelope %r"
                        % (cls.name, proc.procedure, proc.envelope)
                    )
        for storm in self.storms:
            if storm.device_class not in names:
                raise ValueError(
                    "storm %r targets unknown class %r"
                    % (storm.name, storm.device_class)
                )

    def envelope_points(self, name: str) -> Tuple[Tuple[float, float], ...]:
        return dict(self.envelopes)[name]

    def class_spec(self, name: str) -> DeviceClassSpec:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError("unknown device class %r" % (name,))


# --------------------------------------------------------------- emission


def class_ranges(model: TrafficModel, n_ue: int) -> Dict[str, Tuple[int, int]]:
    """Partition ``[0, n_ue)`` into contiguous per-class index ranges.

    Fractions are applied in declaration order with the last class
    absorbing the rounding remainder, so every UE belongs to exactly
    one class and the split is a pure function of (model, n_ue).
    """
    if n_ue < 1:
        raise ValueError("need at least one UE")
    ranges: Dict[str, Tuple[int, int]] = {}
    lo = 0
    for i, cls in enumerate(model.classes):
        if i == len(model.classes) - 1:
            hi = n_ue
        else:
            hi = min(n_ue, lo + int(round(cls.fraction * n_ue)))
        ranges[cls.name] = (lo, hi)
        lo = hi
    return ranges


def process_stream(
    proc: ProcessSpec,
    class_n: int,
    duration_s: float,
    rng: random.Random,
    model: Optional[TrafficModel] = None,
    rate_scale: float = 1.0,
) -> Iterator[float]:
    """Aggregate arrival times for one (class, procedure) process.

    The aggregate keeps the per-device distribution's shape at mean
    ``mean_interarrival_s / (class_n * rate_scale)`` — the model's
    published statistic, which the calibration suite KS-tests.  A class
    with zero devices (or zero rate) yields no events.
    """
    if class_n <= 0 or rate_scale <= 0.0:
        return iter(())
    aggregate_mean = proc.mean_interarrival_s / (class_n * rate_scale)
    dist = make_distribution(proc.dist, aggregate_mean, proc.sigma, proc.alpha)
    envelope = None
    if proc.envelope and model is not None:
        envelope = RateEnvelope(duration_s, model.envelope_points(proc.envelope))
    return modulated_arrivals(dist.sample, duration_s, rng, envelope)


def storm_offset_cdf(storm: StormSpec, duration_s: float):
    """CDF of one storm arrival's offset inside its window (seconds)."""
    window = storm.window_frac * duration_s

    if storm.shape == "uniform":

        def cdf(x: float) -> float:
            if x <= 0:
                return 0.0
            if x >= window:
                return 1.0
            return x / window

        return cdf

    mean = window / storm.decay
    norm = 1.0 - math.exp(-window / mean)

    def cdf(x: float) -> float:
        if x <= 0:
            return 0.0
        if x >= window:
            return 1.0
        return (1.0 - math.exp(-x / mean)) / norm

    return cdf


def storm_times(
    storm: StormSpec, class_n: int, duration_s: float, rng: random.Random
) -> List[float]:
    """Sorted absolute arrival times of one storm's burst.

    ``expdecay`` offsets come from the inverse CDF of the truncated
    exponential (one uniform draw per arrival — no rejection, so the
    draw count is a pure function of the burst size), ``uniform`` from
    a flat window.
    """
    count = int(round(storm.participation * class_n))
    if count <= 0:
        return []
    trigger = storm.trigger_frac * duration_s
    window = storm.window_frac * duration_s
    offsets: List[float] = []
    if storm.shape == "uniform":
        for _ in range(count):
            offsets.append(rng.random() * window)
    else:
        mean = window / storm.decay
        norm = 1.0 - math.exp(-window / mean)
        for _ in range(count):
            offsets.append(-mean * math.log1p(-rng.random() * norm))
    times = sorted(trigger + off for off in offsets)
    return [t for t in times if t < duration_s]


# ---------------------------------------------------------------- catalog

#: mean session inter-arrival from the DPCM measurement study (§2.2).
_SESSION_MEAN_S = 106.9

#: diurnal profile: overnight lull, morning ramp, midday peak, evening
#: taper — mean multiplier exactly 1.0 so the envelope redistributes
#: load without changing the total.
_DIURNAL = (
    ("diurnal", ((0.0, 0.6), (0.25, 1.5), (0.5, 1.2), (0.75, 0.7))),
)

#: the metro device mix: smartphones dominate sessions and mobility,
#: stationary meters report on a heavy Pareto tail, fleet trackers are
#: chatty and mobile.  Fractions follow the smartphone-majority /
#: IoT-significant-minority split of the Meng et al. dataset.
_METRO_CLASSES = (
    DeviceClassSpec(
        name="smartphone",
        fraction=0.55,
        processes=(
            ProcessSpec(
                procedure="service_request",
                dist="lognormal",
                mean_interarrival_s=_SESSION_MEAN_S,
                sigma=1.2,
                envelope="diurnal",
            ),
            ProcessSpec(
                procedure="tau",
                dist="exponential",
                mean_interarrival_s=600.0,
            ),
        ),
        mobility_mean_s=60.0,
    ),
    DeviceClassSpec(
        name="iot-sensor",
        fraction=0.30,
        processes=(
            ProcessSpec(
                procedure="service_request",
                dist="pareto",
                mean_interarrival_s=240.0,
                alpha=1.8,
            ),
            ProcessSpec(
                procedure="tau",
                dist="exponential",
                mean_interarrival_s=1800.0,
            ),
        ),
        mobility_mean_s=0.0,  # stationary meters
    ),
    DeviceClassSpec(
        name="iot-tracker",
        fraction=0.15,
        processes=(
            ProcessSpec(
                procedure="service_request",
                dist="exponential",
                mean_interarrival_s=180.0,
            ),
        ),
        mobility_mean_s=30.0,  # fleet trackers roam constantly
    ),
)


def _catalog() -> Dict[str, TrafficModel]:
    models = [
        TrafficModel(
            name="metro-mixed",
            description="Measured metro mix: lognormal smartphone sessions "
            "under a diurnal envelope, Pareto-tail IoT sensors, exponential "
            "fleet trackers; no storms (the calibration baseline).",
            classes=_METRO_CLASSES,
            envelopes=_DIURNAL,
        ),
        TrafficModel(
            name="metro-iot-reattach",
            description="Metro mix + mass IoT re-registration: after a "
            "region blackout clears, sensors and trackers re-register in "
            "an exponential-drain burst.",
            classes=_METRO_CLASSES,
            envelopes=_DIURNAL,
            storms=(
                StormSpec(
                    name="sensor-reattach",
                    procedure="attach",
                    device_class="iot-sensor",
                    trigger_frac=0.52,
                    window_frac=0.18,
                    participation=0.60,
                ),
                StormSpec(
                    name="tracker-reattach",
                    procedure="attach",
                    device_class="iot-tracker",
                    trigger_frac=0.52,
                    window_frac=0.12,
                    participation=0.50,
                ),
            ),
        ),
        TrafficModel(
            name="metro-paging",
            description="Metro mix + paging storm: a broadcast event pages "
            "most smartphones inside a short window, each answering with a "
            "service request.",
            classes=_METRO_CLASSES,
            envelopes=_DIURNAL,
            storms=(
                StormSpec(
                    name="paging-wave",
                    procedure="service_request",
                    device_class="smartphone",
                    trigger_frac=0.45,
                    window_frac=0.10,
                    participation=0.80,
                    decay=3.0,
                ),
            ),
        ),
        TrafficModel(
            name="metro-midnight-tau",
            description="Metro mix + synchronized periodic-TAU spike: IoT "
            "registration timers aligned to a wall-clock boundary all fire "
            "inside one tight uniform window.",
            classes=_METRO_CLASSES,
            envelopes=_DIURNAL,
            storms=(
                StormSpec(
                    name="midnight-tau",
                    procedure="tau",
                    device_class="iot-sensor",
                    trigger_frac=0.50,
                    window_frac=0.06,
                    participation=0.90,
                    shape="uniform",
                ),
                StormSpec(
                    name="midnight-tau-trackers",
                    procedure="tau",
                    device_class="iot-tracker",
                    trigger_frac=0.50,
                    window_frac=0.06,
                    participation=0.90,
                    shape="uniform",
                ),
            ),
        ),
    ]
    return {m.name: m for m in models}


MODELS: Dict[str, TrafficModel] = _catalog()


def model_names() -> List[str]:
    return sorted(MODELS)


def get_model(name: str) -> TrafficModel:
    try:
        return MODELS[name]
    except KeyError:
        raise KeyError(
            "unknown traffic model %r (have: %s)" % (name, ", ".join(model_names()))
        )
