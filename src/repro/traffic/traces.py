"""Synthetic control-traffic traces (ng4T substitute).

The paper replays commercial signaling traces from ng4T's test tooling
[45], which are not redistributable.  This module generates synthetic
traces that match the published statistics the paper relies on:

* a device issues a session (service) request on average every 106.9 s
  (§2.2, from the 19-month DPCM measurement study);
* the procedure mix is dominated by service requests and handovers,
  with attaches/detaches at power-cycle frequency;
* IoT devices show a high control-to-data ratio with synchronized
  bursts (§1, §6.1).

Traces serialize to JSON-lines so experiments are replayable byte-for-
byte, and the generator is fully deterministic given a seed.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, TextIO

__all__ = ["TraceRecord", "TraceConfig", "generate_trace", "save_trace", "load_trace"]

#: mean seconds between session establishment requests per device (§2.2).
MEAN_SESSION_INTERARRIVAL_S = 106.9


@dataclass(frozen=True)
class TraceRecord:
    """One control-plane event in a trace."""

    time: float
    ue: str
    procedure: str
    target_bs: Optional[str] = None

    def to_json(self) -> str:
        out = {"t": self.time, "ue": self.ue, "proc": self.procedure}
        if self.target_bs is not None:
            out["target_bs"] = self.target_bs
        return json.dumps(out, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        raw = json.loads(line)
        return cls(raw["t"], raw["ue"], raw["proc"], raw.get("target_bs"))


@dataclass
class TraceConfig:
    """Knobs of the synthetic trace generator."""

    n_devices: int = 100
    duration_s: float = 60.0
    #: mean per-device gap between service requests.
    session_interarrival_s: float = MEAN_SESSION_INTERARRIVAL_S
    #: mean per-device gap between handovers (mobility); None = static.
    handover_interarrival_s: Optional[float] = 300.0
    #: fraction of devices that power-cycle (detach+attach) in the window.
    power_cycle_fraction: float = 0.02
    #: tracking-area-update period (periodic TAU timer T3412); None = off.
    tau_period_s: Optional[float] = None
    seed: int = 0

    def validate(self) -> None:
        if self.n_devices < 1:
            raise ValueError("need at least one device")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.session_interarrival_s <= 0:
            raise ValueError("session inter-arrival must be positive")
        if not 0.0 <= self.power_cycle_fraction <= 1.0:
            raise ValueError("power_cycle_fraction must be in [0, 1]")


def generate_trace(
    config: TraceConfig, bs_names: Optional[List[str]] = None
) -> List[TraceRecord]:
    """A time-sorted synthetic trace per the configured statistics.

    Every device attaches once at a random offset early in the window,
    then issues exponential-gap service requests, handovers between the
    given BSs, periodic TAUs, and (for a sampled fraction) a detach.
    """
    config.validate()
    rng = random.Random(config.seed)
    records: List[TraceRecord] = []
    bs_names = bs_names or ["bs-0"]

    for idx in range(config.n_devices):
        ue = "ue-%06d" % idx
        attach_at = rng.random() * min(5.0, config.duration_s * 0.1)
        records.append(TraceRecord(attach_at, ue, "attach"))

        t = attach_at
        while True:
            t += rng.expovariate(1.0 / config.session_interarrival_s)
            if t >= config.duration_s:
                break
            records.append(TraceRecord(t, ue, "service_request"))

        if config.handover_interarrival_s and len(bs_names) > 1:
            t = attach_at
            bs_cycle = rng.randrange(len(bs_names))
            while True:
                t += rng.expovariate(1.0 / config.handover_interarrival_s)
                if t >= config.duration_s:
                    break
                bs_cycle = (bs_cycle + 1) % len(bs_names)
                records.append(
                    TraceRecord(t, ue, "handover", target_bs=bs_names[bs_cycle])
                )

        if config.tau_period_s:
            t = attach_at + config.tau_period_s
            while t < config.duration_s:
                records.append(TraceRecord(t, ue, "tau"))
                t += config.tau_period_s

        if rng.random() < config.power_cycle_fraction:
            t = attach_at + rng.random() * (config.duration_s - attach_at)
            records.append(TraceRecord(t, ue, "detach"))

    records.sort(key=lambda r: (r.time, r.ue))
    return records


def save_trace(records: Iterable[TraceRecord], fp: TextIO) -> int:
    """Write JSON-lines; returns the number of records written."""
    count = 0
    for record in records:
        fp.write(record.to_json())
        fp.write("\n")
        count += 1
    return count


def load_trace(fp: TextIO) -> List[TraceRecord]:
    """Read JSON-lines written by :func:`save_trace`."""
    records = []
    for line in fp:
        line = line.strip()
        if line:
            records.append(TraceRecord.from_json(line))
    return records
