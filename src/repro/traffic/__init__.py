"""Traffic substrate: arrival processes, synthetic ng4T-style traces,
and the workload driver that plays them onto a deployment."""

from .arrivals import bursty_arrivals, poisson_arrivals, uniform_arrivals
from .mobility import (
    CommuteWaveMobility,
    FlashCrowdMobility,
    MobilityModel,
    RandomWalkMobility,
)
from .traces import TraceConfig, TraceRecord, generate_trace, load_trace, save_trace
from .workload import WorkloadDriver

__all__ = [
    "uniform_arrivals",
    "poisson_arrivals",
    "bursty_arrivals",
    "TraceConfig",
    "TraceRecord",
    "generate_trace",
    "save_trace",
    "load_trace",
    "WorkloadDriver",
    "MobilityModel",
    "RandomWalkMobility",
    "CommuteWaveMobility",
    "FlashCrowdMobility",
]
