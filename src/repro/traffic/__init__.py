"""Traffic substrate: arrival processes, synthetic ng4T-style traces,
measured traffic models (device classes, diurnal envelopes, storms)
with their statistical calibration layer, and the workload driver that
plays traces onto a deployment."""

from .arrivals import (
    RateEnvelope,
    bursty_arrivals,
    compound_arrivals,
    modulated_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from .calibration import CalibrationCheck, CalibrationReport, calibrate_model
from .mobility import (
    CommuteWaveMobility,
    FlashCrowdMobility,
    MobilityModel,
    RandomWalkMobility,
)
from .models import (
    DeviceClassSpec,
    Exponential,
    InterArrival,
    LogNormal,
    ParetoTail,
    ProcessSpec,
    StormSpec,
    TrafficModel,
    get_model,
    make_distribution,
    model_names,
)
from .traces import TraceConfig, TraceRecord, generate_trace, load_trace, save_trace
from .workload import WorkloadDriver

__all__ = [
    "uniform_arrivals",
    "poisson_arrivals",
    "bursty_arrivals",
    "modulated_arrivals",
    "compound_arrivals",
    "RateEnvelope",
    "TraceConfig",
    "TraceRecord",
    "generate_trace",
    "save_trace",
    "load_trace",
    "WorkloadDriver",
    "MobilityModel",
    "RandomWalkMobility",
    "CommuteWaveMobility",
    "FlashCrowdMobility",
    "InterArrival",
    "Exponential",
    "LogNormal",
    "ParetoTail",
    "make_distribution",
    "ProcessSpec",
    "DeviceClassSpec",
    "StormSpec",
    "TrafficModel",
    "get_model",
    "model_names",
    "CalibrationCheck",
    "CalibrationReport",
    "calibrate_model",
]
