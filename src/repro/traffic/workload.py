"""Workload drivers: turn arrival streams into procedure executions.

A :class:`WorkloadDriver` owns a deployment, a pool of UEs, and the
policy for what each arrival does (fresh attach, service request from a
warm UE, handover to a sibling region...).  It is the simulated
counterpart of the paper's DPDK traffic generator (§5).
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, List, Optional

from ..core.deployment import Deployment
from ..core.ue import UE
from ..sim.core import Process
from .traces import TraceRecord

__all__ = ["WorkloadDriver"]


class WorkloadDriver:
    """Schedules procedures on a deployment per an arrival stream."""

    def __init__(self, dep: Deployment, seed_stream=None):
        self.dep = dep
        self.sim = dep.sim
        self.rng = seed_stream or dep.rng.stream("workload")
        self._fresh_counter = itertools.count()
        self._pool: List[UE] = []
        self._pool_cursor = 0
        self.spawned: List[Process] = []
        self.arrivals_dropped = 0

    # -- UE pool ------------------------------------------------------------

    def build_pool(self, size: int, bs_names: Optional[List[str]] = None) -> List[UE]:
        """Bootstrap ``size`` attached UEs spread over the given BSs."""
        if size < 1:
            raise ValueError("pool size must be >= 1")
        bs_names = bs_names or sorted(self.dep.bss)
        for i in range(size):
            ue_id = "pool-%06d" % i
            self.dep.bootstrap_ue(ue_id, bs_names[i % len(bs_names)])
            self._pool.append(self.dep.ue(ue_id))
        return list(self._pool)

    def _take_free_ue(self, bs_names: List[str]) -> UE:
        """A non-busy pooled UE, growing the pool when all are busy."""
        for _ in range(len(self._pool)):
            ue = self._pool[self._pool_cursor % len(self._pool)] if self._pool else None
            self._pool_cursor += 1
            if ue is not None and not ue.busy and ue.attached:
                return ue
        idx = len(self._pool)
        ue_id = "pool-%06d" % idx
        ue = self.dep.bootstrap_ue(ue_id, bs_names[idx % len(bs_names)])
        self._pool.append(ue)
        return ue

    # -- scheduling -----------------------------------------------------------

    def schedule_attaches(
        self, arrival_times: Iterable[float], bs_names: Optional[List[str]] = None
    ) -> int:
        """Each arrival: a fresh UE performs initial attach."""
        bs_names = bs_names or sorted(self.dep.bss)
        count = 0
        for t in arrival_times:
            idx = next(self._fresh_counter)
            bs = bs_names[idx % len(bs_names)]
            self.sim.schedule(max(0.0, t - self.sim.now), self._start_attach, idx, bs)
            count += 1
        return count

    def _start_attach(self, idx: int, bs: str) -> None:
        ue = self.dep.new_ue("fresh-%07d" % idx, bs)
        self.spawned.append(self.sim.process(ue.execute("attach"), name=ue.ue_id))

    def schedule_procedures(
        self,
        proc_name: str,
        arrival_times: Iterable[float],
        bs_names: Optional[List[str]] = None,
        target_picker: Optional[Callable[[UE], str]] = None,
    ) -> int:
        """Each arrival: a warm pooled UE runs ``proc_name``.

        ``target_picker`` supplies the handover target BS for
        CPF-changing procedures.
        """
        bs_names = bs_names or sorted(self.dep.bss)
        count = 0
        for t in arrival_times:
            self.sim.schedule(
                max(0.0, t - self.sim.now),
                self._start_procedure,
                proc_name,
                bs_names,
                target_picker,
            )
            count += 1
        return count

    def _start_procedure(self, proc_name, bs_names, target_picker) -> None:
        ue = self._take_free_ue(bs_names)
        target = target_picker(ue) if target_picker else None
        self.spawned.append(
            self.sim.process(ue.execute(proc_name, target_bs=target), name=ue.ue_id)
        )

    def schedule_trace(self, records: Iterable[TraceRecord]) -> int:
        """Replay a synthetic/ng4T-style trace (see :mod:`.traces`)."""
        count = 0
        for record in records:
            self.sim.schedule(
                max(0.0, record.time - self.sim.now), self._start_trace_record, record
            )
            count += 1
        return count

    def _start_trace_record(self, record: TraceRecord) -> None:
        dep = self.dep
        try:
            ue = dep.ue(record.ue)
        except KeyError:
            bs_names = sorted(dep.bss)
            bs = bs_names[hash(record.ue) % len(bs_names)]
            ue = dep.new_ue(record.ue, bs)
        if ue.busy:
            self.arrivals_dropped += 1
            return
        proc = record.procedure
        if proc != "attach" and not ue.attached:
            proc = "attach"
        target = record.target_bs if proc in ("handover", "fast_handover") else None
        if proc in ("handover", "fast_handover") and target is None:
            self.arrivals_dropped += 1
            return
        self.spawned.append(
            self.sim.process(ue.execute(proc, target_bs=target), name=ue.ue_id)
        )

    # -- handover target helpers --------------------------------------------------

    def sibling_region_target(self) -> Callable[[UE], str]:
        """Picker: a BS in a different level-1 region, same level-2."""
        dep = self.dep

        def pick(ue: UE) -> str:
            current_region = dep.bss[ue.bs_name].region
            for bs_name in sorted(dep.bss):
                bs = dep.bss[bs_name]
                if bs.region != current_region and dep.region_map.shares_level2(
                    bs.region, current_region
                ):
                    return bs_name
            raise LookupError("no sibling-region BS for %s" % ue.ue_id)

        return pick

    def same_region_target(self) -> Callable[[UE], str]:
        """Picker: another BS in the UE's own region (intra handover)."""
        dep = self.dep

        def pick(ue: UE) -> str:
            region = dep.bss[ue.bs_name].region
            for bs_name in sorted(dep.bss):
                if bs_name != ue.bs_name and dep.bss[bs_name].region == region:
                    return bs_name
            raise LookupError("no second BS in region %s" % region)

        return pick

    # -- results ---------------------------------------------------------------------

    def completed(self) -> int:
        return sum(1 for p in self.spawned if p.fired and p.ok)

    def failed(self) -> int:
        return sum(1 for p in self.spawned if p.fired and not p.ok)
