"""Mobility models over geo-hash tile graphs.

The city-scale scenarios (``repro.scale``) need UEs that *roam*: every
move is a tile transition on the deployment's level-1 tile adjacency
graph, and every transition that crosses a region boundary becomes a
handover — a Fast Handover when the tiles share a level-2 parent
(§4.3), a full handover otherwise.  Three models cover the scenario
catalog:

* :class:`RandomWalkMobility` — steady-city background roaming;
* :class:`CommuteWaveMobility` — a timed directional wave from
  residential tiles toward a downtown core (morning commute);
* :class:`FlashCrowdMobility` — convergence onto one venue tile during
  an event window, dispersal afterwards (stadium).

Models are pure policy: given an RNG, the current tile, and the sim
time they return the next tile.  All randomness comes from the caller's
seeded stream, so a scenario's whole mobility pattern is a deterministic
function of its seed.  The adjacency graph is swappable mid-run
(:meth:`MobilityModel.set_adjacency`) because ring churn adds and
retires tiles.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional

__all__ = [
    "MobilityModel",
    "RandomWalkMobility",
    "CommuteWaveMobility",
    "FlashCrowdMobility",
    "bfs_distances",
]


def bfs_distances(adjacency: Dict[str, List[str]], targets: Iterable[str]) -> Dict[str, int]:
    """Hop distance from every tile to the nearest target tile."""
    dist: Dict[str, int] = {}
    frontier = deque()
    for t in sorted(targets):
        if t in adjacency:
            dist[t] = 0
            frontier.append(t)
    while frontier:
        tile = frontier.popleft()
        for nxt in adjacency[tile]:
            if nxt not in dist:
                dist[nxt] = dist[tile] + 1
                frontier.append(nxt)
    return dist


class MobilityModel:
    """Base: uniform initial placement, no movement."""

    name = "static"

    def __init__(self, adjacency: Dict[str, List[str]]):
        self._adjacency: Dict[str, List[str]] = {}
        self.set_adjacency(adjacency)

    def set_adjacency(self, adjacency: Dict[str, List[str]]) -> None:
        """Swap the tile graph (ring churn added/retired tiles)."""
        self._adjacency = {tile: sorted(nbrs) for tile, nbrs in adjacency.items()}
        self._tiles = sorted(self._adjacency)
        self._rebuild()

    def _rebuild(self) -> None:  # hook for models keeping derived maps
        pass

    @property
    def tiles(self) -> List[str]:
        return list(self._tiles)

    def neighbors(self, tile: str) -> List[str]:
        return self._adjacency.get(tile, [])

    def initial_tile(self, rng) -> str:
        return self._tiles[rng.randrange(len(self._tiles))]

    def next_tile(self, rng, tile: str, now: float) -> Optional[str]:
        """The next tile for a UE in ``tile`` at ``now`` (None = stay)."""
        return None

    # -- shared movement primitives ----------------------------------------

    def _random_step(self, rng, tile: str) -> Optional[str]:
        nbrs = self._adjacency.get(tile)
        if not nbrs:
            return None
        return nbrs[rng.randrange(len(nbrs))]

    def _step_toward(self, rng, tile: str, dist: Dict[str, int]) -> Optional[str]:
        """Greedy descent on a BFS distance field; random walk at 0."""
        here = dist.get(tile)
        if here is None:  # disconnected from every target: wander
            return self._random_step(rng, tile)
        if here == 0:
            return self._random_step(rng, tile)
        best = [n for n in self._adjacency.get(tile, ()) if dist.get(n, here) < here]
        if not best:
            return self._random_step(rng, tile)
        return best[rng.randrange(len(best))]


class RandomWalkMobility(MobilityModel):
    """Uniform random walk on the tile graph."""

    name = "random_walk"

    def next_tile(self, rng, tile: str, now: float) -> Optional[str]:
        return self._random_step(rng, tile)


class CommuteWaveMobility(MobilityModel):
    """Directional wave: residential tiles -> downtown during a window.

    Inside ``[wave_start, wave_end)`` every move steps one tile closer
    to the nearest downtown tile; outside the window UEs random-walk.
    Initial placement is biased to the residential (non-downtown) tiles,
    so the wave actually has somewhere to come from.
    """

    name = "commute"

    def __init__(
        self,
        adjacency: Dict[str, List[str]],
        downtown: Iterable[str],
        wave_start: float,
        wave_end: float,
    ):
        self.downtown = sorted(downtown)
        self.wave_start = wave_start
        self.wave_end = wave_end
        super().__init__(adjacency)

    def _rebuild(self) -> None:
        self._dist = bfs_distances(self._adjacency, self.downtown)

    def initial_tile(self, rng) -> str:
        residential = [t for t in self._tiles if self._dist.get(t, 1) > 0]
        pool = residential or self._tiles
        return pool[rng.randrange(len(pool))]

    def next_tile(self, rng, tile: str, now: float) -> Optional[str]:
        if self.wave_start <= now < self.wave_end:
            return self._step_toward(rng, tile, self._dist)
        return self._random_step(rng, tile)


class FlashCrowdMobility(MobilityModel):
    """Stadium event: converge on one venue tile, then disperse.

    During ``[flash_start, flash_end)`` every move heads for the venue;
    after the event moves step *away* from it (maximally increasing
    distance), modeling the crowd draining back out; before the event
    UEs random-walk.
    """

    name = "flash_crowd"

    def __init__(
        self,
        adjacency: Dict[str, List[str]],
        venue: str,
        flash_start: float,
        flash_end: float,
    ):
        self.venue = venue
        self.flash_start = flash_start
        self.flash_end = flash_end
        super().__init__(adjacency)

    def _rebuild(self) -> None:
        self._dist = bfs_distances(self._adjacency, [self.venue])

    def next_tile(self, rng, tile: str, now: float) -> Optional[str]:
        if self.flash_start <= now < self.flash_end:
            return self._step_toward(rng, tile, self._dist)
        if now >= self.flash_end:
            here = self._dist.get(tile)
            if here is not None:
                away = [
                    n
                    for n in self._adjacency.get(tile, ())
                    if self._dist.get(n, here) > here
                ]
                if away:
                    return away[rng.randrange(len(away))]
        return self._random_step(rng, tile)
