"""Statistical tests for traffic-model calibration (stdlib only).

The measured traffic models (``traffic.models``) are only credible if
every generator ships with a goodness-of-fit proof that the emitted
trace matches the model's published statistics.  This module provides
the two classical tests the calibration suite needs — one-sample
Kolmogorov–Smirnov for continuous inter-arrival distributions and
Pearson chi-square for binned/categorical checks — implemented on the
stdlib so CI needs no scipy.

Numerics follow the standard Numerical-Recipes formulations: the KS
tail probability uses the asymptotic Kolmogorov series with the
Stephens small-sample correction, and the chi-square tail uses the
regularized upper incomplete gamma function (series expansion below
``a + 1``, Lentz continued fraction above).  Both are deterministic
pure functions, so calibration tests pin seeds and compare p-values
against fixed thresholds without flake.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

__all__ = [
    "ks_statistic",
    "ks_pvalue",
    "ks_test",
    "chi_square_statistic",
    "chi_square_pvalue",
    "chi_square_test",
    "normal_cdf",
    "bin_counts",
]


# ----------------------------------------------------------------- KS test


def ks_statistic(samples: Sequence[float], cdf: Callable[[float], float]) -> float:
    """One-sample KS statistic D_n = sup_x |F_n(x) - F(x)|."""
    n = len(samples)
    if n == 0:
        raise ValueError("need at least one sample")
    ordered = sorted(samples)
    d = 0.0
    for i, x in enumerate(ordered):
        fx = cdf(x)
        if not 0.0 <= fx <= 1.0 + 1e-12:
            raise ValueError("cdf(%r) = %r outside [0, 1]" % (x, fx))
        d = max(d, fx - i / n, (i + 1) / n - fx)
    return d


def _kolmogorov_q(lam: float) -> float:
    """Q_KS(lambda) = 2 sum_{k>=1} (-1)^(k-1) exp(-2 k^2 lambda^2)."""
    if lam <= 0.0:
        return 1.0
    total = 0.0
    sign = 1.0
    for k in range(1, 101):
        term = sign * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-12 * abs(total) or abs(term) < 1e-300:
            break
        sign = -sign
    return max(0.0, min(1.0, 2.0 * total))


def ks_pvalue(d: float, n: int) -> float:
    """Asymptotic p-value for KS statistic ``d`` over ``n`` samples.

    Uses the Stephens correction ``(sqrt(n) + 0.12 + 0.11/sqrt(n)) d``,
    accurate to a few percent for n >= 8 — the calibration suite uses
    n in the hundreds to thousands.
    """
    if n < 1:
        raise ValueError("need at least one sample")
    sqrt_n = math.sqrt(n)
    return _kolmogorov_q((sqrt_n + 0.12 + 0.11 / sqrt_n) * d)


def ks_test(
    samples: Sequence[float], cdf: Callable[[float], float]
) -> Tuple[float, float]:
    """(D, p-value) of the one-sample KS test of ``samples`` vs ``cdf``."""
    d = ks_statistic(samples, cdf)
    return d, ks_pvalue(d, len(samples))


# ---------------------------------------------------------------- chi-square


def chi_square_statistic(
    observed: Sequence[float], expected: Sequence[float]
) -> float:
    """Pearson X^2 = sum (O-E)^2 / E over bins with E > 0."""
    if len(observed) != len(expected):
        raise ValueError("observed and expected must have equal length")
    if not observed:
        raise ValueError("need at least one bin")
    stat = 0.0
    for o, e in zip(observed, expected):
        if e <= 0.0:
            raise ValueError("expected counts must be positive (got %r)" % e)
        diff = o - e
        stat += diff * diff / e
    return stat


def _gamma_p_series(a: float, x: float) -> float:
    """Lower regularized gamma P(a, x) by series (for x < a + 1)."""
    term = 1.0 / a
    total = term
    ap = a
    for _ in range(500):
        ap += 1.0
        term *= x / ap
        total += term
        if abs(term) < abs(total) * 1e-14:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))

def _gamma_q_contfrac(a: float, x: float) -> float:
    """Upper regularized gamma Q(a, x) by Lentz continued fraction."""
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


def chi_square_pvalue(stat: float, dof: int) -> float:
    """P(X^2 >= stat) for ``dof`` degrees of freedom."""
    if dof < 1:
        raise ValueError("dof must be >= 1")
    if stat < 0.0:
        raise ValueError("statistic must be non-negative")
    if stat == 0.0:
        return 1.0
    a = dof / 2.0
    x = stat / 2.0
    if x < a + 1.0:
        p = 1.0 - _gamma_p_series(a, x)
    else:
        p = _gamma_q_contfrac(a, x)
    return max(0.0, min(1.0, p))


def chi_square_test(
    observed: Sequence[float], expected: Sequence[float], ddof: int = 0
) -> Tuple[float, float]:
    """(X^2, p-value); dof = bins - 1 - ddof."""
    stat = chi_square_statistic(observed, expected)
    dof = len(observed) - 1 - ddof
    if dof < 1:
        raise ValueError("not enough bins for %d estimated parameters" % ddof)
    return stat, chi_square_pvalue(stat, dof)


# ------------------------------------------------------------------ helpers


def normal_cdf(z: float) -> float:
    """Standard normal CDF via erf."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def bin_counts(
    samples: Sequence[float], edges: Sequence[float]
) -> List[int]:
    """Histogram counts for half-open bins [edges[i], edges[i+1])."""
    if len(edges) < 2:
        raise ValueError("need at least two bin edges")
    counts = [0] * (len(edges) - 1)
    for x in samples:
        if x < edges[0] or x >= edges[-1]:
            continue
        lo, hi = 0, len(edges) - 1
        while hi - lo > 1:  # rightmost edge <= x
            mid = (lo + hi) // 2
            if edges[mid] <= x:
                lo = mid
            else:
                hi = mid
        counts[lo] += 1
    return counts
