"""2-bits-per-character geo-hashing (paper §5).

The paper's implementation encodes one longitude bit and one latitude
bit per character, so dropping one trailing character grows the region
four-fold — that is exactly the level-1 -> level-2 relation of §4.3.
This module implements that scheme over (lat, lon) coordinates.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

__all__ = [
    "encode",
    "decode_bounds",
    "parent",
    "children",
    "neighbors_at_level",
    "covers",
]

#: Alphabet for 2-bit characters (values 0..3).
_ALPHABET = "0123"

_LAT_RANGE = (-90.0, 90.0)
_LON_RANGE = (-180.0, 180.0)


def encode(lat: float, lon: float, precision: int) -> str:
    """Geo-hash of ``precision`` characters, one lon bit + one lat bit each."""
    if not _LAT_RANGE[0] <= lat <= _LAT_RANGE[1]:
        raise ValueError("latitude %r out of range" % (lat,))
    if not _LON_RANGE[0] <= lon <= _LON_RANGE[1]:
        raise ValueError("longitude %r out of range" % (lon,))
    if precision < 1:
        raise ValueError("precision must be >= 1")
    lat_lo, lat_hi = _LAT_RANGE
    lon_lo, lon_hi = _LON_RANGE
    chars: List[str] = []
    for _ in range(precision):
        value = 0
        lon_mid = (lon_lo + lon_hi) / 2
        if lon >= lon_mid:
            value |= 2
            lon_lo = lon_mid
        else:
            lon_hi = lon_mid
        lat_mid = (lat_lo + lat_hi) / 2
        if lat >= lat_mid:
            value |= 1
            lat_lo = lat_mid
        else:
            lat_hi = lat_mid
        chars.append(_ALPHABET[value])
    return "".join(chars)


def decode_bounds(geohash: str) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    """((lat_lo, lat_hi), (lon_lo, lon_hi)) bounding box of a geo-hash."""
    if not geohash:
        raise ValueError("empty geo-hash")
    lat_lo, lat_hi = _LAT_RANGE
    lon_lo, lon_hi = _LON_RANGE
    for char in geohash:
        try:
            value = _ALPHABET.index(char)
        except ValueError:
            raise ValueError("invalid geo-hash character %r" % char)
        lon_mid = (lon_lo + lon_hi) / 2
        if value & 2:
            lon_lo = lon_mid
        else:
            lon_hi = lon_mid
        lat_mid = (lat_lo + lat_hi) / 2
        if value & 1:
            lat_lo = lat_mid
        else:
            lat_hi = lat_mid
    return (lat_lo, lat_hi), (lon_lo, lon_hi)


def parent(geohash: str) -> str:
    """The enclosing region: one character shorter, four times the area."""
    if len(geohash) < 2:
        raise ValueError("geo-hash %r has no parent" % geohash)
    return geohash[:-1]


def children(geohash: str) -> List[str]:
    """The four cells one level finer, in alphabet order.

    Deriving child tiles by string extension (rather than re-encoding
    coordinates near a cell edge) sidesteps the float boundary cases
    where a point on a shared edge encodes into the neighbouring cell.
    """
    if not geohash:
        raise ValueError("empty geo-hash")
    return [geohash + c for c in _ALPHABET]


def covers(prefix: str, geohash: str) -> bool:
    """Whether ``geohash`` lies inside the region named by ``prefix``."""
    return geohash.startswith(prefix)


def neighbors_at_level(geohash: str) -> List[str]:
    """The four sibling cells sharing this cell's parent (incl. itself)."""
    if len(geohash) < 2:
        raise ValueError("need at least two characters")
    prefix = geohash[:-1]
    return [prefix + c for c in _ALPHABET]


def center(geohash: str) -> Tuple[float, float]:
    """(lat, lon) center of the geo-hash cell."""
    (lat_lo, lat_hi), (lon_lo, lon_hi) = decode_bounds(geohash)
    return ((lat_lo + lat_hi) / 2, (lon_lo + lon_hi) / 2)


__all__.append("center")
