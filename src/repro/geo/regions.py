"""Deployment regions: level-1 / level-2 structure over geo-hashes.

Mirrors Fig. 6 of the paper: the deployment area is carved into level-1
regions (one CTA + a CPF pool + several BSs each, named by a geo-hash of
fixed precision); dropping the last geo-hash character yields the
level-2 region grouping four level-1 siblings.  Each region's CTA owns
two consistent hash rings:

* level-1 ring — the region's own CPFs; hashes a UE id to its primary.
* level-2 ring — every CPF in the level-2 region; replica placement
  picks N successors *excluding the level-1 members*, so backups always
  land outside the primary's region (different failure domains, and the
  state a Fast Handover needs is already in the neighbor region).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from . import geohash
from .ring import HashRing

__all__ = ["Region", "RegionMap"]


@dataclass
class Region:
    """One level-1 region: a geo-hash cell with its nodes' names."""

    geohash: str
    cta: str
    cpfs: List[str]
    bss: List[str] = field(default_factory=list)

    def __post_init__(self):
        if not self.cpfs:
            raise ValueError("region %s has no CPFs" % self.geohash)

    @property
    def level2(self) -> str:
        return geohash.parent(self.geohash)


class RegionMap:
    """The deployment: regions, their rings, and replica placement."""

    def __init__(self, regions: Iterable[Region], vnodes: int = 64):
        self.regions: Dict[str, Region] = {}
        self.vnodes = vnodes
        self._level1_rings: Dict[str, HashRing] = {}
        self._level2_rings: Dict[str, HashRing] = {}
        self._bs_region: Dict[str, str] = {}
        self._prefix_rings: Dict[str, HashRing] = {}
        #: every CPF's home region, including CPFs currently ringed out
        #: by a drain (scale-in / rolling upgrade): in-flight repair
        #: fetches still need ``region_of_cpf`` to resolve the victim.
        self._cpf_home: Dict[str, str] = {}
        for region in regions:
            self.add_region(region)
        if not self.regions:
            raise ValueError("deployment needs at least one region")

    # -- membership churn (CTA add/remove, §4.3 ring maintenance) --------------

    def add_region(self, region: Region) -> None:
        """Admit a level-1 region (one CTA + its CPF pool) to the rings.

        Consistent hashing keeps this cheap and local: level-1 lookups in
        other regions are untouched, and on the level-2 ring only keys
        that now hash to the new region's CPFs move (the monotonicity
        property ``tests/geo/test_ring_properties.py`` pins).  Callers
        owning live placements must re-place affected UEs themselves.
        """
        if region.geohash in self.regions:
            raise ValueError("duplicate region %s" % region.geohash)
        if len(region.geohash) < 2:
            raise ValueError(
                "region geo-hash %r too short for a level-2 parent" % region.geohash
            )
        for bs in region.bss:
            if bs in self._bs_region:
                raise ValueError("BS %s in two regions" % bs)
        self.regions[region.geohash] = region
        self._level1_rings[region.geohash] = HashRing(region.cpfs, self.vnodes)
        for bs in region.bss:
            self._bs_region[bs] = region.geohash
        for cpf in region.cpfs:
            self._cpf_home[cpf] = region.geohash
        ring2 = self._level2_rings.get(region.level2)
        if ring2 is None:
            self._level2_rings[region.level2] = HashRing(region.cpfs, self.vnodes)
        else:
            for cpf in region.cpfs:
                ring2.add(cpf)
        # Wider rings are rebuilt lazily on next use.
        self._prefix_rings.clear()

    def remove_region(self, region_hash: str) -> Region:
        """Retire a level-1 region from every ring; returns it.

        The last region of the deployment cannot be removed.  As with
        :meth:`add_region`, only keys owned by the removed CPFs move.
        """
        region = self.region(region_hash)
        if len(self.regions) == 1:
            raise ValueError("cannot remove the last region %s" % region_hash)
        del self.regions[region_hash]
        del self._level1_rings[region_hash]
        for bs in region.bss:
            self._bs_region.pop(bs, None)
        ring2 = self._level2_rings[region.level2]
        for cpf in region.cpfs:
            ring2.remove(cpf)
            self._cpf_home.pop(cpf, None)
        if not len(ring2):
            del self._level2_rings[region.level2]
        self._prefix_rings.clear()
        return region

    def add_cpf(self, region_hash: str, cpf_name: str) -> None:
        """Admit one CPF to an existing region's rings (scale-out).

        The single-node analogue of :meth:`add_region`: the CPF enters
        the region's level-1 ring and the parent's level-2 ring, wider
        prefix rings rebuild lazily, and — by consistent-hashing
        monotonicity — only keys that now hash to the joiner move.
        Callers re-place affected UEs via ``stale_placements``.
        """
        region = self.region(region_hash)
        if cpf_name in region.cpfs:
            raise ValueError(
                "CPF %s already in region %s" % (cpf_name, region_hash)
            )
        home = self._cpf_home.get(cpf_name)
        if home is not None and home != region_hash:
            raise ValueError(
                "CPF %s already homed in region %s" % (cpf_name, home)
            )
        region.cpfs.append(cpf_name)
        self._level1_rings[region_hash].add(cpf_name)
        self._level2_rings[region.level2].add(cpf_name)
        self._cpf_home[cpf_name] = region_hash
        self._prefix_rings.clear()

    def remove_cpf(self, region_hash: str, cpf_name: str) -> None:
        """Ring a CPF out of its region (drain for scale-in / upgrade).

        Refuses to empty the region's level-1 ring or the parent's
        level-2 ring — scale-in must never remove the last replica
        target of a level-2 parent.  The CPF's home stays recorded so
        in-flight repair fetches can still resolve it as a *source*
        (``region_of_cpf``); re-adding the same name later is allowed.
        """
        region = self.region(region_hash)
        if cpf_name not in region.cpfs:
            raise KeyError(
                "CPF %s not in region %s" % (cpf_name, region_hash)
            )
        if len(region.cpfs) <= 1:
            raise ValueError(
                "cannot remove the last CPF of region %s" % region_hash
            )
        ring2 = self._level2_rings[region.level2]
        if len(ring2) <= 1:
            raise ValueError(
                "cannot remove the last CPF of level-2 parent %s"
                % region.level2
            )
        region.cpfs.remove(cpf_name)
        self._level1_rings[region_hash].remove(cpf_name)
        ring2.remove(cpf_name)
        self._prefix_rings.clear()

    # -- lookups -----------------------------------------------------------

    def region(self, region_hash: str) -> Region:
        try:
            return self.regions[region_hash]
        except KeyError:
            raise KeyError("unknown region %r" % region_hash)

    def region_of_bs(self, bs: str) -> Region:
        try:
            return self.regions[self._bs_region[bs]]
        except KeyError:
            raise KeyError("BS %r not in any region" % bs)

    def region_of_cpf(self, cpf: str) -> Region:
        home = self._cpf_home.get(cpf)
        if home is not None:
            region = self.regions.get(home)
            if region is not None:
                return region
        for region in self.regions.values():
            if cpf in region.cpfs:
                return region
        raise KeyError("CPF %r not in any region" % cpf)

    def level1_ring(self, region_hash: str) -> HashRing:
        return self._level1_rings[self.region(region_hash).geohash]

    def level2_ring(self, region_hash: str) -> HashRing:
        return self._level2_rings[self.region(region_hash).level2]

    def all_cpfs(self) -> List[str]:
        return sorted(cpf for r in self.regions.values() for cpf in r.cpfs)

    def all_ctas(self) -> List[str]:
        return sorted(r.cta for r in self.regions.values())

    # -- generalized multi-level rings (paper footnote 14) ---------------------

    def level_ring(self, region_hash: str, level: int) -> HashRing:
        """The consistent hash ring over all CPFs within the level-``k``
        region enclosing ``region_hash``.

        ``level=1`` is the region's own ring; ``level=2`` the paper's
        level-2 ring; higher levels strip further geo-hash characters
        (the paper leaves >2 rings as future work; implemented here).
        Rings are cached after first construction.
        """
        region = self.region(region_hash)
        if level < 1:
            raise ValueError("level must be >= 1")
        if level == 1:
            return self._level1_rings[region.geohash]
        prefix = region.geohash[: -(level - 1)]
        if not prefix:
            prefix = ""  # whole deployment
        cache = self._prefix_rings
        ring = cache.get(prefix)
        if ring is None:
            members = [
                cpf
                for r in self.regions.values()
                if r.geohash.startswith(prefix)
                for cpf in r.cpfs
            ]
            ring = HashRing(members, self.vnodes)
            cache[prefix] = ring
        return ring

    def shares_level(self, region_a: str, region_b: str, level: int) -> bool:
        """Whether two regions fall under one level-``k`` region."""
        if level < 1:
            raise ValueError("level must be >= 1")
        if level == 1:
            return region_a == region_b
        a = self.region(region_a).geohash[: -(level - 1)]
        b = self.region(region_b).geohash[: -(level - 1)]
        return a == b

    # -- placement (§4.3) ---------------------------------------------------

    def primary_for(self, ue_key: str, region_hash: str) -> str:
        """Primary CPF: hash of the UE id on the region's level-1 ring."""
        return self.level1_ring(region_hash).lookup(ue_key)

    def replicas_for(
        self, ue_key: str, region_hash: str, n: int, level: int = 2
    ) -> List[str]:
        """N backup CPFs on the level-``k`` ring, outside the level-1 ring.

        ``level=2`` is the paper's placement; higher levels spread the
        replicas over a wider geography (more handovers become Fast
        Handovers at the cost of longer checkpoint paths).  If the
        level-``k`` ring has too few CPFs outside this region (a region
        that is the lone child of its parent tile, or a sparse edge of
        the deployment), escalate through successively wider rings up to
        the whole deployment before falling back to level-1 members
        other than the primary — a lone region under a parent must not
        silently lose all geo-replication while other regions exist.
        """
        region = self.region(region_hash)
        deepest = len(region.geohash)  # level whose prefix is "" (all regions)
        eff_level = max(level, 2)
        replicas = self.level_ring(region_hash, eff_level).successors(
            ue_key, n, exclude=region.cpfs
        )
        while len(replicas) < n and eff_level < deepest + 1:
            eff_level += 1
            wider = self.level_ring(region_hash, eff_level).successors(
                ue_key, n - len(replicas), exclude=list(region.cpfs) + replicas
            )
            replicas.extend(wider)
        if len(replicas) < n:
            primary = self.primary_for(ue_key, region_hash)
            extra = self.level1_ring(region_hash).successors(
                ue_key, n - len(replicas), exclude=[primary] + replicas
            )
            replicas.extend(extra)
        return replicas

    def shares_level2(self, region_a: str, region_b: str) -> bool:
        """Whether a handover between these regions can be a Fast Handover."""
        return self.region(region_a).level2 == self.region(region_b).level2
