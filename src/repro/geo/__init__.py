"""Geographic substrate: 2-bit geo-hashing, consistent hash rings,
and the level-1/level-2 region model of the paper's §4.3.
"""

from . import geohash
from .regions import Region, RegionMap
from .ring import HashRing

__all__ = ["geohash", "HashRing", "Region", "RegionMap"]
