"""Consistent hash ring with virtual nodes.

The CTA implements two of these (paper §4.3): the level-1 ring over the
CPFs of its own region (primary selection) and the level-2 ring over all
CPFs of the enclosing region (replica placement).  The same structure
doubles as the CTA's load balancer (§5: "consistent hashing based load
balancing scheme within the CTA").
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["HashRing"]


_hash_cache: Dict[str, int] = {}


def _hash64(data: str) -> int:
    # Pure function over strings that repeat heavily (UE ids, member
    # vnode labels) — memoised; at city scale the cache tops out at one
    # entry per UE plus one per vnode.
    h = _hash_cache.get(data)
    if h is None:
        h = _hash_cache[data] = int.from_bytes(
            hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
        )
    return h


class HashRing:
    """Consistent hashing over named members with virtual nodes."""

    def __init__(self, members: Iterable[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._members: Dict[str, bool] = {}
        for member in members:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    def add(self, member: str) -> None:
        if member in self._members:
            raise ValueError("member %r already on ring" % member)
        self._members[member] = True
        for v in range(self.vnodes):
            point = _hash64("%s#%d" % (member, v))
            bisect.insort(self._points, (point, member))

    def remove(self, member: str) -> None:
        if member not in self._members:
            raise KeyError("member %r not on ring" % member)
        del self._members[member]
        self._points = [(p, m) for (p, m) in self._points if m != member]

    def lookup(self, key: str) -> str:
        """The member owning ``key`` (first point clockwise)."""
        if not self._points:
            raise LookupError("ring is empty")
        h = _hash64(key)
        idx = bisect.bisect_right(self._points, (h, "￿"))
        if idx == len(self._points):
            idx = 0
        return self._points[idx][1]

    def successors(
        self, key: str, n: int, exclude: Optional[Iterable[str]] = None
    ) -> List[str]:
        """Up to ``n`` distinct members clockwise from ``key``.

        ``exclude`` filters members out *before* counting — this is how
        replica placement skips the level-1 members on the level-2 ring
        (§4.3: "N consecutive replicas on a level-2 ring (not included
        in the level-1 ring)").
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return []
        if not self._points:
            raise LookupError("ring is empty")
        excluded = frozenset(exclude or ())
        h = _hash64(key)
        start = bisect.bisect_right(self._points, (h, "￿"))
        chosen: List[str] = []
        seen = set()
        for i in range(len(self._points)):
            _point, member = self._points[(start + i) % len(self._points)]
            if member in seen or member in excluded:
                continue
            seen.add(member)
            chosen.append(member)
            if len(chosen) == n:
                break
        return chosen

    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each member owns (load-balance check)."""
        counts = {m: 0 for m in self._members}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts
