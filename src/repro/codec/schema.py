"""Typed message schemas shared by every serialization engine.

Cellular control messages (S1AP / NGAP / NAS) are deeply structured:
sequences of information elements, optional fields, CHOICEs (unions),
unsigned integers with range constraints, bit strings, and nesting.  The
paper's serialization analysis (§3.2, §4.4) hinges on exactly these
structures — unions and unsigned types are what LCM cannot express, and
constrained integers are what makes ASN.1 PER compact.  This module is
the single source of truth those codecs encode from.

Values are plain Python data:

* table  -> ``dict`` (field name -> value; optional fields may be absent)
* union  -> ``(alternative_name, value)`` tuple
* array  -> ``list``
* enum   -> ``str`` (one of the declared names)
* bitstr -> ``(int_value, bit_length)`` tuple
* bytes/str/int/bool/float -> themselves
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SchemaError",
    "Type",
    "IntType",
    "BoolType",
    "FloatType",
    "EnumType",
    "BytesType",
    "StringType",
    "BitStringType",
    "ArrayType",
    "Field",
    "TableType",
    "UnionType",
    "U8",
    "U16",
    "U24",
    "U32",
    "U64",
    "I32",
    "I64",
    "BOOL",
    "F32",
    "F64",
    "validate",
    "count_elements",
]


class SchemaError(Exception):
    """A value does not conform to its schema."""


class Type:
    """Base class for schema types."""

    kind = "abstract"

    def __repr__(self) -> str:
        return "<%s>" % self.__class__.__name__


class IntType(Type):
    """Integer, optionally range-constrained (ASN.1-style).

    ``bits``/``signed`` describe the natural machine representation used
    by the fixed-width codecs (CDR, LCM, FlatBuffers); ``lo``/``hi`` are
    the PER constraint.  Unsigned-ness matters: the paper notes LCM has
    no unsigned types, so LCM rejects schemas that use them.
    """

    kind = "int"

    def __init__(
        self,
        bits: int = 32,
        signed: bool = False,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
    ):
        if bits not in (8, 16, 24, 32, 64):
            raise SchemaError("unsupported integer width: %d" % bits)
        self.bits = bits
        self.signed = signed
        if lo is None:
            lo = -(1 << (bits - 1)) if signed else 0
        if hi is None:
            hi = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
        if lo > hi:
            raise SchemaError("empty integer range [%d, %d]" % (lo, hi))
        self.lo = lo
        self.hi = hi

    @property
    def range_size(self) -> int:
        return self.hi - self.lo + 1

    @property
    def storage_bytes(self) -> int:
        return (self.bits + 7) // 8 if self.bits != 24 else 4


class BoolType(Type):
    kind = "bool"


class FloatType(Type):
    kind = "float"

    def __init__(self, bits: int = 64):
        if bits not in (32, 64):
            raise SchemaError("float width must be 32 or 64")
        self.bits = bits


class EnumType(Type):
    """Named enumeration; encoded as a small constrained integer."""

    kind = "enum"

    def __init__(self, name: str, names: Sequence[str]):
        if not names:
            raise SchemaError("enum %r needs at least one member" % name)
        if len(set(names)) != len(names):
            raise SchemaError("enum %r has duplicate members" % name)
        self.name = name
        self.names = list(names)
        self.index = {n: i for i, n in enumerate(self.names)}


class BytesType(Type):
    """Octet string, optionally length-bounded."""

    kind = "bytes"

    def __init__(self, max_len: Optional[int] = None):
        if max_len is not None and max_len < 0:
            raise SchemaError("negative max_len")
        self.max_len = max_len


class StringType(Type):
    """UTF-8 character string."""

    kind = "string"

    def __init__(self, max_len: Optional[int] = None):
        self.max_len = max_len


class BitStringType(Type):
    """ASN.1 BIT STRING; values are ``(int_value, bit_length)``.

    FlatBuffers has no native bit string (one of the gaps the paper
    mentions), so byte-aligned codecs round it up to whole octets.
    """

    kind = "bitstring"

    def __init__(self, nbits: int):
        if nbits <= 0:
            raise SchemaError("bit string needs a positive width")
        self.nbits = nbits


class ArrayType(Type):
    """SEQUENCE OF — homogeneous list, optionally bounded."""

    kind = "array"

    def __init__(self, element: Type, max_len: Optional[int] = None):
        self.element = element
        self.max_len = max_len


class Field:
    """One named member of a table."""

    __slots__ = ("name", "type", "optional")

    def __init__(self, name: str, type_: Type, optional: bool = False):
        self.name = name
        self.type = type_
        self.optional = optional

    def __repr__(self) -> str:
        return "Field(%r, %s%s)" % (
            self.name,
            self.type.kind,
            ", optional" if self.optional else "",
        )


class TableType(Type):
    """SEQUENCE — an ordered set of named, possibly optional fields."""

    kind = "table"

    def __init__(self, name: str, fields: Sequence[Field]):
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError("table %r has duplicate field names" % name)
        self.name = name
        self.fields = list(fields)
        self.field_map = {f.name: f for f in self.fields}

    def field(self, name: str) -> Field:
        try:
            return self.field_map[name]
        except KeyError:
            raise SchemaError("table %r has no field %r" % (self.name, name))


class UnionType(Type):
    """CHOICE — exactly one of several named alternatives.

    Alternatives may be full tables or bare scalars; the paper's svtable
    optimization targets the (very common) single-scalar alternatives.
    """

    kind = "union"

    def __init__(self, name: str, alts: Sequence[Tuple[str, Type]]):
        if not alts:
            raise SchemaError("union %r needs at least one alternative" % name)
        alt_names = [n for n, _ in alts]
        if len(set(alt_names)) != len(alt_names):
            raise SchemaError("union %r has duplicate alternatives" % name)
        self.name = name
        self.alts = list(alts)
        self.index = {n: i for i, (n, _) in enumerate(self.alts)}

    def alt_type(self, alt_name: str) -> Type:
        try:
            return self.alts[self.index[alt_name]][1]
        except KeyError:
            raise SchemaError("union %r has no alternative %r" % (self.name, alt_name))


# Convenience singletons for common widths.
U8 = IntType(8)
U16 = IntType(16)
U24 = IntType(24)
U32 = IntType(32)
U64 = IntType(64)
I32 = IntType(32, signed=True)
I64 = IntType(64, signed=True)
BOOL = BoolType()
F32 = FloatType(32)
F64 = FloatType(64)


#: compiled validator per schema type.  Validation runs on every encode
#: — the codec hot path — so the per-call kind dispatch and constraint
#: attribute lookups are hoisted into a closure compiled once per type.
#: Weak keys let transient (e.g. property-test generated) types collect.
_VALIDATORS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _validator(type_: Type) -> Callable[[Any, str], None]:
    check = _VALIDATORS.get(type_)
    if check is None:
        check = _VALIDATORS[type_] = _compile_validator(type_)
    return check


def _compile_validator(type_: Type) -> Callable[[Any, str], None]:
    kind = type_.kind
    if kind == "int":
        lo, hi = type_.lo, type_.hi

        def check(value, path):
            if not isinstance(value, int) or isinstance(value, bool):
                raise SchemaError("%s: expected int, got %r" % (path, value))
            if not lo <= value <= hi:
                raise SchemaError("%s: %d outside [%d, %d]" % (path, value, lo, hi))

    elif kind == "bool":

        def check(value, path):
            if not isinstance(value, bool):
                raise SchemaError("%s: expected bool, got %r" % (path, value))

    elif kind == "float":

        def check(value, path):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SchemaError("%s: expected float, got %r" % (path, value))

    elif kind == "enum":
        index, ename = type_.index, type_.name

        def check(value, path):
            if value not in index:
                raise SchemaError("%s: %r not in enum %s" % (path, value, ename))

    elif kind == "bytes":
        max_len = type_.max_len

        def check(value, path):
            if not isinstance(value, (bytes, bytearray)):
                raise SchemaError("%s: expected bytes, got %r" % (path, value))
            if max_len is not None and len(value) > max_len:
                raise SchemaError("%s: byte string longer than %d" % (path, max_len))

    elif kind == "string":
        max_len = type_.max_len

        def check(value, path):
            if not isinstance(value, str):
                raise SchemaError("%s: expected str, got %r" % (path, value))
            if max_len is not None and len(value) > max_len:
                raise SchemaError("%s: string longer than %d" % (path, max_len))

    elif kind == "bitstring":
        declared = type_.nbits

        def check(value, path):
            if (
                not isinstance(value, tuple)
                or len(value) != 2
                or not isinstance(value[0], int)
                or not isinstance(value[1], int)
            ):
                raise SchemaError("%s: bit string must be (int, nbits)" % path)
            intval, nbits = value
            if nbits != declared:
                raise SchemaError(
                    "%s: bit string width %d != declared %d" % (path, nbits, declared)
                )
            if intval < 0 or intval >> nbits:
                raise SchemaError("%s: bit string value out of range" % path)

    elif kind == "array":
        max_len = type_.max_len
        elem_check = _validator(type_.element)

        def check(value, path):
            if not isinstance(value, list):
                raise SchemaError("%s: expected list, got %r" % (path, value))
            if max_len is not None and len(value) > max_len:
                raise SchemaError("%s: array longer than %d" % (path, max_len))
            for i, item in enumerate(value):
                elem_check(item, "%s[%d]" % (path, i))

    elif kind == "table":
        field_map, tname = type_.field_map, type_.name
        fields_c = [(f.name, f.optional, _validator(f.type)) for f in type_.fields]

        def check(value, path):
            if not isinstance(value, dict):
                raise SchemaError("%s: expected dict for table %s" % (path, tname))
            extra = [k for k in value if k not in field_map]
            if extra:
                raise SchemaError(
                    "%s: unknown fields %s for table %s" % (path, sorted(extra), tname)
                )
            for name, optional, fcheck in fields_c:
                if name not in value:
                    if not optional:
                        raise SchemaError(
                            "%s: missing required field %r of %s" % (path, name, tname)
                        )
                    continue
                fcheck(value[name], path + "." + name)

    elif kind == "union":
        alt_type = type_.alt_type

        def check(value, path):
            if not isinstance(value, tuple) or len(value) != 2:
                raise SchemaError("%s: union value must be (alt_name, value)" % path)
            alt_name, inner = value
            inner_type = alt_type(alt_name)
            _validator(inner_type)(inner, "%s<%s>" % (path, alt_name))

    else:

        def check(value, path, _kind=kind):
            raise SchemaError("unknown schema kind %r" % _kind)

    return check


def validate(value: Any, type_: Type, path: str = "$") -> None:
    """Raise :class:`SchemaError` unless ``value`` conforms to ``type_``."""
    _validator(type_)(value, path)


def count_elements(value: Any, type_: Type) -> int:
    """Number of leaf information elements actually present in a value.

    Used to place real messages on the x-axis of Fig. 18 (speedup vs
    number of information elements).
    """
    kind = type_.kind
    if kind == "table":
        total = 0
        for field in type_.fields:
            if field.name in value:
                total += count_elements(value[field.name], field.type)
        return total
    if kind == "union":
        return count_elements(value[1], type_.alt_type(value[0]))
    if kind == "array":
        return sum(count_elements(item, type_.element) for item in value) or 1
    return 1
