"""Codec interface and registry.

Every serialization engine implements :class:`Codec`: schema-driven
``encode``/``decode`` between plain-Python values (see
:mod:`repro.codec.schema`) and bytes.  The registry lets experiments
select engines by name (``"asn1per"``, ``"flatbuffers"``,
``"flatbuffers_opt"``, ``"protobuf"``, ``"cdr"``, ``"lcm"``,
``"flexbuffers"``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from .schema import Type

__all__ = ["Codec", "UnsupportedSchema", "register_codec", "get_codec", "codec_names"]


class UnsupportedSchema(Exception):
    """The codec cannot express this schema (e.g. LCM with unions)."""


class Codec:
    """Abstract serialization engine."""

    #: registry key; subclasses must override.
    name = "abstract"

    def encode(self, type_: Type, value: Any) -> bytes:
        raise NotImplementedError

    def decode(self, type_: Type, data: bytes) -> Any:
        raise NotImplementedError

    def check_schema(self, type_: Type) -> None:
        """Raise :class:`UnsupportedSchema` if ``type_`` is inexpressible.

        Default: everything is supported.
        """

    def roundtrip(self, type_: Type, value: Any) -> Any:
        return self.decode(type_, self.encode(type_, value))

    def encoded_size(self, type_: Type, value: Any) -> int:
        return len(self.encode(type_, value))

    def __repr__(self) -> str:
        return "<Codec %s>" % self.name


_REGISTRY: Dict[str, Callable[[], Codec]] = {}
_INSTANCES: Dict[str, Codec] = {}


def register_codec(name: str, factory: Callable[[], Codec]) -> None:
    if name in _REGISTRY:
        raise ValueError("codec %r already registered" % name)
    _REGISTRY[name] = factory


def get_codec(name: str) -> Codec:
    """Return the (shared, stateless) codec instance for ``name``."""
    if name not in _INSTANCES:
        try:
            factory = _REGISTRY[name]
        except KeyError:
            raise KeyError(
                "unknown codec %r (known: %s)" % (name, ", ".join(sorted(_REGISTRY)))
            )
        _INSTANCES[name] = factory()
    return _INSTANCES[name]


def codec_names() -> List[str]:
    return sorted(_REGISTRY)
