"""Serialization engines for cellular control messages (§4.4 substrate).

Seven codecs over one schema model:

* ``asn1per`` — ASN.1 unaligned PER (the incumbent; sequential decode).
* ``flatbuffers`` — real FlatBuffers wire format (vtables, random access).
* ``flatbuffers_opt`` — the paper's svtable-optimized FlatBuffers.
* ``protobuf`` — proto3 wire format (varints, tags).
* ``cdr`` — Fast-CDR-style aligned CDR.
* ``lcm`` — LCM-style; rejects unions/unsigned (the paper's point).
* ``flexbuffers`` — schema-less self-describing encoding.

Plus the :class:`CostModel` that prices codec work as simulated CPU time.
"""

from . import asn1per, cdr, flatbuf, flexbuf, lcm, protobuf  # noqa: F401  (register)
from .base import Codec, UnsupportedSchema, codec_names, get_codec, register_codec
from .bitio import BitReader, BitWriter, ByteReader, ByteWriter, CodecError
from .costs import DEFAULT_COSTS, CostModel, LinearCost, fit_linear, measure
from .flatbuf import FlatBuffersCodec, FlatTable
from .schema import (
    BOOL,
    F32,
    F64,
    I32,
    I64,
    U8,
    U16,
    U24,
    U32,
    U64,
    ArrayType,
    BitStringType,
    BoolType,
    BytesType,
    EnumType,
    Field,
    FloatType,
    IntType,
    SchemaError,
    StringType,
    TableType,
    Type,
    UnionType,
    count_elements,
    validate,
)

__all__ = [
    "Codec",
    "UnsupportedSchema",
    "CodecError",
    "get_codec",
    "register_codec",
    "codec_names",
    "CostModel",
    "LinearCost",
    "DEFAULT_COSTS",
    "measure",
    "fit_linear",
    "FlatBuffersCodec",
    "FlatTable",
    "SchemaError",
    "Type",
    "IntType",
    "BoolType",
    "FloatType",
    "EnumType",
    "BytesType",
    "StringType",
    "BitStringType",
    "ArrayType",
    "Field",
    "TableType",
    "UnionType",
    "validate",
    "count_elements",
    "U8",
    "U16",
    "U24",
    "U32",
    "U64",
    "I32",
    "I64",
    "BOOL",
    "F32",
    "F64",
    "BitReader",
    "BitWriter",
    "ByteReader",
    "ByteWriter",
]
