"""FlatBuffers wire format, from scratch, plus the paper's optimization.

The format follows the real FlatBuffers layout: a root ``uoffset`` at
position 0, tables holding an ``soffset`` to a shared vtable plus inline
scalar slots and 4-byte ``uoffset`` references to out-of-line strings,
vectors and sub-tables.  The properties the paper leans on (§4.4) hold
structurally:

* **Random access on decode** — any field is reachable through its vtable
  slot without touching other fields (see :class:`FlatTable`, the lazy
  accessor), unlike PER's sequential bit stream.
* **vtable size overhead** — every table costs a vtable
  (``2 + 2 + 2·nfields`` bytes, deduplicated per buffer) and an
  ``soffset``, which is why FlatBuffers messages are larger than PER.

**Optimized FlatBuffers (svtable)**: cellular CHOICEs very often carry a
single value.  Standard FlatBuffers forces union members to be tables, so
a single-scalar alternative pays vtable (6 B) + soffset (4 B) = 10 bytes
of metadata; a single var-length alternative additionally pays its field
slot, ~14 bytes.  With ``optimize_unions=True`` the codec stores such
alternatives directly — the union value offset points at the bare scalar
or string — reproducing the paper's svtable saving and its slightly
faster times (one less indirection).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Tuple

from .base import Codec, register_codec
from .bitio import ByteReader, ByteWriter, CodecError
from .schema import Field, TableType, Type, validate

__all__ = ["FlatBuffersCodec", "FlatTable"]

_SOFFSET_SIZE = 4
_UOFFSET_SIZE = 4


def _scalar_width(t: Type) -> int:
    """Inline slot width for scalar kinds; 0 means not inline."""
    kind = t.kind
    if kind == "int":
        return t.storage_bytes
    if kind == "bool":
        return 1
    if kind == "float":
        return t.bits // 8
    if kind == "enum":
        return 1 if len(t.names) <= 256 else 2
    return 0


def _is_single_scalar_union_alt(t: Type) -> bool:
    """Alt that svtable stores inline: a bare scalar, or 1-scalar table.

    The wrapped-table form only qualifies when its single field is
    *required* — an optional field's presence is dynamic, so the
    metadata-free encoding could not distinguish absent from present.
    """
    if _scalar_width(t):
        return True
    if t.kind == "table" and len(t.fields) == 1 and not t.fields[0].optional:
        return _scalar_width(t.fields[0].type) > 0
    return False


def _is_single_varlen_union_alt(t: Type) -> bool:
    """Alt svtable stores as a bare string/bytes: 1-varlen-field table."""
    if t.kind in ("bytes", "string"):
        return True
    if t.kind == "table" and len(t.fields) == 1 and not t.fields[0].optional:
        return t.fields[0].type.kind in ("bytes", "string")
    return False


class _Builder:
    """Front-to-back builder with forward-reference patching.

    Real FlatBuffers builds back-to-front; building forward with patched
    uoffsets produces the same structures (offsets are relative, and
    soffsets are signed) while staying simple in Python.
    """

    def __init__(self, optimize_unions: bool):
        self.w = ByteWriter("little")
        self.optimize_unions = optimize_unions
        self._vtable_cache: Dict[Tuple[int, ...], int] = {}
        # (slot_position, target_resolver) pairs patched at the end
        self._pending: List[Tuple[int, Any]] = []

    # -- low level helpers -------------------------------------------------

    def _reserve(self, nbytes: int) -> int:
        pos = self.w.tell()
        self.w.write(b"\x00" * nbytes)
        return pos

    def _patch_uoffset(self, slot_pos: int, target_pos: int) -> None:
        delta = target_pos - slot_pos
        if delta <= 0:
            raise CodecError("uoffset must point forward")
        self.w.patch_uint(slot_pos, delta, _UOFFSET_SIZE)

    # -- leaf writers --------------------------------------------------------

    def write_string(self, raw: bytes) -> int:
        self.w.pad_to(4)
        pos = self.w.tell()
        self.w.write_uint(len(raw), 4)
        self.w.write(raw)
        self.w.write(b"\x00")  # FlatBuffers strings are NUL-terminated
        return pos

    def write_scalar_inline(self, t: Type, v: Any) -> bytes:
        kind = t.kind
        if kind == "int":
            width = t.storage_bytes
            return (v & ((1 << (width * 8)) - 1)).to_bytes(width, "little")
        if kind == "bool":
            return b"\x01" if v else b"\x00"
        if kind == "float":
            return struct.pack("<d" if t.bits == 64 else "<f", v)
        if kind == "enum":
            return t.index[v].to_bytes(_scalar_width(t), "little")
        raise CodecError("not an inline scalar: %r" % kind)

    def write_bare_scalar(self, t: Type, v: Any) -> int:
        """Out-of-line scalar for svtable-optimized unions."""
        width = _scalar_width(t)
        self.w.pad_to(max(width, 1))
        pos = self.w.tell()
        self.w.write(self.write_scalar_inline(t, v))
        return pos

    def write_vector(self, elem: Type, items: list) -> int:
        width = _scalar_width(elem)
        self.w.pad_to(4)
        pos = self.w.tell()
        self.w.write_uint(len(items), 4)
        if width:  # inline scalar elements
            for item in items:
                self.w.write(self.write_scalar_inline(elem, item))
        else:  # reference elements (uoffsets patched later)
            slots = [self._reserve(_UOFFSET_SIZE) for _ in items]
            for slot, item in zip(slots, items):
                child = self.write_value(elem, item)
                self._patch_uoffset(slot, child)
        return pos

    # -- composite writers ---------------------------------------------------

    def write_value(self, t: Type, v: Any) -> int:
        """Write an out-of-line value, returning its buffer position."""
        kind = t.kind
        if kind == "table":
            return self.write_table(t, v)
        if kind == "string":
            return self.write_string(v.encode("utf-8"))
        if kind == "bytes":
            return self.write_vector_bytes(bytes(v))
        if kind == "bitstring":
            intval, nbits = v
            nbytes = (nbits + 7) // 8
            return self.write_vector_bytes(intval.to_bytes(nbytes, "big"))
        if kind == "array":
            return self.write_vector(t.element, v)
        if kind == "union":
            # Real FlatBuffers has no bare vectors-of-unions: union
            # elements are wrapped in a single-field table.
            wrapper = TableType("_uelem", [Field("u", t)])
            return self.write_table(wrapper, {"u": v})
        raise CodecError("cannot write %r out of line" % kind)

    def write_vector_bytes(self, raw: bytes) -> int:
        self.w.pad_to(4)
        pos = self.w.tell()
        self.w.write_uint(len(raw), 4)
        self.w.write(raw)
        return pos

    def write_table(self, t: TableType, v: dict) -> int:
        # Layout: compute slots.  Each present field gets a slot; unions
        # expand to a type slot (u8) and a value slot (uoffset).
        slots: List[Tuple[Field, str, int]] = []  # (field, role, width)
        for field in t.fields:
            if field.name not in v:
                continue
            ft = field.type
            if ft.kind == "union":
                slots.append((field, "union_type", 1))
                slots.append((field, "union_value", _UOFFSET_SIZE))
            else:
                width = _scalar_width(ft)
                if width:
                    slots.append((field, "scalar", width))
                else:
                    slots.append((field, "ref", _UOFFSET_SIZE))

        # Assign in-table offsets (after the 4-byte soffset), aligning each
        # slot to its width like the real builder does.
        offsets: List[int] = []
        cursor = _SOFFSET_SIZE
        for _field, _role, width in slots:
            if cursor % width:
                cursor += width - (cursor % width)
            offsets.append(cursor)
            cursor += width
        table_size = cursor

        # vtable slot ids: one entry per (field, role) position in schema
        # order, so absent optional fields get offset 0.
        vt_entries: List[int] = []
        slot_lookup = {}
        for (field, role, _w), off in zip(slots, offsets):
            slot_lookup[(field.name, role)] = off
        for field in t.fields:
            if field.type.kind == "union":
                vt_entries.append(slot_lookup.get((field.name, "union_type"), 0))
                vt_entries.append(slot_lookup.get((field.name, "union_value"), 0))
            else:
                role = "scalar" if _scalar_width(field.type) else "ref"
                vt_entries.append(slot_lookup.get((field.name, role), 0))

        self.w.pad_to(4)
        table_pos = self.w.tell()
        self._reserve(table_size)

        # Fill inline slots; remember reference slots for patching.
        ref_jobs: List[Tuple[int, Type, Any]] = []
        for (field, role, width), off in zip(slots, offsets):
            slot_pos = table_pos + off
            ft = field.type
            fv = v[field.name]
            if role == "scalar":
                raw = self.write_scalar_inline(ft, fv)
                self.w.patch_uint(
                    slot_pos, int.from_bytes(raw, "little"), len(raw)
                )
            elif role == "union_type":
                alt_idx = ft.index[fv[0]] + 1  # 0 is NONE in FlatBuffers
                self.w.patch_uint(slot_pos, alt_idx, 1)
            elif role in ("union_value", "ref"):
                ref_jobs.append((slot_pos, ft, fv))

        # vtable (deduplicated within the buffer).
        vt_key = (table_size, tuple(vt_entries))
        vt_pos = self._vtable_cache.get(vt_key)
        if vt_pos is None:
            self.w.pad_to(2)
            vt_pos = self.w.tell()
            vt_size = 4 + 2 * len(vt_entries)
            self.w.write_uint(vt_size, 2)
            self.w.write_uint(table_size, 2)
            for entry in vt_entries:
                self.w.write_uint(entry, 2)
            self._vtable_cache[vt_key] = vt_pos
        # soffset: vtable_pos = table_pos - soffset
        self.w.patch_uint(
            table_pos,
            (table_pos - vt_pos) & 0xFFFFFFFF,
            _SOFFSET_SIZE,
        )

        # Children after the table; patch uoffsets.
        for slot_pos, ft, fv in ref_jobs:
            if ft.kind == "union":
                child = self._write_union_value(ft, fv)
            else:
                child = self.write_value(ft, fv)
            self._patch_uoffset(slot_pos, child)
        return table_pos

    def _write_union_value(self, t: Type, v: Tuple[str, Any]) -> int:
        alt_name, inner = v
        alt_type = t.alt_type(alt_name)
        if self.optimize_unions and _is_single_scalar_union_alt(alt_type):
            # svtable: bare scalar, no wrapping table, no vtable.
            if alt_type.kind == "table":
                inner_field = alt_type.fields[0]
                return self.write_bare_scalar(inner_field.type, inner[inner_field.name])
            return self.write_bare_scalar(alt_type, inner)
        if self.optimize_unions and _is_single_varlen_union_alt(alt_type):
            if alt_type.kind == "table":
                inner_field = alt_type.fields[0]
                return self.write_value(inner_field.type, inner[inner_field.name])
            return self.write_value(alt_type, inner)
        # Standard FlatBuffers: union members must be tables, so bare
        # scalar/varlen alternatives get wrapped in an implicit table —
        # exactly the metadata cost the paper's svtable removes.
        if alt_type.kind == "table":
            return self.write_table(alt_type, inner)
        wrapper = TableType("_u_" + alt_name, [Field("value", alt_type)])
        return self.write_table(wrapper, {"value": inner})


class FlatTable:
    """Lazy random-access view of an encoded table (vtable navigation)."""

    __slots__ = ("r", "pos", "type")

    def __init__(self, reader: ByteReader, pos: int, type_: TableType):
        self.r = reader
        self.pos = pos
        self.type = type_

    def _vt_entry(self, slot_index: int) -> int:
        soffset = self.r.uint_at(self.pos, _SOFFSET_SIZE)
        vt_pos = (self.pos - soffset) & 0xFFFFFFFF
        vt_size = self.r.uint_at(vt_pos, 2)
        entry_pos = vt_pos + 4 + 2 * slot_index
        if entry_pos >= vt_pos + vt_size:
            return 0
        return self.r.uint_at(entry_pos, 2)

    def _slot_index(self, name: str) -> int:
        idx = 0
        for field in self.type.fields:
            if field.name == name:
                return idx
            idx += 2 if field.type.kind == "union" else 1
        raise CodecError("no field %r in table %s" % (name, self.type.name))

    def has(self, name: str) -> bool:
        return self._vt_entry(self._slot_index(name)) != 0

    def get(self, name: str) -> Any:
        """Decode one field without touching the others."""
        field = self.type.field(name)
        base_slot = self._slot_index(name)
        if field.type.kind == "union":
            type_off = self._vt_entry(base_slot)
            value_off = self._vt_entry(base_slot + 1)
            if not type_off or not value_off:
                raise CodecError("absent union field %r" % name)
            alt_idx = self.r.uint_at(self.pos + type_off, 1) - 1
            if not 0 <= alt_idx < len(field.type.alts):
                raise CodecError("corrupt union type byte for %r" % name)
            alt_name, alt_type = field.type.alts[alt_idx]
            slot_pos = self.pos + value_off
            target = slot_pos + self.r.uint_at(slot_pos, _UOFFSET_SIZE)
            codec = FlatBuffersCodec.active_for(self.r)
            return (alt_name, codec._decode_union_alt(self.r, target, alt_type))
        off = self._vt_entry(base_slot)
        if not off:
            raise CodecError("absent field %r" % name)
        codec = FlatBuffersCodec.active_for(self.r)
        return codec._decode_slot(self.r, self.pos + off, field.type)


class FlatBuffersCodec(Codec):
    """Schema-driven FlatBuffers codec (standard wire format)."""

    name = "flatbuffers"
    optimize_unions = False

    # The lazy accessor needs to know which union encoding produced the
    # buffer; stash it on the reader when decoding starts.
    @staticmethod
    def active_for(reader: ByteReader) -> "FlatBuffersCodec":
        codec = getattr(reader, "_fb_codec", None)
        if codec is None:
            raise CodecError("reader was not produced by a FlatBuffers codec")
        return codec

    def encode(self, type_: Type, value: Any) -> bytes:
        validate(value, type_)
        builder = _Builder(self.optimize_unions)
        root_slot = builder._reserve(_UOFFSET_SIZE)
        if type_.kind == "table":
            root = builder.write_table(type_, value)
        else:
            wrapper = TableType("_root", [Field("value", type_)])
            root = builder.write_table(wrapper, {"value": value})
        builder._patch_uoffset(root_slot, root)
        return builder.w.getvalue()

    def decode(self, type_: Type, data: bytes) -> Any:
        reader = self.reader(data)
        root = reader.uint_at(0, _UOFFSET_SIZE)
        if type_.kind == "table":
            return self._decode_table(reader, root, type_)
        wrapper = TableType("_root", [Field("value", type_)])
        return self._decode_table(reader, root, wrapper)["value"]

    def reader(self, data: bytes) -> ByteReader:
        reader = ByteReader(data, "little")
        reader._fb_codec = self  # type: ignore[attr-defined]
        return reader

    def view(self, type_: TableType, data: bytes) -> FlatTable:
        """Lazy accessor over the root table (random field access)."""
        if type_.kind != "table":
            raise CodecError("view requires a table root")
        reader = self.reader(data)
        return FlatTable(reader, reader.uint_at(0, _UOFFSET_SIZE), type_)

    # -- decoding ----------------------------------------------------------

    def _decode_table(self, r: ByteReader, pos: int, t: TableType) -> dict:
        soffset = r.uint_at(pos, _SOFFSET_SIZE)
        vt_pos = (pos - soffset) & 0xFFFFFFFF
        vt_size = r.uint_at(vt_pos, 2)
        n_entries = (vt_size - 4) // 2

        def entry(idx: int) -> int:
            if idx >= n_entries:
                return 0
            return r.uint_at(vt_pos + 4 + 2 * idx, 2)

        out: dict = {}
        slot = 0
        for field in t.fields:
            ft = field.type
            if ft.kind == "union":
                type_off, value_off = entry(slot), entry(slot + 1)
                slot += 2
                if not type_off or not value_off:
                    continue
                alt_idx = r.uint_at(pos + type_off, 1) - 1
                if not 0 <= alt_idx < len(ft.alts):
                    raise CodecError("corrupt union in %s.%s" % (t.name, field.name))
                alt_name, alt_type = ft.alts[alt_idx]
                slot_pos = pos + value_off
                target = slot_pos + r.uint_at(slot_pos, _UOFFSET_SIZE)
                out[field.name] = (alt_name, self._decode_union_alt(r, target, alt_type))
                continue
            off = entry(slot)
            slot += 1
            if not off:
                continue
            out[field.name] = self._decode_slot(r, pos + off, ft)
        return out

    def _decode_slot(self, r: ByteReader, slot_pos: int, t: Type) -> Any:
        width = _scalar_width(t)
        if width:
            return self._decode_scalar_at(r, slot_pos, t)
        target = slot_pos + r.uint_at(slot_pos, _UOFFSET_SIZE)
        return self._decode_ref(r, target, t)

    def _decode_scalar_at(self, r: ByteReader, pos: int, t: Type) -> Any:
        kind = t.kind
        if kind == "int":
            width = t.storage_bytes
            if t.signed:
                return r.int_at(pos, width)
            return r.uint_at(pos, width)
        if kind == "bool":
            return bool(r.uint_at(pos, 1))
        if kind == "float":
            raw = r.data[pos : pos + t.bits // 8]
            return struct.unpack("<d" if t.bits == 64 else "<f", raw)[0]
        if kind == "enum":
            idx = r.uint_at(pos, _scalar_width(t))
            if idx >= len(t.names):
                raise CodecError("enum index out of range")
            return t.names[idx]
        raise CodecError("not a scalar kind: %r" % kind)

    def _decode_ref(self, r: ByteReader, pos: int, t: Type) -> Any:
        kind = t.kind
        if kind == "union":
            wrapper = TableType("_uelem", [Field("u", t)])
            return self._decode_table(r, pos, wrapper)["u"]
        if kind == "table":
            return self._decode_table(r, pos, t)
        if kind == "string":
            n = r.uint_at(pos, 4)
            return r.data[pos + 4 : pos + 4 + n].decode("utf-8")
        if kind == "bytes":
            n = r.uint_at(pos, 4)
            return r.data[pos + 4 : pos + 4 + n]
        if kind == "bitstring":
            n = r.uint_at(pos, 4)
            raw = r.data[pos + 4 : pos + 4 + n]
            return (int.from_bytes(raw, "big"), t.nbits)
        if kind == "array":
            n = r.uint_at(pos, 4)
            elem = t.element
            width = _scalar_width(elem)
            items = []
            cursor = pos + 4
            for _ in range(n):
                if width:
                    items.append(self._decode_scalar_at(r, cursor, elem))
                    cursor += width
                else:
                    target = cursor + r.uint_at(cursor, _UOFFSET_SIZE)
                    items.append(self._decode_ref(r, target, elem))
                    cursor += _UOFFSET_SIZE
            return items
        raise CodecError("cannot decode %r as reference" % kind)

    def _decode_union_alt(self, r: ByteReader, pos: int, alt_type: Type) -> Any:
        if self.optimize_unions and _is_single_scalar_union_alt(alt_type):
            if alt_type.kind == "table":
                inner = alt_type.fields[0]
                return {inner.name: self._decode_scalar_at(r, pos, inner.type)}
            return self._decode_scalar_at(r, pos, alt_type)
        if self.optimize_unions and _is_single_varlen_union_alt(alt_type):
            if alt_type.kind == "table":
                inner = alt_type.fields[0]
                return {inner.name: self._decode_ref(r, pos, inner.type)}
            return self._decode_ref(r, pos, alt_type)
        if alt_type.kind == "table":
            return self._decode_table(r, pos, alt_type)
        wrapper = TableType("_u", [Field("value", alt_type)])
        return self._decode_table(r, pos, wrapper)["value"]


class OptimizedFlatBuffersCodec(FlatBuffersCodec):
    """The paper's svtable-optimized variant (§4.4)."""

    name = "flatbuffers_opt"
    optimize_unions = True


register_codec("flatbuffers", FlatBuffersCodec)
register_codec("flatbuffers_opt", OptimizedFlatBuffersCodec)
