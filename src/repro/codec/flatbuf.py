"""FlatBuffers wire format, from scratch, plus the paper's optimization.

The format follows the real FlatBuffers layout: a root ``uoffset`` at
position 0, tables holding an ``soffset`` to a shared vtable plus inline
scalar slots and 4-byte ``uoffset`` references to out-of-line strings,
vectors and sub-tables.  The properties the paper leans on (§4.4) hold
structurally:

* **Random access on decode** — any field is reachable through its vtable
  slot without touching other fields (see :class:`FlatTable`, the lazy
  accessor), unlike PER's sequential bit stream.
* **vtable size overhead** — every table costs a vtable
  (``2 + 2 + 2·nfields`` bytes, deduplicated per buffer) and an
  ``soffset``, which is why FlatBuffers messages are larger than PER.

**Optimized FlatBuffers (svtable)**: cellular CHOICEs very often carry a
single value.  Standard FlatBuffers forces union members to be tables, so
a single-scalar alternative pays vtable (6 B) + soffset (4 B) = 10 bytes
of metadata; a single var-length alternative additionally pays its field
slot, ~14 bytes.  With ``optimize_unions=True`` the codec stores such
alternatives directly — the union value offset points at the bare scalar
or string — reproducing the paper's svtable saving and its slightly
faster times (one less indirection).
"""

from __future__ import annotations

import struct
import weakref
from typing import Any, Callable, Dict, List, Optional, Tuple

from .base import Codec, register_codec
from .bitio import ByteReader, ByteWriter, CodecError
from .schema import Field, TableType, Type, validate

__all__ = ["FlatBuffersCodec", "FlatTable"]

_SOFFSET_SIZE = 4
_UOFFSET_SIZE = 4

_FD = struct.Struct("<d")
_FF = struct.Struct("<f")
_LEN4 = struct.Struct("<I")

# Per-schema-type caches for the hot paths.  A table's slot layout,
# vtable bytes and decode plan depend only on the schema (and, for the
# layout, on which optional fields are present), so they are computed
# once per type and reused across every encode/decode.  Weak keys let
# transient types (e.g. hypothesis-generated schemas) be collected, and
# keep the schema objects themselves free of codec state.
_LAYOUTS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_PLANS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_SCALAR_ENC: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_UELEM_WRAP: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_UNION_ENC_WRAP: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_UNION_DEC_WRAP: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

_VT_UNPACKERS: Dict[int, Callable] = {}

#: zero padding up to 4-byte alignment, indexed by pad width
_PADS = (b"", b"\x00", b"\x00\x00", b"\x00\x00\x00")


def _vt_unpacker(n_entries: int) -> Callable:
    """unpack_from for a whole vtable entry array (n little-endian u16)."""
    unpacker = _VT_UNPACKERS.get(n_entries)
    if unpacker is None:
        unpacker = _VT_UNPACKERS[n_entries] = struct.Struct(
            "<%dH" % n_entries
        ).unpack_from
    return unpacker


def _uelem_wrapper(t: Type) -> TableType:
    """The implicit single-field table wrapping a vector-of-unions element."""
    wrapper = _UELEM_WRAP.get(t)
    if wrapper is None:
        wrapper = _UELEM_WRAP[t] = TableType("_uelem", [Field("u", t)])
    return wrapper


def _scalar_width(t: Type) -> int:
    """Inline slot width for scalar kinds; 0 means not inline."""
    kind = t.kind
    if kind == "int":
        return t.storage_bytes
    if kind == "bool":
        return 1
    if kind == "float":
        return t.bits // 8
    if kind == "enum":
        return 1 if len(t.names) <= 256 else 2
    return 0


def _is_single_scalar_union_alt(t: Type) -> bool:
    """Alt that svtable stores inline: a bare scalar, or 1-scalar table.

    The wrapped-table form only qualifies when its single field is
    *required* — an optional field's presence is dynamic, so the
    metadata-free encoding could not distinguish absent from present.
    """
    if _scalar_width(t):
        return True
    if t.kind == "table" and len(t.fields) == 1 and not t.fields[0].optional:
        return _scalar_width(t.fields[0].type) > 0
    return False


def _is_single_varlen_union_alt(t: Type) -> bool:
    """Alt svtable stores as a bare string/bytes: 1-varlen-field table."""
    if t.kind in ("bytes", "string"):
        return True
    if t.kind == "table" and len(t.fields) == 1 and not t.fields[0].optional:
        return t.fields[0].type.kind in ("bytes", "string")
    return False


def _scalar_encoder(t: Type) -> Callable[[Any], bytes]:
    """value -> inline little-endian slot bytes, compiled per scalar type."""
    enc = _SCALAR_ENC.get(t)
    if enc is not None:
        return enc
    kind = t.kind
    if kind == "int":
        width = t.storage_bytes
        mask = (1 << (width * 8)) - 1

        def enc(v, _w=width, _m=mask):
            return (v & _m).to_bytes(_w, "little")

    elif kind == "bool":

        def enc(v):
            return b"\x01" if v else b"\x00"

    elif kind == "float":
        enc = (_FD if t.bits == 64 else _FF).pack
    elif kind == "enum":
        width = _scalar_width(t)
        index = t.index

        def enc(v, _w=width, _index=index):
            return _index[v].to_bytes(_w, "little")

    else:
        raise CodecError("not an inline scalar: %r" % kind)
    _SCALAR_ENC[t] = enc
    return enc


def _scalar_decoder(t: Type) -> Callable[[ByteReader, int], Any]:
    """(reader, pos) -> value, compiled per scalar type."""
    kind = t.kind
    if kind == "int":
        width = t.storage_bytes
        if t.signed:
            return lambda r, pos, _w=width: r.int_at(pos, _w)
        return lambda r, pos, _w=width: r.uint_at(pos, _w)
    if kind == "bool":
        return lambda r, pos: bool(r.uint_at(pos, 1))
    if kind == "float":
        unpack = (_FD if t.bits == 64 else _FF).unpack_from

        def dec(r, pos, _unpack=unpack):
            return _unpack(r.data, pos)[0]

        return dec
    if kind == "enum":
        width = _scalar_width(t)
        names = t.names

        def dec(r, pos, _w=width, _names=names):
            idx = r.uint_at(pos, _w)
            if idx >= len(_names):
                raise CodecError("enum index out of range")
            return _names[idx]

        return dec
    raise CodecError("not a scalar kind: %r" % kind)


#: layout item roles (encode side); string/bytes refs get dedicated
#: roles so write_table can batch those leaf children into one append.
_ROLE_SCALAR, _ROLE_UNION_TYPE, _ROLE_REF = 0, 1, 2
_ROLE_REF_STR, _ROLE_REF_BYTES = 3, 4


def _ref_writer(t: Type) -> Optional[Callable]:
    """(builder, value) -> position, pre-resolved per out-of-line type."""
    kind = t.kind
    if kind == "string":
        return lambda b, v: b.write_string(v.encode("utf-8"))
    if kind == "bytes":
        return lambda b, v: b.write_vector_bytes(bytes(v))
    if kind == "bitstring":

        def wr(b, v):
            intval, nbits = v
            return b.write_vector_bytes(intval.to_bytes((nbits + 7) // 8, "big"))

        return wr
    if kind == "table":
        return lambda b, v, _t=t: b.write_table(_t, v)
    if kind == "array":
        return lambda b, v, _e=t.element: b.write_vector(_e, v)
    if kind == "union":
        return lambda b, v, _t=t: b._write_union_value(_t, v)
    return None  # fall back to write_value's error path


def _compute_layout(t: TableType, present: Tuple[bool, ...]):
    """Slot layout + prebuilt vtable bytes for one presence pattern.

    Mirrors the real builder: each present field gets a slot (unions get
    a u8 type slot and a uoffset value slot), slots are aligned to their
    width after the 4-byte soffset, and the vtable maps schema-order
    slot ids to in-table offsets (0 = absent).
    """
    slots: List[Tuple[Field, str, int]] = []
    for field, here in zip(t.fields, present):
        if not here:
            continue
        ft = field.type
        if ft.kind == "union":
            slots.append((field, "union_type", 1))
            slots.append((field, "union_value", _UOFFSET_SIZE))
        else:
            width = _scalar_width(ft)
            if width:
                slots.append((field, "scalar", width))
            else:
                slots.append((field, "ref", _UOFFSET_SIZE))

    offsets: List[int] = []
    cursor = _SOFFSET_SIZE
    for _field, _role, width in slots:
        if cursor % width:
            cursor += width - (cursor % width)
        offsets.append(cursor)
        cursor += width
    table_size = cursor

    vt_entries: List[int] = []
    slot_lookup = {}
    for (field, role, _w), off in zip(slots, offsets):
        slot_lookup[(field.name, role)] = off
    for field in t.fields:
        if field.type.kind == "union":
            vt_entries.append(slot_lookup.get((field.name, "union_type"), 0))
            vt_entries.append(slot_lookup.get((field.name, "union_value"), 0))
        else:
            role = "scalar" if _scalar_width(field.type) else "ref"
            vt_entries.append(slot_lookup.get((field.name, role), 0))

    vt_size = 4 + 2 * len(vt_entries)
    vt_bytes = struct.pack(
        "<%dH" % (2 + len(vt_entries)), vt_size, table_size, *vt_entries
    )
    vt_key = (table_size, tuple(vt_entries))

    items = []
    for (field, role, width), off in zip(slots, offsets):
        ft = field.type
        if role == "scalar":
            items.append((field.name, _ROLE_SCALAR, _scalar_encoder(ft), off, width, ft))
        elif role == "union_type":
            items.append((field.name, _ROLE_UNION_TYPE, None, off, width, ft))
        elif field.type.kind == "string":
            items.append((field.name, _ROLE_REF_STR, None, off, width, ft))
        elif field.type.kind == "bytes":
            items.append((field.name, _ROLE_REF_BYTES, None, off, width, ft))
        else:  # ref / union_value: pre-resolve the out-of-line writer
            items.append((field.name, _ROLE_REF, _ref_writer(ft), off, width, ft))
    return tuple(items), table_size, vt_key, vt_bytes


def _table_layout(t: TableType, v: dict):
    per_type = _LAYOUTS.get(t)
    if per_type is None:
        per_type = _LAYOUTS[t] = {}
    fields = t.fields
    # Values reaching write_table are already validated, so they hold no
    # unknown keys: equal sizes means every field is present (the common
    # case — skip building the per-field presence tuple).
    if len(v) == len(fields):
        layout = per_type.get(True)
        if layout is None:
            layout = per_type[True] = _compute_layout(t, (True,) * len(fields))
        return layout
    present = tuple(f.name in v for f in fields)
    layout = per_type.get(present)
    if layout is None:
        layout = per_type[present] = _compute_layout(t, present)
    return layout


def _slot_decoder(t: Type) -> Optional[Callable[[ByteReader, int], Any]]:
    """(reader, slot position) -> value for slots decodable without the
    codec: inline scalars, and refs to strings / bytes / bit strings.
    Tables, unions and arrays return None (codec-dependent path)."""
    if _scalar_width(t):
        return _scalar_decoder(t)
    kind = t.kind
    if kind == "string":

        def dec(r, pos):
            target = pos + r.uint_at(pos, _UOFFSET_SIZE)
            n = r.uint_at(target, 4)
            return r.data[target + 4 : target + 4 + n].decode("utf-8")

        return dec
    if kind == "bytes":

        def dec(r, pos):
            target = pos + r.uint_at(pos, _UOFFSET_SIZE)
            n = r.uint_at(target, 4)
            return r.data[target + 4 : target + 4 + n]

        return dec
    if kind == "bitstring":

        def dec(r, pos, _nbits=t.nbits):
            target = pos + r.uint_at(pos, _UOFFSET_SIZE)
            n = r.uint_at(target, 4)
            return (int.from_bytes(r.data[target + 4 : target + 4 + n], "big"), _nbits)

        return dec
    return None


def _decode_plan(t: TableType):
    """(name, type, slot id, is_union, slot decoder | None) per field."""
    plan = _PLANS.get(t)
    if plan is not None:
        return plan
    entries = []
    slot = 0
    for field in t.fields:
        ft = field.type
        if ft.kind == "union":
            entries.append((field.name, ft, slot, True, None))
            slot += 2
        else:
            entries.append((field.name, ft, slot, False, _slot_decoder(ft)))
            slot += 1
    plan = _PLANS[t] = tuple(entries)
    return plan


class _Builder:
    """Front-to-back builder with forward-reference patching.

    Real FlatBuffers builds back-to-front; building forward with patched
    uoffsets produces the same structures (offsets are relative, and
    soffsets are signed) while staying simple in Python.
    """

    def __init__(self, optimize_unions: bool):
        self.w = ByteWriter("little")
        self.optimize_unions = optimize_unions
        self._vtable_cache: Dict[Tuple[int, ...], int] = {}
        # (slot_position, target_resolver) pairs patched at the end
        self._pending: List[Tuple[int, Any]] = []

    # -- low level helpers -------------------------------------------------

    def _reserve(self, nbytes: int) -> int:
        pos = self.w.tell()
        self.w.write(b"\x00" * nbytes)
        return pos

    def _patch_uoffset(self, slot_pos: int, target_pos: int) -> None:
        delta = target_pos - slot_pos
        if delta <= 0:
            raise CodecError("uoffset must point forward")
        # Inline u32 little-endian patch (buffer offsets always fit).
        _LEN4.pack_into(self.w._buf, slot_pos, delta)

    # -- leaf writers --------------------------------------------------------

    def write_string(self, raw: bytes) -> int:
        w = self.w
        here = w.tell()
        pad = -here & 3
        # FlatBuffers strings are length-prefixed and NUL-terminated.
        w.write(_PADS[pad] + _LEN4.pack(len(raw)) + raw + b"\x00")
        return here + pad

    def write_scalar_inline(self, t: Type, v: Any) -> bytes:
        kind = t.kind
        if kind == "int":
            width = t.storage_bytes
            return (v & ((1 << (width * 8)) - 1)).to_bytes(width, "little")
        if kind == "bool":
            return b"\x01" if v else b"\x00"
        if kind == "float":
            return (_FD if t.bits == 64 else _FF).pack(v)
        if kind == "enum":
            return t.index[v].to_bytes(_scalar_width(t), "little")
        raise CodecError("not an inline scalar: %r" % kind)

    def write_bare_scalar(self, t: Type, v: Any) -> int:
        """Out-of-line scalar for svtable-optimized unions."""
        width = _scalar_width(t)
        self.w.pad_to(max(width, 1))
        pos = self.w.tell()
        self.w.write(self.write_scalar_inline(t, v))
        return pos

    def write_vector(self, elem: Type, items: list) -> int:
        width = _scalar_width(elem)
        w = self.w
        here = w.tell()
        pad = -here & 3
        pos = here + pad
        if width:  # inline scalar elements, one buffer append
            enc = _scalar_encoder(elem)
            w.write(
                _PADS[pad]
                + _LEN4.pack(len(items))
                + b"".join([enc(item) for item in items])
            )
        else:  # reference elements (uoffsets patched later)
            w.write(_PADS[pad] + _LEN4.pack(len(items))
                    + b"\x00" * (_UOFFSET_SIZE * len(items)))
            base = pos + 4
            for i, item in enumerate(items):
                child = self.write_value(elem, item)
                self._patch_uoffset(base + _UOFFSET_SIZE * i, child)
        return pos

    # -- composite writers ---------------------------------------------------

    def write_value(self, t: Type, v: Any) -> int:
        """Write an out-of-line value, returning its buffer position."""
        kind = t.kind
        if kind == "table":
            return self.write_table(t, v)
        if kind == "string":
            return self.write_string(v.encode("utf-8"))
        if kind == "bytes":
            return self.write_vector_bytes(bytes(v))
        if kind == "bitstring":
            intval, nbits = v
            nbytes = (nbits + 7) // 8
            return self.write_vector_bytes(intval.to_bytes(nbytes, "big"))
        if kind == "array":
            return self.write_vector(t.element, v)
        if kind == "union":
            # Real FlatBuffers has no bare vectors-of-unions: union
            # elements are wrapped in a single-field table.
            return self.write_table(_uelem_wrapper(t), {"u": v})
        raise CodecError("cannot write %r out of line" % kind)

    def write_vector_bytes(self, raw: bytes) -> int:
        w = self.w
        here = w.tell()
        pad = -here & 3
        w.write(_PADS[pad] + _LEN4.pack(len(raw)) + raw)
        return here + pad

    def write_table(self, t: TableType, v: dict) -> int:
        # Slot layout, offsets and vtable bytes depend only on the schema
        # and which optional fields are present — memoized per type.
        items, table_size, vt_key, vt_bytes = _table_layout(t, v)

        w = self.w
        here = w.tell()
        pad = -here & 3
        table_pos = here + pad

        # Build the whole inline region locally, then append it in one
        # write: scalar slots are filled directly, reference slots stay
        # zero and are patched once the children exist.
        block = bytearray(pad + table_size)
        ref_jobs: List[Tuple[int, int, Any, Type, Any]] = []
        for name, role, enc, off, width, ft in items:
            fv = v[name]
            if role == _ROLE_SCALAR:
                at = pad + off
                block[at:at + width] = enc(fv)
            elif role == _ROLE_UNION_TYPE:
                alt_idx = ft.index[fv[0]] + 1  # 0 is NONE in FlatBuffers
                at = pad + off
                block[at:at + 1] = alt_idx.to_bytes(1, "little")
            else:  # union_value / ref
                ref_jobs.append((table_pos + off, role, enc, ft, fv))
        w.write(block)

        # vtable (deduplicated within the buffer).
        vt_pos = self._vtable_cache.get(vt_key)
        if vt_pos is None:
            w.pad_to(2)
            vt_pos = w.tell()
            w.write(vt_bytes)
            self._vtable_cache[vt_key] = vt_pos
        # soffset: vtable_pos = table_pos - soffset
        _LEN4.pack_into(w._buf, table_pos, (table_pos - vt_pos) & 0xFFFFFFFF)

        # Children after the table; patch uoffsets.  Consecutive string /
        # bytes leaves are assembled locally and appended in one write
        # (their layout is position-independent: pad + length + payload).
        pending: List[bytes] = []
        patches: List[Tuple[int, int]] = []
        cur = w.tell()
        for slot_pos, role, writer, ft, fv in ref_jobs:
            if role == _ROLE_REF_STR:
                raw = fv.encode("utf-8")
                cpad = -cur & 3
                patches.append((slot_pos, cur + cpad))
                pending.append(_PADS[cpad] + _LEN4.pack(len(raw)) + raw + b"\x00")
                cur += cpad + 5 + len(raw)
            elif role == _ROLE_REF_BYTES:
                raw = bytes(fv)
                cpad = -cur & 3
                patches.append((slot_pos, cur + cpad))
                pending.append(_PADS[cpad] + _LEN4.pack(len(raw)) + raw)
                cur += cpad + 4 + len(raw)
            else:
                if pending:
                    w.write(b"".join(pending))
                    pending.clear()
                if writer is not None:
                    child = writer(self, fv)
                else:
                    child = self.write_value(ft, fv)
                self._patch_uoffset(slot_pos, child)
                cur = w.tell()
        if pending:
            w.write(b"".join(pending))
        if patches:
            buf = w._buf
            pack_into = _LEN4.pack_into
            for slot_pos, child in patches:
                pack_into(buf, slot_pos, child - slot_pos)
        return table_pos

    def _write_union_value(self, t: Type, v: Tuple[str, Any]) -> int:
        alt_name, inner = v
        alt_type = t.alt_type(alt_name)
        if self.optimize_unions and _is_single_scalar_union_alt(alt_type):
            # svtable: bare scalar, no wrapping table, no vtable.
            if alt_type.kind == "table":
                inner_field = alt_type.fields[0]
                return self.write_bare_scalar(inner_field.type, inner[inner_field.name])
            return self.write_bare_scalar(alt_type, inner)
        if self.optimize_unions and _is_single_varlen_union_alt(alt_type):
            if alt_type.kind == "table":
                inner_field = alt_type.fields[0]
                return self.write_value(inner_field.type, inner[inner_field.name])
            return self.write_value(alt_type, inner)
        # Standard FlatBuffers: union members must be tables, so bare
        # scalar/varlen alternatives get wrapped in an implicit table —
        # exactly the metadata cost the paper's svtable removes.
        if alt_type.kind == "table":
            return self.write_table(alt_type, inner)
        wrappers = _UNION_ENC_WRAP.get(t)
        if wrappers is None:
            wrappers = _UNION_ENC_WRAP[t] = {}
        wrapper = wrappers.get(alt_name)
        if wrapper is None:
            wrapper = wrappers[alt_name] = TableType(
                "_u_" + alt_name, [Field("value", alt_type)]
            )
        return self.write_table(wrapper, {"value": inner})


class FlatTable:
    """Lazy random-access view of an encoded table (vtable navigation)."""

    __slots__ = ("r", "pos", "type")

    def __init__(self, reader: ByteReader, pos: int, type_: TableType):
        self.r = reader
        self.pos = pos
        self.type = type_

    def _vt_entry(self, slot_index: int) -> int:
        soffset = self.r.uint_at(self.pos, _SOFFSET_SIZE)
        vt_pos = (self.pos - soffset) & 0xFFFFFFFF
        vt_size = self.r.uint_at(vt_pos, 2)
        entry_pos = vt_pos + 4 + 2 * slot_index
        if entry_pos >= vt_pos + vt_size:
            return 0
        return self.r.uint_at(entry_pos, 2)

    def _slot_index(self, name: str) -> int:
        idx = 0
        for field in self.type.fields:
            if field.name == name:
                return idx
            idx += 2 if field.type.kind == "union" else 1
        raise CodecError("no field %r in table %s" % (name, self.type.name))

    def has(self, name: str) -> bool:
        return self._vt_entry(self._slot_index(name)) != 0

    def get(self, name: str) -> Any:
        """Decode one field without touching the others."""
        field = self.type.field(name)
        base_slot = self._slot_index(name)
        if field.type.kind == "union":
            type_off = self._vt_entry(base_slot)
            value_off = self._vt_entry(base_slot + 1)
            if not type_off or not value_off:
                raise CodecError("absent union field %r" % name)
            alt_idx = self.r.uint_at(self.pos + type_off, 1) - 1
            if not 0 <= alt_idx < len(field.type.alts):
                raise CodecError("corrupt union type byte for %r" % name)
            alt_name, alt_type = field.type.alts[alt_idx]
            slot_pos = self.pos + value_off
            target = slot_pos + self.r.uint_at(slot_pos, _UOFFSET_SIZE)
            codec = FlatBuffersCodec.active_for(self.r)
            return (alt_name, codec._decode_union_alt(self.r, target, alt_type))
        off = self._vt_entry(base_slot)
        if not off:
            raise CodecError("absent field %r" % name)
        codec = FlatBuffersCodec.active_for(self.r)
        return codec._decode_slot(self.r, self.pos + off, field.type)


class FlatBuffersCodec(Codec):
    """Schema-driven FlatBuffers codec (standard wire format)."""

    name = "flatbuffers"
    optimize_unions = False

    # The lazy accessor needs to know which union encoding produced the
    # buffer; stash it on the reader when decoding starts.
    @staticmethod
    def active_for(reader: ByteReader) -> "FlatBuffersCodec":
        codec = getattr(reader, "_fb_codec", None)
        if codec is None:
            raise CodecError("reader was not produced by a FlatBuffers codec")
        return codec

    def encode(self, type_: Type, value: Any) -> bytes:
        validate(value, type_)
        builder = _Builder(self.optimize_unions)
        root_slot = builder._reserve(_UOFFSET_SIZE)
        if type_.kind == "table":
            root = builder.write_table(type_, value)
        else:
            wrapper = TableType("_root", [Field("value", type_)])
            root = builder.write_table(wrapper, {"value": value})
        builder._patch_uoffset(root_slot, root)
        return builder.w.getvalue()

    def decode(self, type_: Type, data: bytes) -> Any:
        reader = self.reader(data)
        root = reader.uint_at(0, _UOFFSET_SIZE)
        if type_.kind == "table":
            return self._decode_table(reader, root, type_)
        wrapper = TableType("_root", [Field("value", type_)])
        return self._decode_table(reader, root, wrapper)["value"]

    def reader(self, data: bytes) -> ByteReader:
        reader = ByteReader(data, "little")
        reader._fb_codec = self  # type: ignore[attr-defined]
        return reader

    def view(self, type_: TableType, data: bytes) -> FlatTable:
        """Lazy accessor over the root table (random field access)."""
        if type_.kind != "table":
            raise CodecError("view requires a table root")
        reader = self.reader(data)
        return FlatTable(reader, reader.uint_at(0, _UOFFSET_SIZE), type_)

    # -- decoding ----------------------------------------------------------

    def _decode_table(self, r: ByteReader, pos: int, t: TableType) -> dict:
        plan = _decode_plan(t)
        uint_at = r.uint_at
        soffset = uint_at(pos, _SOFFSET_SIZE)
        vt_pos = (pos - soffset) & 0xFFFFFFFF
        vt_size = uint_at(vt_pos, 2)
        n_entries = (vt_size - 4) // 2
        if n_entries > 0:
            # One struct call for the whole entry array instead of one
            # bounds-checked read per slot.
            try:
                vt = _vt_unpacker(n_entries)(r.data, vt_pos + 4)
            except struct.error:
                raise CodecError("random access out of range")
        else:
            vt = ()

        out: dict = {}
        for name, ft, slot, is_union, dec in plan:
            if is_union:
                type_off = vt[slot] if slot < n_entries else 0
                value_off = vt[slot + 1] if slot + 1 < n_entries else 0
                if not type_off or not value_off:
                    continue
                alt_idx = uint_at(pos + type_off, 1) - 1
                if not 0 <= alt_idx < len(ft.alts):
                    raise CodecError("corrupt union in %s.%s" % (t.name, name))
                alt_name, alt_type = ft.alts[alt_idx]
                slot_pos = pos + value_off
                target = slot_pos + uint_at(slot_pos, _UOFFSET_SIZE)
                out[name] = (alt_name, self._decode_union_alt(r, target, alt_type))
                continue
            off = vt[slot] if slot < n_entries else 0
            if not off:
                continue
            if dec is not None:  # precompiled scalar / simple-ref decoder
                out[name] = dec(r, pos + off)
            else:
                slot_pos = pos + off
                target = slot_pos + uint_at(slot_pos, _UOFFSET_SIZE)
                out[name] = self._decode_ref(r, target, ft)
        return out

    def _decode_slot(self, r: ByteReader, slot_pos: int, t: Type) -> Any:
        width = _scalar_width(t)
        if width:
            return self._decode_scalar_at(r, slot_pos, t)
        target = slot_pos + r.uint_at(slot_pos, _UOFFSET_SIZE)
        return self._decode_ref(r, target, t)

    def _decode_scalar_at(self, r: ByteReader, pos: int, t: Type) -> Any:
        kind = t.kind
        if kind == "int":
            width = t.storage_bytes
            if t.signed:
                return r.int_at(pos, width)
            return r.uint_at(pos, width)
        if kind == "bool":
            return bool(r.uint_at(pos, 1))
        if kind == "float":
            return (_FD if t.bits == 64 else _FF).unpack_from(r.data, pos)[0]
        if kind == "enum":
            idx = r.uint_at(pos, _scalar_width(t))
            if idx >= len(t.names):
                raise CodecError("enum index out of range")
            return t.names[idx]
        raise CodecError("not a scalar kind: %r" % kind)

    def _decode_ref(self, r: ByteReader, pos: int, t: Type) -> Any:
        kind = t.kind
        if kind == "union":
            return self._decode_table(r, pos, _uelem_wrapper(t))["u"]
        if kind == "table":
            return self._decode_table(r, pos, t)
        if kind == "string":
            n = r.uint_at(pos, 4)
            return r.data[pos + 4 : pos + 4 + n].decode("utf-8")
        if kind == "bytes":
            n = r.uint_at(pos, 4)
            return r.data[pos + 4 : pos + 4 + n]
        if kind == "bitstring":
            n = r.uint_at(pos, 4)
            raw = r.data[pos + 4 : pos + 4 + n]
            return (int.from_bytes(raw, "big"), t.nbits)
        if kind == "array":
            n = r.uint_at(pos, 4)
            elem = t.element
            width = _scalar_width(elem)
            items = []
            cursor = pos + 4
            for _ in range(n):
                if width:
                    items.append(self._decode_scalar_at(r, cursor, elem))
                    cursor += width
                else:
                    target = cursor + r.uint_at(cursor, _UOFFSET_SIZE)
                    items.append(self._decode_ref(r, target, elem))
                    cursor += _UOFFSET_SIZE
            return items
        raise CodecError("cannot decode %r as reference" % kind)

    def _decode_union_alt(self, r: ByteReader, pos: int, alt_type: Type) -> Any:
        if self.optimize_unions and _is_single_scalar_union_alt(alt_type):
            if alt_type.kind == "table":
                inner = alt_type.fields[0]
                return {inner.name: self._decode_scalar_at(r, pos, inner.type)}
            return self._decode_scalar_at(r, pos, alt_type)
        if self.optimize_unions and _is_single_varlen_union_alt(alt_type):
            if alt_type.kind == "table":
                inner = alt_type.fields[0]
                return {inner.name: self._decode_ref(r, pos, inner.type)}
            return self._decode_ref(r, pos, alt_type)
        if alt_type.kind == "table":
            return self._decode_table(r, pos, alt_type)
        wrapper = _UNION_DEC_WRAP.get(alt_type)
        if wrapper is None:
            wrapper = _UNION_DEC_WRAP[alt_type] = TableType(
                "_u", [Field("value", alt_type)]
            )
        return self._decode_table(r, pos, wrapper)["value"]


class OptimizedFlatBuffersCodec(FlatBuffersCodec):
    """The paper's svtable-optimized variant (§4.4)."""

    name = "flatbuffers_opt"
    optimize_unions = True


register_codec("flatbuffers", FlatBuffersCodec)
register_codec("flatbuffers_opt", OptimizedFlatBuffersCodec)
