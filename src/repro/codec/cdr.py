"""Fast-CDR-style Common Data Representation codec.

OMG CDR (the format behind eProsima Fast-CDR) lays values out in schema
order with natural alignment and no per-field metadata: fixed-width
little-endian primitives, ``u32 length``-prefixed strings and sequences,
a ``u32`` discriminator for unions, and a presence octet for optionals.
No tags, no vtables — which makes it both compact and very fast for
small flat messages, but sequential like PER for nested access.  This is
why Fast-CDR wins below ~7 information elements in the paper's Fig. 18
and loses to FlatBuffers beyond that.
"""

from __future__ import annotations

import struct
from typing import Any

from .base import Codec, register_codec
from .bitio import ByteReader, ByteWriter, CodecError
from .schema import Type, validate

__all__ = ["CdrCodec"]


class CdrCodec(Codec):
    """Aligned CDR encoder/decoder over the shared schema model."""

    name = "cdr"

    def encode(self, type_: Type, value: Any) -> bytes:
        validate(value, type_)
        w = ByteWriter("little")
        self._encode(w, type_, value)
        return w.getvalue()

    def decode(self, type_: Type, data: bytes) -> Any:
        r = ByteReader(data, "little")
        return self._decode(r, type_)

    # -- encoding ----------------------------------------------------------

    def _encode(self, w: ByteWriter, t: Type, v: Any) -> None:
        kind = t.kind
        if kind == "int":
            width = t.storage_bytes
            w.pad_to(width)
            if t.signed:
                w.write_int(v, width)
            else:
                w.write_uint(v, width)
        elif kind == "bool":
            w.write_uint(1 if v else 0, 1)
        elif kind == "float":
            width = t.bits // 8
            w.pad_to(width)
            w.write(struct.pack("<d" if t.bits == 64 else "<f", v))
        elif kind == "enum":
            w.pad_to(4)
            w.write_uint(t.index[v], 4)
        elif kind == "bytes":
            w.pad_to(4)
            w.write_uint(len(v), 4)
            w.write(bytes(v))
        elif kind == "string":
            raw = v.encode("utf-8")
            w.pad_to(4)
            w.write_uint(len(raw) + 1, 4)  # CDR strings count the NUL
            w.write(raw)
            w.write(b"\x00")
        elif kind == "bitstring":
            intval, nbits = v
            nbytes = (nbits + 7) // 8
            w.pad_to(4)
            w.write_uint(nbytes, 4)
            w.write(intval.to_bytes(nbytes, "big"))
        elif kind == "array":
            w.pad_to(4)
            w.write_uint(len(v), 4)
            for item in v:
                self._encode(w, t.element, item)
        elif kind == "table":
            for field in t.fields:
                if field.optional:
                    w.write_uint(1 if field.name in v else 0, 1)
                if field.name in v:
                    self._encode(w, field.type, v[field.name])
        elif kind == "union":
            alt_name, inner = v
            w.pad_to(4)
            w.write_uint(t.index[alt_name], 4)
            self._encode(w, t.alt_type(alt_name), inner)
        else:
            raise CodecError("unsupported kind %r" % kind)

    # -- decoding ----------------------------------------------------------

    def _decode(self, r: ByteReader, t: Type) -> Any:
        kind = t.kind
        if kind == "int":
            width = t.storage_bytes
            r.align(width)
            return r.read_int(width) if t.signed else r.read_uint(width)
        if kind == "bool":
            return bool(r.read_uint(1))
        if kind == "float":
            width = t.bits // 8
            r.align(width)
            return struct.unpack("<d" if t.bits == 64 else "<f", r.read(width))[0]
        if kind == "enum":
            r.align(4)
            idx = r.read_uint(4)
            if idx >= len(t.names):
                raise CodecError("enum index out of range")
            return t.names[idx]
        if kind == "bytes":
            r.align(4)
            return r.read(r.read_uint(4))
        if kind == "string":
            r.align(4)
            n = r.read_uint(4)
            raw = r.read(n)
            return raw[:-1].decode("utf-8")  # strip NUL
        if kind == "bitstring":
            r.align(4)
            raw = r.read(r.read_uint(4))
            return (int.from_bytes(raw, "big"), t.nbits)
        if kind == "array":
            r.align(4)
            n = r.read_uint(4)
            return [self._decode(r, t.element) for _ in range(n)]
        if kind == "table":
            out = {}
            for field in t.fields:
                present = True
                if field.optional:
                    present = bool(r.read_uint(1))
                if present:
                    out[field.name] = self._decode(r, field.type)
            return out
        if kind == "union":
            r.align(4)
            idx = r.read_uint(4)
            if idx >= len(t.alts):
                raise CodecError("union discriminator out of range")
            alt_name, alt_type = t.alts[idx]
            return (alt_name, self._decode(r, alt_type))
        raise CodecError("unsupported kind %r" % kind)


register_codec("cdr", CdrCodec)
