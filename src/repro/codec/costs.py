"""Serialization cost model: codec work as simulated CPU time.

The testbed's absolute per-message CPU costs are not reproducible in
Python (our codecs are orders of magnitude slower than the paper's C),
so the simulator prices serialization with a calibrated linear model

    cost(codec, message) = fixed + per_element * n_elements

whose coefficients are set to reproduce the paper's *relative* numbers:

* Fig. 18 — speedups vs ASN.1 between ~1.6x and ~19.2x, Fast-CDR/LCM
  ahead below ~7 information elements, FlatBuffers the clear winner
  beyond, FB reaching ~19x at 35 elements;
* Fig. 19 — up to ~5.9x faster encode+decode on real S1 messages
  (8-20 elements), Optimized FB slightly faster still;
* saturation knees — existing EPC's attach capacity (~60 KPPS across 5
  CPFs) implies ~14 µs/message with ASN.1; Neutrino's (~120 KPPS)
  implies ~7 µs with FlatBuffers, fixing the non-serialization base
  cost near 4 µs/message.

``measure`` also offers endogenous calibration: time the *real* Python
codecs in this repository and derive coefficients from those
measurements (used by the benchmarks to cross-check that the modeled
ordering matches the implemented codecs' actual ordering).
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .base import get_codec
from .schema import Type, count_elements

__all__ = ["LinearCost", "CostModel", "measure", "fit_linear"]


@dataclass(frozen=True)
class LinearCost:
    """Encode+decode cost in seconds: ``fixed + per_element * n``."""

    fixed_s: float
    per_element_s: float

    def total(self, n_elements: int) -> float:
        return self.fixed_s + self.per_element_s * n_elements

    def encode(self, n_elements: int) -> float:
        """Encode share; PER and FB both skew slightly decode-heavy."""
        return 0.45 * self.total(n_elements)

    def decode(self, n_elements: int) -> float:
        return 0.55 * self.total(n_elements)


#: Calibrated defaults (seconds).  See module docstring for derivation.
DEFAULT_COSTS: Dict[str, LinearCost] = {
    "asn1per": LinearCost(3.00e-6, 0.62e-6),
    "flatbuffers": LinearCost(0.90e-6, 0.006e-6),
    "flatbuffers_opt": LinearCost(0.85e-6, 0.0055e-6),
    "cdr": LinearCost(0.35e-6, 0.070e-6),
    "lcm": LinearCost(0.30e-6, 0.075e-6),
    "protobuf": LinearCost(0.80e-6, 0.180e-6),
    "flexbuffers": LinearCost(1.00e-6, 0.250e-6),
}


@dataclass
class CostModel:
    """Maps (codec, message) to CPU service time on a simulated node."""

    base_process_s: float = 5.5e-6  # protocol handling excluding (de)serialization
    codec_costs: Dict[str, LinearCost] = field(
        default_factory=lambda: dict(DEFAULT_COSTS)
    )

    def codec_cost(self, codec_name: str) -> LinearCost:
        try:
            return self.codec_costs[codec_name]
        except KeyError:
            raise KeyError("no cost calibration for codec %r" % codec_name)

    def serialize_cost(self, codec_name: str, n_elements: int) -> float:
        return self.codec_cost(codec_name).encode(n_elements)

    def deserialize_cost(self, codec_name: str, n_elements: int) -> float:
        return self.codec_cost(codec_name).decode(n_elements)

    def message_service_time(self, codec_name: str, n_elements: int) -> float:
        """CPU time a node spends to receive, handle, and answer a message.

        One decode (request in) + protocol handling + one encode
        (response out).
        """
        cost = self.codec_cost(codec_name)
        return self.base_process_s + cost.total(n_elements)

    def speedup_vs(self, codec_name: str, baseline: str, n_elements: int) -> float:
        return self.codec_cost(baseline).total(n_elements) / self.codec_cost(
            codec_name
        ).total(n_elements)


def measure(
    codec_name: str,
    type_: Type,
    value: Any,
    repeats: int = 200,
    timer=time.perf_counter,
) -> Tuple[float, float]:
    """Measured (encode_s, decode_s) per operation for the real codec.

    Runs the actual Python implementation; used by the Fig. 18/19
    benchmarks to show that the implemented codecs' ordering matches the
    calibrated model's ordering.

    Each time is the *best* per-operation time over a few equal chunks
    of ``repeats`` (the ``timeit`` convention): the minimum estimates
    the codec's true cost, where a single mean would absorb whatever
    scheduler preemption or GC pause happened to land in the window —
    enough, under load, to flip the measured ordering of two codecs.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    codec = get_codec(codec_name)
    data = codec.encode(type_, value)  # warm caches, validate once

    n_chunks = min(8, repeats)
    base, extra = divmod(repeats, n_chunks)
    chunks = [base + (1 if i < extra else 0) for i in range(n_chunks)]

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        encode_s = None
        for chunk in chunks:
            start = timer()
            for _ in range(chunk):
                codec.encode(type_, value)
            per_op = (timer() - start) / chunk
            if encode_s is None or per_op < encode_s:
                encode_s = per_op

        decode_s = None
        for chunk in chunks:
            start = timer()
            for _ in range(chunk):
                codec.decode(type_, data)
            per_op = (timer() - start) / chunk
            if decode_s is None or per_op < decode_s:
                decode_s = per_op
    finally:
        if gc_was_enabled:
            gc.enable()
    return encode_s, decode_s


def fit_linear(
    codec_name: str,
    samples: Dict[int, Tuple[Type, Any]],
    repeats: int = 100,
) -> LinearCost:
    """Least-squares fit of a :class:`LinearCost` from real measurements.

    ``samples`` maps an element count to a (schema, value) pair.  Useful
    for re-deriving the cost table from this machine's actual codec
    speeds instead of the paper-calibrated defaults.
    """
    if len(samples) < 2:
        raise ValueError("need at least two samples to fit a line")
    xs, ys = [], []
    for n, (type_, value) in samples.items():
        enc, dec = measure(codec_name, type_, value, repeats)
        actual_n = count_elements(value, type_)
        if actual_n != n:
            n = actual_n
        xs.append(float(n))
        ys.append(enc + dec)
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        return LinearCost(mean_y, 0.0)
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
    intercept = mean_y - slope * mean_x
    return LinearCost(max(intercept, 0.0), max(slope, 0.0))
