"""Bit- and byte-level buffer primitives shared by the codecs.

``BitWriter``/``BitReader`` are MSB-first, as required by ASN.1 PER
(unaligned).  ``ByteWriter``/``ByteReader`` serve the byte-aligned
codecs (FlatBuffers, protobuf, CDR, LCM) with explicit endianness and
alignment support.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["BitWriter", "BitReader", "ByteWriter", "ByteReader", "CodecError"]


class CodecError(Exception):
    """Malformed input to an encoder or decoder."""


class BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self):
        self._buf = bytearray()
        self._bitpos = 0  # bits used in the last byte (0..7)

    def __len__(self) -> int:
        """Total number of bits written."""
        if self._bitpos == 0:
            return len(self._buf) * 8
        return (len(self._buf) - 1) * 8 + self._bitpos

    def write_bit(self, bit: int) -> None:
        if self._bitpos == 0:
            self._buf.append(0)
        if bit:
            self._buf[-1] |= 0x80 >> self._bitpos
        self._bitpos = (self._bitpos + 1) % 8

    def write_bits(self, value: int, nbits: int) -> None:
        """Write the low ``nbits`` bits of ``value``, MSB first."""
        if nbits < 0:
            raise CodecError("negative bit count")
        if value < 0:
            raise CodecError("write_bits takes non-negative values")
        if nbits and value >> nbits:
            raise CodecError("value %d does not fit in %d bits" % (value, nbits))
        for shift in range(nbits - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_bytes(self, data: bytes) -> None:
        if self._bitpos == 0:  # fast path: byte aligned
            self._buf.extend(data)
        else:
            for byte in data:
                self.write_bits(byte, 8)

    def align(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        if self._bitpos:
            self._buf[-1] |= 0  # last byte already zero-padded
            self._bitpos = 0

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class BitReader:
    """MSB-first bit reader over an immutable byte string."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0  # absolute bit position

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    def read_bit(self) -> int:
        if self._pos >= len(self._data) * 8:
            raise CodecError("bit buffer exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, nbits: int) -> int:
        if nbits < 0:
            raise CodecError("negative bit count")
        value = 0
        for _ in range(nbits):
            value = (value << 1) | self.read_bit()
        return value

    def read_bytes(self, nbytes: int) -> bytes:
        if self._pos % 8 == 0:  # fast path: aligned
            start = self._pos >> 3
            end = start + nbytes
            if end > len(self._data):
                raise CodecError("byte buffer exhausted")
            self._pos = end * 8
            return self._data[start:end]
        return bytes(self.read_bits(8) for _ in range(nbytes))

    def align(self) -> None:
        rem = self._pos % 8
        if rem:
            self._pos += 8 - rem


class ByteWriter:
    """Growable byte buffer with endianness-aware integer writes."""

    def __init__(self, endian: str = "little"):
        if endian not in ("little", "big"):
            raise CodecError("endian must be 'little' or 'big'")
        self.endian = endian
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    def tell(self) -> int:
        return len(self._buf)

    def write(self, data: bytes) -> None:
        self._buf.extend(data)

    def write_uint(self, value: int, nbytes: int) -> None:
        if value < 0:
            raise CodecError("write_uint takes non-negative values")
        self._buf.extend(value.to_bytes(nbytes, self.endian))

    def write_int(self, value: int, nbytes: int) -> None:
        self._buf.extend(value.to_bytes(nbytes, self.endian, signed=True))

    def pad_to(self, alignment: int) -> None:
        """Zero-pad so the next write lands on an ``alignment`` boundary."""
        rem = len(self._buf) % alignment
        if rem:
            self._buf.extend(b"\x00" * (alignment - rem))

    def patch_uint(self, offset: int, value: int, nbytes: int) -> None:
        self._buf[offset : offset + nbytes] = value.to_bytes(nbytes, self.endian)

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class ByteReader:
    """Sequential byte reader with endianness-aware integer reads."""

    def __init__(self, data: bytes, endian: str = "little"):
        if endian not in ("little", "big"):
            raise CodecError("endian must be 'little' or 'big'")
        self.data = data
        self.endian = endian
        self.pos = 0

    @property
    def remaining(self) -> int:
        return len(self.data) - self.pos

    def read(self, nbytes: int) -> bytes:
        end = self.pos + nbytes
        if end > len(self.data):
            raise CodecError("buffer exhausted (want %d bytes)" % nbytes)
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def read_uint(self, nbytes: int) -> int:
        return int.from_bytes(self.read(nbytes), self.endian)

    def read_int(self, nbytes: int) -> int:
        return int.from_bytes(self.read(nbytes), self.endian, signed=True)

    def align(self, alignment: int) -> None:
        rem = self.pos % alignment
        if rem:
            self.read(alignment - rem)

    def uint_at(self, offset: int, nbytes: int) -> int:
        """Random-access unsigned read (FlatBuffers-style field access)."""
        if offset < 0 or offset + nbytes > len(self.data):
            raise CodecError("random access out of range")
        return int.from_bytes(self.data[offset : offset + nbytes], self.endian)

    def int_at(self, offset: int, nbytes: int) -> int:
        if offset < 0 or offset + nbytes > len(self.data):
            raise CodecError("random access out of range")
        return int.from_bytes(self.data[offset : offset + nbytes], self.endian, signed=True)
