"""Bit- and byte-level buffer primitives shared by the codecs.

``BitWriter``/``BitReader`` are MSB-first, as required by ASN.1 PER
(unaligned).  ``ByteWriter``/``ByteReader`` serve the byte-aligned
codecs (FlatBuffers, protobuf, CDR, LCM) with explicit endianness and
alignment support.

The hot paths are word-level: ``write_bits``/``read_bits`` move whole
bit-spans through ``int.to_bytes``/``int.from_bytes`` instead of
looping bit at a time, and the fixed-width integer reads use
precompiled :mod:`struct` unpackers over the underlying buffer
(``unpack_from`` — no per-read slice allocation).  All of it is
bit-identical to the original per-bit implementation; the codec
differential-fuzz and witness tests pin that.
"""

from __future__ import annotations

import struct
from typing import Optional

__all__ = ["BitWriter", "BitReader", "ByteWriter", "ByteReader", "CodecError"]


class CodecError(Exception):
    """Malformed input to an encoder or decoder."""


#: precompiled fixed-width packers, keyed by (endian, nbytes).
_PACK_U = {
    ("little", 1): struct.Struct("<B"),
    ("little", 2): struct.Struct("<H"),
    ("little", 4): struct.Struct("<I"),
    ("little", 8): struct.Struct("<Q"),
    ("big", 1): struct.Struct(">B"),
    ("big", 2): struct.Struct(">H"),
    ("big", 4): struct.Struct(">I"),
    ("big", 8): struct.Struct(">Q"),
}
_PACK_S = {
    ("little", 1): struct.Struct("<b"),
    ("little", 2): struct.Struct("<h"),
    ("little", 4): struct.Struct("<i"),
    ("little", 8): struct.Struct("<q"),
    ("big", 1): struct.Struct(">b"),
    ("big", 2): struct.Struct(">h"),
    ("big", 4): struct.Struct(">i"),
    ("big", 8): struct.Struct(">q"),
}


class BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self):
        self._buf = bytearray()
        self._bitpos = 0  # bits used in the last byte (0..7)

    def __len__(self) -> int:
        """Total number of bits written."""
        if self._bitpos == 0:
            return len(self._buf) * 8
        return (len(self._buf) - 1) * 8 + self._bitpos

    def write_bit(self, bit: int) -> None:
        bitpos = self._bitpos
        if bitpos == 0:
            self._buf.append(0x80 if bit else 0)
            self._bitpos = 1
        else:
            if bit:
                self._buf[-1] |= 0x80 >> bitpos
            self._bitpos = (bitpos + 1) & 7

    def write_bits(self, value: int, nbits: int) -> None:
        """Write the low ``nbits`` bits of ``value``, MSB first.

        Word-level: fills the partial byte, then emits all full bytes
        in one ``int.to_bytes`` call (C loop) instead of per-bit shifts.
        """
        if nbits < 0:
            raise CodecError("negative bit count")
        if value < 0:
            raise CodecError("write_bits takes non-negative values")
        if nbits and value >> nbits:
            raise CodecError("value %d does not fit in %d bits" % (value, nbits))
        if nbits == 0:
            return
        buf = self._buf
        bitpos = self._bitpos
        if bitpos:
            free = 8 - bitpos  # bits left in the partial last byte
            if nbits <= free:
                buf[-1] |= value << (free - nbits)
                self._bitpos = (bitpos + nbits) & 7
                return
            buf[-1] |= value >> (nbits - free)
            nbits -= free
            value &= (1 << nbits) - 1
        full, rem = divmod(nbits, 8)
        if rem:
            # Last byte carries the low `rem` bits left-aligned.
            buf += (value << (8 - rem)).to_bytes(full + 1, "big")
            self._bitpos = rem
        else:
            buf += value.to_bytes(full, "big")
            self._bitpos = 0

    def write_bytes(self, data: bytes) -> None:
        if self._bitpos == 0:  # fast path: byte aligned
            self._buf.extend(data)
        elif data:
            # One big-int shift instead of eight shifts per byte.
            self.write_bits(int.from_bytes(data, "big"), len(data) * 8)

    def align(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        if self._bitpos:
            self._buf[-1] |= 0  # last byte already zero-padded
            self._bitpos = 0

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class BitReader:
    """MSB-first bit reader over an immutable byte string."""

    def __init__(self, data: bytes):
        self._data = data
        self._nbits = len(data) * 8
        self._pos = 0  # absolute bit position

    @property
    def bits_remaining(self) -> int:
        return self._nbits - self._pos

    def read_bit(self) -> int:
        pos = self._pos
        if pos >= self._nbits:
            raise CodecError("bit buffer exhausted")
        self._pos = pos + 1
        return (self._data[pos >> 3] >> (7 - (pos & 7))) & 1

    def read_bits(self, nbits: int) -> int:
        """Word-level span read: one ``int.from_bytes`` over the bytes
        covering ``[pos, pos + nbits)``, then shift/mask."""
        if nbits < 0:
            raise CodecError("negative bit count")
        if nbits == 0:
            return 0
        pos = self._pos
        end = pos + nbits
        if end > self._nbits:
            raise CodecError("bit buffer exhausted")
        first = pos >> 3
        last = (end - 1) >> 3
        chunk = int.from_bytes(self._data[first : last + 1], "big")
        self._pos = end
        return (chunk >> (((last + 1) << 3) - end)) & ((1 << nbits) - 1)

    def read_bytes(self, nbytes: int) -> bytes:
        if self._pos & 7 == 0:  # fast path: aligned
            start = self._pos >> 3
            end = start + nbytes
            if end * 8 > self._nbits:
                raise CodecError("byte buffer exhausted")
            self._pos = end * 8
            return self._data[start:end]
        if nbytes == 0:
            return b""
        return self.read_bits(nbytes * 8).to_bytes(nbytes, "big")

    def align(self) -> None:
        rem = self._pos & 7
        if rem:
            self._pos += 8 - rem


class ByteWriter:
    """Growable byte buffer with endianness-aware integer writes."""

    def __init__(self, endian: str = "little"):
        if endian not in ("little", "big"):
            raise CodecError("endian must be 'little' or 'big'")
        self.endian = endian
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    def tell(self) -> int:
        return len(self._buf)

    def write(self, data: bytes) -> None:
        self._buf.extend(data)

    def write_uint(self, value: int, nbytes: int) -> None:
        if value < 0:
            raise CodecError("write_uint takes non-negative values")
        self._buf.extend(value.to_bytes(nbytes, self.endian))

    def write_int(self, value: int, nbytes: int) -> None:
        self._buf.extend(value.to_bytes(nbytes, self.endian, signed=True))

    def pad_to(self, alignment: int) -> None:
        """Zero-pad so the next write lands on an ``alignment`` boundary."""
        rem = len(self._buf) % alignment
        if rem:
            self._buf.extend(b"\x00" * (alignment - rem))

    def patch_uint(self, offset: int, value: int, nbytes: int) -> None:
        packer = _PACK_U.get((self.endian, nbytes))
        if packer is not None and 0 <= value < (1 << (nbytes * 8)):
            packer.pack_into(self._buf, offset, value)
        else:
            self._buf[offset : offset + nbytes] = value.to_bytes(nbytes, self.endian)

    def patch_bytes(self, offset: int, raw: bytes) -> None:
        """Overwrite ``len(raw)`` bytes in place (pre-encoded scalar)."""
        self._buf[offset : offset + len(raw)] = raw

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class ByteReader:
    """Sequential byte reader with endianness-aware integer reads."""

    def __init__(self, data: bytes, endian: str = "little"):
        if endian not in ("little", "big"):
            raise CodecError("endian must be 'little' or 'big'")
        self.data = data
        self.endian = endian
        self.pos = 0
        # Hot-path dispatch tables bound per reader: fixed-width reads
        # dominate FlatBuffers decode (every vtable hop is a uint_at).
        self._unpack_u = {
            1: _PACK_U[(endian, 1)].unpack_from,
            2: _PACK_U[(endian, 2)].unpack_from,
            4: _PACK_U[(endian, 4)].unpack_from,
            8: _PACK_U[(endian, 8)].unpack_from,
        }
        self._unpack_s = {
            1: _PACK_S[(endian, 1)].unpack_from,
            2: _PACK_S[(endian, 2)].unpack_from,
            4: _PACK_S[(endian, 4)].unpack_from,
            8: _PACK_S[(endian, 8)].unpack_from,
        }

    @property
    def remaining(self) -> int:
        return len(self.data) - self.pos

    def read(self, nbytes: int) -> bytes:
        end = self.pos + nbytes
        if end > len(self.data):
            raise CodecError("buffer exhausted (want %d bytes)" % nbytes)
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def read_uint(self, nbytes: int) -> int:
        pos = self.pos
        end = pos + nbytes
        if end > len(self.data):
            raise CodecError("buffer exhausted (want %d bytes)" % nbytes)
        self.pos = end
        unpack = self._unpack_u.get(nbytes)
        if unpack is not None:
            return unpack(self.data, pos)[0]
        return int.from_bytes(self.data[pos:end], self.endian)

    def read_int(self, nbytes: int) -> int:
        pos = self.pos
        end = pos + nbytes
        if end > len(self.data):
            raise CodecError("buffer exhausted (want %d bytes)" % nbytes)
        self.pos = end
        unpack = self._unpack_s.get(nbytes)
        if unpack is not None:
            return unpack(self.data, pos)[0]
        return int.from_bytes(self.data[pos:end], self.endian, signed=True)

    def align(self, alignment: int) -> None:
        rem = self.pos % alignment
        if rem:
            self.read(alignment - rem)

    def uint_at(self, offset: int, nbytes: int) -> int:
        """Random-access unsigned read (FlatBuffers-style field access)."""
        if offset < 0 or offset + nbytes > len(self.data):
            raise CodecError("random access out of range")
        unpack = self._unpack_u.get(nbytes)
        if unpack is not None:
            return unpack(self.data, offset)[0]
        return int.from_bytes(self.data[offset : offset + nbytes], self.endian)

    def int_at(self, offset: int, nbytes: int) -> int:
        if offset < 0 or offset + nbytes > len(self.data):
            raise CodecError("random access out of range")
        unpack = self._unpack_s.get(nbytes)
        if unpack is not None:
            return unpack(self.data, offset)[0]
        return int.from_bytes(self.data[offset : offset + nbytes], self.endian, signed=True)
