"""LCM (Lightweight Communications and Marshalling) style codec.

LCM encodes big-endian fixed-width fields in schema order behind an
8-byte type fingerprint.  Crucially for the paper (§4.1, §4.4): **LCM
has no union type and no unsigned integer types**, so cellular control
schemas — which use both pervasively — cannot be expressed.  This codec
reproduces that limitation: ``check_schema`` (and therefore ``encode``)
raises :class:`UnsupportedSchema` for schemas containing unions or
unsigned ints, and the Fig. 18 comparison only runs LCM on the custom
messages that avoid them.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any

from .base import Codec, UnsupportedSchema, register_codec
from .bitio import ByteReader, ByteWriter, CodecError
from .schema import Type, validate

__all__ = ["LcmCodec"]


def _fingerprint(t: Type) -> bytes:
    """Stable 8-byte type hash standing in for LCM's fingerprint."""

    def describe(t: Type) -> str:
        kind = t.kind
        if kind == "int":
            return "i%d" % t.bits
        if kind == "table":
            return "{%s}" % ",".join(
                "%s:%s%s" % (f.name, describe(f.type), "?" if f.optional else "")
                for f in t.fields
            )
        if kind == "array":
            return "[%s]" % describe(t.element)
        if kind == "enum":
            return "e%d" % len(t.names)
        return kind

    return hashlib.blake2b(describe(t).encode(), digest_size=8).digest()


class LcmCodec(Codec):
    """Big-endian fixed-layout codec with LCM's type-system limits."""

    name = "lcm"

    def check_schema(self, type_: Type) -> None:
        kind = type_.kind
        if kind == "union":
            raise UnsupportedSchema(
                "LCM has no union type (cellular CHOICEs are inexpressible)"
            )
        if kind == "int" and not type_.signed:
            raise UnsupportedSchema(
                "LCM has no unsigned integer types (u%d used)" % type_.bits
            )
        if kind == "table":
            for field in type_.fields:
                self.check_schema(field.type)
        elif kind == "array":
            self.check_schema(type_.element)

    def encode(self, type_: Type, value: Any) -> bytes:
        self.check_schema(type_)
        validate(value, type_)
        w = ByteWriter("big")
        w.write(_fingerprint(type_))
        self._encode(w, type_, value)
        return w.getvalue()

    def decode(self, type_: Type, data: bytes) -> Any:
        self.check_schema(type_)
        r = ByteReader(data, "big")
        if r.read(8) != _fingerprint(type_):
            raise CodecError("LCM fingerprint mismatch")
        return self._decode(r, type_)

    def _encode(self, w: ByteWriter, t: Type, v: Any) -> None:
        kind = t.kind
        if kind == "int":
            w.write_int(v, t.storage_bytes)
        elif kind == "bool":
            w.write_uint(1 if v else 0, 1)
        elif kind == "float":
            w.write(struct.pack(">d" if t.bits == 64 else ">f", v))
        elif kind == "enum":
            w.write_int(t.index[v], 4)
        elif kind == "bytes":
            w.write_uint(len(v), 4)
            w.write(bytes(v))
        elif kind == "string":
            raw = v.encode("utf-8")
            w.write_uint(len(raw) + 1, 4)
            w.write(raw)
            w.write(b"\x00")
        elif kind == "bitstring":
            intval, nbits = v
            nbytes = (nbits + 7) // 8
            w.write_uint(nbytes, 4)
            w.write(intval.to_bytes(nbytes, "big"))
        elif kind == "array":
            w.write_uint(len(v), 4)
            for item in v:
                self._encode(w, t.element, item)
        elif kind == "table":
            for field in t.fields:
                if field.optional:
                    w.write_uint(1 if field.name in v else 0, 1)
                if field.name in v:
                    self._encode(w, field.type, v[field.name])
        else:
            raise CodecError("kind %r should have been rejected" % kind)

    def _decode(self, r: ByteReader, t: Type) -> Any:
        kind = t.kind
        if kind == "int":
            return r.read_int(t.storage_bytes)
        if kind == "bool":
            return bool(r.read_uint(1))
        if kind == "float":
            width = t.bits // 8
            return struct.unpack(">d" if t.bits == 64 else ">f", r.read(width))[0]
        if kind == "enum":
            idx = r.read_int(4)
            if not 0 <= idx < len(t.names):
                raise CodecError("enum index out of range")
            return t.names[idx]
        if kind == "bytes":
            return r.read(r.read_uint(4))
        if kind == "string":
            raw = r.read(r.read_uint(4))
            return raw[:-1].decode("utf-8")
        if kind == "bitstring":
            raw = r.read(r.read_uint(4))
            return (int.from_bytes(raw, "big"), t.nbits)
        if kind == "array":
            n = r.read_uint(4)
            return [self._decode(r, t.element) for _ in range(n)]
        if kind == "table":
            out = {}
            for field in t.fields:
                present = True
                if field.optional:
                    present = bool(r.read_uint(1))
                if present:
                    out[field.name] = self._decode(r, field.type)
            return out
        raise CodecError("kind %r should have been rejected" % kind)


register_codec("lcm", LcmCodec)
