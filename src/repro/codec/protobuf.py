"""Protocol Buffers wire format, from scratch.

Implements the real proto3 wire encoding over the shared schema model:
``(field_number << 3) | wire_type`` varint tags, varint scalars with
zigzag for signed types, length-delimited strings/bytes/sub-messages,
and unions as oneof (encode only the set member).  Field numbers are the
1-based schema positions.

Like real protobuf, decode is sequential (tag by tag) but byte-aligned
and allocation-light, which is why it lands between ASN.1 and
FlatBuffers in the paper's Fig. 18.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

from .base import Codec, register_codec
from .bitio import ByteReader, ByteWriter, CodecError
from .schema import Field, TableType, Type, validate

__all__ = ["ProtobufCodec"]

_WT_VARINT = 0
_WT_I64 = 1
_WT_LEN = 2
_WT_I32 = 5

_PF64 = struct.Struct("<d")
_PF32 = struct.Struct("<f")


def _write_varint(w: ByteWriter, value: int) -> None:
    if value < 0:
        raise CodecError("varint takes non-negative values")
    # Append continuation bytes straight into the writer's buffer — one
    # bytearray.append per byte instead of a bytes object per byte.
    buf = w._buf
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _read_varint(r: ByteReader) -> int:
    # Walk the underlying buffer directly; committing `pos` once at the
    # end keeps the per-byte loop free of attribute writes.
    data = r.data
    pos = r.pos
    n = len(data)
    result = 0
    shift = 0
    while True:
        if pos >= n:
            r.pos = pos
            raise CodecError("buffer exhausted (want 1 bytes)")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            r.pos = pos
            return result
        shift += 7
        if shift > 63:
            r.pos = pos
            raise CodecError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63)


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


class ProtobufCodec(Codec):
    """proto3-style schema-driven encoder/decoder."""

    name = "protobuf"

    def encode(self, type_: Type, value: Any) -> bytes:
        validate(value, type_)
        w = ByteWriter("little")
        if type_.kind == "table":
            self._encode_table(w, type_, value)
        else:
            self._encode_field(w, 1, type_, value)
        return w.getvalue()

    def decode(self, type_: Type, data: bytes) -> Any:
        r = ByteReader(data, "little")
        if type_.kind == "table":
            return self._decode_table(r, type_, len(data))
        wrapper = TableType("_root", [Field("value", type_)])
        return self._decode_table(r, wrapper, len(data))["value"]

    # -- encoding ----------------------------------------------------------

    def _encode_table(self, w: ByteWriter, t: TableType, v: dict) -> None:
        for number, field in enumerate(t.fields, start=1):
            if field.name in v:
                self._encode_field(w, number, field.type, v[field.name])

    def _encode_field(self, w: ByteWriter, number: int, t: Type, v: Any) -> None:
        kind = t.kind
        if kind == "int":
            _write_varint(w, (number << 3) | _WT_VARINT)
            _write_varint(w, _zigzag(v) if t.signed else v)
        elif kind == "bool":
            _write_varint(w, (number << 3) | _WT_VARINT)
            _write_varint(w, 1 if v else 0)
        elif kind == "enum":
            _write_varint(w, (number << 3) | _WT_VARINT)
            _write_varint(w, t.index[v])
        elif kind == "float":
            if t.bits == 64:
                _write_varint(w, (number << 3) | _WT_I64)
                w.write(_PF64.pack(v))
            else:
                _write_varint(w, (number << 3) | _WT_I32)
                w.write(_PF32.pack(v))
        elif kind in ("bytes", "string", "bitstring", "table", "array", "union"):
            payload = self._encode_nested(t, v)
            _write_varint(w, (number << 3) | _WT_LEN)
            _write_varint(w, len(payload))
            w.write(payload)
        else:
            raise CodecError("unsupported kind %r" % kind)

    def _encode_nested(self, t: Type, v: Any) -> bytes:
        w = ByteWriter("little")
        kind = t.kind
        if kind == "bytes":
            w.write(bytes(v))
        elif kind == "string":
            w.write(v.encode("utf-8"))
        elif kind == "bitstring":
            intval, nbits = v
            w.write(intval.to_bytes((nbits + 7) // 8, "big"))
        elif kind == "table":
            self._encode_table(w, t, v)
        elif kind == "array":
            for item in v:  # repeated: element per tag, always field 1
                self._encode_field(w, 1, t.element, item)
        elif kind == "union":
            alt_name, inner = v
            self._encode_field(w, t.index[alt_name] + 1, t.alt_type(alt_name), inner)
        return w.getvalue()

    # -- decoding ----------------------------------------------------------

    def _decode_table(self, r: ByteReader, t: TableType, end: int) -> dict:
        out: dict = {}
        while r.pos < end:
            tag = _read_varint(r)
            number, wire_type = tag >> 3, tag & 7
            if not 1 <= number <= len(t.fields):
                raise CodecError("unknown field number %d in %s" % (number, t.name))
            field = t.fields[number - 1]
            out[field.name] = self._decode_field(r, field.type, wire_type)
        return out

    def _decode_field(self, r: ByteReader, t: Type, wire_type: int) -> Any:
        kind = t.kind
        if kind == "int":
            if wire_type != _WT_VARINT:
                raise CodecError("int expects varint wire type")
            raw = _read_varint(r)
            return _unzigzag(raw) if t.signed else raw
        if kind == "bool":
            return bool(_read_varint(r))
        if kind == "enum":
            idx = _read_varint(r)
            if idx >= len(t.names):
                raise CodecError("enum index out of range")
            return t.names[idx]
        if kind == "float":
            if t.bits == 64:
                return _PF64.unpack(r.read(8))[0]
            return _PF32.unpack(r.read(4))[0]
        if wire_type != _WT_LEN:
            raise CodecError("%s expects length-delimited wire type" % kind)
        length = _read_varint(r)
        end = r.pos + length
        if kind == "bytes":
            return r.read(length)
        if kind == "string":
            return r.read(length).decode("utf-8")
        if kind == "bitstring":
            raw = r.read(length)
            return (int.from_bytes(raw, "big"), t.nbits)
        if kind == "table":
            value = self._decode_table(r, t, end)
            return value
        if kind == "array":
            items = []
            while r.pos < end:
                tag = _read_varint(r)
                items.append(self._decode_field(r, t.element, tag & 7))
            return items
        if kind == "union":
            tag = _read_varint(r)
            number, inner_wt = tag >> 3, tag & 7
            if not 1 <= number <= len(t.alts):
                raise CodecError("unknown union alternative %d" % number)
            alt_name, alt_type = t.alts[number - 1]
            return (alt_name, self._decode_field(r, alt_type, inner_wt))
        raise CodecError("unsupported kind %r" % kind)


register_codec("protobuf", ProtobufCodec)
