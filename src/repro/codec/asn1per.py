"""ASN.1 Packed Encoding Rules (unaligned PER), from scratch.

This implements the subset of unaligned PER that S1AP/NAS-style control
messages exercise: constrained whole numbers, optional-field preambles,
CHOICE indices, general length determinants, octet/bit/character
strings, SEQUENCE and SEQUENCE OF.  The paper used PER for its ASN.1
experiments (§3.2 footnote 9).

Two structural properties of PER that the paper blames for slowness are
faithfully reproduced:

* **Sequential decode** — a field's position in the bit stream depends on
  every preceding field's encoded width, so accessing field *k* requires
  decoding fields ``1..k-1``.  There is no random access.
* **Per-decode allocation** — every decoded composite materializes fresh
  Python containers.

What PER buys in exchange is size: constrained integers use
``ceil(log2(range))`` bits and optional fields cost one preamble bit.
"""

from __future__ import annotations

import struct
from typing import Any

from .base import Codec, register_codec
from .bitio import BitReader, BitWriter, CodecError
from .schema import Type, validate

__all__ = ["Asn1PerCodec"]

_F64 = struct.Struct(">d")
_F32 = struct.Struct(">f")

# Length determinants above this need fragmentation, which control
# messages never hit; we reject rather than silently mis-encode.
_MAX_LENGTH = 16383


def _bits_for_range(range_size: int) -> int:
    """Bits needed for a constrained whole number with ``range_size`` values."""
    if range_size <= 1:
        return 0
    return (range_size - 1).bit_length()


def _write_length(writer: BitWriter, n: int) -> None:
    """General length determinant (X.691 §10.9, unfragmented forms)."""
    if n < 0:
        raise CodecError("negative length")
    if n <= 127:
        writer.write_bit(0)
        writer.write_bits(n, 7)
    elif n <= _MAX_LENGTH:
        writer.write_bit(1)
        writer.write_bit(0)
        writer.write_bits(n, 14)
    else:
        raise CodecError("length %d exceeds unfragmented PER limit" % n)


def _read_length(reader: BitReader) -> int:
    if reader.read_bit() == 0:
        return reader.read_bits(7)
    if reader.read_bit() == 0:
        return reader.read_bits(14)
    raise CodecError("fragmented PER lengths are not supported")


def _write_unconstrained_int(writer: BitWriter, value: int) -> None:
    """2's-complement minimal-octets integer with a length determinant."""
    nbytes = max(1, (value.bit_length() + 8) // 8)
    _write_length(writer, nbytes)
    writer.write_bytes(value.to_bytes(nbytes, "big", signed=True))


def _read_unconstrained_int(reader: BitReader) -> int:
    nbytes = _read_length(reader)
    return int.from_bytes(reader.read_bytes(nbytes), "big", signed=True)


class Asn1PerCodec(Codec):
    """Unaligned-PER encoder/decoder over the shared schema model."""

    name = "asn1per"

    def encode(self, type_: Type, value: Any) -> bytes:
        validate(value, type_)
        writer = BitWriter()
        self._encode(writer, type_, value)
        writer.align()
        return writer.getvalue()

    def decode(self, type_: Type, data: bytes) -> Any:
        reader = BitReader(data)
        return self._decode(reader, type_)

    # -- encoding ----------------------------------------------------------

    def _encode(self, w: BitWriter, t: Type, v: Any) -> None:
        kind = t.kind
        if kind == "int":
            if t.range_size <= (1 << 62):  # constrained whole number
                w.write_bits(v - t.lo, _bits_for_range(t.range_size))
            else:
                _write_unconstrained_int(w, v)
        elif kind == "bool":
            w.write_bit(1 if v else 0)
        elif kind == "float":
            raw = (_F64 if t.bits == 64 else _F32).pack(v)
            _write_length(w, len(raw))
            w.write_bytes(raw)
        elif kind == "enum":
            w.write_bits(t.index[v], _bits_for_range(len(t.names)))
        elif kind == "bytes":
            _write_length(w, len(v))
            w.write_bytes(bytes(v))
        elif kind == "string":
            raw = v.encode("utf-8")
            _write_length(w, len(raw))
            w.write_bytes(raw)
        elif kind == "bitstring":
            intval, nbits = v
            w.write_bits(intval, nbits)
        elif kind == "array":
            _write_length(w, len(v))
            for item in v:
                self._encode(w, t.element, item)
        elif kind == "table":
            for field in t.fields:  # preamble: one bit per OPTIONAL field
                if field.optional:
                    w.write_bit(1 if field.name in v else 0)
            for field in t.fields:
                if field.name in v:
                    self._encode(w, field.type, v[field.name])
        elif kind == "union":
            alt_name, inner = v
            w.write_bits(t.index[alt_name], _bits_for_range(len(t.alts)))
            self._encode(w, t.alt_type(alt_name), inner)
        else:
            raise CodecError("unsupported kind %r" % kind)

    # -- decoding ----------------------------------------------------------

    def _decode(self, r: BitReader, t: Type) -> Any:
        kind = t.kind
        if kind == "int":
            if t.range_size <= (1 << 62):
                return t.lo + r.read_bits(_bits_for_range(t.range_size))
            return _read_unconstrained_int(r)
        if kind == "bool":
            return bool(r.read_bit())
        if kind == "float":
            nbytes = _read_length(r)
            raw = r.read_bytes(nbytes)
            return (_F64 if nbytes == 8 else _F32).unpack(raw)[0]
        if kind == "enum":
            idx = r.read_bits(_bits_for_range(len(t.names)))
            if idx >= len(t.names):
                raise CodecError("enum index %d out of range" % idx)
            return t.names[idx]
        if kind == "bytes":
            return r.read_bytes(_read_length(r))
        if kind == "string":
            return r.read_bytes(_read_length(r)).decode("utf-8")
        if kind == "bitstring":
            return (r.read_bits(t.nbits), t.nbits)
        if kind == "array":
            n = _read_length(r)
            return [self._decode(r, t.element) for _ in range(n)]
        if kind == "table":
            present = {}
            for field in t.fields:
                present[field.name] = (not field.optional) or bool(r.read_bit())
            out = {}
            for field in t.fields:
                if present[field.name]:
                    out[field.name] = self._decode(r, field.type)
            return out
        if kind == "union":
            idx = r.read_bits(_bits_for_range(len(t.alts)))
            if idx >= len(t.alts):
                raise CodecError("union index %d out of range" % idx)
            alt_name, alt_type = t.alts[idx]
            return (alt_name, self._decode(r, alt_type))
        raise CodecError("unsupported kind %r" % kind)


register_codec("asn1per", Asn1PerCodec)
