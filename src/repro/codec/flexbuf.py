"""FlexBuffers-style schema-less self-describing codec.

FlexBuffers (FlatBuffers' schema-less sibling) stores type information
alongside every value, so no schema is needed to decode — at the cost of
per-value type bytes and, in our rendering, dictionary keys inline with
map values.  The self-description overhead is what keeps FlexBuffers
behind schema-driven FlatBuffers in the paper's Fig. 18 while remaining
well ahead of ASN.1 (no bit-level work, byte-aligned access).

The wire format here is a simplified but fully self-describing TLV tree:
a type byte, then the payload.  Tables encode as maps (key strings are
written inline), unions as a 2-entry map ``{"!": alt_name, "v": value}``.
"""

from __future__ import annotations

import struct
from typing import Any

from .base import Codec, register_codec
from .bitio import ByteReader, ByteWriter, CodecError
from .schema import Type, validate

__all__ = ["FlexBuffersCodec"]

_T_NULL = 0
_T_INT = 1
_T_UINT = 2
_T_FLOAT = 3
_T_BOOL = 4
_T_STRING = 5
_T_BYTES = 6
_T_VECTOR = 7
_T_MAP = 8


def _write_len(w: ByteWriter, n: int) -> None:
    # Variable-width length: FlexBuffers uses bit-width prefixes; we use a
    # 1-or-4 byte form which has the same asymptotics.
    if n < 255:
        w.write_uint(n, 1)
    else:
        w.write_uint(255, 1)
        w.write_uint(n, 4)


def _read_len(r: ByteReader) -> int:
    n = r.read_uint(1)
    if n == 255:
        return r.read_uint(4)
    return n


class FlexBuffersCodec(Codec):
    """Schema-less encoder; schema used only to re-type decoded values."""

    name = "flexbuffers"

    def encode(self, type_: Type, value: Any) -> bytes:
        validate(value, type_)
        w = ByteWriter("little")
        self._encode(w, type_, value)
        return w.getvalue()

    def decode(self, type_: Type, data: bytes) -> Any:
        r = ByteReader(data, "little")
        value = self._decode(r, type_)
        validate(value, type_)
        return value

    def _encode(self, w: ByteWriter, t: Type, v: Any) -> None:
        kind = t.kind
        if kind == "int":
            w.write_uint(_T_UINT if not t.signed else _T_INT, 1)
            w.write_int(v, 8) if t.signed else w.write_uint(v, 8)
        elif kind == "bool":
            w.write_uint(_T_BOOL, 1)
            w.write_uint(1 if v else 0, 1)
        elif kind == "float":
            w.write_uint(_T_FLOAT, 1)
            w.write(struct.pack("<d", float(v)))
        elif kind == "enum":
            self._write_str(w, v)
        elif kind == "string":
            self._write_str(w, v)
        elif kind == "bytes":
            w.write_uint(_T_BYTES, 1)
            _write_len(w, len(v))
            w.write(bytes(v))
        elif kind == "bitstring":
            intval, nbits = v
            raw = intval.to_bytes((nbits + 7) // 8, "big")
            w.write_uint(_T_BYTES, 1)
            _write_len(w, len(raw))
            w.write(raw)
        elif kind == "array":
            w.write_uint(_T_VECTOR, 1)
            _write_len(w, len(v))
            for item in v:
                self._encode(w, t.element, item)
        elif kind == "table":
            present = [f for f in t.fields if f.name in v]
            w.write_uint(_T_MAP, 1)
            _write_len(w, len(present))
            for field in present:
                self._write_key(w, field.name)
                self._encode(w, field.type, v[field.name])
        elif kind == "union":
            alt_name, inner = v
            w.write_uint(_T_MAP, 1)
            _write_len(w, 2)
            self._write_key(w, "!")
            self._write_str(w, alt_name)
            self._write_key(w, "v")
            self._encode(w, t.alt_type(alt_name), inner)
        else:
            raise CodecError("unsupported kind %r" % kind)

    def _write_key(self, w: ByteWriter, key: str) -> None:
        raw = key.encode("utf-8")
        _write_len(w, len(raw))
        w.write(raw)

    def _write_str(self, w: ByteWriter, s: str) -> None:
        raw = s.encode("utf-8")
        w.write_uint(_T_STRING, 1)
        _write_len(w, len(raw))
        w.write(raw)

    def _decode(self, r: ByteReader, t: Type) -> Any:
        tag = r.read_uint(1)
        kind = t.kind
        if tag == _T_UINT or tag == _T_INT:
            value = r.read_int(8) if tag == _T_INT else r.read_uint(8)
            if kind != "int":
                raise CodecError("decoded int where %s expected" % kind)
            return value
        if tag == _T_BOOL:
            return bool(r.read_uint(1))
        if tag == _T_FLOAT:
            return struct.unpack("<d", r.read(8))[0]
        if tag == _T_STRING:
            s = r.read(_read_len(r)).decode("utf-8")
            return s  # enums and strings both arrive as str
        if tag == _T_BYTES:
            raw = r.read(_read_len(r))
            if kind == "bitstring":
                return (int.from_bytes(raw, "big"), t.nbits)
            return raw
        if tag == _T_VECTOR:
            n = _read_len(r)
            return [self._decode(r, t.element) for _ in range(n)]
        if tag == _T_MAP:
            n = _read_len(r)
            if kind == "union":
                entries = {}
                for _ in range(n):
                    key = r.read(_read_len(r)).decode("utf-8")
                    if key == "!":
                        entries["!"] = self._decode_str(r)
                    else:
                        alt_type = t.alt_type(entries["!"])
                        entries["v"] = self._decode(r, alt_type)
                return (entries["!"], entries["v"])
            if kind != "table":
                raise CodecError("decoded map where %s expected" % kind)
            out = {}
            for _ in range(n):
                key = r.read(_read_len(r)).decode("utf-8")
                field = t.field(key)
                out[key] = self._decode(r, field.type)
            return out
        raise CodecError("unknown FlexBuffers tag %d" % tag)

    def _decode_str(self, r: ByteReader) -> str:
        tag = r.read_uint(1)
        if tag != _T_STRING:
            raise CodecError("expected string tag")
        return r.read(_read_len(r)).decode("utf-8")


register_codec("flexbuffers", FlexBuffersCodec)
