"""Neutrino: a low latency and consistent cellular control plane.

A complete Python reproduction of Ahmad et al., SIGCOMM 2020 — the
Neutrino control plane, its substrates (discrete-event simulated core,
seven serialization engines, geo-replication), the paper's baselines
(existing EPC, SkyCore, DPCM), and an experiment harness regenerating
every evaluation figure.

Quickstart::

    from repro.sim import Simulator
    from repro.core import ControlPlaneConfig, Deployment

    sim = Simulator()
    dep = Deployment.build_grid(sim, ControlPlaneConfig.neutrino())
    ue = dep.new_ue("ue-1", "bs-20-0")
    sim.process(ue.execute("attach"))
    sim.run(until=1.0)
    print(dep.pct["attach"].median)
"""

__version__ = "1.0.0"

__all__ = ["sim", "codec", "messages", "geo", "core", "baselines", "traffic", "apps", "experiments"]
