"""Baseline designs the paper evaluates against (§6.2):
existing EPC, SkyCore, DPCM — as presets over the shared substrate."""

from .policies import DPCM_PROCEDURES, baseline_configs

__all__ = ["DPCM_PROCEDURES", "baseline_configs"]
