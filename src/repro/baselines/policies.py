"""Baseline control-plane designs (paper §6.2).

Three of the four baselines are pure configuration presets over the
shared substrate (see :meth:`ControlPlaneConfig.existing_epc`,
``skycore``, ``dpcm``).  DPCM [Li et al., MobiCom'17] additionally
changes the *procedure flows*: the device carries its own state, so the
network can skip the state-retrieval round trips and run user-plane
programming in parallel.  Those modified flows live here.

* DPCM attach: authentication/security piggyback on the first exchange
  (device-side signatures replace the separate auth round trip).
* DPCM service request: the bearer is restored from the device-side
  context while the UPF is programmed in parallel (the ``dpcm_mode``
  flag in :class:`~repro.core.ue.UE` launches non-final ``cpf_upf``
  steps concurrently).
"""

from __future__ import annotations

from typing import Dict

from ..core.config import ControlPlaneConfig
from ..messages.procedures import ProcedureSpec, Step

__all__ = ["DPCM_PROCEDURES", "baseline_configs"]

_DPCM_ATTACH_STEPS = (
    # AttachRequest carries the device-side auth material; the network
    # answers directly with the security command (one RTT saved).
    Step(
        "ue_exchange",
        "InitialUEMessage",
        "DownlinkNASTransport",
        request_nas="AttachRequest",
        response_nas="SecurityModeCommand",
    ),
    Step("ue_message", "UplinkNASTransport", request_nas="SecurityModeComplete"),
    Step("cpf_upf", "CreateSessionRequest", "CreateSessionResponse"),
    Step(
        "cpf_bs",
        "InitialContextSetup",
        "InitialContextSetupResponse",
        request_nas="AttachAccept",
        ends_pct=True,
    ),
    Step("ue_message", "UplinkNASTransport", request_nas="AttachComplete"),
)

_DPCM_SERVICE_REQUEST_STEPS = (
    Step("ue_message", "InitialUEMessage", request_nas="NASServiceRequest"),
    # UPF programming overlaps the radio-side context setup (device-side
    # state lets both proceed from the same request).
    Step("cpf_upf", "ModifyBearerRequest", "ModifyBearerResponse"),
    Step(
        "cpf_bs",
        "InitialContextSetup",
        "InitialContextSetupResponse",
        ends_pct=True,
    ),
)

DPCM_PROCEDURES: Dict[str, ProcedureSpec] = {
    "attach": ProcedureSpec("attach", _DPCM_ATTACH_STEPS),
    "re_attach": ProcedureSpec("re_attach", _DPCM_ATTACH_STEPS),
    "service_request": ProcedureSpec("service_request", _DPCM_SERVICE_REQUEST_STEPS),
}


def baseline_configs() -> Dict[str, ControlPlaneConfig]:
    """All four evaluated designs, ready to hand to a Deployment."""
    return {
        "existing_epc": ControlPlaneConfig.existing_epc(),
        "neutrino": ControlPlaneConfig.neutrino(),
        "skycore": ControlPlaneConfig.skycore(),
        "dpcm": ControlPlaneConfig.dpcm(),
    }
