"""Experiment harness and per-figure reproduction definitions."""

from .harness import PCTPoint, RunSpec, run_pct_point, sweep
from .cache import CacheStats, ResultCache
from .parallel import SweepJob, SweepReport, run_jobs, run_sweep
from . import figures, report

__all__ = [
    "PCTPoint",
    "RunSpec",
    "run_pct_point",
    "sweep",
    "CacheStats",
    "ResultCache",
    "SweepJob",
    "SweepReport",
    "run_jobs",
    "run_sweep",
    "figures",
    "report",
]
