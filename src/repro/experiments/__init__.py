"""Experiment harness and per-figure reproduction definitions."""

from .harness import PCTPoint, RunSpec, run_pct_point, sweep
from . import figures, report

__all__ = ["PCTPoint", "RunSpec", "run_pct_point", "sweep", "figures", "report"]
