"""Per-figure reproduction definitions.

One function per evaluation figure of the paper.  Each returns
structured rows (and can print them via :mod:`.report`); the benchmark
files under ``benchmarks/`` are thin wrappers that execute these at
reduced scale, and EXPERIMENTS.md records full-scale outputs.

Figure index (see DESIGN.md §3 for the full mapping):

* fig03 — page load time & video startup vs load, ASN.1 vs Neutrino.
* fig07 — service request PCT: EPC / DPCM / SkyCore / Neutrino.
* fig08 — attach PCT, uniform traffic: EPC vs Neutrino.
* fig09 — attach PCT, bursty IoT traffic.
* fig10 — handover PCT under CPF failure.
* fig11 — Fast Handover: EPC / Neutrino-Default / Neutrino-Proactive.
* fig13 — self-driving-car missed deadlines.
* fig14 — VR missed deadlines.
* fig15 — state-synchronization factor analysis.
* fig16 — message-logging overhead.
* fig17 — CTA max log size vs active users.
* fig18 — codec encode+decode speedup vs #elements (custom message).
* fig19 — encode+decode time on real S1 messages.
* fig20 — encoded sizes on real S1 messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..codec.base import UnsupportedSchema, get_codec
from ..codec.costs import CostModel, measure
from ..codec.schema import (
    ArrayType,
    BytesType,
    Field,
    IntType,
    StringType,
    TableType,
)
from ..core.config import ControlPlaneConfig
from ..messages.registry import CATALOG
from .harness import (
    PCTPoint,
    RunSpec,
    estimated_utilization,
    overload_pct_at_horizon,
)
from .parallel import SweepJob, run_jobs

__all__ = [
    "fig03_plt_and_video",
    "fig07_service_request",
    "fig08_attach_uniform",
    "fig09_attach_bursty",
    "fig10_failure_handover",
    "fig11_fast_handover",
    "fig13_self_driving",
    "fig14_vr",
    "fig15_sync_schemes",
    "fig16_logging_overhead",
    "fig17_log_size",
    "fig18_codec_speedup",
    "fig19_real_message_times",
    "fig20_encoded_sizes",
    "custom_message",
]

# ---------------------------------------------------------------------------
# PCT figures
# ---------------------------------------------------------------------------

DEFAULT_FIG07_RATES = (100e3, 120e3, 140e3, 160e3, 180e3, 200e3, 220e3)
DEFAULT_FIG08_RATES = (40e3, 60e3, 80e3, 100e3, 120e3, 140e3, 160e3)


def fig07_service_request(
    rates: Sequence[float] = DEFAULT_FIG07_RATES,
    spec: Optional[RunSpec] = None,
    jobs: int = 1,
    cache=None,
) -> List[PCTPoint]:
    """Service request PCT for all four designs (paper Fig. 7)."""
    spec = spec or RunSpec(procedure="service_request")
    configs = [
        ControlPlaneConfig.existing_epc(),
        ControlPlaneConfig.dpcm(),
        ControlPlaneConfig.skycore(),
        ControlPlaneConfig.neutrino(),
    ]
    return run_jobs(
        [SweepJob(c, r, spec) for c in configs for r in rates],
        jobs=jobs,
        cache=cache,
    )


def fig08_attach_uniform(
    rates: Sequence[float] = DEFAULT_FIG08_RATES,
    spec: Optional[RunSpec] = None,
    jobs: int = 1,
    cache=None,
) -> List[PCTPoint]:
    """Attach PCT, uniform traffic: EPC vs Neutrino (paper Fig. 8)."""
    spec = spec or RunSpec(procedure="attach")
    configs = [ControlPlaneConfig.existing_epc(), ControlPlaneConfig.neutrino()]
    return run_jobs(
        [SweepJob(c, r, spec) for c in configs for r in rates],
        jobs=jobs,
        cache=cache,
    )


#: paper Fig. 9 x-axis (total active users bursting); we simulate a
#: documented 1/50 slice of each burst.
DEFAULT_FIG09_USERS = (10e3, 50e3, 100e3, 500e3, 1e6, 2e6)
FIG09_BURST_SLICE = 1.0 / 50.0


def fig09_attach_bursty(
    users: Sequence[float] = DEFAULT_FIG09_USERS,
    burst_slice: float = FIG09_BURST_SLICE,
    spec: Optional[RunSpec] = None,
    jobs: int = 1,
    cache=None,
) -> List[PCTPoint]:
    """Attach PCT under synchronized IoT bursts (paper Fig. 9)."""
    configs = [ControlPlaneConfig.existing_epc(), ControlPlaneConfig.neutrino()]
    sweep_jobs = []
    axes = []
    for config in configs:
        for n in users:
            sim_users = max(64, int(n * burst_slice))
            run = spec or RunSpec(procedure="attach")
            run = RunSpec(
                **{
                    **run.__dict__,
                    "bursty_users": sim_users,
                    "burst_window_s": 0.02,
                    "drain_s": 30.0,
                    "warmup_frac": 0.0,
                }
            )
            sweep_jobs.append(SweepJob(config, 1.0, run))
            axes.append(n)
    points = run_jobs(sweep_jobs, jobs=jobs, cache=cache)
    for point, n in zip(points, axes):
        point.axis_rate = n  # report the paper's axis, not the slice
    return points


def fig10_failure_handover(
    rates: Sequence[float] = (40e3, 60e3, 80e3, 100e3, 120e3, 140e3, 160e3),
    spec: Optional[RunSpec] = None,
    fault_plan=None,
    jobs: int = 1,
    cache=None,
) -> List[PCTPoint]:
    """Handover PCT under a CPF failure (paper Fig. 10).

    A 2x2 grid (two CPFs per region) so that backups survive the kill;
    the PCT distribution reported is over procedures that experienced
    the failure (``recovered``), matching the paper's accounting.

    The kill is injected through :mod:`repro.faults`; pass a
    :class:`~repro.faults.FaultPlan` as ``fault_plan`` to overlay
    message-level chaos (seeded drop/dup/reorder on any hop) on the
    same sweep.  Every point's ``violations`` field carries the
    always-on Read-your-Writes audit — zero for Neutrino by design.
    """
    spec = spec or RunSpec(
        procedure="handover",
        cpfs_per_region=2,
        failure_cpf_index=0,
        failure_at_frac=0.5,
        first_region_only=True,
    )
    if fault_plan is not None:
        spec = RunSpec(**{**spec.__dict__, "fault_plan": fault_plan})
    configs = [ControlPlaneConfig.existing_epc(), ControlPlaneConfig.neutrino()]
    return run_jobs(
        [SweepJob(c, r, spec) for c in configs for r in rates],
        jobs=jobs,
        cache=cache,
    )


def fig11_fast_handover(
    rates: Sequence[float] = (40e3, 60e3, 80e3, 100e3, 120e3, 140e3, 160e3),
    spec: Optional[RunSpec] = None,
    jobs: int = 1,
    cache=None,
) -> List[PCTPoint]:
    """EPC vs Neutrino-Default vs Neutrino-Proactive (paper Fig. 11)."""
    cases = [
        (ControlPlaneConfig.existing_epc(), "handover"),
        (
            ControlPlaneConfig.neutrino(
                name="neutrino_default", proactive_georep=False
            ),
            "handover",
        ),
        (ControlPlaneConfig.neutrino(name="neutrino_proactive"), "fast_handover"),
    ]
    sweep_jobs = []
    for config, procedure in cases:
        for rate in rates:
            run = spec or RunSpec()
            run = RunSpec(
                **{
                    **run.__dict__,
                    "procedure": procedure,
                    "first_region_only": True,
                }
            )
            sweep_jobs.append(SweepJob(config, rate, run))
    return run_jobs(sweep_jobs, jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# Application figures
# ---------------------------------------------------------------------------


def fig03_plt_and_video(
    rates: Sequence[float] = (180e3, 200e3, 220e3, 240e3, 260e3, 280e3, 300e3),
    video_spec=None,
    web_spec=None,
) -> List[Dict[str, Any]]:
    """Page load time & video startup, ASN.1 vs faster serialization."""
    # imported lazily: repro.apps imports this package's harness
    from ..apps.video import run_video_startup
    from ..apps.web import run_page_load

    rows = []
    for config in (ControlPlaneConfig.existing_epc(), ControlPlaneConfig.neutrino()):
        for rate in rates:
            video = run_video_startup(config, rate, video_spec)
            web = run_page_load(config, rate, web_spec)
            # The paper ran 60 s: in overload the queue (and thus the
            # startup delay) keeps growing for the whole run.  Our runs
            # are shorter, so extrapolate the overload delay to the
            # paper's horizon with the fluid limit (DESIGN.md §4).
            rho = estimated_utilization(config, "service_request", rate)
            extrapolated = overload_pct_at_horizon(rho, 60.0)
            sr_60s = max(video.sr_pct_p50_ms / 1e3, extrapolated)
            player = video.startup_p50_s - video.sr_pct_p50_ms / 1e3
            page = web.plt_p50_s - web.sr_pct_p50_ms / 1e3
            rows.append(
                {
                    "scheme": config.name,
                    "rate": rate,
                    "video_startup_p50_s": video.startup_p50_s,
                    "plt_p50_s": web.plt_p50_s,
                    "sr_pct_p50_ms": video.sr_pct_p50_ms,
                    "est_rho": rho,
                    "est_video_startup_60s_s": player + sr_60s,
                    "est_plt_60s_s": page + sr_60s,
                }
            )
    return rows


def fig13_self_driving(
    users: Sequence[float] = (50e3, 100e3, 200e3, 500e3),
    handovers: Tuple[int, int] = (1, 4),
    **spec_overrides,
) -> List[Dict[str, Any]]:
    """Missed self-driving-car deadlines, single & multiple HO."""
    from ..apps.selfdriving import run_self_driving, self_driving_spec

    rows = []
    for config in (ControlPlaneConfig.existing_epc(), ControlPlaneConfig.neutrino()):
        for n_ho, label in zip(handovers, ("single_ho", "multiple_ho")):
            for n_users in users:
                result = run_self_driving(
                    config,
                    n_users,
                    spec=self_driving_spec(handovers=n_ho, **spec_overrides),
                )
                rows.append(
                    {
                        "scheme": config.name,
                        "scenario": label,
                        "active_users": n_users,
                        "missed": result.missed,
                        "total": result.total,
                        "stall_s": result.stall_time_s,
                    }
                )
    return rows


def fig14_vr(
    users: Sequence[float] = (10e3, 50e3, 100e3, 200e3, 500e3),
    handovers: Tuple[int, int] = (1, 4),
    **spec_overrides,
) -> List[Dict[str, Any]]:
    """Missed VR frame deadlines, single & multiple HO."""
    from ..apps.vr import run_vr, vr_spec

    rows = []
    for config in (ControlPlaneConfig.existing_epc(), ControlPlaneConfig.neutrino()):
        for n_ho, label in zip(handovers, ("single_ho", "multiple_ho")):
            for n_users in users:
                result = run_vr(
                    config, n_users, spec=vr_spec(handovers=n_ho, **spec_overrides)
                )
                rows.append(
                    {
                        "scheme": config.name,
                        "scenario": label,
                        "active_users": n_users,
                        "missed": result.missed,
                        "total": result.total,
                        "stall_s": result.stall_time_s,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Factor analysis (Figs. 15-17)
# ---------------------------------------------------------------------------


def fig15_sync_schemes(
    rates: Sequence[float] = (20e3, 40e3, 60e3, 80e3, 100e3),
    spec: Optional[RunSpec] = None,
    jobs: int = 1,
    cache=None,
) -> List[PCTPoint]:
    """No-rep vs per-message vs per-procedure sync (paper Fig. 15)."""
    spec = spec or RunSpec(procedure="attach")
    base = ControlPlaneConfig.neutrino
    configs = [
        base(name="no_rep", sync_mode="none", n_backups=0),
        base(name="per_msg_rep", sync_mode="per_message"),
        base(name="per_proc_rep", sync_mode="per_procedure"),
    ]
    return run_jobs(
        [SweepJob(c, r, spec) for c in configs for r in rates],
        jobs=jobs,
        cache=cache,
    )


def fig16_logging_overhead(
    rates: Sequence[float] = (20e3, 40e3, 60e3, 80e3, 100e3, 120e3, 140e3),
    spec: Optional[RunSpec] = None,
    jobs: int = 1,
    cache=None,
) -> List[PCTPoint]:
    """Message logging on vs off (paper Fig. 16)."""
    spec = spec or RunSpec(procedure="attach")
    configs = [
        ControlPlaneConfig.neutrino(name="logging"),
        ControlPlaneConfig.neutrino(
            name="no_logging", message_logging=False, recovery="reattach"
        ),
    ]
    return run_jobs(
        [SweepJob(c, r, spec) for c in configs for r in rates],
        jobs=jobs,
        cache=cache,
    )


#: Fig. 17 slice: fraction of each user population simulated (log size
#: per UE is independent, so the total extrapolates linearly).
FIG17_USER_SLICE = 1.0 / 50.0


def fig17_log_size(
    users: Sequence[float] = (10e3, 50e3, 100e3, 200e3),
    user_slice: float = FIG17_USER_SLICE,
    procedures: Sequence[str] = ("attach", "handover"),
    jobs: int = 1,
    cache=None,
) -> List[Dict[str, Any]]:
    """Max CTA log size vs active users (paper Fig. 17)."""
    sweep_jobs = []
    meta = []
    for procedure in procedures:
        for n_users in users:
            sim_users = max(64, int(n_users * user_slice))
            spec = RunSpec(
                procedure=procedure,
                bursty_users=sim_users,
                burst_window_s=0.05,
                drain_s=30.0,
                warmup_frac=0.0,
                cpfs_per_region=2 if procedure == "handover" else 1,
                first_region_only=(procedure == "handover"),
            )
            sweep_jobs.append(SweepJob(ControlPlaneConfig.neutrino(), 1.0, spec))
            meta.append((procedure, n_users, sim_users))
    points = run_jobs(sweep_jobs, jobs=jobs, cache=cache)
    rows = []
    for point, (procedure, n_users, sim_users) in zip(points, meta):
        scaled = point.max_log_bytes / user_slice
        rows.append(
            {
                "procedure": procedure,
                "active_users": n_users,
                "sim_users": sim_users,
                "max_log_bytes_sim": point.max_log_bytes,
                "max_log_mb_extrapolated": scaled / 1e6,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Serialization figures (18-20)
# ---------------------------------------------------------------------------

#: codecs compared against ASN.1 in Fig. 18 (paper §6.7.4).
FIG18_CODECS = ("cdr", "flatbuffers", "flexbuffers", "lcm", "protobuf")


def custom_message(n_fields: int) -> Tuple[TableType, Dict[str, Any]]:
    """The Fig. 18 custom message with ``n_fields`` information elements.

    Field types cycle through signed ints, strings, and byte blobs —
    all expressible by every codec including LCM (no unions, no
    unsigned), as the paper's custom-message comparison requires.
    """
    if n_fields < 1:
        raise ValueError("need at least one field")
    fields: List[Field] = []
    value: Dict[str, Any] = {}
    for i in range(n_fields):
        kind = i % 3
        name = "f%02d" % i
        if kind == 0:
            fields.append(Field(name, IntType(32, signed=True)))
            value[name] = 1000 + i
        elif kind == 1:
            fields.append(Field(name, StringType(max_len=32)))
            value[name] = "elem-%d" % i
        else:
            fields.append(Field(name, BytesType(max_len=16)))
            value[name] = bytes((i % 250, i % 7, 0x42))
    return TableType("Custom%d" % n_fields, fields), value


def fig18_codec_speedup(
    element_counts: Sequence[int] = (1, 3, 5, 7, 10, 15, 20, 25, 30, 35),
    codecs: Sequence[str] = FIG18_CODECS,
    measured_repeats: int = 0,
) -> List[Dict[str, Any]]:
    """Encode+decode speedup vs ASN.1 per element count (paper Fig. 18).

    The primary series uses the calibrated cost model (what the
    simulator charges); with ``measured_repeats > 0`` a second series
    times the *real* Python codecs in this repository for an ordering
    cross-check.
    """
    cost = CostModel()
    rows = []
    for n in element_counts:
        schema, value = custom_message(n)
        base_modeled = cost.codec_cost("asn1per").total(n)
        measured_base = None
        if measured_repeats:
            enc, dec = measure("asn1per", schema, value, measured_repeats)
            measured_base = enc + dec
        for codec_name in codecs:
            row = {
                "codec": codec_name,
                "elements": n,
                "speedup_modeled": base_modeled / cost.codec_cost(codec_name).total(n),
            }
            if measured_repeats:
                try:
                    enc, dec = measure(codec_name, schema, value, measured_repeats)
                    row["speedup_measured"] = measured_base / (enc + dec)
                except UnsupportedSchema:
                    row["speedup_measured"] = None
            rows.append(row)
    return rows


#: the real S1 messages shown in the paper's Figs. 19-20.
FIG19_MESSAGES = (
    "InitialContextSetup",
    "InitialContextSetupResponse",
    "eRABSetupRequest",
    "eRABModifyRequest",
    "InitialUEMessage",
)


def fig19_real_message_times(
    messages: Sequence[str] = FIG19_MESSAGES,
    codecs: Sequence[str] = ("flatbuffers_opt", "flatbuffers", "asn1per"),
    measured_repeats: int = 0,
) -> List[Dict[str, Any]]:
    """Encode+decode times on real S1 messages (paper Fig. 19)."""
    cost = CostModel()
    rows = []
    for msg in messages:
        n = CATALOG.element_count(msg)
        for codec_name in codecs:
            row = {
                "message": msg,
                "codec": codec_name,
                "elements": n,
                "modeled_us": cost.codec_cost(codec_name).total(n) * 1e6,
            }
            if measured_repeats:
                enc, dec = measure(
                    codec_name, CATALOG.schema(msg), CATALOG.sample(msg), measured_repeats
                )
                row["measured_us"] = (enc + dec) * 1e6
            rows.append(row)
    return rows


def fig20_encoded_sizes(
    messages: Sequence[str] = FIG19_MESSAGES,
    codecs: Sequence[str] = ("flatbuffers_opt", "flatbuffers", "asn1per"),
) -> List[Dict[str, Any]]:
    """Encoded message sizes — real bytes from the real codecs (Fig. 20)."""
    rows = []
    for msg in messages:
        for codec_name in codecs:
            rows.append(
                {
                    "message": msg,
                    "codec": codec_name,
                    "bytes": CATALOG.wire_size(msg, codec_name),
                }
            )
    return rows
