"""Content-addressed on-disk cache for sweep measurement points.

Every measurement point is a pure function of its inputs — the
:class:`~repro.core.config.ControlPlaneConfig`, the axis rate, and the
:class:`~repro.experiments.harness.RunSpec` (including its seed and any
fault plan); PR 1 made that determinism a tested invariant.  A point can
therefore be cached forever under a digest of those inputs, and a figure
regeneration whose inputs have not changed performs zero simulation
work.

Layout (``.repro-cache/`` by default)::

    .repro-cache/
      ab/abcdef0123...json      # one entry per point, sharded by prefix

Each entry records the code-version fingerprint of ``src/repro`` at
write time.  An entry whose fingerprint no longer matches the running
code is *stale*: it is ignored (and overwritten after the rerun), since
a simulator change may legitimately move every number.  The
:class:`CacheStats` counters (hits / misses / stale) are surfaced in the
report output so a cached figure run is auditable.

Entries are JSON, so a cache round-trips points bit-for-bit: Python's
``repr``-based float serialization is exact for finite doubles, and the
empty-window NaN percentiles survive via the JSON extension literals.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from .harness import PCTPoint, RunSpec

__all__ = [
    "CacheStats",
    "ResultCache",
    "code_fingerprint",
    "describe_point_inputs",
    "point_key",
    "task_key",
]

#: default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of every ``.py`` file under ``src/repro`` (cached per process).

    Any source change — simulator, codecs, harness — invalidates every
    cached point; re-validating stale entries would require knowing
    which module can influence which figure, and being wrong silently
    corrupts a reproduction.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        pkg_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            digest.update(str(path.relative_to(pkg_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def _stable(value: Any) -> Any:
    """A JSON-serializable, deterministic view of a point input."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _stable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _stable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_stable(v) for v in value]
    if isinstance(value, float):
        return repr(value)  # exact: repr round-trips finite doubles
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise TypeError("cannot digest %r in a cache key" % (type(value).__name__,))


def describe_point_inputs(
    config, axis_rate: float, spec: Optional[RunSpec]
) -> Dict[str, Any]:
    """The full input record one point is keyed by (debuggable JSON)."""
    return {
        "config": _stable(config),
        "axis_rate": repr(float(axis_rate)),
        "spec": _stable(spec if spec is not None else RunSpec()),
    }


def point_key(config, axis_rate: float, spec: Optional[RunSpec]) -> str:
    """Content address of one ``(config, rate, spec)`` measurement point."""
    inputs = describe_point_inputs(config, axis_rate, spec)
    blob = json.dumps(inputs, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def task_key(kind: str, payload: Any) -> str:
    """Content address of an arbitrary task (generic runner entries).

    ``kind`` namespaces the key so two task families whose payloads
    happen to collide (e.g. a scale replicate and a future sweep both
    keyed by a bare seed) can never alias each other's cache entries.
    ``payload`` must be digestible by :func:`_stable` — dataclasses,
    dicts, lists/tuples, and scalars.
    """
    blob = json.dumps(
        {"kind": kind, "task": _stable(payload)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit / miss / stale accounting for one runner invocation."""

    hits: int = 0
    misses: int = 0
    stale: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.stale

    def summary(self) -> str:
        return "cache: hits=%d misses=%d stale=%d" % (
            self.hits,
            self.misses,
            self.stale,
        )


class ResultCache:
    """Content-addressed store of measurement results.

    ``get``/``put`` take the key from :func:`point_key` (or
    :func:`task_key` for generic tasks); entries from a different code
    version count as *stale* and are treated as absent (the rerun's
    ``put`` overwrites them).

    By default entries are :class:`PCTPoint` objects.  Other result
    types plug in through the ``encode``/``decode`` codec pair —
    ``encode(result) -> dict`` and ``decode(dict) -> result`` (e.g.
    ``ScaleResult.to_dict`` / ``ScaleResult.from_dict`` for the scale
    harness) — without changing the on-disk entry shape.
    """

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        fingerprint: Optional[str] = None,
        encode=None,
        decode=None,
    ):
        self.root = Path(root)
        self._fingerprint = fingerprint
        self._encode = encode if encode is not None else dataclasses.asdict
        self._decode = decode if decode is not None else (lambda d: PCTPoint(**d))
        self.stats = CacheStats()

    @property
    def fingerprint(self) -> str:
        """Code fingerprint, computed lazily and exactly once per cache.

        The hash walks every ``.py`` file under ``src/repro``, so it must
        not run per point lookup; a whole ``run_jobs`` sweep performs a
        single computation (see the regression test in
        ``tests/experiments/test_cache.py``).
        """
        fp = self._fingerprint
        if fp is None:
            fp = self._fingerprint = code_fingerprint()
        return fp

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / (key + ".json")

    def key(self, config, axis_rate: float, spec: Optional[RunSpec]) -> str:
        return point_key(config, axis_rate, spec)

    def get(self, key: str) -> Optional[Any]:
        path = self._path(key)
        try:
            with open(path) as fp:
                entry = json.load(fp)
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if entry.get("fingerprint") != self.fingerprint:
            self.stats.stale += 1
            return None
        try:
            point = self._decode(entry["point"])
        except (KeyError, TypeError):
            self.stats.misses += 1  # foreign/corrupt entry shape
            return None
        self.stats.hits += 1
        return point

    def put(self, key: str, point) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "fingerprint": self.fingerprint,
            "point": self._encode(point),
        }
        tmp = path.with_suffix(".tmp.%d" % os.getpid())
        with open(tmp, "w") as fp:
            json.dump(entry, fp, sort_keys=True)
            fp.write("\n")
        os.replace(tmp, path)  # atomic: concurrent sweeps never see partial JSON

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            path.unlink()
            removed += 1
        return removed
