"""Plain-text reporting of figure results.

Prints the same series the paper plots, as aligned tables, plus the
headline ratios ("who wins, by what factor") that EXPERIMENTS.md tracks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .harness import PCTPoint

__all__ = [
    "format_pct_table",
    "format_dict_rows",
    "format_latency_breakdown",
    "format_run_footer",
    "median_ratio",
    "best_ratio",
    "print_pct_table",
]


def format_pct_table(points: Sequence[PCTPoint], title: str = "") -> str:
    """Scheme-by-rate grid of median PCTs, like the paper's box plots."""
    by_scheme: Dict[str, Dict[float, PCTPoint]] = defaultdict(dict)
    rates: List[float] = []
    for point in points:
        by_scheme[point.scheme][point.axis_rate] = point
        if point.axis_rate not in rates:
            rates.append(point.axis_rate)
    rates.sort()
    lines = []
    if title:
        lines.append(title)
    header = "%-20s" % "scheme \\ rate" + "".join("%12.0f" % r for r in rates)
    lines.append(header)
    lines.append("-" * len(header))
    for scheme in sorted(by_scheme):
        cells = []
        for rate in rates:
            point = by_scheme[scheme].get(rate)
            if point is None:
                cells.append("%12s" % "-")
            elif point.count == 0:
                # deep overload: nothing completed in the window — an
                # explicit marker beats a NaN pretending to be a median
                cells.append("%12s" % "(empty)")
            else:
                cells.append("%12.3f" % point.p50_ms)
        lines.append("%-20s" % scheme + "".join(cells))
    lines.append("(cells: median PCT in ms)")
    return "\n".join(lines)


def print_pct_table(points: Sequence[PCTPoint], title: str = "") -> None:
    print(format_pct_table(points, title))


def format_dict_rows(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """Aligned table for list-of-dicts figure results."""
    if not rows:
        return title + "\n(no rows)"
    keys = list(rows[0].keys())
    widths = {
        k: max(len(k), *(len(_fmt(row.get(k))) for row in rows)) for k in keys
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(k.ljust(widths[k]) for k in keys))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(k)).ljust(widths[k]) for k in keys))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "%.0f" % value
        return "%.3f" % value
    return str(value)


#: display order of the span taxonomy's phases; unknown phases sort after.
_PHASE_ORDER = (
    "radio", "transit", "cta", "cpf_wait", "cpf_serve", "cpf", "upf",
    "lock", "migrate", "recovery", "checkpoint", "other",
)


def _metrics_of(snapshot: Optional[Dict]) -> Dict[str, list]:
    """Accept an Observability snapshot or a bare metrics dict."""
    if not snapshot:
        return {}
    if "metrics" in snapshot and isinstance(snapshot["metrics"], dict):
        return snapshot["metrics"]
    return snapshot


def format_latency_breakdown(
    labeled_snapshots: Sequence, title: str = ""
) -> str:
    """Per-phase latency decomposition table, scheme vs scheme.

    ``labeled_snapshots`` is ``(scheme, snapshot)`` pairs where each
    snapshot came from :meth:`repro.obs.Observability.snapshot` (or a
    :func:`repro.obs.merge_snapshots` of several).  For every procedure
    in the ``phase_s`` histograms it prints one row per (scheme, phase)
    with the phase's mean and P99 contribution and its share of the
    procedure total — the decomposition behind the paper's latency
    claims (cheap serialization, checkpoints off the critical path).
    """
    from ..obs import summarize_histogram

    # (proc, scheme) -> {phase: values}, plus the proc totals.
    phases: Dict[tuple, Dict[str, list]] = defaultdict(dict)
    totals: Dict[tuple, list] = {}
    procs: List[str] = []
    for scheme, snapshot in labeled_snapshots:
        for row in _metrics_of(snapshot).get("histograms", ()):
            if row["name"] == "phase_s":
                proc = row["labels"].get("proc", "?")
                phase = row["labels"].get("phase", "?")
                phases[(proc, scheme)].setdefault(phase, []).extend(row["values"])
                if proc not in procs:
                    procs.append(proc)
            elif row["name"] == "proc_total_s":
                proc = row["labels"].get("proc", "?")
                totals.setdefault((proc, scheme), []).extend(row["values"])
                if proc not in procs:
                    procs.append(proc)

    def phase_rank(phase: str):
        try:
            return (_PHASE_ORDER.index(phase), phase)
        except ValueError:
            return (len(_PHASE_ORDER), phase)

    lines: List[str] = []
    if title:
        lines.append(title)
    if not procs:
        lines.append("(no phase histograms in snapshots)")
        return "\n".join(lines)
    header = "%-14s %-12s %-12s %12s %12s %8s" % (
        "procedure", "scheme", "phase", "mean_ms", "p99_ms", "share",
    )
    for proc in sorted(procs):
        lines.append(header)
        lines.append("-" * len(header))
        for scheme, _snap in labeled_snapshots:
            total = summarize_histogram(totals.get((proc, scheme), ()))
            total_mean = total.get("mean", 0.0)
            by_phase = phases.get((proc, scheme), {})
            for phase in sorted(by_phase, key=phase_rank):
                stats = summarize_histogram(by_phase[phase])
                if not stats["count"]:
                    continue
                # share of the mean end-to-end PCT attributed to this
                # phase (phases can overlap 100% only if spans nest).
                per_proc_mean = (
                    sum(by_phase[phase]) / total["count"] if total.get("count") else 0.0
                )
                share = per_proc_mean / total_mean if total_mean else 0.0
                lines.append(
                    "%-14s %-12s %-12s %12.3f %12.3f %7.1f%%"
                    % (
                        proc,
                        scheme,
                        phase,
                        stats["mean"] * 1e3,
                        stats["p99"] * 1e3,
                        share * 100.0,
                    )
                )
            if total.get("count"):
                lines.append(
                    "%-14s %-12s %-12s %12.3f %12.3f %7.1f%%"
                    % (
                        proc,
                        scheme,
                        "TOTAL",
                        total["mean"] * 1e3,
                        total["p99"] * 1e3,
                        100.0,
                    )
                )
        lines.append("")
    return "\n".join(lines).rstrip()


def format_run_footer(report=None, cache=None) -> str:
    """One-line summary of what a sweep run actually did.

    ``report`` is a :class:`repro.experiments.parallel.SweepReport`,
    ``cache`` a :class:`repro.experiments.cache.ResultCache`; either may
    be ``None``.  Surfaces the cache hit/miss/stale counters next to the
    executed-point count so a cached rerun is auditably simulation-free.
    """
    parts = []
    if report is not None:
        mode = "parallel" if report.parallel else "serial"
        parts.append(
            "points: total=%d executed=%d cached=%d (%s)"
            % (report.total, report.executed, report.cached, mode)
        )
    if cache is not None:
        parts.append(cache.stats.summary())
    return "  ".join(parts)


def median_ratio(
    points: Sequence[PCTPoint], better: str, worse: str, rate: Optional[float] = None
) -> float:
    """p50(worse)/p50(better) at one rate (or the max over shared rates)."""
    by_key: Dict[tuple, PCTPoint] = {(p.scheme, p.axis_rate): p for p in points}
    rates = sorted({p.axis_rate for p in points})
    if rate is not None:
        rates = [rate]
    ratios = []
    for r in rates:
        a = by_key.get((better, r))
        b = by_key.get((worse, r))
        if a and b and a.p50_ms > 0:
            ratios.append(b.p50_ms / a.p50_ms)
    if not ratios:
        raise ValueError("no shared rates between %r and %r" % (better, worse))
    return max(ratios)


def best_ratio(points: Sequence[PCTPoint], better: str, worse: str) -> float:
    """Alias for the paper's "up to Nx better" phrasing."""
    return median_ratio(points, better, worse)
