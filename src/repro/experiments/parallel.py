"""Parallel sweep runner: fan measurement points out over processes.

Every figure in the reproduction is a sweep of independent
``(config, RunSpec, axis_rate)`` points, each fully deterministic given
its inputs (:func:`~repro.experiments.harness.run_pct_point` builds a
fresh :class:`~repro.sim.core.Simulator` and re-seeds a
:class:`~repro.sim.rng.RngRegistry` from the spec).  Points are
therefore embarrassingly parallel — a worker pool produces *bit
identical* results to the serial loop, in any order — and perfectly
cacheable (:mod:`repro.experiments.cache`).

The runner degrades gracefully: ``jobs <= 1``, a single pending point,
or a platform whose multiprocessing primitives are unavailable (no
``fork``/semaphores in some sandboxes) all fall back to the in-process
serial loop, which shares the exact code path the workers run.

Usage::

    from repro.experiments.cache import ResultCache
    from repro.experiments.parallel import SweepJob, run_jobs

    jobs = [SweepJob(config, rate, spec) for config in configs for rate in rates]
    points = run_jobs(jobs, jobs=8, cache=ResultCache())
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.config import ControlPlaneConfig
from .harness import PCTPoint, RunSpec, run_pct_point

__all__ = [
    "SweepJob",
    "SweepReport",
    "WorkerHandle",
    "WorkerSpawnError",
    "default_jobs",
    "expand_grid",
    "run_jobs",
    "run_sweep",
    "run_tasks",
    "spawn_workers",
]


@dataclass
class SweepJob:
    """One measurement point: everything a worker needs, picklable."""

    config: ControlPlaneConfig
    axis_rate: float
    spec: Optional[RunSpec] = None


@dataclass
class SweepReport:
    """What one :func:`run_jobs` invocation actually did."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    #: True when a worker pool ran (False on serial path or fallback).
    parallel: bool = False
    #: why the pool was skipped, when it was ("", "jobs=1", an OS error).
    fallback_reason: str = ""


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` ("use every core").

    "Every core" means every core *this process may run on*: CI
    containers and cgroup-limited sandboxes routinely pin the process
    to a subset of the machine, and ``os.cpu_count()`` still reports
    the full machine, oversubscribing the pool.  The affinity mask is
    the authoritative bound where the platform exposes it.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            affinity = len(getaffinity(0))
        except OSError:  # pragma: no cover - exotic platforms only
            affinity = 0
        if affinity:
            return affinity
    return os.cpu_count() or 1


def expand_grid(
    configs: Sequence[ControlPlaneConfig],
    axis_rates: Sequence[float],
    spec: Optional[RunSpec] = None,
) -> List[SweepJob]:
    """The config x rate product in the serial loop's iteration order."""
    return [SweepJob(c, r, spec) for c in configs for r in axis_rates]


def _run_job(job: SweepJob) -> PCTPoint:
    # Top-level so every start method (fork/spawn/forkserver) can import
    # it; the point re-seeds from its spec, so placement in a worker
    # process cannot change the result.
    return run_pct_point(job.config, job.axis_rate, job.spec)


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        # cheapest, and immune to import-path differences in children
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _run_pool(
    jobs_list: List,
    workers: int,
    report: SweepReport,
    fn=_run_job,
    keys: Optional[List] = None,
    cache=None,
) -> List:
    """Run ``fn`` over ``jobs_list`` in a worker pool, in input order.

    ``pool.map`` results are consumed incrementally so that a pool that
    breaks mid-sweep (a worker segfault / OOM kill) loses only the
    not-yet-delivered tail: already-delivered points are kept, and the
    fallback re-executes just the remainder in-process.  ``keys`` and
    ``cache`` (when the caller runs cached) let the fallback consult the
    result cache for that remainder — a concurrent sweep may have
    persisted a point between our initial cache pass and the crash —
    and ``report.executed``/``cached`` are adjusted so the report
    reflects what actually ran rather than what was scheduled.
    """
    results: List = [None] * len(jobs_list)
    delivered = 0
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(jobs_list)), mp_context=_pool_context()
        ) as pool:
            for result in pool.map(fn, jobs_list):
                results[delivered] = result
                delivered += 1
        report.parallel = True
        return results
    except (OSError, PermissionError, ImportError,
            concurrent.futures.process.BrokenProcessPool) as err:
        # sandboxes without working fork/semaphores, or a pool that
        # broke mid-map: finish where we are
        report.fallback_reason = "%s: %s" % (type(err).__name__, err)
    for i in range(delivered, len(jobs_list)):
        hit = None
        if cache is not None and keys is not None and keys[i] is not None:
            hit = cache.get(keys[i])
        if hit is not None:
            results[i] = hit
            report.cached += 1
            report.executed -= 1
        else:
            results[i] = fn(jobs_list[i])
    return results


class WorkerSpawnError(RuntimeError):
    """Worker processes could not be started on this platform.

    Raised by :func:`spawn_workers` so callers with an in-process
    equivalent (the shard coordinator) can fall back instead of failing
    the run — the same degradation contract as :func:`_run_pool`.
    """


class WorkerHandle:
    """One long-lived worker process plus its duplex message pipe.

    One-shot pool tasks (:func:`run_tasks`) re-ship their whole input per
    call; a *shard* worker instead holds a simulator for the entire run
    and exchanges small epoch messages, which is what the pipe is for.
    """

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn

    def send(self, msg) -> None:
        self.conn.send(msg)

    def recv(self):
        """Next message from the worker; raises EOFError if it died."""
        return self.conn.recv()

    def close(self, timeout: float = 5.0) -> None:
        """Drop the pipe and reap the process (terminate if wedged)."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - wedged worker
            self.process.terminate()
            self.process.join(timeout)


def spawn_workers(target, args_list) -> List[WorkerHandle]:
    """Start one long-lived ``target`` process per args tuple.

    ``target`` must be a top-level callable whose first parameter is the
    worker end of a duplex pipe; the remaining parameters come from the
    args tuple.  Either every worker starts or none does: a platform
    refusal (sandboxes without fork/semaphores) tears down any partial
    set and raises :class:`WorkerSpawnError`.
    """
    handles: List[WorkerHandle] = []
    try:
        ctx = _pool_context()
        for args in args_list:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=target, args=(child_conn,) + tuple(args), daemon=True
            )
            proc.start()
            child_conn.close()
            handles.append(WorkerHandle(proc, parent_conn))
    except (OSError, PermissionError, ImportError) as err:
        for handle in handles:
            handle.close(timeout=1.0)
        raise WorkerSpawnError("%s: %s" % (type(err).__name__, err))
    return handles


def run_tasks(
    tasks: Sequence,
    fn,
    jobs: int = 1,
    cache=None,
    key_fn=None,
    kind: str = "task",
    report: Optional[SweepReport] = None,
) -> List:
    """Generic fan-out: run ``fn`` over ``tasks`` with cache + pool.

    The task-shaped sibling of :func:`run_jobs` (which stays the sweep
    entry point): ``fn`` must be a top-level picklable callable and each
    task a pure function of its own value, so pool placement cannot
    change results.  ``cache`` entries are addressed by
    :func:`repro.experiments.cache.task_key` over ``key_fn(task)``
    (default: the task itself), namespaced by ``kind``; the cache must
    be constructed with an ``encode``/``decode`` codec matching ``fn``'s
    result type.  Returns results positionally aligned with ``tasks``.
    """
    from .cache import task_key

    tasks = list(tasks)
    if jobs == 0:
        jobs = default_jobs()
    if report is None:
        report = SweepReport()
    report.total = len(tasks)

    results: List = [None] * len(tasks)
    pending: List[tuple] = []  # (index, cache key or None, task)
    for i, task in enumerate(tasks):
        if cache is not None:
            key = task_key(kind, key_fn(task) if key_fn is not None else task)
            hit = cache.get(key)
            if hit is not None:
                results[i] = hit
                continue
        else:
            key = None
        pending.append((i, key, task))
    report.cached = report.total - len(pending)
    report.executed = len(pending)

    if pending:
        run_list = [task for _i, _key, task in pending]
        if jobs > 1 and len(run_list) > 1:
            produced = _run_pool(
                run_list, jobs, report, fn=fn,
                keys=[key for _i, key, _task in pending], cache=cache,
            )
        else:
            report.fallback_reason = "jobs=1" if jobs <= 1 else "single task"
            produced = [fn(task) for task in run_list]
        for (i, key, _task), result in zip(pending, produced):
            results[i] = result
            if cache is not None and key is not None:
                cache.put(key, result)
    return results


def run_jobs(
    jobs_list: Sequence[SweepJob],
    jobs: int = 1,
    cache=None,
    report: Optional[SweepReport] = None,
) -> List[PCTPoint]:
    """Run every job, in input order, using cache and worker pool.

    ``jobs`` is the worker-process count (``<= 1`` means in-process
    serial; ``0`` means one per core).  ``cache`` is a
    :class:`repro.experiments.cache.ResultCache` or ``None``.  The
    returned list is positionally aligned with ``jobs_list`` and
    bit-identical to what the serial loop would produce.
    """
    jobs_list = list(jobs_list)
    if jobs == 0:
        jobs = default_jobs()
    if report is None:
        report = SweepReport()
    report.total = len(jobs_list)

    points: List[Optional[PCTPoint]] = [None] * len(jobs_list)
    pending: List[tuple] = []  # (index, cache key or None, job)
    for i, job in enumerate(jobs_list):
        if cache is not None:
            key = cache.key(job.config, job.axis_rate, job.spec)
            hit = cache.get(key)
            if hit is not None:
                points[i] = hit
                continue
        else:
            key = None
        pending.append((i, key, job))
    report.cached = report.total - len(pending)
    report.executed = len(pending)

    if pending:
        run_list = [job for _i, _key, job in pending]
        if jobs > 1 and len(run_list) > 1:
            results = _run_pool(
                run_list, jobs, report,
                keys=[key for _i, key, _job in pending], cache=cache,
            )
        else:
            report.fallback_reason = "jobs=1" if jobs <= 1 else "single point"
            results = [_run_job(job) for job in run_list]
        for (i, key, _job), point in zip(pending, results):
            points[i] = point
            if cache is not None and key is not None:
                cache.put(key, point)
    return points  # type: ignore[return-value]


def run_sweep(
    configs: Sequence[ControlPlaneConfig],
    axis_rates: Sequence[float],
    spec: Optional[RunSpec] = None,
    jobs: int = 1,
    cache=None,
    report: Optional[SweepReport] = None,
) -> Dict[str, List[PCTPoint]]:
    """Parallel/cached equivalent of :func:`repro.experiments.harness.sweep`."""
    points = run_jobs(expand_grid(configs, axis_rates, spec), jobs=jobs,
                      cache=cache, report=report)
    results: Dict[str, List[PCTPoint]] = {}
    for point in points:
        results.setdefault(point.scheme, []).append(point)
    return results
