"""Experiment harness: sweeps, measurement windows, and scaling rules.

Scaling (documented in DESIGN.md §4): the paper's testbed runs five CPF
instances; its figure x-axes are *system-wide* procedures per second.
We simulate a slice with ``n_sim_cpfs`` CPFs and offer
``axis_rate / TESTBED_CPFS * n_sim_cpfs`` so each simulated CPF sees
exactly the per-CPF load of the testbed — saturation knees then land at
the same axis positions.  Runs are shorter than the paper's 60 s (the
queueing distributions stabilize within a few thousand procedures); in
overload the reported PCTs are bounded by the horizon, which the
evaluation text flags the same way the paper's "drastic increase"
regions are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.config import ControlPlaneConfig
from ..core.deployment import Deployment
from ..faults.injector import FaultInjector
from ..faults.plan import FaultEvent, FaultPlan
from ..obs import MODES as OBS_MODES, Observability
from ..sim.core import Simulator
from ..sim.monitor import percentile
from ..sim.rng import RngRegistry
from ..traffic.arrivals import bursty_arrivals, poisson_arrivals, uniform_arrivals
from ..traffic.workload import WorkloadDriver

__all__ = ["PCTPoint", "RunSpec", "run_pct_point", "sweep"]

#: CPF instances in the paper's testbed (§5).
TESTBED_CPFS = 5


@dataclass
class PCTPoint:
    """Summary of one (scheme, axis-rate) measurement point."""

    scheme: str
    procedure: str
    axis_rate: float
    offered_rate: float
    count: int
    p50_ms: float
    p95_ms: float
    mean_ms: float
    max_ms: float
    recovered: int = 0
    reattached: int = 0
    violations: int = 0
    max_log_bytes: float = 0.0
    completed: int = 0
    utilization: float = 0.0
    #: Observability snapshot (counters + phase histograms) when the run
    #: had obs installed, else None.  Rides through the parallel sweep's
    #: result serialization so worker snapshots merge on the parent.
    obs: Optional[dict] = None

    @property
    def empty(self) -> bool:
        """True when no procedure completed inside the measurement window."""
        return self.count == 0

    def row(self) -> str:
        if self.empty:
            return (
                "%-14s %10.0f %8d  p50=%9s ms  p95=%9s ms  util=%4.2f"
                % (self.scheme, self.axis_rate, 0, "-", "-", self.utilization)
            )
        return (
            "%-14s %10.0f %8d  p50=%9.3f ms  p95=%9.3f ms  util=%4.2f"
            % (
                self.scheme,
                self.axis_rate,
                self.count,
                self.p50_ms,
                self.p95_ms,
                self.utilization,
            )
        )


@dataclass
class RunSpec:
    """Knobs of one harness run (defaults sized for benchmark speed)."""

    procedure: str = "attach"
    regions: int = 2
    cpfs_per_region: int = 1
    bss_per_region: int = 2
    procedures_target: int = 1200
    min_duration_s: float = 0.05
    max_duration_s: float = 0.6
    warmup_frac: float = 0.25
    drain_s: float = 0.05
    seed: int = 1
    #: "poisson" (open-loop, default) or "uniform" (deterministic gaps;
    #: lockstep phase effects make it unrealistic near saturation).
    arrival_process: str = "poisson"
    #: kill this CPF index (deployment order) at this fraction of the run.
    failure_cpf_index: Optional[int] = None
    failure_at_frac: float = 0.5
    #: bursty mode: this many procedures arrive inside burst_window_s.
    bursty_users: Optional[int] = None
    burst_window_s: float = 0.02
    #: pool size for warm-UE procedures (defaults to an adaptive value).
    pool_size: Optional[int] = None
    #: restrict arrivals to BSs in the first region (handover sweeps).
    first_region_only: bool = False
    #: extra chaos (message perturbations / timed events) applied via
    #: :mod:`repro.faults`; the spec's own ``failure_cpf_index`` kill is
    #: merged in as a timed event, never mutating this shared plan.
    fault_plan: Optional[FaultPlan] = None
    #: "off" (default), "metrics", or "trace": install a fresh
    #: :class:`repro.obs.Observability` on each point's deployment and
    #: attach its snapshot to the returned :class:`PCTPoint`.
    obs_mode: str = "off"

    @property
    def n_sim_cpfs(self) -> int:
        return self.regions * self.cpfs_per_region


def _duration_for(spec: RunSpec, offered: float) -> float:
    if spec.bursty_users is not None:
        return spec.burst_window_s
    raw = spec.procedures_target / offered
    return min(max(raw, spec.min_duration_s), spec.max_duration_s)


def run_pct_point(
    config: ControlPlaneConfig,
    axis_rate: float,
    spec: Optional[RunSpec] = None,
    obs: Optional[Observability] = None,
) -> PCTPoint:
    """Run one measurement point and summarize its PCT distribution.

    ``obs`` (or ``spec.obs_mode != "off"``) installs observability on
    the point's deployment; passing an :class:`Observability` directly
    lets the caller keep the tracer for span export afterwards.
    """
    spec = spec or RunSpec()
    if axis_rate <= 0 and spec.bursty_users is None:
        raise ValueError("axis_rate must be positive for uniform traffic")
    if spec.obs_mode not in ("off",) + OBS_MODES:
        raise ValueError("unknown obs_mode %r" % (spec.obs_mode,))

    sim = Simulator()
    rng = RngRegistry(spec.seed)
    dep = Deployment.build_grid(
        sim,
        config,
        cpfs_per_region=spec.cpfs_per_region,
        bss_per_region=spec.bss_per_region,
        regions=spec.regions,
        rng=rng,
    )
    if obs is None and spec.obs_mode != "off":
        obs = Observability(spec.obs_mode)
    if obs is not None:
        obs.install(dep)
    driver = WorkloadDriver(dep)

    offered = axis_rate / TESTBED_CPFS * spec.n_sim_cpfs
    duration = _duration_for(spec, offered)

    bs_names = sorted(dep.bss)
    if spec.first_region_only:
        first_region = dep.bss[bs_names[0]].region
        bs_names = [b for b in bs_names if dep.bss[b].region == first_region]

    if spec.bursty_users is not None:
        arrivals = list(
            bursty_arrivals(
                spec.bursty_users, spec.burst_window_s, rng.stream("burst")
            )
        )
    elif spec.arrival_process == "poisson":
        arrivals = list(poisson_arrivals(offered, duration, rng.stream("arrivals")))
    else:
        arrivals = list(uniform_arrivals(offered, duration))

    procedure = spec.procedure
    if procedure in ("attach", "re_attach"):
        driver.schedule_attaches(arrivals, bs_names)
    else:
        pool = spec.pool_size or max(64, min(4096, int(offered * 0.02) + 64))
        driver.build_pool(pool, bs_names)
        picker = None
        if procedure in ("handover", "fast_handover"):
            picker = driver.sibling_region_target()
        elif procedure == "intra_handover":
            picker = driver.same_region_target()
        driver.schedule_procedures(procedure, arrivals, bs_names, picker)

    plan = spec.fault_plan
    if spec.failure_cpf_index is not None:
        t_fail = duration * spec.failure_at_frac
        victim = sorted(dep.cpfs)[spec.failure_cpf_index % len(dep.cpfs)]
        kill = FaultEvent(op="fail_cpf", target=victim, at=t_fail)
        # A fresh plan per point: the spec (and its plan) is shared
        # across the config x rate sweep loops.
        if plan is None:
            plan = FaultPlan(seed=spec.seed, guard_last_alive=False, events=[kill])
        else:
            plan = plan.with_events(kill)
    if plan is not None:
        FaultInjector(dep, plan).install()

    horizon = (arrivals[-1] if arrivals else 0.0) + spec.drain_s
    sim.run(until=horizon)

    warmup = duration * spec.warmup_frac
    pcts = [
        o.pct
        for o in dep.outcomes
        if o.name == procedure and o.pct is not None and o.started_at >= warmup
    ]
    recovered = sum(
        1
        for o in dep.outcomes
        if o.name == procedure and o.recovered and o.started_at >= warmup
    )
    reattached = sum(
        1
        for o in dep.outcomes
        if o.name == procedure and o.reattached and o.started_at >= warmup
    )
    # An empty window (nothing completed past warmup) is a legitimate
    # outcome in deep overload: report count=0 with NaN percentiles
    # rather than fabricating a sample (count=1, NaN-poisoned means).
    ordered = sorted(pcts)
    nan = float("nan")
    util = max(
        (cpf.server.utilization(sim.now) for cpf in dep.cpfs.values()), default=0.0
    )
    return PCTPoint(
        scheme=config.name,
        procedure=procedure,
        axis_rate=axis_rate if spec.bursty_users is None else float(spec.bursty_users),
        offered_rate=offered,
        count=len(ordered),
        p50_ms=percentile(ordered, 50, default=nan) * 1e3,
        p95_ms=percentile(ordered, 95, default=nan) * 1e3,
        mean_ms=sum(ordered) / len(ordered) * 1e3 if ordered else nan,
        max_ms=ordered[-1] * 1e3 if ordered else nan,
        recovered=recovered,
        reattached=reattached,
        violations=len(dep.auditor.violations),
        max_log_bytes=dep.max_log_bytes(),
        completed=driver.completed(),
        utilization=util,
        obs=obs.snapshot() if obs is not None else None,
    )


def estimate_procedure_cpu(config: ControlPlaneConfig, proc_name: str) -> float:
    """Analytic CPU seconds one procedure costs its primary CPF.

    Sums the decode/handle/encode work of every step the CPF touches
    (the same pricing the simulator charges), giving closed-form
    saturation predictions: the knee on the paper's axis sits at
    ``TESTBED_CPFS / cpu`` procedures per second.
    """
    from ..messages.registry import CATALOG

    cost = config.cost_model
    codec = config.codec
    spec_steps = []
    if config.dpcm_mode:
        from ..baselines.policies import DPCM_PROCEDURES

        spec_steps = list(DPCM_PROCEDURES.get(proc_name, _procedures()[proc_name]).steps)
    else:
        spec_steps = list(_procedures()[proc_name].steps)

    def elements(msg):
        return CATALOG.element_count(msg)

    total = 0.0
    for step in spec_steps:
        if step.kind in ("ue_exchange", "ue_message"):
            total += cost.base_process_s + cost.deserialize_cost(codec, elements(step.request))
            if step.response:
                total += cost.serialize_cost(codec, elements(step.response))
            if config.sync_mode == "per_message":
                total += config.per_message_lock_s
        elif step.kind == "cpf_bs":
            total += cost.base_process_s * 0.5 + cost.serialize_cost(codec, elements(step.request))
            if step.response:
                total += cost.base_process_s + cost.deserialize_cost(codec, elements(step.response))
                if config.sync_mode == "per_message":
                    total += config.per_message_lock_s
        elif step.kind == "cpf_upf":
            total += cost.base_process_s * 0.5 + cost.serialize_cost(codec, elements(step.request))
            if step.response:
                total += cost.deserialize_cost(codec, elements(step.response))
        elif step.kind == "cpf_cpf":
            total += cost.codec_cost(codec).total(elements(step.request))
            total += cost.base_process_s
    if config.sync_mode == "per_procedure":
        total += config.checkpoint_lock_s
    return total


def _procedures():
    from ..messages.procedures import PROCEDURES

    return PROCEDURES


def estimated_utilization(
    config: ControlPlaneConfig, proc_name: str, axis_rate: float
) -> float:
    """Per-CPF utilization the paper's testbed would see at ``axis_rate``."""
    return (axis_rate / TESTBED_CPFS) * estimate_procedure_cpu(config, proc_name)


def overload_pct_at_horizon(rho: float, horizon_s: float) -> float:
    """Fluid-limit queueing delay after running overloaded for a horizon.

    For ``rho > 1`` the queue grows at rate ``(rho - 1)/rho`` of wall
    time; a job arriving at the end of a ``horizon_s`` run waits about
    ``(1 - 1/rho) * horizon_s``.  Returns 0 for ``rho <= 1``.
    """
    if rho <= 1.0:
        return 0.0
    return (1.0 - 1.0 / rho) * horizon_s


def sweep(
    configs: Sequence[ControlPlaneConfig],
    axis_rates: Sequence[float],
    spec: Optional[RunSpec] = None,
    jobs: int = 1,
    cache=None,
) -> Dict[str, List[PCTPoint]]:
    """Run every (config, rate) pair; returns points grouped by scheme.

    ``jobs > 1`` fans the points out over a worker pool and ``cache``
    (a :class:`repro.experiments.cache.ResultCache`) skips points whose
    inputs were already run — both produce bit-identical points to the
    serial path (see :mod:`repro.experiments.parallel`).
    """
    from .parallel import run_sweep  # deferred: parallel imports this module

    return run_sweep(configs, axis_rates, spec, jobs=jobs, cache=cache)
