"""Ablations beyond the paper's factor analysis (DESIGN.md §7).

The paper ablates the sync scheme (Fig. 15) and message logging
(Fig. 16).  This module adds the remaining design choices it calls out
but does not sweep:

* ``ablate_n_backups`` — the replication factor N (§4.2.2 leaves N as a
  parameter): failure-masking probability and checkpoint traffic vs PCT.
* ``ablate_georep_level`` — replicas on the level-2 ring vs a level-3
  ring (footnote 14's future work): cross-level-2 handovers become Fast
  Handovers at the cost of longer checkpoint paths.
* ``ablate_ack_timeout`` — §4.2.4's outdated-marking timeout: how long
  un-ACKed procedures linger in the CTA log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..core.config import ControlPlaneConfig
from ..core.deployment import Deployment
from ..sim.core import Simulator
from ..sim.rng import RngRegistry
from .harness import RunSpec
from .parallel import SweepJob, run_jobs

__all__ = [
    "ablate_n_backups",
    "ablate_georep_level",
    "ablate_ack_timeout",
    "ablate_serialization_bandwidth",
]


def ablate_n_backups(
    backups: Sequence[int] = (1, 2, 3),
    rate: float = 60e3,
    spec: Optional[RunSpec] = None,
    jobs: int = 1,
    cache=None,
) -> List[Dict[str, Any]]:
    """Attach PCT and failure masking as the replication factor N grows.

    More backups mean more checkpoint fan-out (sync-core work and
    inter-region bytes) but a higher chance that a synced backup
    survives a failure.
    """
    rows = []
    base_spec = spec or RunSpec(
        procedure="attach",
        regions=4,
        procedures_target=800,
        max_duration_s=0.2,
        failure_cpf_index=0,
        failure_at_frac=0.5,
    )
    configs = [
        ControlPlaneConfig.neutrino(name="n%d" % n, n_backups=n) for n in backups
    ]
    points = run_jobs(
        [SweepJob(c, rate, base_spec) for c in configs], jobs=jobs, cache=cache
    )
    for n, point in zip(backups, points):
        rows.append(
            {
                "n_backups": n,
                "p50_ms": point.p50_ms,
                "recovered": point.recovered,
                "reattached": point.reattached,
                "masked_frac": (
                    1.0 - point.reattached / point.recovered if point.recovered else 1.0
                ),
                "violations": point.violations,
            }
        )
    return rows


def ablate_georep_level(
    round_trips: int = 10,
    seed: int = 5,
) -> List[Dict[str, Any]]:
    """Level-2 vs level-3 replica placement on a 3-level deployment.

    The §4.3 benefit exists only where a replica already waits: with
    level-2 placement, backups always sit inside the home level-2
    region, so a handover *across* a level-2 boundary can never find
    local state and must fetch it over the long path.  Level-3
    placement can put the backup across that boundary, making the same
    commute a true Fast Handover — in exchange for checkpoints riding
    the longer level-3 links.  A UE commutes between its home BS and a
    BS in its backup's region; we report the fast-handover PCT and
    whether the commute crosses a level-2 boundary.
    """
    home_region = "200"

    # Pick a UE whose *level-3* placement puts the backup across the
    # level-2 boundary, then make both configurations commute that same
    # route — the only difference is where the replica waits.
    def find_crossing_ue() -> tuple:
        probe_sim = Simulator()
        probe = Deployment.build_tree(
            probe_sim,
            ControlPlaneConfig.neutrino(georep_level=3),
            depth=3,
            rng=RngRegistry(seed),
        )
        for k in range(256):
            ue_id = "commuter-%03d" % k
            probe.ensure_placement(ue_id, home_region)
            backup = probe.replicas_of(ue_id)[0]
            backup_region = probe.region_map.region_of_cpf(backup).geohash
            if not probe.region_map.shares_level2(home_region, backup_region):
                return ue_id, backup_region
        raise LookupError("no UE with a cross-level-2 backup in 256 tries")

    ue_id, away_region = find_crossing_ue()

    rows = []
    for level in (2, 3):
        sim = Simulator()
        config = ControlPlaneConfig.neutrino(
            name="level%d" % level, georep_level=level
        )
        dep = Deployment.build_tree(sim, config, depth=3, rng=RngRegistry(seed))
        ue = dep.bootstrap_ue(ue_id, "bs-%s-0" % home_region)
        backup = dep.replicas_of(ue_id)[0]
        backup_region = dep.region_map.region_of_cpf(backup).geohash

        def commute():
            for _ in range(round_trips):
                target = (
                    "bs-%s-0" % away_region
                    if ue.bs_name.startswith("bs-" + home_region)
                    else "bs-%s-0" % home_region
                )
                yield from ue.execute("fast_handover", target_bs=target)
                yield sim.timeout(0.05)  # let checkpoints land

        sim.process(commute())
        sim.run(until=60.0)
        tally = dep.pct["fast_handover"]
        inter = dep.links["cpf_cpf_inter"]
        far = dep.links["cpf_cpf_far"]
        rows.append(
            {
                "georep_level": level,
                "backup_region": backup_region,
                "replica_waits_across_level2": not dep.region_map.shares_level2(
                    home_region, backup_region
                ),
                "fast_ho_p50_ms": tally.median * 1e3 if tally.count else None,
                "checkpoint_bytes_inter": inter.bytes_sent,
                "checkpoint_bytes_far": far.bytes_sent,
                "violations": len(dep.auditor.violations),
            }
        )
    return rows


def ablate_ack_timeout(
    timeouts_s: Sequence[float] = (0.5, 5.0, 30.0),
    seed: int = 9,
) -> List[Dict[str, Any]]:
    """§4.2.4 timeout sensitivity: log retention vs outdated marking.

    With a dead backup, un-ACKed procedure records persist until the
    scan timeout; shorter timeouts bound the log sooner but mark
    replicas outdated more eagerly (more repair traffic).
    """
    observe_at_s = 2.0
    rows = []
    for timeout_s in timeouts_s:
        sim = Simulator()
        config = ControlPlaneConfig.neutrino(
            name="ack%g" % timeout_s,
            ack_timeout_s=timeout_s,
            log_scan_interval_s=min(0.25, max(timeout_s / 2, 0.05)),
        )
        dep = Deployment.build_grid(sim, config, rng=RngRegistry(seed))
        ue = dep.bootstrap_ue("lonely", "bs-20-0")
        dep.fail_cpf(dep.replicas_of("lonely")[0])  # its ACKs never come

        def procedures():
            for _ in range(5):
                yield from ue.execute("service_request")
                yield sim.timeout(0.05)

        sim.process(procedures())
        sim.run(until=observe_at_s)  # fixed observation point
        cta = dep.cta_of("lonely")
        rows.append(
            {
                "ack_timeout_s": timeout_s,
                "log_entries_at_%gs" % observe_at_s: cta.log.entry_count(),
                "max_log_bytes": cta.log.max_size_bytes,
                "violations": len(dep.auditor.violations),
            }
        )
    return rows


def ablate_serialization_bandwidth(
    n_procedures: int = 200,
    seed: int = 13,
) -> List[Dict[str, Any]]:
    """The §7 serialization trade-off, quantified on the wire.

    Neutrino trades encoded-message size for processing speed; the paper
    argues the bandwidth increase is acceptable.  This ablation runs the
    same workload (attach + service requests) under each codec and
    reports total control-plane bytes on each hop class, the bandwidth
    inflation factor vs ASN.1, and the median attach PCT it bought.
    """
    rows = []
    baseline_bytes = None
    for codec in ("asn1per", "flatbuffers", "flatbuffers_opt"):
        sim = Simulator()
        config = ControlPlaneConfig.neutrino(name=codec, codec=codec)
        dep = Deployment.build_grid(sim, config, rng=RngRegistry(seed))

        def workload():
            for i in range(n_procedures):
                ue = dep.new_ue("bw-%04d" % i, "bs-20-0")
                yield from ue.execute("attach")
                yield from ue.execute("service_request")

        sim.process(workload())
        sim.run(until=120.0)
        access_bytes = sum(
            dep.links[h].bytes_sent for h in ("ue_bs", "bs_cta", "cta_cpf")
        )
        replication_bytes = sum(
            dep.links[h].bytes_sent
            for h in ("cpf_cpf_intra", "cpf_cpf_inter", "cpf_cpf_far")
        )
        if baseline_bytes is None:
            baseline_bytes = access_bytes
        rows.append(
            {
                "codec": codec,
                "access_bytes": access_bytes,
                "replication_bytes": replication_bytes,
                "inflation_vs_asn1": access_bytes / baseline_bytes,
                "attach_p50_ms": (
                    dep.pct["attach"].median * 1e3 if dep.pct["attach"].count else None
                ),
            }
        )
    return rows
