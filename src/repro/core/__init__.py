"""Neutrino's control plane: UE/BS/CTA/CPF/UPF over the simulated core.

Public surface:

* :class:`ControlPlaneConfig` — every design knob (+ the §6.2 presets).
* :class:`Deployment` — wires a RegionMap into live simulated nodes.
* :class:`UE` — the procedure driver (the paper's traffic generator role).
* :class:`CTA`, :class:`CPF`, :class:`UPF`, :class:`BaseStation` — nodes.
* :class:`RYWAuditor` — always-on Read-your-Writes verification
  (``ConsistencyAuditor`` is its historic alias).
"""

from .bs import BaseStation
from .config import ControlPlaneConfig
from .consistency import CausalEvent, ConsistencyAuditor, RYWAuditor, Violation
from .cpf import CPF, HandleResult
from .cta import CTA, FailoverPlan
from .deployment import Deployment, Placement
from .log import LogEntry, LogicalClock, MessageLog, ProcedureRecord
from .state import StateEntry, StateStore, StaleStateError, UEState
from .ue import UE, ProcedureAborted, ProcedureOutcome
from .upf import UPF, Session

__all__ = [
    "ControlPlaneConfig",
    "Deployment",
    "Placement",
    "UE",
    "ProcedureOutcome",
    "ProcedureAborted",
    "CTA",
    "FailoverPlan",
    "CPF",
    "HandleResult",
    "UPF",
    "Session",
    "BaseStation",
    "ConsistencyAuditor",
    "RYWAuditor",
    "CausalEvent",
    "Violation",
    "UEState",
    "StateEntry",
    "StateStore",
    "StaleStateError",
    "LogicalClock",
    "MessageLog",
    "LogEntry",
    "ProcedureRecord",
]
