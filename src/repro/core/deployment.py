"""Deployment: wires regions, CTAs, CPFs, UPFs, BSs and UEs together.

This is the composition root for every experiment.  It owns:

* the node instances per region (one CTA + a CPF pool + one UPF + BSs,
  Fig. 6 of the paper),
* the per-hop-class links with byte accounting,
* the *placement registry* — which CPF is primary and which are backups
  for every UE (primary by level-1 consistent hash, backups by level-2
  ring excluding the level-1 members, §4.3),
* per-UE logical clocks (monotone per UE across CTA changes),
* the consistency auditor and the PCT tallies.

``Deployment.build_grid`` constructs the canonical evaluation topology:
four level-1 regions forming one level-2 region, with ``cpfs_per_region``
CPFs each — the smallest deployment exercising inter-region replication,
Fast Handover, and multi-CTA behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..geo.regions import Region, RegionMap
from ..messages.procedures import PROCEDURES, ProcedureSpec
from ..messages.registry import CATALOG
from ..sim.core import Event, Simulator
from ..sim.monitor import Tally
from ..sim.network import Link
from ..sim.rng import RngRegistry
from .bs import BaseStation
from .config import ControlPlaneConfig
from .consistency import RYWAuditor
from .cpf import CPF
from .cta import CTA
from .ue import UE, ProcedureOutcome
from .upf import UPF

__all__ = ["Placement", "Deployment"]


@dataclass
class Placement:
    """Where one UE's state lives."""

    region: str
    primary: str
    backups: List[str] = field(default_factory=list)


class Deployment:
    """A fully wired simulated cellular core."""

    def __init__(
        self,
        sim: Simulator,
        config: ControlPlaneConfig,
        region_map: RegionMap,
        rng: Optional[RngRegistry] = None,
    ):
        self.sim = sim
        self.config = config
        self.region_map = region_map
        self.rng = rng or RngRegistry(0)
        self.auditor = RYWAuditor(sim_now=lambda: sim.now)
        #: installed by :class:`repro.faults.FaultInjector`; when set,
        #: every link traversal routes through it (drop/dup/reorder/
        #: partition semantics + event tracing).
        self.faults = None
        #: installed by :meth:`repro.obs.Observability.install`; when
        #: set, every link traversal records a transit span and hop
        #: counters.  ``None`` (the default) keeps every instrumented
        #: site down to one attribute check.
        self.obs = None

        self.cpfs: Dict[str, CPF] = {}
        self.ctas: Dict[str, CTA] = {}
        self.upfs: Dict[str, UPF] = {}
        self.bss: Dict[str, BaseStation] = {}
        self._region_cta: Dict[str, str] = {}

        for region in region_map.regions.values():
            cta = CTA(self, region.cta, region.geohash)
            self.ctas[region.cta] = cta
            self._region_cta[region.geohash] = region.cta
            for cpf_name in region.cpfs:
                self.cpfs[cpf_name] = CPF(self, cpf_name, region.geohash)
            upf = UPF(
                sim, "upf-" + region.geohash, region.geohash, config.upf_service_s
            )
            self.upfs[region.geohash] = upf
            for bs_name in region.bss:
                self.bss[bs_name] = BaseStation(self, bs_name, region.geohash)

        jitter_rng = self.rng.stream("link-jitter")
        self.links: Dict[str, Link] = {
            hop: config.latency.link(sim, hop, rng=jitter_rng, name=hop)
            for hop in (
                "ue_bs",
                "bs_cta",
                "cta_cpf",
                "cpf_cpf_intra",
                "cpf_cpf_inter",
                "cpf_cpf_far",
                "cpf_upf",
            )
        }

        self._placements: Dict[str, Placement] = {}
        self._clocks: Dict[str, int] = {}
        self._ues: Dict[str, UE] = {}
        self.pct: Dict[str, Tally] = {}
        self.outcomes: List[ProcedureOutcome] = []
        #: when set (a callable taking one ProcedureOutcome), every
        #: completed-procedure measurement is handed to it *instead of*
        #: the Tally lists and the outcomes list above.  Population-
        #: scale runs install a streaming-sketch sink here so memory
        #: stays bounded no matter how many procedures complete.
        self.outcome_sink = None

    # -- canonical topology -----------------------------------------------------

    @classmethod
    def build_grid(
        cls,
        sim: Simulator,
        config: ControlPlaneConfig,
        cpfs_per_region: int = 1,
        bss_per_region: int = 2,
        regions: int = 4,
        rng: Optional[RngRegistry] = None,
    ) -> "Deployment":
        """Four sibling level-1 regions under one level-2 region."""
        if not 1 <= regions <= 4:
            raise ValueError("grid supports 1-4 sibling regions")
        region_objs = []
        for i, suffix in enumerate("0123"[:regions]):
            gh = "2" + suffix  # shared parent "2"
            region_objs.append(
                Region(
                    geohash=gh,
                    cta="cta-" + gh,
                    cpfs=["cpf-%s-%d" % (gh, k) for k in range(cpfs_per_region)],
                    bss=["bs-%s-%d" % (gh, k) for k in range(bss_per_region)],
                )
            )
        return cls(sim, config, RegionMap(region_objs), rng)

    @classmethod
    def build_tree(
        cls,
        sim: Simulator,
        config: ControlPlaneConfig,
        depth: int = 3,
        cpfs_per_region: int = 1,
        bss_per_region: int = 1,
        rng: Optional[RngRegistry] = None,
    ) -> "Deployment":
        """A 4-ary geo-hash tree of level-1 regions, ``depth`` levels deep.

        ``depth=2`` matches :meth:`build_grid` (four siblings under one
        level-2 region); ``depth=3`` creates 16 level-1 regions in four
        level-2 regions under one level-3 region — the topology needed
        to exercise replication on rings beyond level 2 (the paper's
        footnote-14 future work, ``config.georep_level=3``).
        """
        if depth < 2 or depth > 4:
            raise ValueError("depth must be between 2 and 4")
        suffixes = [""]
        for _ in range(depth - 1):
            suffixes = [s + c for s in suffixes for c in "0123"]
        region_objs = []
        for suffix in suffixes:
            gh = "2" + suffix
            region_objs.append(
                Region(
                    geohash=gh,
                    cta="cta-" + gh,
                    cpfs=["cpf-%s-%d" % (gh, k) for k in range(cpfs_per_region)],
                    bss=["bs-%s-%d" % (gh, k) for k in range(bss_per_region)],
                )
            )
        return cls(sim, config, RegionMap(region_objs), rng)

    # -- membership churn (ring add/remove with live nodes) -------------------------

    def add_region(self, region: Region) -> None:
        """Admit a new level-1 region (CTA + CPF pool + BSs) mid-run.

        Updates the consistent-hash rings first, then brings up live
        node objects, so any placement computed after this call may land
        on the new CPFs.  Existing placements are untouched — callers
        re-place affected UEs via :meth:`stale_placements` /
        :meth:`apply_placement` (the scale engine staggers those
        fetches so the new CPFs warm up without a stampede).
        """
        self.region_map.add_region(region)
        cta = CTA(self, region.cta, region.geohash)
        self.ctas[region.cta] = cta
        self._region_cta[region.geohash] = region.cta
        for cpf_name in region.cpfs:
            self.cpfs[cpf_name] = CPF(self, cpf_name, region.geohash)
        self.upfs[region.geohash] = UPF(
            self.sim,
            "upf-" + region.geohash,
            region.geohash,
            self.config.upf_service_s,
        )
        for bs_name in region.bss:
            self.bss[bs_name] = BaseStation(self, bs_name, region.geohash)

    def add_cpf(self, region_hash: str, cpf_name: str) -> None:
        """Admit one CPF to an existing region mid-run (scale-out).

        Rings first, then the live node, mirroring :meth:`add_region`.
        Re-admitting a CPF whose node already exists (the rolling-upgrade
        re-join after a drain) reuses the node object — its store was
        emptied by the restart and refills through repair fetches.
        """
        self.region_map.add_cpf(region_hash, cpf_name)
        if cpf_name not in self.cpfs:
            self.cpfs[cpf_name] = CPF(self, cpf_name, region_hash)

    def remove_cpf(self, region_hash: str, cpf_name: str) -> None:
        """Ring one CPF out of its region (drain for scale-in / upgrade).

        The node object stays registered and up — in-flight procedures
        and repair fetches still reach it; the caller decommissions it
        (``fail``) only after draining, as :meth:`retire_region` does
        for whole regions.
        """
        self.region_map.remove_cpf(region_hash, cpf_name)

    def retire_region(self, region_hash: str) -> Region:
        """Remove a drained region from the rings and take its nodes down.

        The caller must already have re-homed every UE attached or
        placed there.  Node objects stay in the registries (marked
        failed) so any straggling reference degrades into the normal
        failure-recovery paths rather than a KeyError.
        """
        region = self.region_map.remove_region(region_hash)
        for cpf_name in region.cpfs:
            if self.cpfs[cpf_name].up:
                self.cpfs[cpf_name].fail()
        if self.ctas[region.cta].up:
            self.ctas[region.cta].fail()
        self._region_cta.pop(region_hash, None)
        return region

    def stale_placements(self) -> List[Tuple[str, "Placement", str, List[str]]]:
        """UEs whose stored placement disagrees with the current rings.

        Returns ``(ue_id, placement, desired_primary, desired_backups)``
        tuples in sorted UE order (determinism).  Only meaningful right
        after ring churn: consistent hashing guarantees the list is the
        small set of keys owned by the added/removed members, which is
        exactly what the monotonicity property tests pin.  UEs placed in
        a region that no longer exists are skipped — those need a
        re-homing handover, not a re-placement.
        """
        out = []
        for ue_id in sorted(self._placements):
            placement = self._placements[ue_id]
            try:
                desired_primary = self.region_map.primary_for(ue_id, placement.region)
            except KeyError:
                continue
            desired_backups = self.region_map.replicas_for(
                ue_id, placement.region, self.config.n_backups, self.config.georep_level
            )
            if desired_primary != placement.primary or desired_backups != placement.backups:
                out.append((ue_id, placement, desired_primary, desired_backups))
        return out

    def apply_placement(
        self, ue_id: str, region: str, primary: str, backups: List[str]
    ) -> Placement:
        """Commit a re-placement; mark state at dropped holders outdated.

        The caller is responsible for having copied up-to-date state to
        the new primary/backups first (repair fetches); this just swaps
        the registry entry and poisons the copies that fell out of the
        replica set so they can never serve a stale read.
        """
        old = self._placements.get(ue_id)
        keep = {primary, *backups}
        if old is not None:
            for name in {old.primary, *old.backups} - keep:
                cpf = self.cpfs.get(name)
                if cpf is not None:
                    cpf.store.mark_outdated(ue_id)
        placement = Placement(region, primary, list(backups))
        self._placements[ue_id] = placement
        return placement

    # -- links --------------------------------------------------------------------

    def hop(
        self,
        hop_class: str,
        nbytes: int,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        parent: Optional[Any] = None,
    ) -> Event:
        """One directed link traversal as a waitable event.

        ``src``/``dst`` name the endpoints when the caller knows them
        (replication, repair, migration legs); the fault injector uses
        them for partition decisions.  The returned event fails with
        :class:`~repro.sim.network.LinkDown` when the message is lost
        (blackholed link, partition, exhausted retransmissions) — which
        the protocol layer handles exactly like a peer failure.

        ``parent`` is the observability span this traversal belongs to
        (the procedure's root, a checkpoint ship, a replay); ignored
        unless an :class:`~repro.obs.Observability` is installed.
        """
        link = self.links[hop_class]
        if self.faults is not None:
            ev = self.faults.transit_event(link, nbytes, src, dst)
        else:
            link.messages_sent += 1
            link.bytes_sent += nbytes
            ev = self.sim.timeout(link.delay(nbytes))
        if self.obs is not None:
            self.obs.on_hop(hop_class, nbytes, ev, parent)
        return ev

    def cpf_hop(self, a: str, b: str) -> str:
        ra = self.region_map.region_of_cpf(a).geohash
        rb = self.region_map.region_of_cpf(b).geohash
        if ra == rb:
            return "cpf_cpf_intra"
        if self.region_map.shares_level2(ra, rb):
            return "cpf_cpf_inter"
        return "cpf_cpf_far"

    def cpf_hop_from_cta(self, cta_region: str, cpf_name: str) -> str:
        rb = self.region_map.region_of_cpf(cpf_name).geohash
        return "cta_cpf" if rb == cta_region else "cpf_cpf_inter"

    # -- logical clocks (per UE, monotone across CTA changes) -----------------------

    def next_clock(self, ue_id: str) -> int:
        value = self._clocks.get(ue_id, 0) + 1
        self._clocks[ue_id] = value
        return value

    def clock_of(self, ue_id: str) -> int:
        """Latest RYW clock issued to ``ue_id`` (0 if it never wrote)."""
        return self._clocks.get(ue_id, 0)

    def m_tmsi_of(self, ue_id: str) -> int:
        return (hash(ue_id) & 0xFFFFFFFF) or 1

    # -- placement registry ----------------------------------------------------------

    def placement_of(self, ue_id: str) -> Optional[Placement]:
        return self._placements.get(ue_id)

    def drop_placement(self, ue_id: str) -> None:
        """Forget a UE's placement entirely (region retirement of a
        detached UE: there is no serving region left to re-home it to,
        and a later attach re-derives placement from its new BS)."""
        placement = self._placements.pop(ue_id, None)
        if placement is None:
            return
        for name in {placement.primary, *placement.backups}:
            cpf = self.cpfs.get(name)
            if cpf is not None:
                cpf.store.mark_outdated(ue_id)

    def placements_items(self):
        """(ue_id, Placement) pairs — used by proactive failure detection."""
        return self._placements.items()

    def ensure_placement(self, ue_id: str, region: str) -> Placement:
        placement = self._placements.get(ue_id)
        if placement is None:
            primary = self._alive_primary(ue_id, region)
            placement = Placement(
                region,
                primary,
                self.region_map.replicas_for(
                    ue_id, region, self.config.n_backups, self.config.georep_level
                ),
            )
            self._placements[ue_id] = placement
        return placement

    def _alive_primary(self, ue_id: str, region: str) -> str:
        ring = self.region_map.level1_ring(region)
        dead = [c for c in ring.members if not self.cpfs[c].up]
        alive = ring.successors(ue_id, 1, exclude=dead)
        if alive:
            return alive[0]
        # whole region down: any alive CPF in the level-2 region
        ring2 = self.region_map.level2_ring(region)
        dead2 = [c for c in ring2.members if not self.cpfs[c].up]
        alive2 = ring2.successors(ue_id, 1, exclude=dead2)
        if not alive2:
            raise LookupError("no CPF alive anywhere near region %s" % region)
        return alive2[0]

    def primary_of(self, ue_id: str) -> Optional[str]:
        placement = self._placements.get(ue_id)
        return placement.primary if placement else None

    def replicas_of(self, ue_id: str) -> List[str]:
        placement = self._placements.get(ue_id)
        return list(placement.backups) if placement else []

    def pick_fresh_primary(self, ue_id: str) -> str:
        placement = self._placements.get(ue_id)
        region = placement.region if placement else next(iter(self.region_map.regions))
        return self._alive_primary(ue_id, region)

    def reset_placement(self, ue_id: str, new_primary: str) -> None:
        """Post-failure fresh placement (Re-Attach path)."""
        placement = self._placements.get(ue_id)
        region = (
            placement.region
            if placement
            else self.region_map.region_of_cpf(new_primary).geohash
        )
        self._placements[ue_id] = Placement(
            region,
            new_primary,
            self.region_map.replicas_for(
                ue_id, region, self.config.n_backups, self.config.georep_level
            ),
        )

    def promote(self, ue_id: str, backup_name: str) -> None:
        """Scenario 1/2: a backup becomes the primary (§4.2.5)."""
        placement = self._placements.get(ue_id)
        if placement is None:
            self.reset_placement(ue_id, backup_name)
            return
        if backup_name in placement.backups:
            placement.backups.remove(backup_name)
        placement.primary = backup_name

    def switch_region(
        self, ue_id: str, new_primary: Optional[str], target_bs: str
    ) -> None:
        """Handover completion: move the UE's placement to the target region."""
        new_region = self.bss[target_bs].region
        old_cta = self.cta_of(ue_id)
        if new_primary is None:
            new_primary = self._alive_primary(ue_id, new_region)
        old_placement = self._placements.get(ue_id)
        new_backups = self.region_map.replicas_for(
            ue_id, new_region, self.config.n_backups, self.config.georep_level
        )
        # Every copy except the new primary's is now from an old epoch:
        # mark them outdated until the post-handover checkpoint (or a
        # repair fetch) refreshes them.  This is what prevents a Fast
        # Handover from adopting a stale pre-handover replica.
        stale_holders = set(new_backups)
        if old_placement is not None:
            stale_holders |= {old_placement.primary, *old_placement.backups}
        stale_holders.discard(new_primary)
        for name in stale_holders:
            cpf = self.cpfs.get(name)
            if cpf is not None:
                cpf.store.mark_outdated(ue_id)
        self._placements[ue_id] = Placement(new_region, new_primary, new_backups)
        # The old CTA's log for this UE is obsolete once the target-side
        # checkpoint lands; drop it to keep the log bounded.
        if old_cta is not None:
            old_cta.log.drop_procedure(ue_id, self._clocks.get(ue_id, 0))

    def fast_target(
        self, ue_id: str, target_region: str, min_version: int = 0
    ) -> Tuple[str, Optional[str]]:
        """Serving CPF for a Fast Handover into ``target_region``.

        Prefer a backup already in the target region holding up-to-date
        state at least as new as ``min_version`` — the version the UE
        knows it has written (the §4.3 case); otherwise the region's
        hash primary plus the name of an up-to-date CPF to fetch from
        (intra-level-2 hop).
        """
        region_cpfs = set(self.region_map.region(target_region).cpfs)
        for backup_name in self.replicas_of(ue_id):
            if backup_name in region_cpfs:
                cpf = self.cpfs[backup_name]
                if cpf.up:
                    entry = cpf.store.get(ue_id)
                    if (
                        entry is not None
                        and entry.up_to_date
                        and entry.state.version >= min_version
                    ):
                        return backup_name, None
        source = None
        primary = self.primary_of(ue_id)
        if primary and self.cpfs[primary].up:
            source = primary
        else:
            for backup_name in self.replicas_of(ue_id):
                if self.cpfs[backup_name].up:
                    source = backup_name
                    break
        return self._alive_primary(ue_id, target_region), source

    # -- CTA mapping ---------------------------------------------------------------------

    def cta_for_region(self, region: str) -> Optional[CTA]:
        name = self._region_cta.get(region)
        return self.ctas.get(name) if name else None

    def cta_of(self, ue_id: str) -> Optional[CTA]:
        placement = self._placements.get(ue_id)
        if placement is None:
            return None
        return self.cta_for_region(placement.region)

    def fallback_cta(self, region: str) -> Optional[CTA]:
        """An alive CTA in a sibling region (scenario 4 takeover)."""
        for cta in self.ctas.values():
            if cta.up:
                return cta
        return None

    def adopt_region_cta(self, region: str, cta_name: str) -> None:
        self._region_cta[region] = cta_name

    def upf_for_region(self, region: str) -> UPF:
        upf = self.upfs.get(region)
        if upf is None:  # pragma: no cover - regions always get a UPF
            raise KeyError("no UPF in region %r" % region)
        return upf

    def cpf_names(self) -> List[str]:
        return sorted(self.cpfs)

    # -- procedure specs (DPCM overrides) ---------------------------------------------------

    def spec(self, proc_name: str) -> ProcedureSpec:
        if self.config.dpcm_mode:
            from ..baselines.policies import DPCM_PROCEDURES

            override = DPCM_PROCEDURES.get(proc_name)
            if override is not None:
                return override
        try:
            return PROCEDURES[proc_name]
        except KeyError:
            raise KeyError("unknown procedure %r" % proc_name)

    # -- UEs & bootstrap ------------------------------------------------------------------------

    def new_ue(self, ue_id: str, bs_name: str) -> UE:
        if ue_id in self._ues:
            raise ValueError("UE %r already exists" % ue_id)
        if bs_name not in self.bss:
            raise KeyError("unknown BS %r" % bs_name)
        ue = UE(self, ue_id, bs_name)
        self._ues[ue_id] = ue
        return ue

    def ue(self, ue_id: str) -> UE:
        return self._ues[ue_id]

    def ues(self) -> List[UE]:
        return list(self._ues.values())

    def adopt_ue(self, ue: UE) -> None:
        """Register a flyweight UE shell for the duration of a procedure.

        The cohort model (``repro.scale``) keeps per-UE state in arrays
        and materialises a :class:`UE` object only while a procedure is
        in flight; unlike :meth:`new_ue` this replaces any previous
        shell for the same id.
        """
        self._ues[ue.ue_id] = ue

    def release_ue(self, ue_id: str) -> None:
        """Drop a shell registered by :meth:`adopt_ue` (idempotent)."""
        self._ues.pop(ue_id, None)

    def bootstrap_state(self, ue_id: str, bs_name: str) -> int:
        """Install attached, replicated state for a UE (no sim events).

        The network-side half of :meth:`bootstrap_ue`: placement, primary
        state, backup snapshots, and the auditor's write record.  Returns
        the UE's completed write version (its RYW reader version).  The
        cohort model calls this directly so 100k warm UEs never exist as
        objects.
        """
        region = self.bss[bs_name].region
        placement = self.ensure_placement(ue_id, region)
        clock = self.next_clock(ue_id)
        primary = self.cpfs[placement.primary]
        entry = primary.store.create(ue_id, self.m_tmsi_of(ue_id), is_primary=True)
        entry.state.complete_procedure("attach")
        entry.synced_clock = clock
        for backup_name in placement.backups:
            self.cpfs[backup_name].store.install_snapshot(
                ue_id, entry.state, clock
            )
        self.auditor.record_write_completion(ue_id, entry.state.version)
        return entry.state.version

    def install_migrated(
        self, ue_id: str, bs_name: str, version: int, carried_clock: int
    ) -> int:
        """Adopt a UE whose state was built in another shard's deployment.

        The shard runtime hands over (version, sync clock) when a full
        cross-level-2 handover moves a UE to a region another worker
        owns; this installs equivalent attached state here without
        re-running the attach — the carried write version is preserved so
        the RYW auditor's reader floor survives the process boundary.
        Raises :class:`LookupError` if the destination region has no
        alive primary (the UE then re-enters detached, exactly like an
        abort).  No ``record_write_completion``: the write was already
        counted by the shard that executed the handover.
        """
        self.drop_placement(ue_id)
        region = self.bss[bs_name].region
        # Seed the logical clock so the fresh snapshot outranks any stale
        # copy a previous visit left behind (install_snapshot keeps the
        # newer clock), then take the next tick as the sync point.
        if carried_clock > self._clocks.get(ue_id, 0):
            self._clocks[ue_id] = carried_clock
        placement = self.ensure_placement(ue_id, region)
        clock = self.next_clock(ue_id)
        primary = self.cpfs[placement.primary]
        entry = primary.store.create(ue_id, self.m_tmsi_of(ue_id), is_primary=True)
        entry.state.attached = True
        entry.state.active = False
        entry.state.version = version
        entry.synced_clock = clock
        for backup_name in placement.backups:
            self.cpfs[backup_name].store.install_snapshot(
                ue_id, entry.state, clock
            )
        return version

    def bootstrap_ue(self, ue_id: str, bs_name: str) -> UE:
        """Create a UE already attached, with state replicated (no events).

        Used to build warm pools for service-request/handover sweeps
        without simulating hundreds of thousands of attaches first.
        """
        ue = self.new_ue(ue_id, bs_name)
        ue.attached = True
        ue.completed_version = self.bootstrap_state(ue_id, bs_name)
        return ue

    # -- downlink delivery (§3.1's motivating scenario) ---------------------------------------------

    def deliver_downlink(self, ue_id: str):
        """Process: downlink data/voice arrives from the internet for a UE.

        The core must hold up-to-date control state to page the UE and
        deliver (§3.1: after a CPF failure with no synced replica, "the
        core network will not be able to send it to the UE" until the UE
        Re-Attaches).  Returns ``(delivered, served_by)``.
        """
        placement = self._placements.get(ue_id)
        candidates = []
        if placement is not None:
            candidates.append(placement.primary)
            candidates.extend(placement.backups)
        serving = None
        for name in candidates:
            cpf = self.cpfs.get(name)
            if cpf is None or not cpf.up:
                continue
            entry = cpf.store.get(ue_id)
            if entry is not None and entry.up_to_date and entry.state.attached:
                serving = cpf
                break
        if serving is None:
            return False, None  # data access disrupted (§3.1 step 4)

        # Page through every BS in the UE's tracking area (its region).
        paging_size = CATALOG.wire_size("Paging", self.config.codec)
        yield serving.handle_peer(
            self.config.cost_model.serialize_cost(
                self.config.codec, CATALOG.element_count("Paging")
            )
        )
        yield self.hop("cta_cpf", paging_size)
        yield self.hop("bs_cta", paging_size)
        yield self.hop("ue_bs", paging_size)
        ue = self._ues.get(ue_id)
        if ue is None or not ue.attached:
            return False, serving.name  # UE-side state disagrees
        return True, serving.name

    def deliver_downlink_paged(self, ue_id: str):
        """Process: the full downlink path including idle-mode paging.

        A connected UE receives data directly; an idle UE (after an S1
        Release) is paged and must complete a service request before the
        data flows — the wake-up latency web/video startup experiments
        measure (§6.6).  Returns ``(delivered, latency_s)``.
        """
        start = self.sim.now
        delivered, served_by = yield from self.deliver_downlink(ue_id)
        if not delivered:
            return False, self.sim.now - start
        entry = self.cpfs[served_by].store.get(ue_id)
        if entry is not None and not entry.state.active:
            ue = self._ues[ue_id]
            yield from ue.execute("service_request")
        return True, self.sim.now - start

    # -- measurement --------------------------------------------------------------------------------

    def record_pct(self, outcome: ProcedureOutcome) -> None:
        sink = self.outcome_sink
        if sink is not None:
            sink(outcome)
            return
        tally = self.pct.get(outcome.name)
        if tally is None:
            tally = Tally(outcome.name)
            self.pct[outcome.name] = tally
        tally.observe(outcome.pct)
        self.outcomes.append(outcome)

    def max_log_bytes(self) -> float:
        return max((cta.log.max_size_bytes for cta in self.ctas.values()), default=0.0)

    def summary(self) -> Dict[str, Any]:
        """Structured snapshot of the whole deployment's health/metrics.

        What an operator dashboard would show: per-CPF utilization and
        queue peaks, CTA log/failover counters, link byte totals,
        per-procedure PCT summaries, and the consistency audit.
        """
        return {
            "time_s": self.sim.now,
            "config": self.config.name,
            "cpfs": {
                name: {
                    "up": cpf.up,
                    "utilization": cpf.server.utilization(self.sim.now),
                    "queue_peak": cpf.server.queue_depth.max_value,
                    "messages_handled": cpf.messages_handled,
                    "checkpoints_sent": cpf.checkpoints_sent,
                    "snapshots_applied": cpf.snapshots_applied,
                    "replays_applied": cpf.replays_applied,
                    "ues_stored": len(cpf.store),
                }
                for name, cpf in sorted(self.cpfs.items())
            },
            "ctas": {
                name: {
                    "up": cta.up,
                    "log_entries": cta.log.entry_count(),
                    "log_bytes_max": cta.log.max_size_bytes,
                    "messages_logged": cta.log.appended,
                    "failovers": cta.failovers,
                    "reattaches_ordered": cta.reattaches_ordered,
                    "outdated_marked": cta.outdated_marked,
                    "failures_detected": cta.failures_detected,
                }
                for name, cta in sorted(self.ctas.items())
            },
            "links": {
                name: {"messages": link.messages_sent, "bytes": link.bytes_sent}
                for name, link in sorted(self.links.items())
            },
            "pct_ms": {
                name: {
                    "count": tally.count,
                    "p50": tally.percentile(50) * 1e3 if tally.count else None,
                    "p95": tally.percentile(95) * 1e3 if tally.count else None,
                }
                for name, tally in sorted(self.pct.items())
            },
            "consistency": {
                "serves": self.auditor.serves,
                "writes": self.auditor.writes,
                "violations": len(self.auditor.violations),
                "read_your_writes_held": self.auditor.read_your_writes_held,
                "failovers_masked": self.auditor.failovers_masked,
                "reattaches_forced": self.auditor.reattaches_forced,
            },
            "ues": len(self._ues),
        }

    # -- failure injection helpers ---------------------------------------------------------------------

    def fail_cpf(self, name: str) -> None:
        self.cpfs[name].fail()

    def recover_cpf(self, name: str) -> None:
        self.cpfs[name].recover()

    def fail_cta(self, name: str) -> None:
        self.ctas[name].fail()

    def recover_cta(self, name: str) -> None:
        self.ctas[name].recover()
        # The region the CTA serves may have been adopted by a sibling
        # (scenario 4); returning it restores the original mapping.
        self.adopt_region_cta(self.ctas[name].region, name)
