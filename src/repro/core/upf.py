"""User Plane Function: the data-plane element the CPF programs.

The CPF creates/modifies/deletes sessions on the UPF over an S11-like
interface (paper §6.6 interfaces Intel's 5G UPF the same way).  For the
control-plane experiments only the programming latency matters; for the
application experiments (`repro.apps`) the UPF also answers "is this
UE's data path usable right now?" — data stalls during handover are what
make self-driving-car and VR deadlines miss.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.core import Event, Simulator
from ..sim.node import Server

__all__ = ["UPF", "Session"]


class Session:
    """One UE's data session on the UPF."""

    __slots__ = ("ue_id", "teid", "bs_id", "active")

    def __init__(self, ue_id: str, teid: int, bs_id: str):
        self.ue_id = ue_id
        self.teid = teid
        self.bs_id = bs_id
        self.active = True


class UPF:
    """Simulated user plane function with an S11-like session API."""

    def __init__(self, sim: Simulator, name: str, region: str, service_s: float):
        self.sim = sim
        self.name = name
        self.region = region
        self.server = Server(sim, cores=1, name=name)
        self.service_s = service_s
        self.sessions: Dict[str, Session] = {}
        self._next_teid = 1

    def program(self, msg_name: str, ue_id: str, bs_id: str) -> Event:
        """Apply one S11 message; the event fires when the UPF is done."""
        done = self.server.submit(self.service_s)

        def apply(_ev: Event) -> None:
            if not _ev.ok:
                return
            if msg_name == "CreateSessionRequest":
                self._next_teid += 1
                self.sessions[ue_id] = Session(ue_id, self._next_teid, bs_id)
            elif msg_name == "ModifyBearerRequest":
                session = self.sessions.get(ue_id)
                if session is None:
                    self._next_teid += 1
                    session = Session(ue_id, self._next_teid, bs_id)
                    self.sessions[ue_id] = session
                session.bs_id = bs_id
                session.active = True
            elif msg_name == "ReleaseAccessBearersRequest":
                session = self.sessions.get(ue_id)
                if session is not None:
                    session.active = False
            elif msg_name == "DeleteSessionRequest":
                self.sessions.pop(ue_id, None)

        done.add_callback(apply)
        return done

    def has_path(self, ue_id: str, bs_id: Optional[str] = None) -> bool:
        """Whether downlink/uplink data can flow for this UE right now."""
        session = self.sessions.get(ue_id)
        if session is None or not session.active:
            return False
        if bs_id is not None and session.bs_id != bs_id:
            return False
        return True

    def suspend(self, ue_id: str) -> None:
        """Data path interrupted (e.g. handover in progress)."""
        session = self.sessions.get(ue_id)
        if session is not None:
            session.active = False
