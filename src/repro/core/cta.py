"""Control Traffic Aggregator: Neutrino's new front-end node (§4.1-4.2).

The CTA (i) stamps and logs every uplink control message, (ii) load-
balances UEs onto CPFs with consistent hashing, (iii) routes responses
back, and (iv) drives failure detection and the recovery protocol: on a
primary CPF failure it either promotes an up-to-date backup (replaying
logged messages first if the backup missed part of an ongoing
procedure) or tells the UE to Re-Attach (§4.2.5).

A periodic scan implements §4.2.4: procedures whose replica ACKs are
missing past the timeout cause the laggard replicas to be marked
*outdated* and handed the list of up-to-date CPFs to repair from, after
which the log entries are dropped.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..sim.core import Event, Simulator
from ..sim.node import NodeFailed, Server
from .log import LogicalClock, MessageLog

__all__ = ["CTA", "FailoverPlan"]


class FailoverPlan:
    """Outcome of the CTA's recovery decision for one UE."""

    __slots__ = ("action", "new_primary", "replayed")

    def __init__(self, action: str, new_primary: Optional[str], replayed: int = 0):
        if action not in ("resume", "reattach"):
            raise ValueError("unknown failover action %r" % action)
        self.action = action
        self.new_primary = new_primary
        self.replayed = replayed

    def __repr__(self) -> str:
        return "FailoverPlan(%s -> %s, replayed=%d)" % (
            self.action,
            self.new_primary,
            self.replayed,
        )


class CTA:
    """One control traffic aggregator serving a level-1 region."""

    def __init__(self, dep, name: str, region: str):
        self.dep = dep
        self.sim: Simulator = dep.sim
        self.config = dep.config
        self.name = name
        self.region = region
        self.server = Server(self.sim, cores=1, name=name)
        self.clock = LogicalClock()
        self.log = MessageLog(lambda: self.sim.now, enabled=self.config.message_logging)
        self.failovers = 0
        self.reattaches_ordered = 0
        self.outdated_marked = 0
        #: lazy scan timer: armed only while un-ACKed procedure records
        #: exist, so an idle deployment's event heap drains completely.
        self._scan_armed = False
        self.failures_detected = 0
        self._hb_miss_counts: dict = {}
        if self.config.heartbeat_interval_s > 0:
            self.sim.process(self._heartbeat_loop(), name=name + ".hb")

    @property
    def up(self) -> bool:
        return self.server.up

    # -- uplink path ------------------------------------------------------------

    def ingest(self, ue_id: str, msg_name: str, size_bytes: int) -> Event:
        """Stamp, log, and forward one uplink message (§4.2.3 step 1).

        Returns an event whose value is the assigned logical clock; it
        fails with :class:`NodeFailed` if this CTA is down.
        """
        if not self.up:
            ev = self.sim.event(self.name + ".ingest")
            ev.fail(NodeFailed(self.name))
            return ev
        # Clocks are monotone per UE (the CTA only needs per-UE ordering,
        # §4.2.3), so a UE's clock domain survives CTA handovers.
        clock = self.dep.next_clock(ue_id)
        self.clock.tick()
        self.log.append(clock, ue_id, msg_name, size_bytes)
        obs = self.dep.obs
        if obs is not None:
            obs.metrics.counter("cta_messages", node=self.name).inc()
            obs.metrics.gauge("cta_log_bytes", node=self.name).set(self.log.size_bytes)
        service = self.config.cta_forward_s
        if self.config.message_logging:
            service += self.config.log_append_s
        return self.server.submit(service, value=clock)

    def respond(self) -> Event:
        """Forwarding cost for routing a downlink response back to the BS."""
        if not self.up:
            ev = self.sim.event(self.name + ".respond")
            ev.fail(NodeFailed(self.name))
            return ev
        return self.server.submit(self.config.cta_forward_s)

    # -- routing ------------------------------------------------------------------

    def route(self, ue_id: str) -> Optional[str]:
        """The CPF that should serve this UE right now (alive primaries only)."""
        return self.dep.primary_of(ue_id)

    # -- recovery (§4.2.5) -----------------------------------------------------------

    def failover(self, ue_id: str, obs_parent=None) -> Generator:
        """Recovery decision process; returns a :class:`FailoverPlan`.

        Detection time is not modeled (the paper excludes it from PCT,
        §6.4); the decision + replay costs are.
        """
        self.failovers += 1
        if self.config.recovery == "replay":
            plan = yield from self._try_promote(ue_id, obs_parent=obs_parent)
            if plan is not None:
                return plan
        # Scenario 3 (or EPC policy): Re-Attach through a fresh primary.
        self.reattaches_ordered += 1
        new_primary = self.dep.pick_fresh_primary(ue_id)
        self.dep.reset_placement(ue_id, new_primary)
        return FailoverPlan("reattach", new_primary)

    def _try_promote(self, ue_id: str, obs_parent=None) -> Generator:
        """Scenarios 1 & 2: find a synced backup, replay the log tail."""
        obs = self.dep.obs
        for backup_name in self.dep.replicas_of(ue_id):
            backup = self.dep.cpfs.get(backup_name)
            if backup is None or not backup.up:
                continue
            entry = backup.store.get(ue_id)
            if entry is None or not entry.up_to_date:
                continue
            # Replay every logged message newer than the backup's
            # synced clock (empty for scenario 1).
            pending = self.log.entries_after(ue_id, entry.synced_clock)
            replayed = 0
            for log_entry in pending:
                if obs is not None and obs_parent is not None:
                    rspan = obs.tracer.begin(
                        "cta.replay", parent=obs_parent, phase="recovery",
                        node=backup_name, msg=log_entry.msg_name,
                    )
                else:
                    rspan = None
                try:
                    yield self.dep.hop(
                        self.dep.cpf_hop_from_cta(self.region, backup_name),
                        log_entry.size_bytes,
                        src=self.name,
                        dst=backup_name,
                        parent=rspan,
                    )
                    yield backup.replay_message(ue_id, log_entry.msg_name, log_entry.clock)
                except NodeFailed:
                    if rspan is not None:
                        obs.tracer.finish(rspan, status="failed")
                    break  # backup died (or replay msg lost); try the next one
                if rspan is not None:
                    obs.tracer.finish(rspan, status="ok")
                replayed += 1
            else:
                entry = backup.store.get(ue_id)
                if entry is not None:
                    entry.is_primary = True
                self.dep.promote(ue_id, backup_name)
                self.dep.auditor.record_failover_masked(ue_id, replayed)
                return FailoverPlan("resume", backup_name, replayed)
        return None

    # -- §4.2.4 scan: outdated marking, repair hints, pruning ------------------------

    def procedure_completed(self, ue_id: str, last_clock: int, replicas) -> None:
        """Record the checkpoint boundary and arm the periodic scan."""
        self.log.procedure_completed(ue_id, last_clock, replicas)
        self._arm_scan()

    def _arm_scan(self) -> None:
        if self._scan_armed or not self.log.pending_records():
            return
        self._scan_armed = True
        self.sim.schedule(self.config.log_scan_interval_s, self._scan_tick)

    def _scan_tick(self) -> None:
        self._scan_armed = False
        if not self.up:
            return
        self._scan_once()
        self._arm_scan()  # re-arm while records remain

    def _scan_once(self) -> None:
        cutoff = self.sim.now - self.config.ack_timeout_s
        for record in self.log.stale_records(older_than=cutoff):
            self._mark_outdated(record)

    def flag_concurrent_procedure(self, ue_id: str) -> None:
        """§4.2.4(4): a second procedure starts while ACKs are missing."""
        for record in self.log.unacked_for(ue_id):
            self._mark_outdated(record)

    def _mark_outdated(self, record) -> None:
        up_to_date_sources: List[str] = []
        primary = self.dep.primary_of(ue_id=record.ue_id)
        if primary is not None:
            up_to_date_sources.append(primary)
        for replica_name in record.replicas:
            if replica_name in record.acked:
                up_to_date_sources.append(replica_name)
        for replica_name in record.missing():
            replica = self.dep.cpfs.get(replica_name)
            if replica is None or not replica.up:
                continue
            replica.store.mark_outdated(record.ue_id)
            self.outdated_marked += 1
            if up_to_date_sources:
                self.sim.process(
                    self._repair(replica, record.ue_id, list(up_to_date_sources)),
                    name=self.name + ".repair",
                )
        # §4.2.4(1d): drop the procedure's messages either way.
        self.log.drop_procedure(record.ue_id, record.last_clock)

    @staticmethod
    def _repair(replica, ue_id: str, sources: List[str]) -> Generator:
        """§4.2.4(1c): the replica fetches state from an up-to-date CPF."""
        for source in sources:
            ok = yield from replica.fetch_state_from(ue_id, source)
            if ok:
                return

    # -- proactive failure detection (§4.1) ------------------------------------------

    def _heartbeat_loop(self) -> Generator:
        """Ping the region's CPFs; declare them failed after k misses.

        On detection, every UE whose primary was the dead CPF is failed
        over *proactively* — a synced backup is promoted (with log
        replay) before the UE's next request ever bounces.
        """
        interval = self.config.heartbeat_interval_s
        declared: set = set()
        while True:
            yield self.sim.timeout(interval)
            if not self.up:
                continue
            # Re-read membership every tick: ring churn can grow, shrink,
            # or retire this region mid-run.
            region = self.dep.region_map.regions.get(self.region)
            if region is None:
                return  # region retired; the loop winds down with it
            for name in region.cpfs:
                cpf = self.dep.cpfs.get(name)
                if cpf is None:
                    continue
                if cpf.up:
                    self._hb_miss_counts[name] = 0
                    declared.discard(name)
                    continue
                misses = self._hb_miss_counts.get(name, 0) + 1
                self._hb_miss_counts[name] = misses
                if misses >= self.config.heartbeat_misses and name not in declared:
                    declared.add(name)
                    self.failures_detected += 1
                    self._proactive_failover(name)

    def _proactive_failover(self, dead_cpf: str) -> None:
        for ue_id, placement in list(self.dep.placements_items()):
            if placement.primary != dead_cpf:
                continue
            self.sim.process(
                self._proactive_failover_one(ue_id), name=self.name + ".pfo"
            )

    def _proactive_failover_one(self, ue_id: str) -> Generator:
        ue = self.dep._ues.get(ue_id)
        if ue is not None and ue.busy:
            return  # its own in-flight recovery owns the failover
        yield from self.failover(ue_id)

    # -- failure injection --------------------------------------------------------

    def fail(self) -> None:
        """Crash the CTA: clock, log, and mapping are volatile (§4.2.5 S4)."""
        self.server.fail()
        self.log = MessageLog(lambda: self.sim.now, enabled=self.config.message_logging)
        self.clock = LogicalClock()

    def recover(self) -> None:
        self.server.recover()
