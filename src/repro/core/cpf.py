"""Control Plane Function: the paper's re-architected MME/AMF+SMF.

A CPF (i) stores and updates UE state from UE/BS requests, (ii)
programs sessions on the UPF, (iii) handles registration and mobility,
and (iv) checkpoints UE state to replica CPFs on procedure completion
(§4.1).  Each CPF has one *processing* core (a queued
:class:`~repro.sim.node.Server`) and one dedicated *synchronization*
core, mirroring the paper's two-cores-per-CPF deployment (§5): shipping
checkpoints never steals processing capacity, only the brief state lock
does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..messages.registry import CATALOG
from ..sim.core import Event, Simulator
from ..sim.node import NodeFailed, Server
from .state import StateEntry, StateStore, UEState

__all__ = ["CPF", "HandleResult", "SNAPSHOT_WIRE_BYTES"]

#: approximate wire size of a serialized UE state snapshot.
SNAPSHOT_WIRE_BYTES = 1200


class _ShipAbandoned(Exception):
    """Internal: a checkpoint ship leg gave up; carries the span status."""

    def __init__(self, status: str):
        super().__init__(status)
        self.status = status


@dataclass(frozen=True)
class HandleResult:
    """Outcome of the CPF processing one uplink message."""

    status: str  # "ok" | "reattach_required"
    cpf_name: str
    version: int = 0


class CPF:
    """One simulated control plane function instance."""

    def __init__(self, dep, name: str, region: str):
        self.dep = dep
        self.sim: Simulator = dep.sim
        self.config = dep.config
        self.name = name
        self.region = region
        self.server = Server(self.sim, cores=self.config.cpf_cores, name=name)
        self.sync_server = Server(self.sim, cores=1, name=name + ".sync")
        self.store = StateStore(name)
        self.checkpoints_sent = 0
        self.snapshots_applied = 0
        self.messages_handled = 0
        self.replays_applied = 0

    # -- sizing helpers -------------------------------------------------------

    @property
    def up(self) -> bool:
        return self.server.up

    def _cost(self):
        return self.config.cost_model

    def _codec(self) -> str:
        return self.config.codec

    def message_service_time(
        self, req_msg: str, resp_msg: Optional[str], extra: float = 0.0
    ) -> float:
        """CPU to decode a request, handle it, and encode the response."""
        cost = self._cost()
        service = cost.base_process_s + extra
        service += cost.deserialize_cost(self._codec(), CATALOG.element_count(req_msg))
        if resp_msg is not None:
            service += cost.serialize_cost(self._codec(), CATALOG.element_count(resp_msg))
        if self.config.sync_mode == "per_message":
            service += self.config.per_message_lock_s
        return service

    # -- uplink message handling ----------------------------------------------

    def handle_uplink(
        self,
        ue_id: str,
        msg_name: str,
        clock: int,
        resp_msg: Optional[str] = None,
        creates_state: bool = False,
        reader_version: int = 0,
        extra_service: float = 0.0,
        obs_parent: Optional[Any] = None,
    ) -> Event:
        """Process one logged uplink message for ``ue_id``.

        The returned event fires with a :class:`HandleResult`; it fails
        with :class:`NodeFailed` if this CPF dies first.
        ``reader_version`` is the UE's own count of completed writes,
        used by the consistency auditor to check Read-your-Writes.
        """
        service = self.message_service_time(msg_name, resp_msg, extra_service)
        done = self.sim.event("%s.handle" % self.name)
        obs = self.dep.obs
        if obs is not None and obs_parent is not None:
            span = obs.tracer.begin(
                "cpf.handle", parent=obs_parent, phase="cpf",
                node=self.name, msg=msg_name,
            )
        else:
            span = None

        def finish_span(status: str) -> None:
            if span is None:
                return
            # Split queueing from serving: the job spent `service`
            # seconds on a core; everything else was the queue.
            total = self.sim.now - span.start
            wait = max(0.0, total - service)
            obs.tracer.finish(
                span,
                status=status,
                phases=(("cpf_wait", wait), ("cpf_serve", total - wait)),
            )

        def process(_value: Any) -> None:
            self.messages_handled += 1
            if obs is not None:
                obs.metrics.counter("cpf_messages", node=self.name).inc()
            if creates_state:
                entry = self.store.get(ue_id)
                if entry is None or not entry.is_primary:
                    entry = self.store.create(
                        ue_id, self.dep.m_tmsi_of(ue_id), is_primary=True
                    )
            else:
                entry = self.store.get(ue_id)
                if (
                    entry is None
                    or not entry.up_to_date
                    or entry.state.version < reader_version
                ):
                    # §4.2.4(3): no up-to-date state -> force Re-Attach.
                    # The version gate is how "up-to-date" is actually
                    # checked against the request: NAS security counters
                    # reveal a CPF operating behind the UE's last
                    # completed write, closing repair/checkpoint races.
                    self.dep.auditor.record_reattach_forced(ue_id, self.name)
                    finish_span("reattach_required")
                    done.succeed(HandleResult("reattach_required", self.name))
                    return
                entry.is_primary = True
            self.dep.auditor.record_serve(
                ue_id, reader_version, entry.state.version, self.name, span=span
            )
            entry.state.apply_message()
            entry.synced_clock = max(entry.synced_clock, clock)
            if self.config.sync_mode == "per_message":
                self._checkpoint(ue_id, clock, obs_parent=span)
            finish_span("ok")
            done.succeed(HandleResult("ok", self.name, entry.state.version))

        def _on_job(ev: Event) -> None:
            if ev.ok:
                process(ev.value)
            elif not done.fired:
                finish_span("failed")
                done.fail(NodeFailed(self.name))

        job = self.server.submit(service)
        job.add_callback(_on_job)
        return done

    def peer_service_time(self, req_msg: str, resp_msg: Optional[str]) -> float:
        """CPU for a CPF<->CPF exchange leg (handover migration)."""
        return self.message_service_time(req_msg, resp_msg)

    def handle_peer(self, service: float) -> Event:
        """Inter-CPF work (migration target, state fetch) on the core."""
        return self.server.submit(service)

    # -- procedure boundaries ----------------------------------------------------

    def complete_procedure(
        self, ue_id: str, proc_name: str, last_clock: int,
        obs_parent: Optional[Any] = None,
    ) -> List[str]:
        """Commit the procedure and (maybe) checkpoint; returns replicas.

        Called by the UE driver after the final message of a procedure
        was processed here.  The list of replica names is what the CTA
        records ACK expectations against.
        """
        entry = self.store.get(ue_id)
        if entry is None:
            return []
        entry.state.complete_procedure(proc_name)
        entry.synced_clock = max(entry.synced_clock, last_clock)
        if self.config.sync_mode == "per_procedure":
            return self._checkpoint(ue_id, last_clock, obs_parent=obs_parent)
        if self.config.sync_mode == "on_idle" and not entry.state.active:
            return self._checkpoint(ue_id, last_clock, obs_parent=obs_parent)
        if self.config.sync_mode == "per_message":
            return self.dep.replicas_of(ue_id)
        return []

    # -- replication (primary side) ------------------------------------------------

    def _checkpoint(
        self, ue_id: str, last_clock: int, obs_parent: Optional[Any] = None
    ) -> List[str]:
        """Asynchronously ship a state snapshot to the backups (§4.2.2).

        Non-blocking: the snapshot is taken now (after the lock cost,
        charged to the message that triggered this) and shipped by the
        sync core; the primary continues immediately.
        """
        entry = self.store.get(ue_id)
        if entry is None:
            return []
        if self.config.broadcast_replication:
            replicas = [c for c in self.dep.cpf_names() if c != self.name]
        else:
            replicas = [r for r in self.dep.replicas_of(ue_id) if r != self.name]
        if not replicas:
            return []
        snapshot = entry.state.copy()
        self.checkpoints_sent += 1
        obs = self.dep.obs
        for replica_name in replicas:
            if obs is not None and obs_parent is not None:
                span = obs.tracer.begin(
                    "checkpoint.ship", parent=obs_parent, phase="checkpoint",
                    node=self.name, replica=replica_name,
                )
            else:
                span = None
            self.sim.process(
                self._ship(ue_id, snapshot, last_clock, replica_name, span=span),
                name="%s.ship.%s" % (self.name, ue_id),
            )
        return replicas

    def _ship(
        self,
        ue_id: str,
        snapshot: UEState,
        last_clock: int,
        replica_name: str,
        span: Optional[Any] = None,
    ):
        status = "lost"
        try:
            yield from self._ship_inner(ue_id, snapshot, last_clock, replica_name, span)
            status = "acked"
        except _ShipAbandoned as stop:
            status = stop.status
        finally:
            if span is not None:
                self.dep.obs.tracer.finish(span, status=status)

    def _ship_inner(self, ue_id, snapshot, last_clock, replica_name, span):
        cost = self._cost()
        serialize = cost.serialize_cost(self._codec(), 16)  # snapshot encode
        try:
            yield self.sync_server.submit(serialize)
        except NodeFailed:
            # we died mid-checkpoint; backups stay stale (scenario 2/3)
            raise _ShipAbandoned("primary_died")
        hop = self.dep.cpf_hop(self.name, replica_name)
        try:
            yield self.dep.hop(
                hop, SNAPSHOT_WIRE_BYTES, src=self.name, dst=replica_name, parent=span
            )
        except NodeFailed:
            # checkpoint lost in transit; ACK never arrives -> §4.2.4
            raise _ShipAbandoned("lost")
        replica = self.dep.cpfs.get(replica_name)
        if replica is None or not replica.up:
            # replica down; its ACK never arrives -> §4.2.4 timeout
            raise _ShipAbandoned("replica_down")
        applied = yield from replica.apply_snapshot(ue_id, snapshot, last_clock)
        if not applied:
            raise _ShipAbandoned("replica_died")
        # ACK back to the UE's CTA (§4.2.3 step 3).
        cta = self.dep.cta_of(ue_id)
        try:
            yield self.dep.hop(
                "cta_cpf", 64, src=replica_name, dst=cta.name if cta else None,
                parent=span,
            )
        except NodeFailed:
            # lost ACK looks like a laggard replica; scan repairs it
            raise _ShipAbandoned("ack_lost")
        if cta is not None and cta.up:
            cta.log.ack(ue_id, last_clock, replica_name)

    # -- replication (replica side) ---------------------------------------------

    def apply_snapshot(self, ue_id: str, snapshot: UEState, last_clock: int):
        """Apply a received checkpoint on the sync core; yields sim events."""
        try:
            yield self.sync_server.submit(self.config.replica_apply_s)
        except NodeFailed:
            return False
        self.store.install_snapshot(ue_id, snapshot, last_clock)
        self.snapshots_applied += 1
        return True

    def replay_message(self, ue_id: str, msg_name: str, clock: int) -> Event:
        """Re-execute one logged message during recovery (§4.2.5, S2).

        Replay consumes the same decode+handle CPU as the original on
        the *processing* core of the promoted backup.
        """
        cost = self._cost()
        service = cost.base_process_s + cost.deserialize_cost(
            self._codec(), CATALOG.element_count(msg_name)
        )
        done = self.server.submit(service)

        def apply(ev: Event) -> None:
            if not ev.ok:
                return
            entry = self.store.get(ue_id)
            if entry is None:
                entry = self.store.create(ue_id, self.dep.m_tmsi_of(ue_id), is_primary=False)
            entry.state.apply_message()
            entry.synced_clock = max(entry.synced_clock, clock)
            self.replays_applied += 1

        done.add_callback(apply)
        return done

    # -- repair (outdated replicas fetching state, §4.2.4(1c)) ----------------------

    def fetch_state_from(self, ue_id: str, source_name: str):
        """Process: pull an up-to-date copy of ``ue_id`` from ``source_name``."""
        source = self.dep.cpfs.get(source_name)
        if source is None or not source.up:
            return False
        hop = self.dep.cpf_hop(self.name, source_name)
        try:
            yield self.dep.hop(hop, 64, src=self.name, dst=source_name)  # request
        except NodeFailed:
            return False
        entry = source.store.get(ue_id)
        if entry is None or not entry.up_to_date:
            return False
        snapshot = entry.state.copy()
        clock = entry.synced_clock
        try:
            yield self.dep.hop(hop, SNAPSHOT_WIRE_BYTES, src=source_name, dst=self.name)
        except NodeFailed:
            return False
        if not self.up:
            return False
        applied = yield from self.apply_snapshot(ue_id, snapshot, clock)
        return applied

    # -- failure injection ----------------------------------------------------------

    def fail(self) -> None:
        """Crash: lose all state and queued work."""
        self.server.fail()
        self.sync_server.fail()
        self.store.clear()

    def recover(self) -> None:
        """Restart with empty state (a real NF restart)."""
        self.server.recover()
        self.sync_server.recover()
