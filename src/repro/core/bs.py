"""Base station: serialization-aware relay between the UE and the CTA.

Neutrino's only BS change is the serialization engine (§4.1, §7): the
BS encodes uplink S1AP messages and decodes downlink ones with the
configured codec.  BSs are plentiful and never the queueing bottleneck,
so their codec work contributes latency (priced from the cost model)
but is not queued.
"""

from __future__ import annotations

from ..messages.registry import CATALOG

__all__ = ["BaseStation"]


class BaseStation:
    """One simulated base station (eNB/gNB)."""

    def __init__(self, dep, name: str, region: str):
        self.dep = dep
        self.name = name
        self.region = region
        self.uplink_messages = 0
        self.downlink_messages = 0

    def uplink_delay(self, msg_name: str) -> float:
        """Time to build + encode an uplink S1AP message."""
        self.uplink_messages += 1
        cost = self.dep.config.cost_model
        return cost.serialize_cost(
            self.dep.config.codec, CATALOG.element_count(msg_name)
        )

    def downlink_delay(self, msg_name: str) -> float:
        """Time to decode a downlink S1AP message toward the UE."""
        self.downlink_messages += 1
        cost = self.dep.config.cost_model
        return cost.deserialize_cost(
            self.dep.config.codec, CATALOG.element_count(msg_name)
        )
