"""UE control state and the per-CPF state store.

The UE state a CPF keeps (paper §4.2: "BS ID, data plane endpoint
identifiers, and user tracking area") is modeled by :class:`UEState`,
versioned by completed procedure.  Each CPF holds a :class:`StateStore`
of :class:`StateEntry` records that additionally track replication
metadata: the logical clock the entry is synced through and whether the
entry is known up-to-date (§4.2.4's *outdated* marking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["UEState", "StateEntry", "StateStore", "StaleStateError"]


class StaleStateError(Exception):
    """A CPF was asked to serve a UE whose state it holds only as outdated.

    Per §4.2.4 rule (3) the CPF must refuse and force the UE to
    Re-Attach rather than operate on stale state.
    """

    def __init__(self, ue_id: str, cpf_name: str):
        super().__init__("CPF %s has no up-to-date state for %s" % (cpf_name, ue_id))
        self.ue_id = ue_id
        self.cpf_name = cpf_name


@dataclass
class UEState:
    """Control state for one UE as held by its serving CPF."""

    ue_id: str
    m_tmsi: int
    attached: bool = False
    #: number of completed control procedures — the write version the
    #: Read-your-Writes property is stated over.
    version: int = 0
    #: messages applied since the last completed procedure (mid-procedure
    #: progress; replayed from the CTA log after a failure).
    ops_in_procedure: int = 0
    bs_id: str = ""
    region: str = ""
    tracking_area: int = 0
    bearer_teid: int = 0
    active: bool = False  # ECM-CONNECTED vs idle

    def copy(self) -> "UEState":
        # dataclasses.replace() re-runs __init__ field by field; a dict
        # copy is ~4x cheaper and this runs once per checkpoint shipped.
        new = UEState.__new__(UEState)
        new.__dict__.update(self.__dict__)
        return new

    def apply_message(self) -> None:
        """One control message's worth of state mutation."""
        self.ops_in_procedure += 1

    def complete_procedure(self, proc_name: str) -> None:
        """Commit the procedure's effect and bump the write version."""
        self.version += 1
        self.ops_in_procedure = 0
        if proc_name in ("attach", "re_attach"):
            self.attached = True
            self.active = True
        elif proc_name == "service_request":
            self.active = True
        elif proc_name == "s1_release":
            self.active = False
        elif proc_name == "detach":
            self.attached = False
            self.active = False


@dataclass
class StateEntry:
    """A CPF's copy of one UE's state plus replication metadata."""

    state: UEState
    #: logical clock of the last CTA message folded into this copy.
    synced_clock: int = 0
    #: False once the CTA has marked this replica outdated (§4.2.4).
    up_to_date: bool = True
    #: True on the CPF currently serving the UE.
    is_primary: bool = False

    @property
    def version(self) -> int:
        return self.state.version


class StateStore:
    """Per-CPF map of UE id -> :class:`StateEntry`."""

    def __init__(self, cpf_name: str):
        self.cpf_name = cpf_name
        self._entries: Dict[str, StateEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ue_id: str) -> bool:
        return ue_id in self._entries

    def get(self, ue_id: str) -> Optional[StateEntry]:
        return self._entries.get(ue_id)

    def require_current(self, ue_id: str) -> StateEntry:
        """The entry, if present and up-to-date; else :class:`StaleStateError`."""
        entry = self._entries.get(ue_id)
        if entry is None or not entry.up_to_date:
            raise StaleStateError(ue_id, self.cpf_name)
        return entry

    def create(self, ue_id: str, m_tmsi: int, is_primary: bool) -> StateEntry:
        entry = StateEntry(UEState(ue_id, m_tmsi), is_primary=is_primary)
        self._entries[ue_id] = entry
        return entry

    def install_snapshot(
        self, ue_id: str, snapshot: UEState, synced_clock: int
    ) -> StateEntry:
        """Apply a replicated snapshot (checkpoint or fetched repair).

        A snapshot older than what we already hold is ignored —
        §4.2.4(1a) hands replicas the boundary clock precisely so they
        can "ignore the reception of outdated state".
        """
        existing = self._entries.get(ue_id)
        if existing is not None and existing.synced_clock > synced_clock:
            return existing
        entry = StateEntry(
            snapshot.copy(), synced_clock=synced_clock, up_to_date=True
        )
        self._entries[ue_id] = entry
        return entry

    def mark_outdated(self, ue_id: str) -> None:
        entry = self._entries.get(ue_id)
        if entry is not None:
            entry.up_to_date = False

    def drop(self, ue_id: str) -> None:
        self._entries.pop(ue_id, None)

    def clear(self) -> None:
        """Lose everything (node crash)."""
        self._entries.clear()

    def ue_ids(self) -> List[str]:
        return sorted(self._entries)
