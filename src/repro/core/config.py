"""Control-plane configuration: every design knob in one place.

A :class:`ControlPlaneConfig` selects the serialization engine, the
replication/sync scheme, the failure-recovery strategy, and the
geo-replication policy.  The paper's systems are presets over these
knobs (§6.2):

* ``existing_epc()`` — ASN.1, no replication, Re-Attach on failure.
* ``neutrino()`` — optimized FlatBuffers, per-procedure async
  checkpointing + CTA message log, two-level recovery, proactive
  geo-replication.
* ``skycore()`` — per-message state synchronization (broadcast-style).
* ``dpcm()`` — device-side state: shortened procedure flows, otherwise
  like the existing EPC.

The factor-analysis figures (15/16) are produced by toggling single
knobs off a preset, which is exactly how the paper runs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..codec.costs import CostModel
from ..sim.network import LatencyModel

__all__ = ["ControlPlaneConfig"]

_SYNC_MODES = ("none", "per_message", "per_procedure", "on_idle")
_RECOVERY_MODES = ("reattach", "replay")


@dataclass
class ControlPlaneConfig:
    """All policy knobs of a simulated control plane."""

    name: str = "custom"

    #: serialization engine used by BS, CTA, and CPFs.
    codec: str = "flatbuffers_opt"

    #: replica state synchronization: "none", "per_message",
    #: "per_procedure" (Neutrino, §4.2.2), or "on_idle" (SCALE-style:
    #: only when the UE goes idle — no consistency guarantee).
    sync_mode: str = "per_procedure"

    #: number of backup CPFs (N in §4.2.2).
    n_backups: int = 1

    #: keep the CTA in-memory message log (§4.2.3).
    message_logging: bool = True

    #: failure recovery: "replay" (two-level, §4.2.5) or "reattach" (EPC).
    recovery: str = "replay"

    #: proactive geo-replication on the level-2 ring -> Fast Handover (§4.3).
    proactive_georep: bool = True

    #: ring level replicas are placed on: 2 = the paper's level-2 ring;
    #: 3+ = wider rings (the paper's footnote-14 future work).
    georep_level: int = 2

    #: DPCM-style device-side state (shortened flows, parallel legs).
    dpcm_mode: bool = False

    #: SkyCore-style broadcast: replicate to every other CPF, not just N.
    broadcast_replication: bool = False

    #: CTA scan timeout after which missing ACKs mark replicas outdated
    #: (§4.2.4; paper uses 30 s).
    ack_timeout_s: float = 30.0

    #: CTA heartbeat interval for proactive CPF failure detection (§4.1
    #: makes the CTA responsible for "CPF failure detection and
    #: recovery").  0 disables the heartbeat: failures are then detected
    #: reactively, when a forwarded message bounces.  The paper's PCT
    #: accounting excludes detection time either way (§6.4).
    heartbeat_interval_s: float = 0.0

    #: consecutive missed heartbeats before a CPF is declared failed.
    heartbeat_misses: int = 2

    #: period of the CTA's log scan / prune pass.
    log_scan_interval_s: float = 1.0

    #: CPU cost of the primary's state lock + snapshot per checkpoint,
    #: charged to the processing core (the sync core does the shipping —
    #: the paper dedicates a second core per CPF to synchronization, §5).
    checkpoint_lock_s: float = 0.9e-6

    #: extra per-message locking cost when sync_mode == "per_message"
    #: ("frequent state locking for check-pointing", §6.7.1).
    per_message_lock_s: float = 2.5e-6

    #: CPU cost for a replica to apply a received state snapshot.
    replica_apply_s: float = 1.0e-6

    #: CTA per-message forwarding cost (DPDK-style load balancer).
    cta_forward_s: float = 0.7e-6

    #: CTA extra cost to stamp + append a message to the in-memory log.
    log_append_s: float = 0.25e-6

    #: UPF session programming cost per S11 message.
    upf_service_s: float = 1.5e-6

    #: per-CPF processing cores (the paper uses one processing core).
    cpf_cores: int = 1

    cost_model: CostModel = field(default_factory=CostModel)
    latency: LatencyModel = field(default_factory=LatencyModel)

    def __post_init__(self):
        if self.sync_mode not in _SYNC_MODES:
            raise ValueError("sync_mode must be one of %s" % (_SYNC_MODES,))
        if self.recovery not in _RECOVERY_MODES:
            raise ValueError("recovery must be one of %s" % (_RECOVERY_MODES,))
        if self.n_backups < 0:
            raise ValueError("n_backups must be non-negative")
        if self.georep_level < 2:
            raise ValueError("georep_level must be >= 2")
        if self.sync_mode != "none" and self.n_backups == 0:
            raise ValueError("replication enabled but n_backups == 0")
        if self.recovery == "replay" and not self.message_logging:
            raise ValueError("replay recovery requires the CTA message log")

    # -- presets (§6.2) ------------------------------------------------------

    @classmethod
    def neutrino(cls, **overrides) -> "ControlPlaneConfig":
        defaults = dict(name="neutrino")
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def existing_epc(cls, **overrides) -> "ControlPlaneConfig":
        defaults = dict(
            name="existing_epc",
            codec="asn1per",
            sync_mode="none",
            n_backups=0,
            message_logging=False,
            recovery="reattach",
            proactive_georep=False,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def skycore(cls, **overrides) -> "ControlPlaneConfig":
        defaults = dict(
            name="skycore",
            codec="asn1per",
            sync_mode="per_message",
            n_backups=1,
            broadcast_replication=True,
            message_logging=False,
            recovery="reattach",
            proactive_georep=False,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def dpcm(cls, **overrides) -> "ControlPlaneConfig":
        defaults = dict(
            name="dpcm",
            codec="asn1per",
            sync_mode="none",
            n_backups=0,
            message_logging=False,
            recovery="reattach",
            proactive_georep=False,
            dpcm_mode=True,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def variant(self, name: str, **overrides) -> "ControlPlaneConfig":
        """A copy with knobs changed (factor-analysis helper)."""
        return replace(self, name=name, **overrides)
