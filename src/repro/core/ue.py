"""The UE driver: executes control procedures end to end.

Each procedure run is a simulated process that walks the procedure's
steps through the real component chain — UE radio leg, BS serialization,
CTA stamping/logging, CPF queueing/processing, UPF programming, inter-
CPF migration — measuring the procedure completion time (PCT) the way
the paper's traffic generator does: at the UE, from first request until
the step marked ``ends_pct`` delivers.

Failure handling follows §4.2.5: if the serving CPF dies mid-procedure
the UE asks the CTA for a recovery plan; a ``resume`` plan (scenarios
1/2) retries the interrupted step at the promoted, log-replayed backup;
a ``reattach`` plan (scenario 3, or the EPC's only option) runs the
Re-Attach procedure and — matching the paper's accounting (§6.4) — ends
the failed procedure's PCT when the Re-Attach completes.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Generator, Optional

from ..messages.procedures import ProcedureSpec, Step
from ..messages.registry import CATALOG
from ..sim.core import Simulator
from ..sim.node import NodeFailed
from .cpf import CPF, SNAPSHOT_WIRE_BYTES

__all__ = ["UE", "ProcedureOutcome", "ProcedureAborted"]

_MAX_RECOVERIES = 8

#: reusable no-op context manager (nullcontext is stateless/reentrant):
#: the whole per-span cost when observability is disabled.
_NULL_SPAN = nullcontext()


def _span_factory(obs, parent):
    """Per-step span context managers, parented under ``parent``.

    Parenting is explicit (never an ambient stack): sim processes
    interleave at every yield, so only the procedure's own root may
    adopt its spans.  With obs disabled this costs one lambda per
    procedure step-helper call and a C-level nullcontext per site.
    """
    if obs is None or parent is None:
        return lambda name, phase=None, **attrs: _NULL_SPAN
    tracer = obs.tracer
    return lambda name, phase=None, **attrs: tracer.span(
        name, parent=parent, phase=phase, **attrs
    )


class ProcedureAborted(Exception):
    """A procedure could not complete (e.g. repeated total failures)."""


class ProcedureOutcome:
    """What happened to one procedure run."""

    __slots__ = (
        "name",
        "pct",
        "completed",
        "recovered",
        "reattached",
        "started_at",
        "ue_id",
    )

    def __init__(self, name: str, started_at: float, ue_id: str = ""):
        self.name = name
        self.started_at = started_at
        self.ue_id = ue_id
        self.pct: Optional[float] = None
        self.completed = False
        self.recovered = False
        self.reattached = False


class UE:
    """One user equipment with its EMM-style client state."""

    def __init__(self, dep, ue_id: str, bs_name: str):
        self.dep = dep
        self.sim: Simulator = dep.sim
        self.ue_id = ue_id
        self.bs_name = bs_name
        self.attached = False
        #: the UE's own count of completed writes (RYW reader version).
        self.completed_version = 0
        self.busy = False
        self.procedures_run = 0
        #: root span of the procedure currently running (obs enabled only).
        self._obs_root = None

    # ------------------------------------------------------------------ api

    def execute(
        self,
        proc_name: str,
        target_bs: Optional[str] = None,
        outcome: Optional[ProcedureOutcome] = None,
    ) -> Generator:
        """Run one procedure (generator; spawn with ``sim.process``).

        Returns the :class:`ProcedureOutcome`.  ``target_bs`` is required
        for handover procedures.
        """
        dep = self.dep
        spec = dep.spec(proc_name)
        if outcome is None:
            outcome = ProcedureOutcome(proc_name, self.sim.now, self.ue_id)
        self.busy = True
        self.procedures_run += 1
        is_attach = proc_name in ("attach", "re_attach")
        try:
            yield from self._run_steps(spec, proc_name, target_bs, outcome, is_attach)
        finally:
            self.busy = False
        return outcome

    # ----------------------------------------------------------- procedure body

    def _run_steps(self, spec, proc_name, target_bs, outcome, is_attach) -> Generator:
        obs = self.dep.obs
        if obs is None:
            self._obs_root = None
            yield from self._run_steps_inner(
                spec, proc_name, target_bs, outcome, is_attach
            )
            return
        # Root span for the whole procedure; a nested Re-Attach (its own
        # execute() call) parents under the failed procedure's root, so
        # the recovery shows up inside the timeline that paid for it.
        prev_root = self._obs_root
        root = obs.tracer.begin(
            "proc." + proc_name, parent=prev_root, proc=proc_name, ue=self.ue_id
        )
        self._obs_root = root
        try:
            yield from self._run_steps_inner(
                spec, proc_name, target_bs, outcome, is_attach
            )
        finally:
            obs.tracer.finish(
                root,
                status="completed" if outcome.completed else "failed",
                recovered=outcome.recovered,
                reattached=outcome.reattached,
            )
            self._obs_root = prev_root

    def _run_steps_inner(self, spec, proc_name, target_bs, outcome, is_attach) -> Generator:
        dep = self.dep
        self._last_clock = 0
        self._migrated_to: Optional[str] = None
        recoveries = 0

        dep.ensure_placement(self.ue_id, dep.bss[self.bs_name].region)
        cta = dep.cta_of(self.ue_id)
        if cta is not None and cta.up and not is_attach:
            cta.flag_concurrent_procedure(self.ue_id)  # §4.2.4(4)

        step_idx = 0
        while step_idx < len(spec.steps):
            step = spec.steps[step_idx]
            try:
                if (
                    step.at_target
                    and self._migrated_to is None
                    and proc_name == "fast_handover"
                    and target_bs is not None
                ):
                    yield from self._resolve_fast_target(target_bs)
                yield from self._do_step(step, proc_name, target_bs, outcome, is_attach)
            except NodeFailed as failure:
                recoveries += 1
                if recoveries > _MAX_RECOVERIES:
                    raise ProcedureAborted(
                        "%s for %s failed %d times" % (proc_name, self.ue_id, recoveries)
                    )
                outcome.recovered = True
                handled = yield from self._recover(failure, proc_name, outcome)
                if handled == "reattached":
                    return
                continue  # retry the same step at the promoted backup
            if step_idx == 0 and is_attach:
                # The first attach message created fresh state at the CPF.
                self.attached = True
            step_idx += 1

        # Procedure completed: switch placement first for CPF-changing
        # procedures (so the checkpoint targets the *new* backups and the
        # ACKs land at the new CTA), then commit state and checkpoint
        # (§4.2.3 steps 2-4).
        serving_name = self._serving_cpf_name(proc_name, target_bs, spec.steps[-1])
        if spec.changes_cpf and target_bs is not None:
            dep.switch_region(self.ue_id, self._migrated_to, target_bs)
            self.bs_name = target_bs
        serving = dep.cpfs.get(serving_name)
        if serving is not None and serving.up:
            span = _span_factory(dep.obs, self._obs_root)
            if dep.config.sync_mode == "per_procedure":
                # brief state lock on the processing core (§6.7.1)
                with span("checkpoint.lock", phase="lock", node=serving.name):
                    yield serving.server.submit(dep.config.checkpoint_lock_s)
            replicas = serving.complete_procedure(
                self.ue_id, proc_name, self._last_clock, obs_parent=self._obs_root
            )
            cta = dep.cta_of(self.ue_id)
            if cta is not None and cta.up:
                cta.procedure_completed(self.ue_id, self._last_clock, replicas)
        if is_attach:
            entry = serving.store.get(self.ue_id) if serving is not None else None
            self.completed_version = entry.state.version if entry is not None else 1
        else:
            self.completed_version += 1
        dep.auditor.record_write_completion(self.ue_id, self.completed_version)
        outcome.completed = True

    # ------------------------------------------------------------------- steps

    def _resolve_fast_target(self, target_bs: str) -> Generator:
        """Pick the Fast Handover serving CPF in the target region (§4.3).

        Prefers the proactive level-2 replica holding state at least as
        new as this UE's last completed write; otherwise fetches a
        current copy intra-level-2.  If no current copy is reachable,
        raises :class:`NodeFailed` so the normal recovery machinery
        (§4.2.5) takes over.
        """
        dep = self.dep
        tgt_region = dep.bss[target_bs].region
        tgt_name, fetch_from = dep.fast_target(
            self.ue_id, tgt_region, min_version=self.completed_version
        )
        if fetch_from is not None:
            span = _span_factory(dep.obs, self._obs_root)
            with span("cpf.fetch", phase="migrate", src=fetch_from, dst=tgt_name):
                yield from dep.cpfs[tgt_name].fetch_state_from(self.ue_id, fetch_from)
            entry = dep.cpfs[tgt_name].store.get(self.ue_id)
            if entry is None or entry.state.version < self.completed_version:
                raise NodeFailed(tgt_name)
        self._migrated_to = tgt_name

    def _do_step(self, step: Step, proc_name, target_bs, outcome, is_attach) -> Generator:
        if step.kind in ("ue_exchange", "ue_message"):
            yield from self._uplink_exchange(step, proc_name, target_bs, outcome, is_attach)
        elif step.kind == "cpf_bs":
            yield from self._cpf_bs(step, proc_name, target_bs, outcome, is_attach)
        elif step.kind == "cpf_upf":
            yield from self._cpf_upf(step, proc_name, target_bs, outcome)
        elif step.kind == "cpf_cpf":
            yield from self._cpf_cpf(step, proc_name, target_bs)
        else:  # pragma: no cover - Step validates kinds
            raise ValueError("unknown step kind %r" % step.kind)

    def _context(self, step: Step, proc_name, target_bs):
        """(bs, cta, cpf) the step runs through, honoring at_target.

        The *serving* CTA (the one holding the UE's log) handles all of
        a procedure's messages, including target-side ones during a
        handover, until the placement switches at completion.
        """
        dep = self.dep
        if step.at_target and target_bs is not None:
            bs = dep.bss[target_bs]
            cpf_name = self._migrated_to or dep.primary_of(self.ue_id)
        else:
            bs = dep.bss[self.bs_name]
            cpf_name = dep.primary_of(self.ue_id)
        cta = dep.cta_of(self.ue_id) or dep.cta_for_region(bs.region)
        if cta is None or not cta.up:
            raise NodeFailed("cta:" + bs.region)
        if cpf_name is None:
            raise NodeFailed("cpf:none-alive")
        cpf = dep.cpfs[cpf_name]
        return bs, cta, cpf

    def _uplink_exchange(self, step, proc_name, target_bs, outcome, is_attach) -> Generator:
        dep, sim = self.dep, self.sim
        bs, cta, cpf = self._context(step, proc_name, target_bs)
        msg, resp = step.request, step.response
        size = CATALOG.composed_wire_size(msg, step.request_nas, dep.config.codec)
        root = self._obs_root
        span = _span_factory(dep.obs, root)

        yield dep.hop("ue_bs", size, parent=root)
        with span("bs.uplink", phase="radio", bs=bs.name, msg=msg):
            yield sim.timeout(bs.uplink_delay(msg))
        yield dep.hop("bs_cta", size, parent=root)
        with span("cta.ingest", phase="cta", node=cta.name, msg=msg):
            clock = yield cta.ingest(self.ue_id, msg, size)
        self._last_clock = max(self._last_clock, clock)
        yield dep.hop("cta_cpf", size, parent=root)

        creates = is_attach and msg == "InitialUEMessage"
        reader_version = 0 if is_attach else self.completed_version
        result = yield cpf.handle_uplink(
            self.ue_id, msg, clock, resp, creates, reader_version, obs_parent=root
        )
        if result.status == "reattach_required":
            # §4.2.4(3): treat like a primary loss — the CTA will route
            # recovery (a synced backup or a Re-Attach).
            raise NodeFailed(cpf.name)

        if resp is not None:
            resp_size = CATALOG.composed_wire_size(
                resp, step.response_nas, dep.config.codec
            )
            yield dep.hop("cta_cpf", resp_size, parent=root)
            with span("cta.respond", phase="cta", node=cta.name):
                yield cta.respond()
            yield dep.hop("bs_cta", resp_size, parent=root)
            with span("bs.downlink", phase="radio", bs=bs.name, msg=resp):
                yield sim.timeout(bs.downlink_delay(resp))
            yield dep.hop("ue_bs", resp_size, parent=root)
        if step.ends_pct:
            self._mark_pct(outcome)

    def _cpf_bs(self, step, proc_name, target_bs, outcome, is_attach) -> Generator:
        """CPF-initiated downlink exchange (context setup, HO command)."""
        dep, sim = self.dep, self.sim
        bs, cta, cpf = self._context(step, proc_name, target_bs)
        req, resp = step.request, step.response
        req_size = CATALOG.composed_wire_size(req, step.request_nas, dep.config.codec)
        cost = dep.config.cost_model
        root = self._obs_root
        span = _span_factory(dep.obs, root)

        # CPF encodes and emits the downlink request.
        with span("cpf.encode", phase="cpf_serve", node=cpf.name, msg=req):
            yield cpf.handle_peer(
                cost.base_process_s * 0.5
                + cost.serialize_cost(dep.config.codec, CATALOG.element_count(req))
            )
        yield dep.hop("cta_cpf", req_size, parent=root)
        with span("cta.respond", phase="cta", node=cta.name):
            yield cta.respond()
        yield dep.hop("bs_cta", req_size, parent=root)
        with span("bs.downlink", phase="radio", bs=bs.name, msg=req):
            yield sim.timeout(bs.downlink_delay(req))
        yield dep.hop("ue_bs", req_size, parent=root)
        if step.ends_pct:
            # The accept/command reached the UE: the paper's client-side
            # PCT clock stops here.
            self._mark_pct(outcome)

        if resp is not None:
            # BS answers uplink; it is logged and handled like any other
            # uplink control message.
            resp_size = CATALOG.wire_size(resp, dep.config.codec)
            with span("bs.uplink", phase="radio", bs=bs.name, msg=resp):
                yield sim.timeout(bs.uplink_delay(resp))
            yield dep.hop("bs_cta", resp_size, parent=root)
            with span("cta.ingest", phase="cta", node=cta.name, msg=resp):
                clock = yield cta.ingest(self.ue_id, resp, resp_size)
            self._last_clock = max(self._last_clock, clock)
            yield dep.hop("cta_cpf", resp_size, parent=root)
            reader_version = 0 if is_attach else self.completed_version
            result = yield cpf.handle_uplink(
                self.ue_id, resp, clock, None, False, reader_version, obs_parent=root
            )
            if result.status == "reattach_required":
                raise NodeFailed(cpf.name)

    def _cpf_upf(self, step, proc_name, target_bs, outcome) -> Generator:
        dep = self.dep
        bs, _cta, cpf = self._context(step, proc_name, target_bs)
        upf = dep.upf_for_region(bs.region)
        req, resp = step.request, step.response
        req_size = CATALOG.wire_size(req, dep.config.codec)
        resp_size = CATALOG.wire_size(resp, dep.config.codec) if resp else 0
        cost = dep.config.cost_model
        root = self._obs_root
        span = _span_factory(dep.obs, root)

        def leg() -> Generator:
            with span("cpf.encode", phase="cpf_serve", node=cpf.name, msg=req):
                yield cpf.handle_peer(
                    cost.base_process_s * 0.5
                    + cost.serialize_cost(dep.config.codec, CATALOG.element_count(req))
                )
            yield dep.hop("cpf_upf", req_size, parent=root)
            with span("upf.program", phase="upf", upf=upf.name, msg=req):
                yield upf.program(req, self.ue_id, bs.name)
            if resp:
                yield dep.hop("cpf_upf", resp_size, parent=root)
                with span("cpf.decode", phase="cpf_serve", node=cpf.name, msg=resp):
                    yield cpf.handle_peer(
                        cost.deserialize_cost(dep.config.codec, CATALOG.element_count(resp))
                    )
            if step.ends_pct:
                self._mark_pct(outcome)

        if dep.config.dpcm_mode and not step.ends_pct:
            # DPCM executes user-plane programming in parallel with the
            # rest of the procedure (device-side state, §6.2 / DPCM [37]).
            dep.sim.process(leg(), name="%s.dpcm_upf" % self.ue_id)
        else:
            yield from leg()

    def _cpf_cpf(self, step, proc_name, target_bs) -> Generator:
        """State migration leg of a handover with CPF change."""
        dep = self.dep
        if target_bs is None:
            raise ValueError("handover needs a target_bs")
        src_name = dep.primary_of(self.ue_id)
        if src_name is None:
            raise NodeFailed("cpf:none-alive")
        src = dep.cpfs[src_name]
        tgt_region = dep.bss[target_bs].region
        tgt_name = dep.region_map.primary_for(self.ue_id, tgt_region)
        tgt = dep.cpfs[tgt_name]
        if not tgt.up:
            alive = [c for c in dep.region_map.region(tgt_region).cpfs if dep.cpfs[c].up]
            if not alive:
                raise NodeFailed("cpf:" + tgt_region)
            tgt_name, tgt = alive[0], dep.cpfs[alive[0]]
        req, resp = step.request, step.response
        codec = dep.config.codec
        req_size = CATALOG.wire_size(req, codec) + SNAPSHOT_WIRE_BYTES
        resp_size = CATALOG.wire_size(resp, codec) if resp else 64
        hop = dep.cpf_hop(src_name, tgt_name)
        root = self._obs_root
        span = _span_factory(dep.obs, root)

        with span("cpf.migrate", phase="migrate", src=src_name, dst=tgt_name):
            # Source: snapshot + encode the relocation request.
            yield src.handle_peer(src.message_service_time(req, None))
            entry = src.store.get(self.ue_id)
            if entry is None or not entry.up_to_date:
                raise NodeFailed(src_name)
            snapshot, clock = entry.state.copy(), entry.synced_clock
            yield dep.hop(hop, req_size, parent=root)
            # Target: decode, install migrated state, encode the ack.
            yield tgt.handle_peer(tgt.message_service_time(req, resp))
            tgt.store.install_snapshot(self.ue_id, snapshot, clock)
            yield dep.hop(hop, resp_size, parent=root)
            yield src.handle_peer(
                dep.config.cost_model.deserialize_cost(codec, CATALOG.element_count(resp or req))
            )
        self._migrated_to = tgt_name

    # ---------------------------------------------------------------- recovery

    def _recover(self, failure: NodeFailed, proc_name, outcome) -> Generator:
        """Consult the CTA, then resume or Re-Attach (§4.2.5)."""
        dep = self.dep
        bs = dep.bss[self.bs_name]
        cta = dep.cta_for_region(bs.region)
        if cta is None or not cta.up:
            # Scenario 4: CTA failed.  A neighbor CTA takes over; the UE
            # must Re-Attach (no mapping, no log at the new CTA).
            cta = dep.fallback_cta(bs.region)
            if cta is None:
                raise ProcedureAborted("no CTA alive for %s" % self.ue_id)
            dep.adopt_region_cta(bs.region, cta.name)
            dep.reset_placement(self.ue_id, dep.pick_fresh_primary(self.ue_id))
            yield from self._reattach(proc_name, outcome)
            return "reattached"
        obs, root = dep.obs, self._obs_root
        if obs is not None and root is not None:
            with obs.tracer.span(
                "recovery.failover", parent=root, phase="recovery", node=cta.name
            ) as rs:
                plan = yield from cta.failover(self.ue_id, obs_parent=rs)
        else:
            plan = yield from cta.failover(self.ue_id)
        if plan.action == "resume":
            self._migrated_to = None
            return "resumed"
        yield from self._reattach(proc_name, outcome)
        return "reattached"

    def _reattach(self, failed_proc, outcome) -> Generator:
        """Run Re-Attach; the failed procedure's PCT ends at its completion."""
        outcome.reattached = True
        self.attached = False
        self.completed_version = 0
        inner = ProcedureOutcome("re_attach", self.sim.now, self.ue_id)
        yield from self.execute("re_attach", outcome=inner)
        self._mark_pct(outcome)

    def _mark_pct(self, outcome: ProcedureOutcome) -> None:
        if outcome.pct is None:
            outcome.pct = self.sim.now - outcome.started_at
            self.dep.record_pct(outcome)

    def _serving_cpf_name(self, proc_name, target_bs, last_step) -> Optional[str]:
        if self._migrated_to is not None:
            return self._migrated_to
        return self.dep.primary_of(self.ue_id)
