"""Read-your-Writes auditor.

Records every (reader_version, served_version) pair a CPF serves so the
tests — and the experiment harness — can verify the paper's central
guarantee (§4.2.1): *a UE's request is never processed against state
older than the UE's own last completed write*.  Designs without the
consistency protocol (SCALE-style ``on_idle`` sync) produce violations
here; Neutrino must produce none, under any failure schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["ConsistencyAuditor", "Violation"]


@dataclass(frozen=True)
class Violation:
    """A request was served against stale state."""

    time: float
    ue_id: str
    cpf_name: str
    reader_version: int
    served_version: int


@dataclass
class ConsistencyAuditor:
    """Counts serves, violations, forced re-attaches, masked failovers."""

    sim_now: object = None  # zero-arg callable; set by the deployment
    serves: int = 0
    violations: List[Violation] = field(default_factory=list)
    reattaches_forced: int = 0
    failovers_masked: int = 0
    messages_replayed: int = 0

    def record_serve(
        self, ue_id: str, reader_version: int, served_version: int, cpf_name: str
    ) -> None:
        self.serves += 1
        if served_version < reader_version:
            self.violations.append(
                Violation(
                    self.sim_now() if self.sim_now else 0.0,
                    ue_id,
                    cpf_name,
                    reader_version,
                    served_version,
                )
            )

    def record_reattach_forced(self, ue_id: str, cpf_name: str) -> None:
        self.reattaches_forced += 1

    def record_failover_masked(self, ue_id: str, replayed: int) -> None:
        self.failovers_masked += 1
        self.messages_replayed += replayed

    @property
    def read_your_writes_held(self) -> bool:
        return not self.violations
