"""Read-your-Writes auditor — always on, in every run.

Records every UE write-completion (the UE's own count of completed
writes, its "reader version") and checks every served read against it,
so the paper's central guarantee (§4.2.1) — *a UE's request is never
processed against state older than the UE's own last completed write* —
is a runtime-checkable property of any simulation, not just of the
property tests.  Designs without the consistency protocol (SCALE-style
``on_idle`` sync) produce violations here; Neutrino must produce none,
under any failure schedule, including the message-level fault schedules
``repro.faults`` injects.

Each UE carries a bounded causal history (writes, serves, forced
re-attaches, masked failovers); when a violation fires, the auditor
attaches that history so the offending schedule can be diagnosed — and,
via :mod:`repro.faults`, saved and replayed bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["RYWAuditor", "ConsistencyAuditor", "Violation", "CausalEvent"]

#: per-UE causal history bound; enough to show the failure context
#: without letting long runs grow memory per UE.
_HISTORY_LIMIT = 32


@dataclass(frozen=True)
class CausalEvent:
    """One entry of a UE's causal history."""

    time: float
    kind: str  # "write" | "serve" | "reattach_forced" | "failover_masked"
    detail: Tuple[Tuple[str, object], ...]

    def __repr__(self) -> str:
        pairs = ", ".join("%s=%r" % kv for kv in self.detail)
        return "t=%.6f %s(%s)" % (self.time, self.kind, pairs)


@dataclass(frozen=True)
class Violation:
    """A request was served against stale state.

    ``trace`` carries the UE's causal history up to (and including) the
    violating serve; it is excluded from equality so violations compare
    by the observable facts alone.  When observability was installed on
    the run, ``trace_id``/``span_id`` point at the violating serve's
    span in the exported timeline (searchable in the Perfetto UI); they
    are diagnostics, also excluded from equality.
    """

    time: float
    ue_id: str
    cpf_name: str
    reader_version: int
    served_version: int
    trace: Tuple[CausalEvent, ...] = field(default=(), compare=False, repr=False)
    trace_id: Optional[int] = field(default=None, compare=False)
    span_id: Optional[int] = field(default=None, compare=False)


@dataclass
class RYWAuditor:
    """Always-on Read-your-Writes probe.

    Counts serves/writes/violations/forced re-attaches/masked failovers
    and keeps a bounded per-UE causal trace.  Installed by the
    deployment on construction; every ``CPF.handle_uplink`` serve and
    every UE write completion reports here.
    """

    sim_now: object = None  # zero-arg callable; set by the deployment
    serves: int = 0
    writes: int = 0
    violations: List[Violation] = field(default_factory=list)
    reattaches_forced: int = 0
    failovers_masked: int = 0
    messages_replayed: int = 0
    #: diagnostics switch for population-scale runs: the per-UE causal
    #: history is O(UEs) memory and exists only to annotate violation
    #: reports — detection itself is the version comparison in
    #: :meth:`record_serve`, which stays identical with history off.
    keep_history: bool = True
    _history: Dict[str, Deque[CausalEvent]] = field(default_factory=dict, repr=False)

    def _now(self) -> float:
        return self.sim_now() if self.sim_now else 0.0

    def _note(self, ue_id: str, kind: str, **detail: object) -> None:
        if not self.keep_history:
            return
        history = self._history.get(ue_id)
        if history is None:
            history = deque(maxlen=_HISTORY_LIMIT)
            self._history[ue_id] = history
        history.append(
            CausalEvent(self._now(), kind, tuple(sorted(detail.items())))
        )

    # -- write side -----------------------------------------------------------

    def record_write_completion(self, ue_id: str, version: int) -> None:
        """The UE completed a write; ``version`` is its new reader version."""
        self.writes += 1
        self._note(ue_id, "write", version=version)

    # -- read side ------------------------------------------------------------

    def record_serve(
        self,
        ue_id: str,
        reader_version: int,
        served_version: int,
        cpf_name: str,
        span: object = None,
    ) -> None:
        self.serves += 1
        self._note(
            ue_id,
            "serve",
            cpf=cpf_name,
            reader_version=reader_version,
            served_version=served_version,
        )
        if served_version < reader_version:
            self.violations.append(
                Violation(
                    self._now(),
                    ue_id,
                    cpf_name,
                    reader_version,
                    served_version,
                    trace=self.history(ue_id),
                    trace_id=getattr(span, "root_id", None),
                    span_id=getattr(span, "span_id", None),
                )
            )

    # -- recovery bookkeeping ----------------------------------------------------

    def record_reattach_forced(self, ue_id: str, cpf_name: str) -> None:
        self.reattaches_forced += 1
        self._note(ue_id, "reattach_forced", cpf=cpf_name)

    def record_failover_masked(self, ue_id: str, replayed: int) -> None:
        self.failovers_masked += 1
        self.messages_replayed += replayed
        self._note(ue_id, "failover_masked", replayed=replayed)

    # -- queries ------------------------------------------------------------------

    def history(self, ue_id: str) -> Tuple[CausalEvent, ...]:
        """The UE's recent causal events, oldest first."""
        return tuple(self._history.get(ue_id, ()))

    @property
    def read_your_writes_held(self) -> bool:
        return not self.violations


#: historic name, kept for compatibility with earlier call sites/tests.
ConsistencyAuditor = RYWAuditor
